#!/usr/bin/env python3
"""The streaming analysis service, end to end, in one process.

The paper's deployment model is online analysis; AeroDrome's
constant-space state (Theorem 4) is what makes it servable. This
walkthrough runs the whole ``repro.service`` stack against an
in-process server:

1. start a ``ServiceServer`` (2 share-nothing shards, checkpoint spool)
   on a loopback port — on the ``async`` wire backend, the selectors
   event loop that multiplexes every connection on one thread
   (``repro serve --backend async``; ``thread`` is the classic
   thread-per-connection front end, and both speak identical bytes);
2. stream a violating workload through the client SDK in small
   batches, watching findings arrive at FLUSH barriers while the
   stream is still running;
3. take a durable checkpoint, *stop the server mid-stream* (the stand-in
   for ``kill -9``), restart a new server from the same spool, resume
   the session at its checkpointed position, and stream the rest;
4. compare the recovered session's final ``repro-report/1`` document
   with the offline ``Session.run()`` on the full trace — identical
   analyses, identical verdict;
5. police a live instrumented program against the remote service via
   ``LiveMonitor(checker=RemoteChecker(...))``.

Run:  PYTHONPATH=src python examples/service_stream.py

The wire format, lifecycle and recovery semantics are documented in
docs/SERVICE.md.
"""

import tempfile

from repro.api import Session
from repro.instrument import LiveMonitor
from repro.service import RemoteChecker, ServiceClient, ServiceServer
from repro.sim import trace_zoo

ANALYSES = ["aerodrome", "races", "lockset"]


def stream_with_recovery(spool: str) -> dict:
    spec = trace_zoo.get("three-party-cycle")
    events = list(spec.trace())
    half = len(events) // 2

    # -- first server incarnation: stream half, checkpoint, "crash" ----
    # backend="async" == `repro serve --backend async`: one selectors
    # loop serves every connection; "thread" would behave identically.
    server = ServiceServer(shards=2, spool=spool, backend="async").start()
    print(f"server 1 listening on {server.address} (async backend)")
    with ServiceClient(server.host, server.port) as client:
        handle = client.open_session(
            ANALYSES, name=spec.name, session_id="demo", encoding="delta"
        )
        for i in range(0, half, 2):
            handle.send(events[i : i + 2])
        info = handle.flush()
        print(f"  streamed {info['position']} events, "
              f"{len(handle.findings)} finding(s) so far")
        print(f"  checkpoint: {handle.checkpoint()}")
    server.stop()  # mid-stream crash: the session only exists on disk
    print("server 1 gone (mid-stream)")

    # -- second incarnation: recover from the spool, resume, finish ----
    server = ServiceServer(shards=2, spool=spool, backend="async").start()
    print(f"server 2 recovered sessions: {server.recovered}")
    with ServiceClient(server.host, server.port) as client:
        handle = client.open_session(
            [], session_id="demo", resume=True
        )
        print(f"  resumed at position {handle.position}")
        handle.send(events[handle.position :])
        report = handle.result()
    server.stop()
    return report


def police_live_threads() -> None:
    with ServiceServer().start() as server:
        remote = RemoteChecker(
            server.host, server.port, analyses=["aerodrome"], batch=8
        )
        monitor = LiveMonitor(checker=remote)
        account = monitor.shared("balance", 100)
        with monitor.atomic("withdraw"):
            balance = account.get()
            account.set(balance - 30)
        remote.flush()
        report = remote.finish()
        print(f"live monitor over remote service: verdict "
              f"{report['verdict']} after {remote.events_processed} events")


def main() -> None:
    spec = trace_zoo.get("three-party-cycle")
    with tempfile.TemporaryDirectory(prefix="repro-spool-") as spool:
        recovered = stream_with_recovery(spool)

    offline = Session(spec.trace(), ANALYSES, name=spec.name).run().to_json()
    same = (
        recovered["analyses"] == offline["analyses"]
        and recovered["verdict"] == offline["verdict"]
    )
    print(f"recovered report == offline report: {same}")
    print(f"  verdict: {recovered['verdict']}")
    for entry in recovered["analyses"]:
        print(f"  [{entry['analysis']}] {entry['summary']}")
    assert same, "service recovery must not change the verdict"

    police_live_threads()


if __name__ == "__main__":
    main()
