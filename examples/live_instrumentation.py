#!/usr/bin/env python3
"""Check REAL Python threads for atomicity violations.

The paper instruments Java programs with RoadRunner; ``repro.instrument``
plays that role for Python. This example runs an actually-threaded
work-queue program twice — once with a check-then-act bug, once fixed —
records both executions, and analyzes them with AeroDrome, the witness
explainer, and the FastTrack race detector.

Run:  python examples/live_instrumentation.py
"""

import threading

from repro import TraceRecorder, check_trace, explain, find_races, metainfo


def buggy_run() -> None:
    """Worker reads (flag, payload) in two separate atomic blocks while
    the producer updates them atomically — a check-then-act bug. Event
    gates force the buggy interleaving deterministically."""
    recorder = TraceRecorder(name="buggy-queue")
    payload = recorder.shared("payload", initial=None)
    flag = recorder.shared("flag", initial=False)
    first_published = threading.Event()
    flag_seen = threading.Event()
    payload_replaced = threading.Event()
    consumed = {}

    def producer():
        with recorder.atomic("publish-v1"):
            payload.set("v1")
            flag.set(True)
        first_published.set()
        flag_seen.wait()
        with recorder.atomic("publish-v2"):
            payload.set("v2")
            flag.set(True)
        payload_replaced.set()

    def worker():
        with recorder.atomic("consume"):
            assert flag.get()  # sees v1's flag ...
            flag_seen.set()
            payload_replaced.wait()
            consumed["value"] = payload.get()  # ... but reads v2's payload!

    producer_thread = recorder.spawn(producer)
    first_published.wait()  # ensure worker starts after the first publish
    worker_thread = recorder.spawn(worker)
    recorder.join(producer_thread)
    recorder.join(worker_thread)
    print(f"  worker consumed {consumed['value']!r} (expected 'v1')")

    trace = recorder.trace()
    print(f"  recorded {metainfo(trace)}")
    result = check_trace(trace)
    print(f"  AeroDrome: {result}")
    explanation = explain(trace)
    if explanation is not None:
        print("  witness:")
        for line in explanation.render().splitlines()[1:]:
            print("  " + line)
    races = find_races(trace)
    print(f"  FastTrack: {len(races)} HB data race(s) "
          f"on {sorted({r.variable for r in races})}")


def fixed_run() -> None:
    """The same program with the consume block holding a lock shared with
    the publishers: every interleaving is serializable."""
    recorder = TraceRecorder(name="fixed-queue")
    lock = recorder.lock("queue-lock")
    payload = recorder.shared("payload", initial=None)
    flag = recorder.shared("flag", initial=False)

    def producer():
        for version in ("v1", "v2"):
            with recorder.atomic(f"publish-{version}"):
                with lock:
                    payload.set(version)
                    flag.set(True)

    def worker():
        with recorder.atomic("consume"):
            with lock:
                if flag.get():
                    payload.get()

    producer_thread = recorder.spawn(producer)
    worker_thread = recorder.spawn(worker)
    recorder.join(producer_thread)
    recorder.join(worker_thread)

    trace = recorder.trace()
    print(f"  recorded {metainfo(trace)}")
    print(f"  AeroDrome: {check_trace(trace)}")
    print(f"  FastTrack: {len(find_races(trace))} HB data race(s)")


def main() -> None:
    print("1. The buggy work queue (forced check-then-act interleaving):")
    buggy_run()
    print()
    print("2. The fixed work queue (lock covers the whole consume):")
    fixed_run()


if __name__ == "__main__":
    main()
