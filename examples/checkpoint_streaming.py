#!/usr/bin/env python3
"""Monitoring a long-running system: checkpoints and sharded state.

The paper's Table 1 traces have billions of events, analyzed online.
This example simulates that operational reality on a scaled-down
workload:

1. a monitor consumes a long event stream, checkpointing its analysis
   state every N events (the state is a handful of vector clocks —
   Theorem 4's space bound — so checkpoints stay small no matter how
   long the stream gets);
2. the monitor "crashes" mid-stream and resumes from the last
   checkpoint, reaching the same verdict at the same event;
3. the same trace is re-analyzed by the *sharded* checker, printing the
   synchronization profile behind the paper's §6 claim that AeroDrome
   admits a distributed implementation with little cross-metadata
   synchronization.

Run:  python examples/checkpoint_streaming.py
"""

from repro import make_checker, restore, snapshot
from repro.core.sharded import ShardedAeroDromeChecker
from repro.sim.workloads.benchmarks import get_case

CHECKPOINT_EVERY = 500


def build_stream():
    # The sunflow analog: many transactions, violation late in the
    # trace — the regime where AeroDrome shines (Table 1).
    case = get_case("sunflow")
    return case.generate(seed=7, scale=0.2)


def monitor_with_checkpoints(trace):
    checker = make_checker("aerodrome")
    checkpoints = []
    for event in trace:
        if checker.events_processed and checker.events_processed % CHECKPOINT_EVERY == 0:
            checkpoints.append(snapshot(checker))
        if checker.process(event) is not None:
            break
    return checker.result(), checkpoints


def main() -> None:
    trace = build_stream()
    print(f"stream: {len(trace)} events from the sunflow analog\n")

    result, checkpoints = monitor_with_checkpoints(trace)
    print(f"uninterrupted monitor: {result}")
    sizes = [len(c) for c in checkpoints]
    print(
        f"checkpoints taken: {len(checkpoints)}, "
        f"payload {min(sizes)}-{max(sizes)} bytes "
        "(constant-ish: clocks, not the trace)\n"
    )

    # Crash after the middle checkpoint, resume, verify the verdict.
    crash_point = checkpoints[len(checkpoints) // 2]
    print(
        f"simulated crash; resuming from checkpoint at event "
        f"{crash_point.events_processed}"
    )
    resumed = restore(crash_point)
    for event in list(trace)[crash_point.events_processed:]:
        if resumed.process(event) is not None:
            break
    recovered = resumed.result()
    print(f"recovered monitor:     {recovered}")
    agree = recovered.serializable == result.serializable and (
        recovered.violation is None
        or recovered.violation.event_idx == result.violation.event_idx
    )
    print(f"verdicts agree: {agree}\n")

    sharded = ShardedAeroDromeChecker(n_object_shards=8)
    sharded_result = sharded.run(trace)
    stats = sharded.stats
    print(f"sharded checker:       {sharded_result}")
    print(
        f"shard accesses: {stats.total} total, "
        f"{stats.remote_fraction():.1%} remote, "
        f"{stats.end_broadcasts} end-event broadcasts"
    )
    busiest = sorted(stats.per_shard.items(), key=lambda kv: -kv[1])[:3]
    print("busiest object shards: " + ", ".join(f"#{s}×{n}" for s, n in busiest))


if __name__ == "__main__":
    main()
