#!/usr/bin/env python3
"""The unified analysis-session API: one ingest, many analyses.

Run:  python examples/session_api.py

`repro.api` (see docs/API.md) drives any number of registered analyses
over a single sweep of one trace — checkers, race detection, locksets,
profiles — and returns one structured result with a versioned JSON
serialization (repro-report/1).
"""

import json

from repro import Session, run, trace_of, begin, end, read, write
from repro.api import CheckerAnalysis, available_analyses
from repro.trace.packed import pack


def main() -> None:
    # The paper's ρ2: two atomic blocks exchanging x and y crosswise.
    trace = trace_of(
        begin("t1"),
        begin("t2"),
        write("t1", "x"),
        read("t2", "x"),
        write("t2", "y"),
        read("t1", "y"),
        end("t2"),
        end("t1"),
        name="rho2",
    )

    print("Registered analyses:", ", ".join(available_analyses()))
    print()

    # 1. Co-run six analyses on ONE pass over the trace.
    result = run(
        trace,
        ["aerodrome", "aerodrome-basic", "velodrome", "races", "lockset",
         "profile"],
    )
    for name, report in result.reports.items():
        print(f"  [{name:16s}] {report.summary}")
    print(f"swept {result.events_swept} events once in {result.seconds:.4f}s")
    print()

    # 2. The same session over the packed integer fast path.
    packed_result = run(pack(trace), ["aerodrome", "races"])
    print("packed verdicts match:",
          packed_result["aerodrome"].verdict == result["aerodrome"].verdict)
    print()

    # 3. Run modes: report-and-continue with dedupe, in the same engine.
    session = Session(
        trace, [CheckerAnalysis("aerodrome", mode="report_all", dedupe=True)]
    )
    for violation in session.run()["aerodrome"].native:
        print("  report-all:", violation)
    print()

    # 4. One stable JSON document for dashboards and CI gates.
    print(json.dumps(result.to_json()["analyses"][0], indent=2))


if __name__ == "__main__":
    main()
