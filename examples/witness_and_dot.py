#!/usr/bin/env python3
"""From verdict to diagnosis: witness cycles, reports, and pictures.

A checker saying "not serializable" is the start of debugging, not the
end. This example takes a racy map-reduce workload, finds a violating
execution, then:

1. profiles the trace (which variables are hot? where is the first
   cross-thread conflict?);
2. extracts the witness cycle with per-edge ≤CHB event pairs
   (``repro.analysis.explain``);
3. streams *all* violation reports, not just the first
   (``repro.core.multi``);
4. writes Graphviz DOT files of the transaction graph (witness cycle
   highlighted) and the paper-style event-level conflict graph.

Run:  python examples/witness_and_dot.py [output-dir]
"""

import sys
from pathlib import Path

from repro import (
    check_trace,
    event_graph_dot,
    find_all_violations,
    format_profile,
    profile_trace,
    transaction_graph_dot,
)
from repro.analysis.explain import explain
from repro.analysis.graph_export import save_dot
from repro.sim.runtime import execute
from repro.sim.scheduler import RandomScheduler
from repro.sim.workloads.patterns import map_reduce


def find_violating_execution():
    """Scan seeds until the racy fold interleaves into a cycle."""
    program = map_reduce(n_mappers=3, guarded=False)
    for seed in range(100):
        trace = execute(program, RandomScheduler(seed=seed))
        if not check_trace(trace).serializable:
            return seed, trace
    raise SystemExit("no violating schedule in 100 seeds (unexpected)")


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    seed, trace = find_violating_execution()
    print(f"violating schedule found at seed {seed}: {len(trace)} events\n")

    print("== workload shape " + "=" * 40)
    print(format_profile(profile_trace(trace), top=5))
    print()

    print("== witness cycle " + "=" * 41)
    explanation = explain(trace)
    assert explanation is not None
    print(explanation.render())
    print()

    print("== all violation reports (report-and-continue) " + "=" * 11)
    for violation in find_all_violations(trace, dedupe=True):
        print(f"  {violation}")
    print()

    txn_path = out_dir / "map_reduce_transactions.dot"
    ev_path = out_dir / "map_reduce_events.dot"
    save_dot(transaction_graph_dot(trace), txn_path)
    save_dot(event_graph_dot(trace), ev_path)
    print(f"wrote {txn_path} (render with: dot -Tsvg {txn_path})")
    print(f"wrote {ev_path}")


if __name__ == "__main__":
    main()
