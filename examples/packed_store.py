#!/usr/bin/env python
"""Pack once, analyze many times — and use the cores while you're at it.

The PR 4 workflow end to end:

1. compile a trace straight from ``.std`` text with the fused parser
   (no ``Event`` objects on the way in);
2. persist it as a ``repro-packed/1`` column store (``.rpt``);
3. ``mmap`` it back with O(1) per-event work — the cold start every
   later run pays;
4. fan a multi-analysis session across worker processes with
   ``Session.run(jobs=N)`` (forked workers inherit the mapped columns
   zero-copy).

Run from the repository root::

    PYTHONPATH=src python examples/packed_store.py
"""

import tempfile
import time
from pathlib import Path

from repro.api import Session
from repro.sim.workloads.benchmarks import CASES_BY_NAME
from repro.trace import load_packed, parse_packed, save_packed, save_trace


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-packed-"))
    std = workdir / "raytracer.std"
    rpt = workdir / "raytracer.rpt"

    # Some trace text to start from (stands in for a logged execution).
    trace = CASES_BY_NAME["raytracer"].generate(seed=7, scale=0.2)
    save_trace(trace, std)

    # 1. Fused text -> packed parse, then 2. persist the columns.
    start = time.perf_counter()
    packed = parse_packed(std)
    parse_seconds = time.perf_counter() - start
    save_packed(packed, rpt)
    print(f"parsed {len(packed)} events in {parse_seconds:.4f}s "
          f"-> {rpt.name} ({rpt.stat().st_size} bytes)")

    # 3. The cold start every later run pays: an mmap and four string
    # tables, independent of the event count.
    start = time.perf_counter()
    mapped = load_packed(rpt)
    load_seconds = time.perf_counter() - start
    print(f"reloaded {len(mapped)} events in {load_seconds:.6f}s "
          f"({parse_seconds / load_seconds:.0f}x faster than parsing)")

    # 4. One session, four analyses, two worker processes. The reports
    # are identical to a serial run (timing aside); on a multi-core
    # machine the wall clock drops with it.
    analyses = ["aerodrome", "races", "lockset", "profile"]
    serial = Session(mapped, analyses).run()
    parallel = Session(mapped, analyses).run(jobs=2)
    agree = [r.to_json() for r in serial.reports.values()] == [
        r.to_json() for r in parallel.reports.values()
    ]
    print(f"serial {serial.seconds:.3f}s vs jobs=2 {parallel.seconds:.3f}s; "
          f"reports agree: {agree}")
    for name, report in parallel.reports.items():
        print(f"  [{name:10s}] {report.summary}")


if __name__ == "__main__":
    main()
