#!/usr/bin/env python3
"""Policing real threads online, then inferring the right specification.

Two acts:

**Act 1 — online detection.** A `LiveMonitor` hosts AeroDrome inside
the instrumentation layer, so the atomicity violation in a broken
read-modify-write is reported *while the threads are running* — at the
exact operation that closes the cycle — not in a post-mortem replay.
(The interleaving is forced with gates so the demo is deterministic;
in the wild you would run under many schedules, as
``examples/schedule_exploration.py`` does.)

**Act 2 — specification inference.** The paper notes that atomicity
specifications "are hard to come by". Given the recorded trace, whose
atomic blocks carry method labels, `infer_spec` greedily refutes
methods until the remaining specification is consistent with the
execution — telling you *which* intended-atomic block is broken.

Run:  python examples/live_monitoring.py
"""

import threading

from repro import LiveMonitor, check_trace
from repro.spec.inference import infer_spec
from repro.trace.filters import apply_spec


def run_broken_cache(monitor: LiveMonitor) -> None:
    """A tiny read-through cache with a TOCTOU bug.

    ``lookup`` checks the cache and, on a miss, computes and fills it —
    but the check and the fill live in the same atomic block while a
    concurrent ``invalidate`` (correctly locked, but a *different*
    lock discipline) slips between them.
    """
    cache = monitor.shared("cache", initial=None)
    stats = monitor.shared("stats", initial=0)
    gate_checked = threading.Event()
    gate_invalidated = threading.Event()

    def lookup():
        with monitor.atomic("lookup"):
            cache.get()  # check
            gate_checked.set()
            assert gate_invalidated.wait(timeout=5)
            cache.set("value")  # fill — stale by now
            stats.set(stats.get() + 1)

    def invalidate():
        assert gate_checked.wait(timeout=5)
        with monitor.atomic("invalidate"):
            cache.set(None)
            stats.get()
        gate_invalidated.set()

    threads = [monitor.spawn(lookup), monitor.spawn(invalidate)]
    for thread in threads:
        monitor.join(thread)


def main() -> None:
    print("Act 1 — online detection")
    monitor = LiveMonitor(policy="record")
    run_broken_cache(monitor)
    print(f"  events recorded : {len(monitor)}")
    print(f"  clean           : {monitor.clean}")
    for violation in monitor.violations:
        print(f"  live report     : {violation}")
    print()

    print("Act 2 — specification inference")
    trace = monitor.trace()
    inferred = infer_spec(trace)
    print(f"  {inferred}")
    for method, violation in inferred.removed:
        print(f"  blamed {method!r} via: {violation}")
    repaired = apply_spec(trace, inferred.spec)
    print(
        "  filtered trace under inferred spec: "
        f"{check_trace(repaired)}"
    )


if __name__ == "__main__":
    main()
