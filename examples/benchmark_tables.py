#!/usr/bin/env python3
"""Regenerate the paper's Tables 1 and 2 (scaled analogs).

Equivalent to ``python -m repro.cli table1`` / ``table2``, packaged as a
script with a smaller default scale so it finishes in well under a
minute. See EXPERIMENTS.md for full-scale results and the comparison
against the paper's numbers.

Run:  python examples/benchmark_tables.py [scale]
"""

import sys

from repro.bench.harness import run_table
from repro.bench.reporting import format_comparison, format_table
from repro.sim.workloads.benchmarks import TABLE1, TABLE2


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    timeout = 15.0
    for title, cases in (("Table 1", TABLE1), ("Table 2", TABLE2)):
        print(f"Running {title} analogs (scale={scale}, timeout={timeout}s)...")
        results = run_table(cases, scale=scale, timeout=timeout)
        print(format_table(results, title=f"{title} (measured)"))
        print()
        print(format_comparison(results, title=f"{title} (paper vs. measured)"))
        print()


if __name__ == "__main__":
    main()
