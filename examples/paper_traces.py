#!/usr/bin/env python3
"""Replay the paper's worked examples (Figures 1-7) step by step.

Prints, for each of ρ1-ρ4, the event sequence and the evolution of the
AeroDrome vector clocks — the same tables shown in Figures 5, 6 and 7 of
the paper — and where each violation is declared.

Run:  python examples/paper_traces.py
"""

from repro import Trace, begin, end, read, trace_of, write
from repro.core.aerodrome import AeroDromeChecker

RHO1 = trace_of(
    begin("t1"), write("t1", "x"),
    begin("t2"), read("t2", "x"), end("t2"),
    begin("t3"), write("t3", "z"), end("t3"),
    read("t1", "z"), end("t1"),
    name="rho1 (Figure 1, serializable as T3 T1 T2)",
)

RHO2 = trace_of(
    begin("t1"), begin("t2"),
    write("t1", "x"), read("t2", "x"),
    write("t2", "y"), read("t1", "y"),
    end("t2"), end("t1"),
    name="rho2 (Figure 2, violation at e6)",
)

RHO3 = trace_of(
    begin("t1"), begin("t2"),
    write("t1", "x"), write("t2", "y"),
    read("t1", "y"), read("t2", "x"),
    end("t1"), end("t2"),
    name="rho3 (Figure 3, violation at the end event e7)",
)

RHO4 = trace_of(
    begin("t1"), write("t1", "x"),
    begin("t2"), write("t2", "y"), read("t2", "x"), end("t2"),
    begin("t3"), read("t3", "y"), write("t3", "z"), end("t3"),
    read("t1", "z"), end("t1"),
    name="rho4 (Figure 4, violation at e11)",
)


def replay(trace: Trace) -> None:
    print("=" * 72)
    print(trace.name)
    print("=" * 72)
    checker = AeroDromeChecker()
    threads = sorted(trace.threads())
    variables = sorted(trace.variables())
    header = (
        f"{'event':16s} "
        + " ".join(f"C_{t:8s}" for t in threads)
        + " "
        + " ".join(f"W_{x:9s}" for x in variables)
    )
    print(header)
    for event in trace:
        violation = checker.process(event)
        clocks = " ".join(f"{checker.thread_clock(t)!r:10s}" for t in threads)
        writes = " ".join(f"{checker.write_clock(x)!r:11s}" for x in variables)
        print(f"e{event.idx + 1:<3d} {str(event):11s} {clocks} {writes}")
        if violation is not None:
            print(f"\n  ✗ {violation}\n")
            return
    print("\n  ✓ conflict serializable\n")


def main() -> None:
    for trace in (RHO1, RHO2, RHO3, RHO4):
        replay(trace)


if __name__ == "__main__":
    main()
