#!/usr/bin/env python3
"""Prove or refute atomicity across the *whole* schedule space.

A single dynamic analysis run only judges the schedule that happened.
For small programs we can do better: enumerate every interleaving
(DESIGN.md E-extension; cf. the CTrigger / model-checking related work
in the paper's §6) and check each one — an exhaustive proof that a
program is atomic under every schedule, or a concrete witness schedule
when it is not.

Run:  python examples/schedule_exploration.py
"""

from repro.analysis.explain import explain
from repro.sim.explore import explore, fuzz
from repro.sim.workloads.patterns import locked_counter, unprotected_counter


def main() -> None:
    print("Exhaustive exploration of a locked counter (2 threads x 1 incr):")
    safe = explore(locked_counter(n_threads=2, increments=1))
    print(f"  {safe}")
    assert safe.exhaustive and safe.always_atomic
    print("  -> atomicity PROVEN over the full schedule space\n")

    print("Exhaustive exploration of the unlocked counter:")
    racy = explore(unprotected_counter(n_threads=2, increments=1))
    print(f"  {racy}")
    assert racy.witness is not None
    print("  -> witness schedule:")
    for event in racy.witness:
        print(f"       {event}")
    explanation = explain(racy.witness)
    print("  -> why it is not serializable:")
    for line in explanation.render().splitlines()[1:]:
        print("     " + line)
    print()

    print("Fuzzing the bigger unlocked counter (3 threads x 2 increments):")
    sampled = fuzz(unprotected_counter(n_threads=3, increments=2), schedules=50)
    print(f"  {sampled}")


if __name__ == "__main__":
    main()
