#!/usr/bin/env python3
"""Quickstart: build a trace, check it, read the verdict.

Run:  python examples/quickstart.py
"""

from repro import (
    begin,
    dump_trace,
    end,
    metainfo,
    parse_trace,
    read,
    trace_of,
    write,
)
from repro.api import check, checker_names


def main() -> None:
    # 1. Build a trace programmatically — this is the paper's ρ2
    # (Figure 2): two atomic blocks exchanging x and y in crossed order.
    trace = trace_of(
        begin("t1"),
        begin("t2"),
        write("t1", "x"),
        read("t2", "x"),
        write("t2", "y"),
        read("t1", "y"),
        end("t2"),
        end("t1"),
        name="rho2",
    )

    print("The trace:")
    print(dump_trace(trace))
    print("Characteristics:", metainfo(trace))
    print()

    # 2. Check it with AeroDrome (the default algorithm).
    result = check(trace)
    print("AeroDrome verdict:", result)
    if result.violation is not None:
        print(f"  -> the cycle closes at event {result.violation.event_idx}: "
              f"{trace[result.violation.event_idx]}")
    print()

    # 3. Every checker agrees; they differ in cost, not verdicts.
    for algorithm in checker_names():
        print(f"  {algorithm:16s}: {check(trace, algorithm)}")
    print()

    # 4. Traces can also come from .std text (the RAPID format used by
    # the paper's artifact).
    serializable = parse_trace(
        """
        t1|begin
        t1|w(x)
        t1|end
        t2|begin
        t2|r(x)
        t2|end
        """
    )
    print("A serializable trace:", check(serializable))


if __name__ == "__main__":
    main()
