#!/usr/bin/env python3
"""A tour of the atomicity-checker landscape on one set of traces.

Section 6 of the paper situates AeroDrome among its neighbours:
Velodrome (graph-based, sound and precise), DoubleChecker (two-phase),
Atomizer (Lipton reduction — unsound, the reason the field moved to
conflict serializability), and Farzan–Madhusudan (lock-unaware conflict
model). This example runs all of them over the trace zoo and prints a
verdict matrix, making the two classic disagreements visible:

* Atomizer flags a *serializable* fork/join hand-off (false positive)
  and misses the lock-free ρ2 cycle (false negative);
* the lock-ignoring FM model misses the cycle that closes through a
  lock.

Run:  python examples/related_work.py
"""

from repro import check_trace, conflict_serializable
from repro.baselines.atomizer import AtomizerChecker
from repro.baselines.lock_models import FarzanMadhusudanChecker, LockModel
from repro.sim import trace_zoo

#: (column label, function building a fresh checker-result verdict)
CHECKERS = [
    ("oracle", lambda t: conflict_serializable(t)),
    ("aerodrome", lambda t: check_trace(t, "aerodrome").serializable),
    ("velodrome", lambda t: check_trace(t, "velodrome").serializable),
    ("velodr-pk", lambda t: check_trace(t, "velodrome-pk").serializable),
    ("dblcheck", lambda t: check_trace(t, "doublechecker").serializable),
    ("atomizer", lambda t: AtomizerChecker().run(t).serializable),
    ("fm-nolock", lambda t: FarzanMadhusudanChecker(LockModel.IGNORED).run(t).serializable),
]

SHOWCASE = [
    "paper-rho1",
    "paper-rho2",
    "paper-rho4",
    "lock-cycle",
    "fork-join-handoff",
    "reduction-false-alarm",
    "three-party-cycle",
    "unlocked-counter",
    "locked-counter",
]


def main() -> None:
    header = f"{'specimen':<20}" + "".join(f"{name:>11}" for name, _ in CHECKERS)
    print(header)
    print("-" * len(header))
    disagreements = []
    for name in SHOWCASE:
        specimen = trace_zoo.get(name)
        row = [f"{name:<20}"]
        truth = None
        for label, verdict_of in CHECKERS:
            verdict = verdict_of(specimen.trace())
            if label == "oracle":
                truth = verdict
            mark = "✓" if verdict else "✗"
            if verdict != truth:
                mark += "!"
                disagreements.append((name, label, verdict, truth))
            row.append(f"{mark:>11}")
        print("".join(row))

    print()
    print("Disagreements with the oracle (sound checkers never appear here):")
    for name, label, verdict, truth in disagreements:
        kind = "false negative" if verdict and not truth else "false positive"
        print(f"  {label:<10} on {name:<20} -> {kind}")
    if not disagreements:
        print("  none (unexpected — atomizer/fm should disagree somewhere)")


if __name__ == "__main__":
    main()
