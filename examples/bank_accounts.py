#!/usr/bin/env python3
"""Finding (and fixing) an atomicity bug in a simulated bank.

The scenario from the paper's introduction: transfers between accounts
are *meant* to be atomic, but the unguarded implementation lets two
tellers interleave their balance reads and writes — a classic lost
update. We simulate both implementations under many schedules, check
every execution with AeroDrome, and show that the locked variant is
serializable under every schedule while the racy one is caught.

Run:  python examples/bank_accounts.py
"""

from repro import check_trace
from repro.sim.runtime import execute
from repro.sim.scheduler import RandomScheduler
from repro.sim.workloads.patterns import bank_transfer


def survey(guarded: bool, schedules: int = 25) -> None:
    program = bank_transfer(guarded=guarded)
    label = "locked" if guarded else "racy"
    violations = 0
    first_witness = None
    for seed in range(schedules):
        trace = execute(program, RandomScheduler(seed=seed))
        result = check_trace(trace)
        if not result.serializable:
            violations += 1
            if first_witness is None:
                first_witness = (seed, trace, result)
    print(f"{label:7s}: {violations}/{schedules} schedules violate atomicity")
    if first_witness is not None:
        seed, trace, result = first_witness
        print(f"  first caught under seed {seed}: {result.violation}")
        idx = result.violation.event_idx
        print("  the interleaving around the violation:")
        for event in trace.events[max(0, idx - 6): idx + 1]:
            marker = "  -> " if event.idx == idx else "     "
            print(f"{marker}e{event.idx}: {event}")
    print()


def main() -> None:
    print("Checking bank transfers under 25 random schedules each.\n")
    survey(guarded=False)
    survey(guarded=True)
    print(
        "The lock makes each transfer's read-modify-write indivisible, so\n"
        "every interleaving is equivalent to a serial one — exactly what\n"
        "conflict serializability certifies."
    )


if __name__ == "__main__":
    main()
