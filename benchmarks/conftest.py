"""Shared benchmark fixtures: traces are generated once per session so
only analysis time is measured (the paper times analysis on pre-logged
traces, Appendix D).

``SCALE`` and ``SEED`` can be overridden through the environment —
``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_SEED`` — so CI can smoke-test the
suite (e.g. ``REPRO_BENCH_SCALE=0.05``) without editing source.
"""

from __future__ import annotations

import os

import pytest

from repro.sim.workloads.benchmarks import CASES_BY_NAME

#: Scale factor applied to every benchmark trace. 1.0 reproduces the
#: sizes in DESIGN.md §5; lower it to smoke-test the suite quickly.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))

_cache = {}


def trace_for(name: str, scale: float = None, seed: int = None):
    if scale is None:
        scale = SCALE
    if seed is None:
        seed = SEED
    key = (name, scale, seed)
    if key not in _cache:
        _cache[key] = CASES_BY_NAME[name].generate(seed=seed, scale=scale)
    return _cache[key]


@pytest.fixture(scope="session")
def get_trace():
    return trace_for
