"""E5 — ablations of the design choices DESIGN.md calls out.

* Basic Algorithm 1 vs. the Appendix C optimized AeroDrome (lazy clocks,
  read-clock reduction, update sets, GC).
* Velodrome with vs. without garbage collection.
* The vector-clock primitives themselves (join / leq / copy), since the
  paper's complexity argument counts them as the per-event unit cost.
"""

import pytest

from repro.core.checker import make_checker
from repro.core.vector_clock import VectorClock

from benchmarks.conftest import trace_for

#: A coordinator workload at a size where algorithmic differences are
#: visible but the slowest variant still finishes in seconds.
CASE, SCALE = "elevator", 0.6


def _run(algorithm, trace):
    return make_checker(algorithm).run(trace)


@pytest.mark.parametrize(
    "algorithm",
    ["aerodrome", "aerodrome-basic", "velodrome", "velodrome-nogc"],
)
@pytest.mark.benchmark(group="ablation-checkers")
def test_checker_variants(benchmark, algorithm):
    trace = trace_for(CASE, scale=SCALE)
    result = benchmark.pedantic(
        _run, args=(algorithm, trace), rounds=1, iterations=1
    )
    assert result.serializable


@pytest.mark.parametrize("algorithm", ["aerodrome", "aerodrome-basic"])
@pytest.mark.benchmark(group="ablation-read-clocks")
def test_read_clock_reduction(benchmark, algorithm):
    """Many threads reading many variables: the O(|Thr|·V) read clocks of
    Algorithm 1 vs. the O(V) clocks of Algorithm 2/3."""
    trace = trace_for("lusearch", scale=0.4)
    benchmark.pedantic(_run, args=(algorithm, trace), rounds=1, iterations=1)


@pytest.mark.benchmark(group="ablation-vc-ops")
@pytest.mark.parametrize("size", [4, 16, 64])
def test_vector_clock_join(benchmark, size):
    a = VectorClock(range(size))
    b = VectorClock(range(size, 0, -1))
    benchmark(a.joined, b)


@pytest.mark.benchmark(group="ablation-vc-ops")
@pytest.mark.parametrize("size", [4, 16, 64])
def test_vector_clock_leq(benchmark, size):
    a = VectorClock([1] * size)
    b = VectorClock([2] * size)
    benchmark(a.leq, b)
