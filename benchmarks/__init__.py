"""Benchmark suite (pytest-benchmark based), run explicitly via
``PYTHONPATH=src python -m pytest benchmarks``.

This package marker gives every benchmark module a qualified name
(``benchmarks.test_table1`` etc.) so the basenames shared with the
tier-1 suite in ``tests/`` can never collide during collection.
"""
