"""E1 — Table 1: realistic (DoubleChecker) atomicity specifications.

One benchmark pair (AeroDrome, Velodrome) per paper row. The paper's
qualitative claim: on these workloads violations appear late, transaction
graphs grow large, and AeroDrome's linear-time analysis wins by large
factors on the coordinator-shaped rows while staying at parity on the
rows whose graphs stay small under garbage collection.

Run with ``pytest benchmarks/test_table1.py --benchmark-only``; compare
against the paper's Table 1 via ``python -m repro.cli table1``.
"""

import pytest

from repro.core.checker import make_checker
from repro.sim.workloads.benchmarks import TABLE1

from benchmarks.conftest import trace_for


def _run(algorithm, trace):
    checker = make_checker(algorithm)
    return checker.run(trace)


@pytest.mark.parametrize("case", TABLE1, ids=lambda c: c.name)
@pytest.mark.benchmark(group="table1-aerodrome")
def test_aerodrome(benchmark, case):
    trace = trace_for(case.name)
    result = benchmark.pedantic(
        _run, args=("aerodrome", trace), rounds=1, iterations=1
    )
    assert result.serializable == (case.violation_at is None)


@pytest.mark.parametrize("case", TABLE1, ids=lambda c: c.name)
@pytest.mark.benchmark(group="table1-velodrome")
def test_velodrome(benchmark, case):
    trace = trace_for(case.name)
    result = benchmark.pedantic(
        _run, args=("velodrome", trace), rounds=1, iterations=1
    )
    assert result.serializable == (case.violation_at is None)
