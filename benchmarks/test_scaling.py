"""E3 — the scaling claim: AeroDrome linear, Velodrome superlinear.

Sweeps the raytracer analog (serializable, so both algorithms must
process every event) over doubling trace sizes. AeroDrome's time should
roughly double per step while Velodrome's roughly quadruples.
"""

import pytest

from repro.core.checker import make_checker

from benchmarks.conftest import trace_for

SIZES = [4_000, 8_000, 16_000, 32_000]
BASE_EVENTS = 50_000  # the raytracer case's nominal size


def _scale(size: int) -> float:
    return size / BASE_EVENTS


def _run(algorithm, trace):
    return make_checker(algorithm).run(trace)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.benchmark(group="scaling-aerodrome")
def test_aerodrome_scaling(benchmark, size):
    trace = trace_for("raytracer", scale=_scale(size))
    result = benchmark.pedantic(
        _run, args=("aerodrome", trace), rounds=1, iterations=1
    )
    assert result.serializable


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.benchmark(group="scaling-velodrome")
def test_velodrome_scaling(benchmark, size):
    trace = trace_for("raytracer", scale=_scale(size))
    result = benchmark.pedantic(
        _run, args=("velodrome", trace), rounds=1, iterations=1
    )
    assert result.serializable
