"""E6 — the DoubleChecker comparison (paper §5.1, narrative only).

The paper reports DoubleChecker "slower by an order of magnitude" on a
benchmark subset but excludes the numbers as not apples-to-apples (it
cannot run on logged traces). Our miniature two-phase variant *can* run
on logged traces, so the comparison becomes reproducible: its buffering
plus second pass should cost noticeably more than single-pass AeroDrome
on violating workloads.
"""

import pytest

from repro.core.checker import make_checker

from benchmarks.conftest import trace_for

SUBSET = ["sunflow", "luindex", "crypt"]


def _run(algorithm, trace):
    return make_checker(algorithm).run(trace)


@pytest.mark.parametrize("name", SUBSET)
@pytest.mark.benchmark(group="doublechecker")
def test_doublechecker(benchmark, name):
    trace = trace_for(name, scale=0.4)
    benchmark.pedantic(
        _run, args=("doublechecker", trace), rounds=1, iterations=1
    )


@pytest.mark.parametrize("name", SUBSET)
@pytest.mark.benchmark(group="doublechecker")
def test_aerodrome_reference(benchmark, name):
    trace = trace_for(name, scale=0.4)
    benchmark.pedantic(
        _run, args=("aerodrome", trace), rounds=1, iterations=1
    )
