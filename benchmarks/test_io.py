"""IO benchmarks: text vs. binary trace formats, and streaming analysis.

The paper's trace logs reach ~100 GB as text (Appendix D); format
throughput matters for any tool that replays logs. Compares parse/dump
throughput of the ``.std`` text format against the ``.rtb`` binary one,
plus the end-to-end "load + check" path.
"""

import io

import pytest

from repro.core.checker import make_checker
from repro.trace.binary import read_binary, write_binary
from repro.trace.parser import parse_trace
from repro.trace.writer import dump_trace

from benchmarks.conftest import trace_for

NAME, SCALE = "moldyn", 0.2


@pytest.fixture(scope="module")
def sample_trace():
    return trace_for(NAME, scale=SCALE)


@pytest.fixture(scope="module")
def sample_text(sample_trace):
    return dump_trace(sample_trace)


@pytest.fixture(scope="module")
def sample_binary(sample_trace):
    buffer = io.BytesIO()
    write_binary(sample_trace, buffer)
    return buffer.getvalue()


@pytest.mark.benchmark(group="io-serialize")
def test_dump_text(benchmark, sample_trace):
    benchmark(dump_trace, sample_trace)


@pytest.mark.benchmark(group="io-serialize")
def test_dump_binary(benchmark, sample_trace):
    def dump():
        buffer = io.BytesIO()
        write_binary(sample_trace, buffer)
        return buffer

    benchmark(dump)


@pytest.mark.benchmark(group="io-parse")
def test_parse_text(benchmark, sample_text):
    benchmark(parse_trace, sample_text)


@pytest.mark.benchmark(group="io-parse")
def test_parse_binary(benchmark, sample_binary):
    benchmark(lambda: read_binary(io.BytesIO(sample_binary)))


@pytest.mark.benchmark(group="io-end-to-end")
def test_parse_then_check(benchmark, sample_text):
    def run():
        checker = make_checker("aerodrome")
        return checker.run(parse_trace(sample_text))

    benchmark.pedantic(run, rounds=1, iterations=1)
