"""E7 — cycle-detection strategy ablation for the graph baseline.

The paper's central complexity claim is that *any* per-edge cycle check
keeps the graph approach super-linear. This bench fields the strongest
graph opponent we can build — Velodrome with Pearce–Kelly incremental
topological ordering (``velodrome-pk``) — against plain Velodrome and
AeroDrome.

Measured shape (recorded in EXPERIMENTS.md): on the benchmark analogs
the *plain* DFS check with garbage collection beats Pearce–Kelly — GC
keeps the live graph small and forward-dominated, so each DFS probe is
cheap while PK pays order-maintenance constants on every insertion.
PK's asymptotic advantage is real but needs graphs DFS probes keep
re-walking; ``test_shortcut_chain`` below isolates exactly that regime
(forward shortcuts on a deep chain: DFS pays O(n) per probe walking the
chain tail, PK answers in O(1) from the order index) and PK wins it by
~two orders of magnitude. AeroDrome beats both on traces, which is the
paper's point: the right fix is not a better cycle detector.
"""

import random

import pytest

from repro.core.checker import make_checker

from benchmarks.conftest import trace_for

CASE = "elevator"


def _run(algorithm, trace):
    return make_checker(algorithm).run(trace)


@pytest.mark.parametrize(
    "algorithm", ["aerodrome", "velodrome", "velodrome-pk"]
)
@pytest.mark.benchmark(group="cycle-strategies")
def test_strategy(benchmark, algorithm):
    trace = trace_for(CASE, scale=0.6)
    result = benchmark.pedantic(
        _run, args=(algorithm, trace), rounds=1, iterations=1
    )
    assert result.serializable  # elevator analog is atomic (Table 1 ✓)


@pytest.mark.parametrize("algorithm", ["velodrome", "velodrome-pk"])
@pytest.mark.parametrize("scale", [0.2, 0.4, 0.8])
@pytest.mark.benchmark(group="cycle-strategies-scaling")
def test_strategy_scaling(benchmark, algorithm, scale):
    """How each graph variant's cost grows with trace length."""
    trace = trace_for(CASE, scale=scale)
    benchmark.pedantic(_run, args=(algorithm, trace), rounds=1, iterations=1)


def _shortcut_chain(graph_factory, n: int, seed: int) -> None:
    """Deep chain + random forward shortcuts — the DFS-adversarial shape."""
    graph = graph_factory()
    for i in range(n - 1):
        if not graph.creates_cycle(i, i + 1):
            graph.add_edge(i, i + 1)
    rng = random.Random(seed)
    for _ in range(n):
        i = rng.randrange(n - 1)
        j = rng.randrange(i + 1, n)
        if not graph.creates_cycle(i, j):
            graph.add_edge(i, j)


@pytest.mark.parametrize("strategy", ["dfs", "pearce-kelly"])
@pytest.mark.benchmark(group="cycle-strategies-adversarial")
def test_shortcut_chain(benchmark, strategy):
    from repro.baselines.graph import Digraph
    from repro.baselines.online_cycles import IncrementalTopoDigraph

    factory = Digraph if strategy == "dfs" else IncrementalTopoDigraph
    benchmark.pedantic(
        _shortcut_chain, args=(factory, 3000, 3), rounds=1, iterations=1
    )
