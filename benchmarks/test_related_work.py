"""E8 — throughput of the §6 related-work analyses.

Not a fairness contest (Atomizer and the FM lock models answer
different questions than conflict serializability); this bench records
the per-event cost of each analysis family on the same trace so the
"vector clocks are worth it" narrative has numbers behind it:

* aerodrome — vector-clock conflict serializability (the paper);
* atomizer — lockset + two-phase reduction automaton (cheap state,
  no clocks);
* fm-ignored / fm-as-writes — the lock-unaware conflict models run
  through the AeroDrome engine;
* lockset — the raw Eraser pass (lower bound for anything built on it).
"""

import pytest

from repro.analysis.lockset import LocksetAnalyzer
from repro.baselines.atomizer import AtomizerChecker
from repro.baselines.lock_models import FarzanMadhusudanChecker, LockModel
from repro.core.checker import make_checker

from benchmarks.conftest import trace_for

#: A serializable, lock-heavy workload so every analysis consumes the
#: entire trace (no early exit skews the comparison).
CASE, SCALE = "philo", 40.0


def _consume(checker, trace):
    for event in trace:
        checker.process(event)
    return checker


@pytest.mark.benchmark(group="related-work")
def test_aerodrome(benchmark):
    trace = trace_for(CASE, scale=SCALE)
    benchmark.pedantic(
        lambda: make_checker("aerodrome").run(trace), rounds=1, iterations=1
    )


@pytest.mark.benchmark(group="related-work")
def test_atomizer(benchmark):
    trace = trace_for(CASE, scale=SCALE)
    result = benchmark.pedantic(
        lambda: AtomizerChecker().run(trace), rounds=1, iterations=1
    )
    assert result.serializable


@pytest.mark.parametrize(
    "model", [LockModel.IGNORED, LockModel.AS_WRITES], ids=lambda m: m.value
)
@pytest.mark.benchmark(group="related-work")
def test_farzan_madhusudan(benchmark, model):
    trace = trace_for(CASE, scale=SCALE)
    benchmark.pedantic(
        lambda: FarzanMadhusudanChecker(model).run(trace),
        rounds=1,
        iterations=1,
    )


@pytest.mark.benchmark(group="related-work")
def test_lockset_pass(benchmark):
    trace = trace_for(CASE, scale=SCALE)
    analyzer = benchmark.pedantic(
        lambda: _consume(LocksetAnalyzer(), trace), rounds=1, iterations=1
    )
    assert analyzer.warnings == []  # philo is fully lock-protected
