#!/usr/bin/env python
"""Standalone driver for the packed-vs-seed throughput benchmark.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/perf_harness.py                 # full run
    PYTHONPATH=src python benchmarks/perf_harness.py --scale 0.05 \\
        --repeats 1 --check -o BENCH_SMOKE.json                      # CI smoke

Equivalent to ``repro bench``; all the logic lives in
:mod:`repro.bench.perf` so the CLI and this script cannot drift. The
report schema is documented in ``docs/PERF.md``.
"""

import sys

from repro.bench.perf import main

if __name__ == "__main__":
    sys.exit(main())
