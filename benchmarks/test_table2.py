"""E2 — Table 2: naive atomicity specifications (every method atomic).

Violations surface within the first ~2% of each trace, transaction graphs
stay tiny, and the two algorithms run at parity — the regime where the
paper reports speed-ups of 0.75–4 and Velodrome often edges out
AeroDrome because vector-clock maintenance does not pay off.
"""

import pytest

from repro.core.checker import make_checker
from repro.sim.workloads.benchmarks import TABLE2

from benchmarks.conftest import trace_for


def _run(algorithm, trace):
    checker = make_checker(algorithm)
    return checker.run(trace)


@pytest.mark.parametrize("case", TABLE2, ids=lambda c: c.name)
@pytest.mark.benchmark(group="table2-aerodrome")
def test_aerodrome(benchmark, case):
    trace = trace_for(case.name)
    result = benchmark.pedantic(
        _run, args=("aerodrome", trace), rounds=3, iterations=1
    )
    assert result.serializable == (case.violation_at is None)


@pytest.mark.parametrize("case", TABLE2, ids=lambda c: c.name)
@pytest.mark.benchmark(group="table2-velodrome")
def test_velodrome(benchmark, case):
    trace = trace_for(case.name)
    result = benchmark.pedantic(
        _run, args=("velodrome", trace), rounds=3, iterations=1
    )
    assert result.serializable == (case.violation_at is None)
