"""E9 — operational-mode overheads: checkpoints, sharding,
report-and-continue.

Quantifies what the deployment-facing extensions cost relative to the
plain single-pass run:

* checkpoint overhead — same stream with a snapshot every N events;
* sharded simulation — Algorithm 1 through the shard-access accounting
  layer (the bookkeeping is the cost; the verdict is identical);
* violation streaming — report-and-continue over a trace with many
  violations vs. stop-at-first.
"""

import pytest

from repro.core.checker import make_checker
from repro.core.multi import find_all_violations
from repro.core.sharded import ShardedAeroDromeChecker
from repro.core.snapshot import snapshot

from benchmarks.conftest import trace_for

CASE, SCALE = "elevator", 0.5


def _plain_run(trace):
    return make_checker("aerodrome").run(trace)


def _checkpointed_run(trace, every):
    checker = make_checker("aerodrome")
    taken = 0
    for event in trace:
        if checker.events_processed and checker.events_processed % every == 0:
            snapshot(checker)
            taken += 1
        if checker.process(event) is not None:
            break
    return taken


@pytest.mark.benchmark(group="streaming-checkpoint")
def test_no_checkpoints(benchmark):
    trace = trace_for(CASE, scale=SCALE)
    result = benchmark.pedantic(_plain_run, args=(trace,), rounds=1, iterations=1)
    assert result.serializable


@pytest.mark.parametrize("every", [500, 2000])
@pytest.mark.benchmark(group="streaming-checkpoint")
def test_with_checkpoints(benchmark, every):
    trace = trace_for(CASE, scale=SCALE)
    taken = benchmark.pedantic(
        _checkpointed_run, args=(trace, every), rounds=1, iterations=1
    )
    assert taken > 0


@pytest.mark.parametrize("shards", [1, 4, 16])
@pytest.mark.benchmark(group="streaming-sharded")
def test_sharded_simulation(benchmark, shards):
    trace = trace_for(CASE, scale=SCALE)
    result = benchmark.pedantic(
        lambda: ShardedAeroDromeChecker(n_object_shards=shards).run(trace),
        rounds=1,
        iterations=1,
    )
    assert result.serializable


@pytest.mark.benchmark(group="streaming-violations")
def test_stop_at_first(benchmark):
    trace = trace_for("sunflow", scale=0.1)
    result = benchmark.pedantic(_plain_run, args=(trace,), rounds=1, iterations=1)
    assert not result.serializable


@pytest.mark.benchmark(group="streaming-violations")
def test_report_and_continue(benchmark):
    trace = trace_for("sunflow", scale=0.1)
    violations = benchmark.pedantic(
        lambda: find_all_violations(trace, dedupe=True),
        rounds=1,
        iterations=1,
    )
    assert violations
