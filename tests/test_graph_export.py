"""DOT export tests: structure, highlighting, escaping."""

from repro import Trace, begin, end, fork, join, read, write
from repro.analysis.graph_export import (
    CYCLE_COLOR,
    event_graph_dot,
    save_dot,
    transaction_graph_dot,
)


def test_transaction_graph_renders_nodes_and_edges(rho1):
    dot = transaction_graph_dot(rho1)
    assert dot.startswith('digraph "transactions" {')
    assert dot.rstrip().endswith("}")
    # Three named transactions, serial order T3 T1 T2 (edges forward).
    assert dot.count("label=") >= 3
    assert "->" in dot


def test_serializable_trace_has_no_highlight(rho1):
    assert CYCLE_COLOR not in transaction_graph_dot(rho1)


def test_witness_cycle_is_highlighted(rho2):
    dot = transaction_graph_dot(rho2)
    assert CYCLE_COLOR in dot
    assert "penwidth=2" in dot


def test_highlight_can_be_disabled(rho2):
    dot = transaction_graph_dot(rho2, highlight_witness=False)
    assert CYCLE_COLOR not in dot


def test_unary_transactions_hidden_by_default():
    trace = Trace(
        [
            write("t1", "x"),  # unary
            begin("t2"),
            read("t2", "x"),
            end("t2"),
        ]
    )
    without = transaction_graph_dot(trace)
    assert "(unary)" not in without
    with_unary = transaction_graph_dot(trace, include_unary=True)
    assert "(unary)" in with_unary
    # The unary -> T edge only exists when unary nodes are drawn.
    assert with_unary.count("->") > without.count("->")


def test_event_graph_clusters_threads(rho2):
    dot = event_graph_dot(rho2)
    assert "subgraph cluster_0" in dot
    assert "subgraph cluster_1" in dot
    assert '"t1"' in dot and '"t2"' in dot
    # Paper-style event labels: e1..e8.
    for i in range(1, 9):
        assert f"e{i}: " in dot


def test_event_graph_conflict_kinds(rho2):
    dot = event_graph_dot(rho2)
    assert '[label="wr"]' in dot  # write->read on x and y
    assert "style=dotted" in dot  # program order


def test_event_graph_without_program_order(rho2):
    dot = event_graph_dot(rho2, show_program_order=False)
    assert "style=dotted" not in dot
    assert '[label="wr"]' in dot


def test_event_graph_fork_join_edges():
    trace = Trace(
        [
            write("t1", "x"),
            fork("t1", "t2"),
            write("t2", "x"),
            join("t1", "t2"),
        ]
    )
    dot = event_graph_dot(trace)
    assert '[label="fork"]' in dot
    assert '[label="join"]' in dot
    assert '[label="ww"]' in dot


def test_quoting_of_awkward_names():
    trace = Trace([write('t"1', 'x\\y')])
    dot = event_graph_dot(trace)
    assert '\\"' in dot  # the quote survived, escaped
    assert "\\\\" in dot


def test_save_dot(tmp_path, rho1):
    path = tmp_path / "graph.dot"
    dot = transaction_graph_dot(rho1)
    save_dot(dot, path)
    assert path.read_text(encoding="utf-8") == dot
