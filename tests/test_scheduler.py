"""Scheduler tests: determinism and strategy behaviour."""

import pytest

from repro.sim.scheduler import (
    FixedScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)


class TestRoundRobin:
    def test_quantum_one_alternates(self):
        scheduler = RoundRobinScheduler(quantum=1)
        picks = [scheduler.pick(["a", "b"], i) for i in range(4)]
        assert picks == ["a", "b", "a", "b"]

    def test_quantum_two_runs_pairs(self):
        scheduler = RoundRobinScheduler(quantum=2)
        picks = [scheduler.pick(["a", "b"], i) for i in range(6)]
        assert picks == ["a", "a", "b", "b", "a", "a"]

    def test_skips_unrunnable(self):
        scheduler = RoundRobinScheduler(quantum=4)
        assert scheduler.pick(["a"], 0) == "a"
        assert scheduler.pick(["b"], 1) == "b"  # a no longer runnable

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(quantum=0)


class TestRandom:
    def test_deterministic_per_seed(self):
        picks1 = [RandomScheduler(seed=5).pick(["a", "b", "c"], i) for i in range(1)]
        scheduler1 = RandomScheduler(seed=5)
        scheduler2 = RandomScheduler(seed=5)
        runnable = ["a", "b", "c"]
        seq1 = [scheduler1.pick(runnable, i) for i in range(20)]
        seq2 = [scheduler2.pick(runnable, i) for i in range(20)]
        assert seq1 == seq2

    def test_different_seeds_differ(self):
        runnable = ["a", "b", "c", "d"]
        seq1 = [RandomScheduler(seed=1).pick(runnable, i) for i in range(10)]
        seq2 = [RandomScheduler(seed=2).pick(runnable, i) for i in range(10)]
        assert seq1 != seq2

    def test_full_stickiness_never_switches(self):
        scheduler = RandomScheduler(seed=0, stickiness=1.0)
        first = scheduler.pick(["a", "b"], 0)
        assert all(scheduler.pick(["a", "b"], i) == first for i in range(1, 10))

    def test_stickiness_bounds(self):
        with pytest.raises(ValueError):
            RandomScheduler(stickiness=1.5)


class TestFixed:
    def test_replays_script(self):
        scheduler = FixedScheduler(["a", "b", "a"])
        assert scheduler.pick(["a", "b"], 0) == "a"
        assert scheduler.pick(["a", "b"], 1) == "b"

    def test_rejects_unrunnable_choice(self):
        scheduler = FixedScheduler(["a"])
        with pytest.raises(ValueError, match="not runnable"):
            scheduler.pick(["b"], 0)

    def test_exhausted_script(self):
        scheduler = FixedScheduler([])
        with pytest.raises(IndexError):
            scheduler.pick(["a"], 0)
