"""The deterministic netsim harness and the cluster drill matrix.

The harness takes time and tick order away from the OS (a shared
:class:`SimClock`, ``manual_ticks``), so the seeded fault plan is the
only source of nondeterminism — same seed, same fault trace, on either
server backend. These tests pin that contract, the suspicion score's
silence and RTT terms, overload shedding, the lenient-restart
durability warning, and the gossip heal probe that un-sticks a
mutually-dead split.
"""

import time

import pytest

from repro.cluster import ClusterCoordinator
from repro.cluster.coordinator import SUSPICION_THRESHOLD
from repro.faults import CLUSTER_SCENARIOS, NetSim, SimClock, run_cluster_scenario
from repro.service import ServiceServer
from repro.service.backoff import Backoff
from repro.service.client import ServiceClient, ServiceError
from repro.service.client import submit_trace as node_submit
from repro.service.router import BusyError, Router
from repro.sim import trace_zoo

ANALYSES = ["aerodrome", "races", "lockset"]


def wait_until(predicate, timeout=15.0, interval=0.05, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {what}")


# -- SimClock ----------------------------------------------------------------


class TestSimClock:
    def test_advances_only_when_told(self):
        clock = SimClock()
        assert clock.time() == 0.0
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.time() == 2.0

    def test_time_never_goes_backward(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)


def test_netsim_needs_at_least_two_nodes():
    with pytest.raises(ValueError):
        NetSim(nodes=1)


# -- the suspicion score (silence + RTT terms) -------------------------------


class TestSuspicion:
    def _coordinator(self, tmp_path, clock):
        router = Router(shards=1)
        coord = ClusterCoordinator(
            "n1", "127.0.0.1", 7001, router,
            gossip_interval=0.05, suspect_after=2.0,
            manual_ticks=True, replica_spool=str(tmp_path),
        )
        coord.clock = clock.time
        return router, coord

    def test_pure_silence_crosses_exactly_at_suspect_after(self, tmp_path):
        """The silence term is normalized so a totally quiet peer is
        condemned exactly when the old fixed deadline would have fired
        — same failover timing, by construction."""
        clock = SimClock()
        router, coord = self._coordinator(tmp_path, clock)
        try:
            assert coord.suspicion("peer") == 0.0  # first sight, fresh
            clock.advance(1.99)
            assert coord.suspicion("peer") < SUSPICION_THRESHOLD
            clock.advance(0.01)
            assert coord.suspicion("peer") >= SUSPICION_THRESHOLD
        finally:
            router.shutdown()

    def test_gray_rtt_condemns_a_peer_that_keeps_answering(self, tmp_path):
        """Gray failure: every reply resets the silence term, yet the
        RTT term alone pushes the score over the threshold."""
        clock = SimClock()
        router, coord = self._coordinator(tmp_path, clock)
        try:
            for _ in range(10):
                with coord._lock:  # the peer just answered...
                    coord._last_seen["peer"] = clock.time()
                coord.note_rtt("peer", 1.0)  # ...a full second late
            assert coord.suspicion("peer") >= SUSPICION_THRESHOLD
        finally:
            router.shutdown()

    def test_healthy_rtt_earns_no_penalty(self, tmp_path):
        clock = SimClock()
        router, coord = self._coordinator(tmp_path, clock)
        try:
            for _ in range(10):
                with coord._lock:
                    coord._last_seen["peer"] = clock.time()
                coord.note_rtt("peer", 0.001)
            assert coord.suspicion("peer") < 1.0
        finally:
            router.shutdown()

    def test_first_sample_seeds_the_estimator(self, tmp_path):
        clock = SimClock()
        router, coord = self._coordinator(tmp_path, clock)
        try:
            coord.note_rtt("peer", 0.8)
            assert coord._rtt_ewma["peer"] == pytest.approx(0.8)
            assert coord._rtt_var["peer"] == pytest.approx(0.4)
        finally:
            router.shutdown()


# -- overload shedding -------------------------------------------------------


class TestShedding:
    def test_quota_must_be_positive(self):
        with pytest.raises(ValueError):
            Router(shards=1, tenant_quota=0)

    def test_over_quota_feed_is_shed_with_a_pacing_hint(self):
        router = Router(shards=1, tenant_quota=1)
        try:
            router.open_session([("races", {})], session_id="tenant-1")
            with router._inflight_lock:
                router._inflight["tenant-1"] = 1  # a backed-up tenant
            with pytest.raises(BusyError) as excinfo:
                router.feed("tenant-1", [])
            assert excinfo.value.shed is True
            assert excinfo.value.retry_ms >= 25
            assert router.shed_total == 1
            # Another tenant on the same shard is untouched.
            router.open_session([("races", {})], session_id="tenant-2")
            events = list(trace_zoo.get("paper-rho1").trace())[:4]
            assert router.feed("tenant-2", events) == len(events)
        finally:
            with router._inflight_lock:
                router._inflight.pop("tenant-1", None)
            router.shutdown()

    def test_quota_slots_release_after_processing(self):
        router = Router(shards=1, tenant_quota=2)
        try:
            router.open_session([("races", {})], session_id="tenant-1")
            events = list(trace_zoo.get("paper-rho1").trace())[:4]
            router.feed("tenant-1", events)
            wait_until(
                lambda: not router._inflight,
                what="the processed batch to release its quota slot",
            )
            assert router.shed_total == 0
        finally:
            router.shutdown()

    def test_paced_backoff_honors_the_server_hint(self):
        backoff = Backoff(initial=0.01, seed=1)
        delay = backoff.paced(400)
        assert 0.2 <= delay <= 0.4  # the hint jittered over (hint/2, hint]
        assert backoff.delay > 0.01  # and the schedule still advanced

    def test_paced_without_hint_is_the_plain_schedule(self):
        a = Backoff(initial=0.05, seed=9)
        b = Backoff(initial=0.05, seed=9)
        assert a.paced(None) == b.next()

    def test_schedule_wins_over_a_smaller_hint(self):
        a = Backoff(initial=10.0, cap=10.0, seed=3)
        b = Backoff(initial=10.0, cap=10.0, seed=3)
        assert a.paced(1) == b.next()


# -- lenient restart-from-zero ----------------------------------------------


class TestLenientRestart:
    @pytest.fixture
    def server(self, tmp_path):
        server = ServiceServer(
            shards=1, backend="thread", spool=str(tmp_path / "spool"),
        ).start()
        yield server
        server.stop()

    def test_strict_resume_of_unknown_session_fails(self, server):
        events = list(trace_zoo.get("paper-rho1").trace())
        with pytest.raises(ServiceError):
            node_submit(
                server.host, server.port, events, ANALYSES,
                session_id="ghost-strict", resume=True, attempts=1,
            )

    def test_lenient_resume_restarts_and_is_counted(self, server):
        """No recoverable checkpoint: the session restarts from zero,
        the reply says so, and the stats counter records it."""
        spec = trace_zoo.get("paper-rho1")
        with ServiceClient(server.host, server.port) as client:
            handle = client.open_session(
                ANALYSES, session_id="ghost-1", resume=True, lenient=True,
            )
            assert handle.restarted is True
            assert handle.position == 0
            handle.send(list(spec.trace()))
            doc = handle.result()
        assert doc["verdict"] in ("pass", "fail", "undecided")
        with ServiceClient(server.host, server.port) as client:
            assert client.stats()["lenient_restarts"] >= 1

    def test_submit_trace_surfaces_restarted_from_zero(self, server):
        events = list(trace_zoo.get("paper-rho1").trace())
        doc = node_submit(
            server.host, server.port, events, ANALYSES,
            session_id="ghost-2", resume=True, lenient=True,
        )
        assert doc["service"]["restarted_from_zero"] is True

    def test_cli_submit_exits_5_on_restart_from_zero(
        self, server, tmp_path, capsys
    ):
        """The durability loss is never silent: warning on stderr and a
        distinct exit code."""
        from repro.cli import main

        spec = trace_zoo.get("paper-rho1")
        trace_path = tmp_path / "ghost.std"
        trace_path.write_text(
            "\n".join(str(event) for event in spec.trace()) + "\n"
        )
        code = main([
            "submit", str(trace_path),
            "--host", server.host, "--port", str(server.port),
            "--analysis", "races",
            "--session-id", "ghost-3", "--resume", "--lenient",
        ])
        captured = capsys.readouterr()
        assert code == 5
        assert "restarted from zero" in captured.err


# -- the gossip heal probe ---------------------------------------------------


def test_heal_probe_unsticks_a_mutually_dead_split(tmp_path):
    """After a full partition both sides hold the other dead — and
    gossip only contacts live peers, so without the rotating dead-peer
    probe the split would be *permanent*. The probe carries the doc
    across the healed link; the probed node re-asserts and both views
    converge."""
    first = ServiceServer(
        shards=1, backend="thread", spool=str(tmp_path / "a"),
        cluster=True, node_id="a",
        gossip_interval=0.05, suspect_after=60.0,
    )
    first.cluster.manual_ticks = True
    first.start()
    second = None
    try:
        second = ServiceServer(
            shards=1, backend="thread", spool=str(tmp_path / "b"),
            cluster=True, node_id="b", join=[first.address],
            gossip_interval=0.05, suspect_after=60.0,
        )
        second.cluster.manual_ticks = True
        second.start()
        # The JOIN reply told "b" about "a"; one tick tells "a" back.
        second.cluster.tick()
        assert first.cluster.membership.get("b") is not None
        # Simulate the partition's verdicts: each side buried the other.
        for server, peer in ((first, "b"), (second, "a")):
            with server.cluster._lock:
                server.cluster.membership.mark_dead(peer)
                server.cluster._rebuild_ring_locked()
        assert first.cluster.membership.alive_ids() == ["a"]
        assert second.cluster.membership.alive_ids() == ["b"]

        def converged():
            return (
                first.cluster.membership.alive_ids() == ["a", "b"]
                and second.cluster.membership.alive_ids() == ["a", "b"]
                and first.cluster.epoch == second.cluster.epoch
            )

        for _ in range(40):
            first.cluster.tick()
            second.cluster.tick()
            if converged():
                break
        assert converged(), "the heal probe never crossed the split"
    finally:
        if second is not None:
            second.stop()
        first.stop()


# -- the harness and the drill matrix ----------------------------------------


def test_netsim_boots_and_converges():
    with NetSim(nodes=3, suspect_after=2.0) as sim:
        assert sim.converge() >= 0
        assert len(sim.addresses()) == 3
        assert sim.peer_view("n1", "n2") == "alive"
        assert sim.peer_view("n3", "n1") == "alive"
        sim.run_rounds(3)
        assert sim.violations == []
        assert sim.tick_errors == []


@pytest.mark.parametrize("name", sorted(CLUSTER_SCENARIOS))
def test_cluster_scenario_recovers(name):
    result = run_cluster_scenario(name)
    assert result.ok, [c for c in result.checks if not c["ok"]]
    assert result.outcome == "recovered"


def test_same_seed_replays_the_same_fault_trace():
    first = run_cluster_scenario("partition-one-way", seed=1234)
    second = run_cluster_scenario("partition-one-way", seed=1234)
    assert first.ok and second.ok
    assert first.injected == second.injected


def test_different_seeds_draw_different_gossip_weather():
    """Probabilistic rules are where the seed matters: the same rule
    set over the same keys fires differently under a different seed."""
    from repro.faults.plan import FaultPlan

    def weather(seed):
        plan = FaultPlan(seed=seed)
        plan.add("cluster.gossip", op="delay", times=None, prob=0.25)
        fired = []
        for i in range(200):
            action = plan.fire("cluster.gossip", key=f"n1->n{i % 3}")
            fired.append(action is not None)
        return fired

    assert weather(1234) == weather(1234)
    assert weather(1234) != weather(4321)


def test_backends_agree_on_the_fault_trace():
    """The fault sites live below the front end: the same seed carves
    the same schedule whether the servers run threads or an event loop."""
    threads = run_cluster_scenario("partition-two-way", seed=99)
    evented = run_cluster_scenario("partition-two-way", seed=99,
                                   backend="async")
    assert threads.ok and evented.ok
    assert threads.injected == evented.injected
