"""Violation-explanation tests: extracted witnesses must be genuine."""

from hypothesis import given, settings, strategies as st

from repro import check_trace, explain
from repro.analysis.chb import compute_chb
from repro.sim.random_traces import RandomTraceConfig, random_trace


class TestUnitCases:
    def test_serializable_yields_none(self, rho1):
        assert explain(rho1) is None

    def test_rho2_witness(self, rho2):
        explanation = explain(rho2)
        assert explanation is not None
        assert explanation.prefix_length == 6
        assert len(explanation.cycle) == 2
        assert len(explanation.edges) == 2
        rendering = explanation.render()
        assert "≤CHB" in rendering
        assert "witness cycle" in rendering

    def test_rho4_witness_edges_are_real(self, rho4):
        explanation = explain(rho4)
        assert explanation is not None
        chb = compute_chb(rho4)
        for edge in explanation.edges:
            assert edge.src_event.idx < edge.dst_event.idx
            assert chb.ordered(edge.src_event.idx, edge.dst_event.idx)
            assert edge.src_event.idx in edge.src.event_indices
            assert edge.dst_event.idx in edge.dst.event_indices

    def test_prefix_matches_checker_stop_point(self, rho2):
        explanation = explain(rho2)
        result = check_trace(rho2, "aerodrome-basic")
        # The oracle's shortest violating prefix is where the streaming
        # checker stops (or earlier, for end-event detections).
        assert explanation.prefix_length <= result.events_processed + 1


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_explanations_are_consistent(seed):
    trace = random_trace(
        seed, RandomTraceConfig(n_threads=3, n_vars=2, n_locks=1, length=30)
    )
    explanation = explain(trace)
    verdict = check_trace(trace)
    assert (explanation is None) == verdict.serializable
    if explanation is not None:
        assert len(explanation.edges) == len(explanation.cycle)
        # Distinct transactions around the cycle.
        tids = [txn.tid for txn in explanation.cycle]
        assert len(set(tids)) == len(tids)
