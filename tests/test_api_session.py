"""Session API tests: co-run agreement, registry discovery, JSON schema.

The acceptance bar for the session engine: every analysis co-run in one
pass must yield verdicts and payloads identical to its standalone run,
on both the string and packed paths.
"""

import json

import pytest

from repro import Session, run
from repro.api import (
    CheckerAnalysis,
    Report,
    SCHEMA,
    available_analyses,
    check,
    create_analysis,
    make_checker,
    register_analysis,
    unregister_analysis,
    validate_report,
)
from repro.api.analysis import Analysis
from repro.analysis.causal import check_causal_atomicity
from repro.analysis.lockset import lockset_analysis
from repro.analysis.profile import profile_trace
from repro.analysis.races import find_races
from repro.analysis.view_serializability import serializing_order
from repro.core.multi import find_all_violations
from repro.sim import trace_zoo
from repro.trace.packed import pack

#: The ≥6 analyses the acceptance criteria name, co-run in one sweep.
CO_RUN_CHECKERS = ("aerodrome", "aerodrome-basic", "velodrome")
CO_RUN_ANALYSES = CO_RUN_CHECKERS + ("races", "lockset", "profile")

SPECIMENS = (
    "paper-rho1",
    "paper-rho2",
    "paper-rho4",
    "lock-cycle",
    "fork-join-handoff",
    "three-party-cycle",
    "unlocked-counter",
)


def _zoo(name):
    return trace_zoo.get(name).trace()


@pytest.mark.parametrize("specimen", SPECIMENS)
@pytest.mark.parametrize("packed", [False, True], ids=["string", "packed"])
class TestCoRunAgreement:
    """One ingest, six analyses — identical to each standalone run."""

    def _session(self, specimen, packed):
        trace = _zoo(specimen)
        events = pack(trace) if packed else trace
        return trace, run(events, list(CO_RUN_ANALYSES))

    def test_checkers_match_standalone(self, specimen, packed):
        trace, result = self._session(specimen, packed)
        for algorithm in CO_RUN_CHECKERS:
            solo = make_checker(algorithm)
            if packed:
                expected = solo.run_packed(pack(trace))
            else:
                expected = solo.run(trace)
            assert result[algorithm].native == expected
            assert result[algorithm].events_processed == expected.events_processed

    def test_races_match_standalone(self, specimen, packed):
        trace, result = self._session(specimen, packed)
        assert result["races"].native == find_races(trace)

    def test_lockset_matches_standalone(self, specimen, packed):
        trace, result = self._session(specimen, packed)
        expected = lockset_analysis(trace)
        assert result["lockset"].native.warnings == expected.warnings
        assert result["lockset"].native.final_states == expected.final_states

    def test_profile_matches_standalone(self, specimen, packed):
        trace, result = self._session(specimen, packed)
        assert result["profile"].native == profile_trace(trace)

    def test_string_and_packed_reports_agree(self, specimen, packed):
        trace, result = self._session(specimen, packed)
        other = run(trace if packed else pack(trace), list(CO_RUN_ANALYSES))
        for name in CO_RUN_ANALYSES:
            assert result[name].verdict == other[name].verdict
            assert result[name].violations == other[name].violations


@pytest.mark.parametrize("packed", [False, True], ids=["string", "packed"])
class TestOfflineAnalyses:
    def test_causal_and_viewserial_and_explain(self, rho2, packed):
        events = pack(rho2) if packed else rho2
        result = run(events, ["causal", "viewserial", "explain"])
        causal = check_causal_atomicity(rho2)
        assert result["causal"].native.all_atomic == causal.all_atomic
        assert [t.tid for t in result["causal"].native.violating] == [
            t.tid for t in causal.violating
        ]
        assert result["viewserial"].native == serializing_order(rho2)
        assert result["explain"].native is not None
        assert not result["explain"].ok

    def test_clean_trace_explain_passes(self, rho1, packed):
        events = pack(rho1) if packed else rho1
        result = run(events, ["explain", "viewserial"])
        assert result["explain"].ok
        assert result["viewserial"].ok
        assert result.ok


class TestRunModes:
    def test_report_all_matches_find_all_violations(self, rho2):
        analysis = CheckerAnalysis("aerodrome", mode="report_all")
        result = run(rho2, [analysis])
        assert [v.event_idx for v in result["aerodrome"].native] == [
            v.event_idx for v in find_all_violations(rho2)
        ]

    def test_report_all_limit_finishes_early(self, rho2):
        analysis = CheckerAnalysis("aerodrome", mode="report_all", limit=1)
        result = run(rho2, [analysis])
        assert len(result["aerodrome"].native) == 1
        assert result.events_swept < len(rho2)

    def test_stop_first_stops_sweep(self, rho2):
        result = run(rho2, ["aerodrome"])
        assert result.events_swept == 6  # violation at event index 5

    def test_sample_mode_full_rate_equals_stop_first(self, rho2):
        sampled = CheckerAnalysis("aerodrome", mode="sample", sample_every=1)
        result = run(rho2, [sampled])
        expected = check(rho2)
        assert result["aerodrome"].native.violation == expected.violation
        assert result["aerodrome"].payload["sample_every"] == 1

    def test_sample_mode_skips_accesses(self, rho2):
        sampled = CheckerAnalysis("aerodrome", mode="sample", sample_every=1000)
        result = run(pack(rho2), [sampled])
        # With every access but the first sampled out, the cycle is
        # invisible: screening mode trades soundness for speed.
        assert result["aerodrome"].native.serializable

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            CheckerAnalysis("aerodrome", mode="everything")


class TestSessionPlumbing:
    def test_session_is_single_use(self, rho1):
        session = Session(rho1, ["aerodrome"])
        session.run()
        with pytest.raises(RuntimeError, match="single-use"):
            session.run()

    def test_needs_at_least_one_analysis(self, rho1):
        with pytest.raises(ValueError, match="at least one analysis"):
            Session(rho1, [])

    def test_accepts_bare_iterators(self, rho2):
        result = run(iter(rho2), ["aerodrome", "races"])
        assert not result.ok
        assert result.events is None

    def test_duplicate_analysis_names_keyed_separately(self, rho2):
        result = run(
            rho2,
            [CheckerAnalysis("aerodrome"),
             CheckerAnalysis("aerodrome", mode="report_all")],
        )
        assert set(result.reports) == {"aerodrome", "aerodrome#2"}

    def test_api_check_matches_checker_run(self, rho2, rho1):
        for trace in (rho1, rho2):
            assert check(trace) == make_checker("aerodrome").run(trace)

    def test_api_check_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            check([], algorithm="quantumdrome")


class TestRegistry:
    def test_checkers_and_analyses_discoverable(self):
        names = available_analyses()
        assert {"aerodrome", "velodrome", "doublechecker"} <= set(names)
        assert {"races", "lockset", "profile", "viewserial", "causal",
                "explain"} <= set(names)

    def test_unknown_analysis(self):
        with pytest.raises(ValueError, match="unknown analysis"):
            create_analysis("quantum-races")

    def test_checker_names_reserved(self):
        with pytest.raises(ValueError, match="checker algorithm name"):
            register_analysis("aerodrome", lambda: None)

    def test_plugin_registration_round_trip(self, rho2):
        class CountingAnalysis(Analysis):
            name = "event-count"
            kind = "plugin"

            def __init__(self):
                super().__init__()
                self.count = 0

            def step(self, event):
                self.count += 1

            def finish(self):
                return Report(
                    analysis=self.name, kind=self.kind, mode="stream",
                    verdict=True, payload={"events": self.count},
                    events_processed=self.count,
                    summary=f"{self.count} events", native=self.count,
                )

        register_analysis("event-count", CountingAnalysis, kind="plugin")
        try:
            assert "event-count" in available_analyses()
            result = run(rho2, ["event-count", "aerodrome"])
            assert result["event-count"].native == len(rho2)
        finally:
            unregister_analysis("event-count")
        assert "event-count" not in available_analyses()


class TestJsonSchema:
    def test_round_trip_validates(self, rho2):
        result = run(pack(rho2), list(CO_RUN_ANALYSES), path="rho2.std")
        document = json.loads(json.dumps(result.to_json()))
        validate_report(document)  # must not raise
        assert document["schema"] == SCHEMA
        assert document["trace"]["path"] == "rho2.std"
        assert document["verdict"] == "fail"
        assert [a["analysis"] for a in document["analyses"]] == list(
            CO_RUN_ANALYSES
        )
        for entry in document["analyses"]:
            assert entry["verdict"] in {"pass", "fail", "undecided"}

    def test_undecided_analysis_is_not_a_session_fail(self):
        from repro import Trace, begin, end, write

        events = []
        for i in range(12):  # > MAX_TRANSACTIONS: viewserial undecided
            events += [begin("t1"), write("t1", f"x{i}"), end("t1")]
        trace = Trace(events, name="many-txns")
        result = run(trace, ["aerodrome", "viewserial"])
        assert result["aerodrome"].verdict is True
        assert result["viewserial"].verdict is None
        assert result.verdict_label == "undecided"
        assert not result.ok
        assert result.to_json()["verdict"] == "undecided"

    def test_fail_outranks_undecided(self):
        from repro import Trace, begin, end, read, write

        events = [
            begin("t1"), begin("t2"),
            write("t1", "x"), read("t2", "x"),
            write("t2", "y"), read("t1", "y"),
            end("t2"), end("t1"),
        ]
        for i in range(12):  # push viewserial over its bound
            events += [begin("t3"), write("t3", f"z{i}"), end("t3")]
        trace = Trace(events, name="fail-and-undecided")
        result = run(trace, ["aerodrome", "viewserial"])
        assert result["aerodrome"].verdict is False
        assert result["viewserial"].verdict is None
        assert result.verdict_label == "fail"

    def test_malformed_documents_rejected(self, rho1):
        good = run(rho1, ["aerodrome"]).to_json()
        for mutate in (
            lambda d: d.pop("schema"),
            lambda d: d.update(schema="repro-report/0"),
            lambda d: d.update(verdict="maybe"),
            lambda d: d.update(analyses="nope"),
            lambda d: d["analyses"][0].pop("payload"),
            lambda d: d["analyses"][0].update(verdict="meh"),
        ):
            document = json.loads(json.dumps(good))
            mutate(document)
            with pytest.raises(ValueError, match="repro-report/1"):
                validate_report(document)


class TestDeprecatedFacades:
    def test_check_trace_warns_and_delegates(self, rho2):
        from repro import check_trace

        with pytest.warns(DeprecationWarning, match="repro.api.check"):
            result = check_trace(rho2)
        assert result == check(rho2)

    def test_make_checker_warns(self):
        from repro import make_checker as old_make_checker

        with pytest.warns(DeprecationWarning):
            checker = old_make_checker("velodrome")
        assert checker.algorithm == "velodrome"

    def test_available_algorithms_warns(self):
        from repro import available_algorithms

        with pytest.warns(DeprecationWarning):
            names = available_algorithms()
        assert names == sorted(names)
