"""Serial-witness tests: existence iff serializable, and the witness is
a serial, conflict-equivalent permutation."""

from hypothesis import given, settings, strategies as st

from repro import Trace, begin, conflict_serializable, end, read, write
from repro.analysis.serial_witness import (
    is_serial,
    serial_order,
    serial_witness,
    verify_equivalence,
)
from repro.sim.random_traces import RandomTraceConfig, random_trace
from repro.sim.trace_zoo import all_specimens


def test_rho1_witness_matches_example_1(rho1):
    """Example 1 names the serial order T3 T1 T2; our deterministic
    topological sort must produce an equivalent serial trace."""
    witness = serial_witness(rho1)
    assert witness is not None
    assert is_serial(witness)
    assert verify_equivalence(rho1, witness)
    # The paper's ρ_serial: T3's events come before T1's continuation.
    threads_in_order = []
    for event in witness:
        if not threads_in_order or threads_in_order[-1] != event.thread:
            threads_in_order.append(event.thread)
    # Serial means each thread's transaction appears as one block; T2
    # must come after T1 (T1 ⋖ T2) and T3 before T1's r(z) (T3 ⋖ T1).
    assert threads_in_order.index("t3") < threads_in_order.index("t2")


def test_violating_traces_have_no_witness(rho2, rho3, rho4):
    for trace in (rho2, rho3, rho4):
        assert serial_order(trace) is None
        assert serial_witness(trace) is None


def test_already_serial_trace_is_its_own_shape():
    trace = Trace(
        [
            begin("t1"), write("t1", "x"), end("t1"),
            begin("t2"), read("t2", "x"), end("t2"),
        ]
    )
    assert is_serial(trace)
    witness = serial_witness(trace)
    assert witness is not None
    assert [e.thread for e in witness] == [e.thread for e in trace]


def test_is_serial_detects_interruption(rho2):
    assert not is_serial(rho2)


def test_is_serial_detects_reentry():
    # t1's transaction is split around t2's — even with no conflicts,
    # that is not serial.
    trace = Trace(
        [
            begin("t1"), write("t1", "x"),
            begin("t2"), write("t2", "y"), end("t2"),
            write("t1", "x"), end("t1"),
        ]
    )
    assert not is_serial(trace)


def test_verify_equivalence_rejects_conflict_inversion():
    original = Trace([write("t1", "x"), write("t2", "x")])
    swapped = Trace([write("t2", "x"), write("t1", "x")])
    assert not verify_equivalence(original, swapped)


def test_verify_equivalence_accepts_commuting_swap():
    original = Trace([write("t1", "x"), write("t2", "y")])
    swapped = Trace([write("t2", "y"), write("t1", "x")])
    assert verify_equivalence(original, swapped)


def test_verify_equivalence_rejects_wrong_events():
    original = Trace([write("t1", "x")])
    other = Trace([read("t1", "x")])
    assert not verify_equivalence(original, other)
    assert not verify_equivalence(original, Trace([]))


def test_zoo_specimens():
    for specimen in all_specimens():
        trace = specimen.trace()
        witness = serial_witness(trace)
        if specimen.conflict_serializable:
            assert witness is not None, specimen.name
            assert is_serial(witness), specimen.name
            assert verify_equivalence(trace, witness), specimen.name
        else:
            assert witness is None, specimen.name


@settings(max_examples=120, deadline=None)
@given(seed=st.integers(0, 10**9))
def test_witness_iff_serializable_on_random_traces(seed):
    trace = random_trace(
        seed,
        RandomTraceConfig(n_threads=3, n_vars=3, n_locks=1, length=30,
                          p_begin=0.25, p_end=0.2),
    )
    witness = serial_witness(trace)
    if conflict_serializable(trace):
        assert witness is not None
        assert is_serial(witness)
        assert verify_equivalence(trace, witness)
    else:
        assert witness is None
