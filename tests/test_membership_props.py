"""Property-based laws of the membership gossip merge.

``Membership.merge`` is the cluster's only conflict resolver, so it
must behave like a CRDT join: commutative, associative, idempotent, and
monotone in the epoch. Gossip delivers documents in arbitrary orders,
duplicated and re-grouped — any order-sensitivity here would let two
nodes converge to *different* views of the same history.

One modeling note: a node's address is a function of its identity
(a node id never changes host:port while keeping its id), so the
generators derive host/port from the node id. Without that real-world
invariant an equal-epoch merge of two conflicting *alive* records for
the same id would be order-dependent by construction.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster import (
    ALIVE,
    DEAD,
    ClusterCoordinator,
    Membership,
    NodeInfo,
    parse_membership,
)
from repro.service.router import Router

NODE_IDS = ["a", "b", "c", "d", "e"]


def _node(node_id, status):
    return NodeInfo(node_id, f"host-{node_id}", 7000 + ord(node_id), status)


def _doc(statuses, epoch):
    return {
        "epoch": epoch,
        "nodes": [
            _node(node_id, status).to_json()
            for node_id, status in sorted(statuses.items())
        ],
    }


docs = st.builds(
    _doc,
    st.dictionaries(
        st.sampled_from(NODE_IDS),
        st.sampled_from([ALIVE, DEAD]),
        max_size=len(NODE_IDS),
    ),
    st.integers(min_value=0, max_value=4),
)


def _view(doc):
    """A Membership holding exactly ``doc`` (no epoch bump on load)."""
    member = Membership()
    member.epoch, nodes = parse_membership(doc)
    member.nodes = dict(nodes)
    return member


def _merged(a, b):
    """The binary merge as a pure function on documents."""
    member = _view(a)
    member.merge(b)
    return member.to_json()


@settings(max_examples=200, deadline=None)
@given(docs, docs)
def test_merge_is_commutative(a, b):
    assert _merged(a, b) == _merged(b, a)


@settings(max_examples=200, deadline=None)
@given(docs, docs, docs)
def test_merge_is_associative(a, b, c):
    assert _merged(_merged(a, b), c) == _merged(a, _merged(b, c))


@settings(max_examples=200, deadline=None)
@given(docs)
def test_merge_is_idempotent(a):
    assert _merged(a, a) == _view(a).to_json()


@settings(max_examples=200, deadline=None)
@given(docs, docs)
def test_merge_never_lowers_the_epoch(a, b):
    assert _merged(a, b)["epoch"] == max(a["epoch"], b["epoch"])


@settings(max_examples=200, deadline=None)
@given(docs, docs)
def test_merge_reports_change_correctly(a, b):
    """``merge`` returns True iff the view actually changed."""
    member = _view(a)
    before = member.to_json()
    changed = member.merge(b)
    assert changed == (member.to_json() != before)


@settings(max_examples=200, deadline=None)
@given(docs)
def test_death_absorbs_within_an_epoch(a):
    """Marking every node dead at the same epoch always wins the
    equal-epoch union — death is absorbing within an epoch."""
    obituary = {
        "epoch": a["epoch"],
        "nodes": [dict(entry, status=DEAD) for entry in a["nodes"]],
    }
    merged = _merged(a, obituary)
    assert all(entry["status"] == DEAD for entry in merged["nodes"])


@settings(max_examples=200, deadline=None)
@given(docs, st.sampled_from(NODE_IDS))
def test_self_resurrection_beats_its_own_obituary(a, me):
    """A node that finds itself marked dead re-asserts with an epoch
    bump — and the bumped document is immune to the old obituary."""
    statuses = {
        entry["node"]: entry["status"] for entry in a["nodes"]
    }
    statuses[me] = DEAD
    obituary = _doc(statuses, a["epoch"])
    member = _view(obituary)
    member.add(_node(me, ALIVE))
    assert member.epoch == obituary["epoch"] + 1
    assert member.get(me).alive
    # The stale obituary can no longer kill the revived node.
    assert member.merge(obituary) is False
    assert member.get(me).alive


def test_coordinator_reasserts_itself_after_a_hostile_merge(tmp_path):
    """The full path: a coordinator merging a view that declares it
    dead must come out alive, at a higher epoch, and back on the ring."""
    router = Router(shards=1)
    try:
        coord = ClusterCoordinator(
            "a", "127.0.0.1", 7001, router,
            manual_ticks=True, replica_spool=str(tmp_path),
        )
        hostile = {
            "epoch": coord.epoch + 5,
            "nodes": [
                NodeInfo("a", "127.0.0.1", 7001, DEAD).to_json(),
                NodeInfo("b", "127.0.0.1", 7002, ALIVE).to_json(),
            ],
        }
        with coord._lock:
            coord._merge_locked(hostile)
        assert coord.epoch == hostile["epoch"] + 1  # the re-assert bump
        assert coord.membership.get("a").alive
        assert "a" in coord.membership.alive_ids()
        assert "a" in coord.ring.nodes
    finally:
        router.shutdown()
