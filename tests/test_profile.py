"""Trace-profile tests (analysis.profile)."""

from repro import Trace, acquire, begin, end, read, release, write
from repro.analysis.profile import (
    AccessProfile,
    format_profile,
    profile_trace,
)
from repro.sim.trace_zoo import get as zoo_get
from repro.trace.events import Op


def test_empty_trace():
    profile = profile_trace(Trace([]))
    assert profile.events == 0
    assert profile.transactions == 0
    assert profile.cross_thread_conflicts == 0
    assert profile.first_cross_conflict_idx is None
    assert profile.variables == []


def test_op_counts_and_threads(rho2):
    profile = profile_trace(rho2)
    assert profile.events == 8
    assert profile.op_counts[Op.WRITE] == 2
    assert profile.op_counts[Op.READ] == 2
    assert profile.op_counts[Op.BEGIN] == 2
    assert profile.threads == ["t1", "t2"]


def test_variable_profiles(rho2):
    profile = profile_trace(rho2)
    by_name = {v.name: v for v in profile.variables}
    assert by_name["x"].reads == 1 and by_name["x"].writes == 1
    assert by_name["x"].is_shared
    assert set(by_name["x"].threads) == {"t1", "t2"}
    assert profile.shared_variables == profile.variables


def test_local_variable_not_shared():
    trace = Trace([write("t1", "x"), read("t1", "x")])
    profile = profile_trace(trace)
    assert not profile.variables[0].is_shared


def test_hot_variables_sorted_first():
    trace = Trace(
        [write("t1", "cold")]
        + [read("t1", "hot") for _ in range(5)]
        + [write("t2", "hot")]
    )
    profile = profile_trace(trace)
    assert profile.variables[0].name == "hot"
    assert profile.variables[0].total == 6


def test_lock_profiles():
    trace = Trace(
        [
            acquire("t1", "l"), release("t1", "l"),
            acquire("t2", "l"), release("t2", "l"),
        ]
    )
    profile = profile_trace(trace)
    assert len(profile.locks) == 1
    lock = profile.locks[0]
    assert lock.reads == 2  # acquires
    assert lock.writes == 2  # releases
    assert lock.is_shared
    # The rel(t1) -> acq(t2) hand-off is one cross-thread conflict.
    assert profile.cross_thread_conflicts == 1
    assert profile.first_cross_conflict_idx == 2


def test_cross_conflict_counting(rho2):
    profile = profile_trace(rho2)
    # w(t1,x) -> r(t2,x) and w(t2,y) -> r(t1,y): two crossings; the
    # first at event index 3.
    assert profile.cross_thread_conflicts == 2
    assert profile.first_cross_conflict_idx == 3


def test_write_after_reads_counts_each_foreign_reader():
    trace = Trace(
        [
            read("t1", "x"),
            read("t2", "x"),
            write("t3", "x"),  # conflicts with both foreign readers
        ]
    )
    profile = profile_trace(trace)
    assert profile.cross_thread_conflicts == 2


def test_transaction_counts_and_histogram():
    trace = zoo_get("locked-counter").trace()
    profile = profile_trace(trace)
    assert profile.transactions == 4
    assert profile.unary_transactions == 0
    # Each block has 6 events -> bucket [4-7].
    assert profile.txn_length_histogram == {4: 4}


def test_unary_transactions_counted():
    trace = Trace([write("t1", "x"), read("t2", "x")])
    profile = profile_trace(trace)
    assert profile.transactions == 0
    assert profile.unary_transactions == 2


def test_access_profile_total():
    profile = AccessProfile(name="x", reads=3, writes=2, threads=("t1",))
    assert profile.total == 5


def test_format_profile_mentions_key_lines(rho2):
    report = format_profile(profile_trace(rho2))
    assert "events            : 8" in report
    assert "transactions      : 2" in report
    assert "first cross confl : event 3/8" in report
    assert "hot variables" in report


def test_format_profile_no_conflicts():
    report = format_profile(profile_trace(Trace([write("t1", "x")])))
    assert "first cross confl : none" in report
