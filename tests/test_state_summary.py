"""State-summary and growth-measurement tests: the Theorem 4 space
story, asserted rather than narrated."""

import pytest

from repro import make_checker
from repro.bench.memory import (
    GrowthPoint,
    format_growth,
    growth_ratio,
    sample_state_growth,
)
from repro.sim.runtime import execute
from repro.sim.scheduler import RoundRobinScheduler
from repro.sim.workloads.benchmarks import CASES_BY_NAME
from repro.sim.workloads.patterns import locked_counter


@pytest.fixture(scope="module")
def long_fixed_universe_trace():
    # The regime Theorem 4's space bound speaks to: a long-running
    # program over a *fixed* set of objects (one counter, one lock,
    # four threads) — trace length grows, the object universe does not.
    program = locked_counter(n_threads=4, increments=150)
    return execute(program, RoundRobinScheduler(quantum=3))


class TestStateSummary:
    def test_base_summary_has_position(self, rho1):
        checker = make_checker("doublechecker")
        checker.run(rho1)
        assert checker.state_summary()["events_processed"] == len(rho1)

    def test_aerodrome_basic_counts_per_thread_read_clocks(self, rho1):
        checker = make_checker("aerodrome-basic")
        checker.run(rho1)
        summary = checker.state_summary()
        assert summary["thread_clocks"] == 6  # 3 threads × (C_t, C⊲_t)
        assert summary["write_clocks"] == 2  # x and z
        assert summary["total_clocks"] == (
            summary["thread_clocks"]
            + summary["lock_clocks"]
            + summary["write_clocks"]
            + summary["read_clocks"]
        )

    def test_optimized_uses_constant_clocks_per_variable(self, rho1):
        checker = make_checker("aerodrome")
        checker.run(rho1)
        summary = checker.state_summary()
        assert summary["read_clocks"] == 2 * summary["write_clocks"]

    def test_velodrome_reports_graph_size(self, rho1):
        checker = make_checker("velodrome-nogc")
        checker.run(rho1)
        summary = checker.state_summary()
        assert summary["live_nodes"] == 3
        assert summary["peak_nodes"] >= summary["live_nodes"]
        assert summary["edges_added"] >= summary["live_edges"]


class TestGrowthSampling:
    def test_rejects_zero_samples(self, rho1):
        with pytest.raises(ValueError, match="at least one"):
            sample_state_growth(rho1, samples=0)

    def test_samples_cover_whole_trace(self, long_fixed_universe_trace):
        points = sample_state_growth(long_fixed_universe_trace, "aerodrome", samples=5)
        assert points[-1].events == len(long_fixed_universe_trace)
        assert all(
            earlier.events < later.events
            for earlier, later in zip(points, points[1:])
        )

    def test_velodrome_nogc_state_grows_with_trace(self, long_fixed_universe_trace):
        points = sample_state_growth(
            long_fixed_universe_trace, "velodrome-nogc", samples=6
        )
        ratio = growth_ratio(points, "live_nodes")
        events_ratio = points[-1].events / points[0].events
        # No GC: every transaction stays live — node count tracks the
        # event count to within a small factor.
        assert ratio > events_ratio / 3

    def test_aerodrome_state_grows_slower_than_graph(self, long_fixed_universe_trace):
        # Theorem 4: clocks are bounded by the *object universe*
        # (threads + variables + locks), which grows much slower than
        # the trace; the no-GC graph is bounded only by the trace.
        aero = sample_state_growth(long_fixed_universe_trace, "aerodrome", samples=6)
        graph = sample_state_growth(
            long_fixed_universe_trace, "velodrome-nogc", samples=6
        )
        aero_ratio = growth_ratio(aero, "total_clocks")
        graph_ratio = growth_ratio(graph, "live_nodes")
        assert aero_ratio < graph_ratio / 5
        # And in absolute terms the clock count stays a small multiple
        # of the object universe, far below the transaction count.
        assert aero[-1].state["total_clocks"] < graph[-1].state["live_nodes"]

    def test_velodrome_gc_stays_small_on_gc_friendly_shape(self):
        trace = CASES_BY_NAME["sor"].generate(seed=7, scale=0.2)
        points = sample_state_growth(trace, "velodrome", samples=5)
        assert points[-1].state["live_nodes"] <= 50

    def test_growth_ratio_edge_cases(self):
        flat = [
            GrowthPoint(1, {"k": 5}),
            GrowthPoint(10, {"k": 5}),
        ]
        assert growth_ratio(flat, "k") == 1.0
        from_zero = [GrowthPoint(1, {"k": 0}), GrowthPoint(10, {"k": 3})]
        assert growth_ratio(from_zero, "k") == float("inf")
        assert growth_ratio(from_zero, "missing") == 1.0
        with pytest.raises(ValueError):
            growth_ratio([], "k")


class TestFormatting:
    def test_format_growth_table(self, long_fixed_universe_trace):
        points = sample_state_growth(long_fixed_universe_trace, "aerodrome", samples=3)
        table = format_growth(points)
        assert "events" in table
        assert "total_clocks" in table
        assert str(points[-1].events) in table

    def test_format_empty(self):
        assert format_growth([]) == "(no samples)"
