"""Trace statistics tests."""

from repro import begin, end, read, trace_of, write
from repro.analysis.stats import compute_stats


def test_basic_stats(rho4):
    stats = compute_stats(rho4)
    assert stats.events_per_thread == {"t1": 4, "t2": 4, "t3": 4}
    assert sorted(stats.txn_lengths) == [4, 4, 4]
    assert stats.unary_events == 0
    assert stats.max_nesting == 1
    assert stats.mean_txn_length == 4.0
    assert stats.max_txn_length == 4


def test_unary_and_nesting():
    trace = trace_of(
        read("t", "a"),
        begin("t"),
        begin("t"),
        write("t", "b"),
        end("t"),
        end("t"),
        read("t", "c"),
    )
    stats = compute_stats(trace)
    assert stats.unary_events == 2
    assert stats.max_nesting == 2
    assert stats.txn_lengths == [5]


def test_read_write_ratio():
    trace = trace_of(read("t", "a"), read("t", "b"), write("t", "a"))
    assert compute_stats(trace).read_write_ratio == 2.0


def test_empty_trace():
    stats = compute_stats(trace_of())
    assert stats.mean_txn_length == 0.0
    assert stats.max_txn_length == 0
    assert stats.read_write_ratio == 0.0
