"""Wire-format robustness: corrupt frames must fail cleanly.

Mirror of ``tests/test_binary_fuzz.py`` for the ``repro-wire/1``
protocol: encode/decode round-trips valid traffic; every byte-corrupted,
truncated or arbitrary input either decodes to something valid or
raises a **typed** :class:`~repro.service.protocol.WireError` — never a
raw ``struct.error``/``IndexError``/``UnicodeDecodeError``, and never
garbage accepted silently.
"""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.service import protocol
from repro.service.protocol import (
    DeltaDecoder,
    DeltaEncoder,
    FrameError,
    FrameType,
    PayloadError,
    WireError,
    decode_events,
    decode_frame,
    decode_json,
    encode_events_text,
    encode_frame,
    encode_json,
    parse_hello,
    read_frame,
)
from repro.sim.random_traces import RandomTraceConfig, random_trace


def make_events(seed, length=20):
    trace = random_trace(
        seed, RandomTraceConfig(n_threads=3, n_vars=3, n_locks=2, length=length)
    )
    return list(trace)


def eq_events(a, b):
    return [(e.thread, e.op, e.target) for e in a] == [
        (e.thread, e.op, e.target) for e in b
    ]


# -- framing ----------------------------------------------------------------


def test_frame_round_trip():
    frame = encode_frame(FrameType.FLUSH, b"payload")
    ftype, payload, end = decode_frame(frame)
    assert (ftype, payload, end) == (FrameType.FLUSH, b"payload", len(frame))


def test_incomplete_frame_returns_none():
    frame = encode_frame(FrameType.EVENTS, b"x" * 100)
    assert decode_frame(frame[:3]) is None
    assert decode_frame(frame[:-1]) is None


def test_oversize_frame_rejected_both_ways():
    with pytest.raises(FrameError, match="MAX_FRAME"):
        encode_frame(FrameType.EVENTS, b"x" * protocol.MAX_FRAME)
    bad = (protocol.MAX_FRAME + 10).to_bytes(4, "big") + bytes([2]) + b"xx"
    with pytest.raises(FrameError, match="out of range"):
        decode_frame(bad)


def test_unknown_frame_type_rejected():
    bad = (1).to_bytes(4, "big") + bytes([99])
    with pytest.raises(FrameError, match="unknown frame type"):
        decode_frame(bad)


def test_read_frame_truncation_and_eof():
    frame = encode_frame(FrameType.OK, b"abc")
    assert read_frame(io.BytesIO(frame)) == (FrameType.OK, b"abc")
    assert read_frame(io.BytesIO(b"")) is None  # clean EOF
    with pytest.raises(FrameError, match="truncated"):
        read_frame(io.BytesIO(frame[:-1]))
    with pytest.raises(FrameError, match="truncated"):
        read_frame(io.BytesIO(frame[:2]))


@settings(max_examples=80, deadline=None)
@given(
    position=st.integers(0, 10_000),
    byte=st.integers(0, 255),
    seed=st.integers(0, 30),
)
def test_corrupted_frame_stream_never_crashes(position, byte, seed):
    events = make_events(seed)
    data = bytearray(
        encode_json(FrameType.HELLO, {"protocol": protocol.PROTOCOL})
        + encode_frame(FrameType.EVENTS, encode_events_text(events))
        + encode_frame(FrameType.CLOSE)
    )
    data[position % len(data)] = byte
    stream = io.BytesIO(bytes(data))
    decoder = DeltaDecoder()
    try:
        while True:
            frame = read_frame(stream)
            if frame is None:
                break
            ftype, payload = frame
            if ftype == FrameType.HELLO:
                parse_hello(decode_json(payload))
            elif ftype == FrameType.EVENTS:
                decode_events(payload, decoder)
    except WireError:
        pass  # typed failure: the contract


@settings(max_examples=60, deadline=None)
@given(junk=st.binary(min_size=0, max_size=200))
def test_arbitrary_bytes_only_raise_wire_errors(junk):
    stream = io.BytesIO(junk)
    try:
        while True:
            frame = read_frame(stream)
            if frame is None:
                break
            ftype, payload = frame
            decode_json(payload)
    except WireError:
        pass


# -- JSON payloads ----------------------------------------------------------


def test_json_payload_round_trip():
    obj = {"protocol": protocol.PROTOCOL, "analyses": ["aerodrome"]}
    ftype, payload, _ = decode_frame(encode_json(FrameType.HELLO, obj))
    assert decode_json(payload) == obj


@pytest.mark.parametrize(
    "payload", [b"\xff\xfe", b"[1,2]", b'"str"', b"{bad json"]
)
def test_bad_json_payloads_rejected(payload):
    with pytest.raises(PayloadError):
        decode_json(payload)


@pytest.mark.parametrize(
    "hello",
    [
        {},  # no protocol
        {"protocol": "repro-wire/999", "analyses": ["a"]},
        {"protocol": protocol.PROTOCOL},  # no analyses
        {"protocol": protocol.PROTOCOL, "analyses": []},
        {"protocol": protocol.PROTOCOL, "analyses": [7]},
        {"protocol": protocol.PROTOCOL, "analyses": [{"options": {}}]},
        {"protocol": protocol.PROTOCOL, "analyses": ["a"], "session": 3},
        {"protocol": protocol.PROTOCOL, "analyses": ["a"], "resume": True},
        {"protocol": protocol.PROTOCOL, "analyses": ["a"], "name": 1},
    ],
)
def test_bad_hellos_rejected(hello):
    with pytest.raises(PayloadError):
        parse_hello(hello)


def test_hello_normalizes_specs():
    parsed = parse_hello(
        {
            "protocol": protocol.PROTOCOL,
            "analyses": [
                "aerodrome",
                {"name": "aerodrome", "options": {"mode": "report_all"}},
            ],
            "name": "t",
        }
    )
    assert parsed["analyses"] == [
        ("aerodrome", {}),
        ("aerodrome", {"mode": "report_all"}),
    ]


# -- EVENTS payloads --------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_text_events_round_trip(seed):
    events = make_events(seed % 100)
    decoded = decode_events(encode_events_text(events))
    assert eq_events(decoded, events)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10**6), cut=st.integers(1, 19))
def test_delta_events_round_trip_across_frames(seed, cut):
    """Interner deltas accumulate: later frames reuse earlier names."""
    events = make_events(seed % 100)
    encoder, decoder = DeltaEncoder(), DeltaDecoder()
    first = decode_events(encoder.encode(events[:cut]), decoder)
    second = decode_events(encoder.encode(events[cut:]), decoder)
    assert eq_events(first + second, events)


def test_delta_second_frame_ships_no_repeated_names():
    events = make_events(3)
    encoder = DeltaEncoder()
    encoder.encode(events)
    replay = encoder.encode(events)  # same names again: all interned
    # 1 tag byte + 4 empty name tables (base + count) + event count +
    # triples, nothing more.
    expected = 1 + 4 * 8 + 4 + 9 * len(events)
    assert len(replay) == expected


def test_delta_frame_retransmit_is_idempotent():
    """A frame resent through BUSY must not shift the name tables
    (regression: duplicated names skewed every later index)."""
    events = make_events(11, length=40)
    cut = len(events) // 2
    encoder, decoder = DeltaEncoder(), DeltaDecoder()
    frame1 = encoder.encode(events[:cut])
    decode_events(frame1, decoder)
    replayed = decode_events(frame1, decoder)  # the BUSY retransmit
    assert eq_events(replayed, events[:cut])
    rest = decode_events(encoder.encode(events[cut:]), decoder)
    assert eq_events(rest, events[cut:])


@settings(max_examples=100, deadline=None)
@given(
    seed=st.integers(0, 50),
    position=st.integers(0, 5_000),
    byte=st.integers(0, 255),
)
def test_delta_corruption_never_crashes(seed, position, byte):
    events = make_events(seed)
    encoder = DeltaEncoder()
    payload = bytearray(encoder.encode(events))
    payload[position % len(payload)] = byte
    try:
        decode_events(bytes(payload), DeltaDecoder())
    except PayloadError:
        pass


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 50), cut=st.floats(0.0, 0.99))
def test_delta_truncation_never_crashes(seed, cut):
    payload = DeltaEncoder().encode(make_events(seed))
    truncated = payload[: int(len(payload) * cut)]
    if not truncated:
        with pytest.raises(PayloadError):
            decode_events(truncated, DeltaDecoder())
        return
    try:
        decode_events(truncated, DeltaDecoder())
    except PayloadError:
        pass


def test_delta_needs_a_decoder():
    payload = DeltaEncoder().encode(make_events(1))
    with pytest.raises(PayloadError, match="decoder"):
        decode_events(payload)


def test_unknown_encoding_tag_rejected():
    with pytest.raises(PayloadError, match="encoding tag"):
        decode_events(bytes([7]) + b"rest")


def test_bad_text_lines_rejected():
    with pytest.raises(PayloadError):
        decode_events(bytes([0]) + b"t1|frobnicate(x)")
    with pytest.raises(PayloadError):
        decode_events(bytes([0]) + b"\xff\xfe")


def test_text_events_skip_comments_and_blanks():
    decoded = decode_events(bytes([0]) + b"# header\n\nt1|w(x)\n")
    assert len(decoded) == 1 and decoded[0].thread == "t1"


# -- the resume seam: positioned frames across a handoff ---------------------
#
# When a session migrates between cluster nodes (or a node fails over),
# the client re-attaches mid-stream and at-least-once delivery means the
# new owner can see duplicated and prematurely-delivered positioned
# EVENTS batches around the seam. The gap/overlap resync in
# ``StreamingSession.feed`` must absorb all of it: overlap is dropped,
# gaps mark the session out-of-sync until the in-order batch arrives,
# and the final report equals the offline run.


def _positioned_batches(events, rng):
    batches, i = [], 0
    while i < len(events):
        n = rng.randint(1, 4)
        batches.append((i, events[i : i + n]))
        i += n
    return batches


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 200),
    schedule_seed=st.integers(0, 10_000),
    handoff_frac=st.floats(0.1, 0.9),
)
def test_duplicated_reordered_frames_across_handoff_resync(
    seed, schedule_seed, handoff_frac
):
    import random as _random

    from repro.api import Session
    from repro.service import StreamingSession

    events = make_events(seed, length=30)
    rng = _random.Random(schedule_seed)
    batches = _positioned_batches(events, rng)

    # Chaotic delivery: every batch arrives in order at least once, but
    # around it ride duplicates of already-delivered batches and
    # premature deliveries of future ones — exactly what a client
    # replaying across a REDIRECT/failover seam produces.
    schedule = []
    for idx, batch in enumerate(batches):
        if idx > 0 and rng.random() < 0.4:
            schedule.append(batches[rng.randrange(idx)])  # duplicate
        if idx + 1 < len(batches) and rng.random() < 0.3:
            schedule.append(batches[idx + 1])  # premature (gap)
        schedule.append(batch)
        if rng.random() < 0.3:
            schedule.append(batch)  # immediate redelivery

    session = StreamingSession("seam", ["aerodrome", "races"], name="seam")
    handoff_at = int(len(schedule) * handoff_frac)
    out_of_sync_seen = False
    for step, (base, batch) in enumerate(schedule):
        if step == handoff_at:
            # The handoff: freeze on the old owner, thaw on the new.
            session = StreamingSession.from_bytes(session.to_bytes())
        before = session.position
        session.feed(list(batch), base=base)
        if base > before:
            out_of_sync_seen = True
            assert session.out_of_sync  # the gap was detected...
            assert session.position == before  # ...and nothing ingested
        else:
            assert not session.out_of_sync  # resync clears the flag
            assert session.position == max(before, base + len(batch))

    assert session.position == len(events)
    doc = session.report()
    base_doc = Session(iter(events), ["aerodrome", "races"],
                       name="seam").run().to_json()
    assert doc["analyses"] == base_doc["analyses"]
    assert doc["verdict"] == base_doc["verdict"]
    # The schedule generator really does exercise the gap path often
    # enough to matter (not asserted per-example: hypothesis shrinks).
    del out_of_sync_seen
