"""Schedule exploration tests."""

import pytest

from repro import conflict_serializable
from repro.sim.explore import enumerate_schedules, explore, fuzz
from repro.sim.program import Begin, End, Read, Write, program_of
from repro.sim.workloads.patterns import (
    locked_counter,
    unprotected_counter,
)
from repro.trace.wellformed import validate
from repro.trace.metainfo import metainfo


def tiny_racy() -> "Program":
    return program_of(
        {
            "a": [Begin(), Read("c"), Write("c"), End()],
            "b": [Begin(), Read("c"), Write("c"), End()],
        },
        name="tiny_racy",
    )


def tiny_private():
    return program_of(
        {
            "a": [Begin(), Write("pa"), End()],
            "b": [Begin(), Write("pb"), End()],
        },
        name="tiny_private",
    )


class TestEnumeration:
    def test_single_thread_has_one_schedule(self):
        program = program_of({"t": [Read("x"), Write("x")]})
        schedules = list(enumerate_schedules(program))
        assert len(schedules) == 1
        assert len(schedules[0]) == 2

    def test_interleaving_count_two_independent_threads(self):
        # Two threads of 2 events each: C(4,2) = 6 interleavings.
        program = program_of(
            {"a": [Read("x"), Read("y")], "b": [Read("p"), Read("q")]}
        )
        schedules = list(enumerate_schedules(program))
        assert len(schedules) == 6
        texts = {tuple(str(e) for e in t) for t in schedules}
        assert len(texts) == 6  # all distinct

    def test_all_schedules_well_formed(self):
        for trace in enumerate_schedules(tiny_racy()):
            validate(trace, allow_open_transactions=False)

    def test_lock_semantics_respected(self):
        from repro.sim.program import Acquire, Release

        program = program_of(
            {
                "a": [Acquire("l"), Write("x"), Release("l")],
                "b": [Acquire("l"), Write("x"), Release("l")],
            }
        )
        for trace in enumerate_schedules(program):
            validate(trace, allow_held_locks=False)

    def test_max_schedules_cap(self):
        schedules = list(enumerate_schedules(tiny_racy(), max_schedules=3))
        assert len(schedules) == 3

    def test_counts_match_manual_formula(self):
        # Threads of lengths 4 and 4: C(8,4) = 70 interleavings.
        assert sum(1 for _ in enumerate_schedules(tiny_racy())) == 70


class TestExplore:
    def test_racy_program_has_violating_and_clean_schedules(self):
        result = explore(tiny_racy())
        assert result.exhaustive
        assert 0 < result.violating < result.schedules
        assert result.witness is not None
        assert not conflict_serializable(result.witness)

    def test_private_program_proven_atomic(self):
        result = explore(tiny_private())
        assert result.exhaustive
        assert result.always_atomic
        assert result.witness is None

    def test_locked_counter_proven_atomic_exhaustively(self):
        result = explore(locked_counter(n_threads=2, increments=1))
        assert result.exhaustive
        assert result.always_atomic

    def test_cap_marks_non_exhaustive(self):
        result = explore(unprotected_counter(2, 2), max_schedules=10)
        assert not result.exhaustive
        assert result.schedules == 10

    def test_str(self):
        result = explore(tiny_private())
        assert "0/" in str(result)
        assert "all" in str(result)


class TestFuzz:
    def test_fuzz_finds_counter_violation(self):
        result = fuzz(unprotected_counter(2, 3), schedules=30, seed=0)
        assert not result.exhaustive
        assert result.violating > 0
        assert result.witness is not None

    def test_fuzz_on_safe_program(self):
        result = fuzz(locked_counter(2, 2), schedules=20, seed=0)
        assert result.always_atomic

    def test_fuzz_deterministic(self):
        a = fuzz(unprotected_counter(2, 2), schedules=15, seed=9)
        b = fuzz(unprotected_counter(2, 2), schedules=15, seed=9)
        assert a.violating == b.violating


class TestAgreementWithRuntime:
    def test_enumerated_traces_match_runtime_semantics(self):
        # Each enumerated schedule is a real execution: same event
        # multiset per thread as the runtime produces.
        program = tiny_racy()
        from repro.sim.runtime import execute
        from repro.sim.scheduler import RoundRobinScheduler

        runtime_trace = execute(program, RoundRobinScheduler())
        runtime_info = metainfo(runtime_trace)
        for trace in enumerate_schedules(program, max_schedules=20):
            info = metainfo(trace)
            assert info.events == runtime_info.events
            assert info.threads == runtime_info.threads
            assert info.transactions == runtime_info.transactions
