"""Delta-debugging minimization tests."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import (
    Trace,
    begin,
    check_trace,
    conflict_serializable,
    end,
    is_well_formed,
    read,
    write,
)
from repro.analysis.minimize import is_one_minimal, minimize_violation
from repro.sim.random_traces import RandomTraceConfig, random_trace
from repro.sim.workloads.benchmarks import CASES_BY_NAME


def rho2_with_noise() -> Trace:
    """The ρ2 cycle buried among unrelated transactions."""
    events = []
    for i in range(6):
        events += [begin("t3"), read("t3", f"n{i}"), write("t3", f"n{i}"), end("t3")]
    events += [
        begin("t1"),
        begin("t2"),
        write("t1", "x"),
        read("t2", "x"),
        write("t2", "y"),
        read("t1", "y"),
        end("t2"),
        end("t1"),
    ]
    for i in range(6):
        events += [begin("t4"), read("t4", f"m{i}"), write("t4", f"m{i}"), end("t4")]
    return Trace(events)


def test_rejects_non_violating_input(rho1):
    with pytest.raises(ValueError, match="does not reproduce"):
        minimize_violation(rho1)


def test_noise_is_stripped():
    trace = rho2_with_noise()
    minimized = minimize_violation(trace)
    assert len(minimized) == 8  # exactly the ρ2 core
    assert {e.thread for e in minimized} == {"t1", "t2"}
    assert not check_trace(minimized).serializable
    assert is_well_formed(minimized)
    assert is_one_minimal(minimized)


def test_already_minimal_is_unchanged(rho2):
    minimized = minimize_violation(rho2)
    assert len(minimized) == len(rho2)
    assert is_one_minimal(minimized)


def test_three_party_cycle_keeps_all_three():
    from repro.sim.trace_zoo import get as zoo_get

    trace = zoo_get("three-party-cycle").trace()
    minimized = minimize_violation(trace)
    assert {e.thread for e in minimized} == {"t1", "t2", "t3"}
    assert is_one_minimal(minimized)


def test_benchmark_trace_minimizes_to_a_small_core():
    trace = CASES_BY_NAME["hedc"].generate(seed=7, scale=0.5)
    assert not conflict_serializable(trace)
    minimized = minimize_violation(trace)
    assert len(minimized) <= 20
    assert not check_trace(minimized).serializable


def test_custom_predicate():
    # Minimize with respect to "velodrome reports a violation".
    trace = rho2_with_noise()
    minimized = minimize_violation(
        trace,
        reproduces=lambda t: not check_trace(t, "velodrome").serializable,
    )
    assert len(minimized) == 8


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**9))
def test_minimized_random_traces_are_minimal_violations(seed):
    trace = random_trace(
        seed,
        RandomTraceConfig(
            n_threads=3, n_vars=2, n_locks=1, length=40, p_begin=0.25, p_end=0.2
        ),
    )
    assume(not conflict_serializable(trace))
    minimized = minimize_violation(trace)
    assert len(minimized) <= len(trace)
    assert is_well_formed(minimized)
    assert not check_trace(minimized).serializable
    assert is_one_minimal(minimized)
