"""Vector clock unit tests and lattice-law properties."""

import pytest
from hypothesis import given, strategies as st

from repro import ThreadRegistry, VectorClock


class TestBasics:
    def test_bottom(self):
        assert VectorClock.bottom(3).as_tuple() == (0, 0, 0)
        assert VectorClock.bottom(3).is_bottom()

    def test_unit(self):
        assert VectorClock.unit(1).as_tuple() == (0, 1)
        assert VectorClock.unit(0, value=5, size=3).as_tuple() == (5, 0, 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VectorClock([1, -1])
        with pytest.raises(ValueError):
            VectorClock([1]).set_component(0, -2)

    def test_get_beyond_length_is_zero(self):
        assert VectorClock([1, 2]).get(7) == 0

    def test_set_component_grows(self):
        clock = VectorClock([1])
        clock.set_component(3, 9)
        assert clock.as_tuple() == (1, 0, 0, 9)

    def test_increment(self):
        clock = VectorClock([1, 2])
        clock.increment(0)
        clock.increment(4, amount=3)
        assert clock.as_tuple() == (2, 2, 0, 0, 3)

    def test_copy_is_independent(self):
        a = VectorClock([1, 2])
        b = a.copy()
        b.increment(0)
        assert a.as_tuple() == (1, 2)

    def test_assign(self):
        a, b = VectorClock([1]), VectorClock([5, 6])
        a.assign(b)
        assert a == b
        b.increment(0)
        assert a != b


class TestOrder:
    def test_leq_same_length(self):
        assert VectorClock([1, 2]).leq(VectorClock([1, 3]))
        assert not VectorClock([2, 0]).leq(VectorClock([1, 3]))

    def test_leq_shorter_left(self):
        assert VectorClock([1]).leq(VectorClock([1, 5]))

    def test_leq_longer_left_with_zeros(self):
        assert VectorClock([1, 0, 0]).leq(VectorClock([2]))
        assert not VectorClock([1, 0, 1]).leq(VectorClock([2]))

    def test_bottom_below_everything(self):
        assert VectorClock.bottom().leq(VectorClock([0, 0, 4]))

    def test_incomparable(self):
        a, b = VectorClock([1, 0]), VectorClock([0, 1])
        assert not a.leq(b) and not b.leq(a)


class TestJoin:
    def test_join_in_place(self):
        a = VectorClock([1, 5, 0])
        a.join(VectorClock([2, 3]))
        assert a.as_tuple() == (2, 5, 0)

    def test_join_grows(self):
        a = VectorClock([1])
        a.join(VectorClock([0, 0, 7]))
        assert a.as_tuple() == (1, 0, 7)

    def test_joined_functional(self):
        a = VectorClock([1, 0])
        b = a.joined(VectorClock([0, 2]))
        assert a.as_tuple() == (1, 0)
        assert b.as_tuple() == (1, 2)

    def test_with_component(self):
        a = VectorClock([1, 2])
        assert a.with_component(0, 9).as_tuple() == (9, 2)
        assert a.as_tuple() == (1, 2)

    def test_zeroed(self):
        assert VectorClock([3, 4]).zeroed(0).as_tuple() == (0, 4)


class TestEquality:
    def test_trailing_zeros_ignored(self):
        assert VectorClock([1, 2]) == VectorClock([1, 2, 0, 0])
        assert hash(VectorClock([1, 2])) == hash(VectorClock([1, 2, 0]))

    def test_not_equal(self):
        assert VectorClock([1]) != VectorClock([2])
        assert VectorClock([1]) != (1,)

    def test_repr(self):
        assert repr(VectorClock([1, 2])) == "⟨1,2⟩"


_clocks = st.builds(
    VectorClock, st.lists(st.integers(min_value=0, max_value=8), max_size=5)
)


@given(_clocks, _clocks)
def test_join_commutative(a, b):
    assert a.joined(b) == b.joined(a)


@given(_clocks, _clocks, _clocks)
def test_join_associative(a, b, c):
    assert a.joined(b).joined(c) == a.joined(b.joined(c))


@given(_clocks)
def test_join_idempotent(a):
    assert a.joined(a) == a


@given(_clocks, _clocks)
def test_join_is_least_upper_bound(a, b):
    j = a.joined(b)
    assert a.leq(j) and b.leq(j)


@given(_clocks, _clocks)
def test_leq_antisymmetric(a, b):
    if a.leq(b) and b.leq(a):
        assert a == b


@given(_clocks, _clocks, _clocks)
def test_leq_transitive(a, b, c):
    if a.leq(b) and b.leq(c):
        assert a.leq(c)


@given(_clocks, _clocks)
def test_leq_iff_join_absorbs(a, b):
    assert a.leq(b) == (a.joined(b) == b)


class TestThreadRegistry:
    def test_interning(self):
        registry = ThreadRegistry()
        assert registry.index_of("a") == 0
        assert registry.index_of("b") == 1
        assert registry.index_of("a") == 0
        assert len(registry) == 2

    def test_name_of(self):
        registry = ThreadRegistry(["x", "y"])
        assert registry.name_of(1) == "y"
        assert "x" in registry
        assert registry.names() == ["x", "y"]
