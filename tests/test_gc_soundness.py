"""The garbage-collection soundness counterexample (see DESIGN.md §4 and
EXPERIMENTS.md "Deviations from the paper").

Algorithm 3's ``hasIncomingEdge`` test keeps a transaction only when its
clock *grew* during the transaction (``C⊲_t[0/t] ≠ C_t[0/t]``) or the
forking parent's transaction is alive. Clock components count
*transactions*, so re-reading a value published earlier by a still-open
transaction grows nothing — yet it is a real incoming ⋖Txn edge, and a
cycle through the open transaction can close later. The traces below
exercise exactly that: a faithful implementation of the listed test would
garbage collect T and miss the violation that basic Algorithm 1 reports.

Our implementation strengthens the test (also keep the transaction when
its final clock covers any still-active other transaction's begin), and
these tests pin down that the optimized checker agrees with the basic one.
"""

from repro import Trace, begin, end, read, trace_of, write
from repro.baselines.oracle import conflict_serializable
from repro.baselines.velodrome import VelodromeChecker
from repro.core.aerodrome import AeroDromeChecker
from repro.core.aerodrome_opt import OptimizedAeroDromeChecker


def counterexample() -> Trace:
    """A still-open coordinator transaction re-observed without clock growth.

    w0's first transaction absorbs the coordinator's component; its second
    transaction re-reads ``g`` (no growth → the paper's test would GC it),
    writes ``viol``, and the coordinator's read of ``viol`` closes the
    cycle coord → w0#2 → coord.
    """
    return trace_of(
        begin("coord"),
        write("coord", "g"),
        # First w0 transaction: absorbs coord's clock, harmless.
        begin("w0"),
        read("w0", "g"),
        end("w0"),
        # Second w0 transaction: no clock growth (coord's clock is
        # already known), but a genuine incoming edge from coord's
        # still-open transaction.
        begin("w0"),
        read("w0", "g"),
        write("w0", "viol"),
        end("w0"),
        read("coord", "viol"),
        end("coord"),
        name="gc-counterexample",
    )


def test_trace_is_genuinely_non_serializable():
    assert not conflict_serializable(counterexample())


def test_basic_aerodrome_detects():
    result = AeroDromeChecker().run(counterexample())
    assert not result.serializable
    assert result.events_processed == 10  # at coord's r(viol)


def test_velodrome_detects():
    result = VelodromeChecker().run(counterexample())
    assert not result.serializable


def test_optimized_aerodrome_detects_despite_gc():
    """The strengthened hasIncomingEdge keeps w0's second transaction."""
    result = OptimizedAeroDromeChecker().run(counterexample())
    assert not result.serializable
    assert result.events_processed == 10


def test_paper_growth_test_alone_would_garbage_collect():
    """Documents the deviation: replaying events up to w0's second end,
    the clock-growth condition of the paper's listing is false — only the
    active-transaction condition we added keeps the transaction."""
    checker = OptimizedAeroDromeChecker()
    trace = counterexample()
    for event in trace.events[:8]:  # up to (not incl.) w0's second end
        checker.process(event)
    ts = checker._threads["w0"]
    begin_clock, now = ts.begin_clock, ts.clock
    grew = any(
        begin_clock.get(u.index) != now.get(u.index)
        for u in checker._thread_list
        if u is not ts
    )
    assert not grew  # the paper's test would say "no incoming edge"
    assert checker._has_incoming_edge(ts)  # ours keeps it


def test_gc_still_fires_for_isolated_transactions():
    """The strengthened test still garbage-collects genuinely isolated
    transactions (no conflicts, no active-peer coverage)."""
    checker = OptimizedAeroDromeChecker()
    checker.process(begin("t1"))
    checker.process(write("t1", "a"))
    ts = checker._threads["t1"]
    assert not checker._has_incoming_edge(ts)
