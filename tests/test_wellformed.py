"""Well-formedness validator tests: each assumption of paper §2."""

import pytest

from repro import (
    WellFormednessError,
    acquire,
    begin,
    end,
    fork,
    is_well_formed,
    join,
    read,
    release,
    trace_of,
    validate,
    write,
)


class TestLockDiscipline:
    def test_double_acquire_by_other_thread(self):
        trace = trace_of(acquire("t1", "l"), acquire("t2", "l"))
        with pytest.raises(WellFormednessError, match="while held by"):
            validate(trace)

    def test_reentrant_acquire_allowed(self):
        trace = trace_of(
            acquire("t1", "l"),
            acquire("t1", "l"),
            release("t1", "l"),
            release("t1", "l"),
        )
        validate(trace)

    def test_release_without_acquire(self):
        with pytest.raises(WellFormednessError, match="released"):
            validate(trace_of(release("t1", "l")))

    def test_release_by_non_holder(self):
        trace = trace_of(acquire("t1", "l"), release("t2", "l"))
        with pytest.raises(WellFormednessError, match="held by"):
            validate(trace)

    def test_lock_freed_after_release(self):
        trace = trace_of(
            acquire("t1", "l"),
            release("t1", "l"),
            acquire("t2", "l"),
            release("t2", "l"),
        )
        validate(trace)

    def test_held_lock_at_end_optional(self):
        trace = trace_of(acquire("t1", "l"))
        validate(trace)  # permissive default
        with pytest.raises(WellFormednessError, match="still held"):
            validate(trace, allow_held_locks=False)


class TestTransactionDiscipline:
    def test_end_without_begin(self):
        with pytest.raises(WellFormednessError, match="without matching begin"):
            validate(trace_of(end("t1")))

    def test_nesting_allowed(self):
        validate(trace_of(begin("t"), begin("t"), end("t"), end("t")))

    def test_open_transaction_optional(self):
        trace = trace_of(begin("t1"), write("t1", "x"))
        validate(trace)
        with pytest.raises(WellFormednessError, match="open transaction"):
            validate(trace, allow_open_transactions=False)

    def test_end_in_other_thread_not_matched(self):
        with pytest.raises(WellFormednessError):
            validate(trace_of(begin("t1"), end("t2")))


class TestForkJoinDiscipline:
    def test_fork_after_child_started(self):
        trace = trace_of(write("t2", "x"), fork("t1", "t2"))
        with pytest.raises(WellFormednessError, match="after its first event"):
            validate(trace)

    def test_event_after_join(self):
        trace = trace_of(fork("t1", "t2"), write("t2", "x"), join("t1", "t2"), write("t2", "y"))
        with pytest.raises(WellFormednessError, match="after being joined"):
            validate(trace)

    def test_double_fork(self):
        trace = trace_of(fork("t1", "t2"), fork("t3", "t2"))
        with pytest.raises(WellFormednessError, match="forked twice"):
            validate(trace)

    def test_double_join(self):
        trace = trace_of(
            fork("t1", "t2"),
            join("t1", "t2"),
            join("t1", "t2"),
        )
        with pytest.raises(WellFormednessError, match="joined more than once"):
            validate(trace)

    def test_self_fork(self):
        with pytest.raises(WellFormednessError, match="forks itself"):
            validate(trace_of(fork("t1", "t1")))

    def test_self_join(self):
        with pytest.raises(WellFormednessError, match="joins itself"):
            validate(trace_of(join("t1", "t1")))

    def test_unforked_thread_allowed_by_default(self):
        validate(trace_of(write("t1", "x"), write("t2", "x")))

    def test_require_forked_threads(self):
        trace = trace_of(write("t1", "x"), write("t2", "x"))
        with pytest.raises(WellFormednessError, match="before being forked"):
            validate(trace, require_forked_threads=True)

    def test_forked_discipline_ok(self):
        trace = trace_of(
            write("t1", "x"),
            fork("t1", "t2"),
            write("t2", "y"),
            join("t1", "t2"),
        )
        validate(trace, require_forked_threads=True)


class TestPaperTraces:
    def test_paper_traces_well_formed(self, paper_traces):
        for trace, _ in paper_traces:
            validate(trace, allow_open_transactions=False, allow_held_locks=False)

    def test_is_well_formed_wrapper(self):
        assert is_well_formed(trace_of(begin("t"), end("t")))
        assert not is_well_formed(trace_of(end("t")))

    def test_error_reports_event(self):
        try:
            validate(trace_of(begin("t"), end("t"), end("t")))
        except WellFormednessError as error:
            assert error.event is not None
            assert error.event.idx == 2
        else:  # pragma: no cover
            pytest.fail("expected WellFormednessError")
