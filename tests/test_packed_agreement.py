"""The packed fast path agrees with the string path, event for event.

For basic, optimized and sharded AeroDrome, a packed trace must produce
exactly the string path's verdict *and* violating event index (and
thread and site) on randomized traces — this is what CI's benchmark
smoke gates on, and what licenses every epoch/SWAR shortcut in the
packed handlers. The epoch-fallback unit tests at the bottom pin the
cases the memoization must not break: clocks growing when threads
appear mid-trace, re-publication after end-event propagation, and the
report-and-continue stream.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import check_trace, conflict_serializable, make_checker
from repro.core.multi import find_all_violations
from repro.sim.random_traces import RandomTraceConfig, random_trace
from repro.trace.packed import pack
from repro.trace.trace import Trace
from repro.trace.events import begin, end, fork, join, read, write

FAST_PATH_ALGORITHMS = ["aerodrome", "aerodrome-basic", "aerodrome-sharded"]


def assert_packed_agrees(trace, algorithm):
    string_checker = make_checker(algorithm)
    packed_checker = make_checker(algorithm)
    string_result = string_checker.run(trace)
    packed_result = packed_checker.run_packed(pack(trace))
    assert packed_result.serializable == string_result.serializable, (
        f"{algorithm} packed/string verdict mismatch on {trace.name}:\n"
        + "\n".join(str(e) for e in trace)
    )
    sv, pv = string_result.violation, packed_result.violation
    if sv is not None:
        assert pv is not None
        assert (pv.event_idx, pv.thread, pv.site) == (sv.event_idx, sv.thread, sv.site)
    assert packed_result.events_processed == string_result.events_processed
    # The sharded checker's whole output is its communication profile —
    # the packed path must not change the accounting either.
    if hasattr(string_checker, "stats"):
        ss, ps = string_checker.stats, packed_checker.stats
        assert (ss.local_accesses, ss.remote_accesses, ss.end_broadcasts) == (
            ps.local_accesses, ps.remote_accesses, ps.end_broadcasts
        )
        assert ss.per_shard == ps.per_shard


@settings(max_examples=150, deadline=None)
@given(
    st.integers(min_value=0, max_value=10**9),
    st.sampled_from(FAST_PATH_ALGORITHMS),
)
def test_packed_agreement_dense(seed, algorithm):
    trace = random_trace(
        seed,
        RandomTraceConfig(
            n_threads=3, n_vars=2, n_locks=1, length=30, p_begin=0.25, p_end=0.2
        ),
    )
    assert_packed_agrees(trace, algorithm)


@settings(max_examples=75, deadline=None)
@given(
    st.integers(min_value=0, max_value=10**9),
    st.sampled_from(FAST_PATH_ALGORITHMS),
)
def test_packed_agreement_with_forks(seed, algorithm):
    trace = random_trace(
        seed,
        RandomTraceConfig(n_threads=4, n_vars=3, n_locks=2, length=60, with_forks=True),
    )
    assert_packed_agrees(trace, algorithm)


@settings(max_examples=75, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_packed_agrees_with_oracle(seed):
    trace = random_trace(
        seed,
        RandomTraceConfig(n_threads=3, n_vars=3, n_locks=1, length=40),
    )
    expected = conflict_serializable(trace)
    for algorithm in FAST_PATH_ALGORITHMS:
        result = make_checker(algorithm).run_packed(pack(trace))
        assert result.serializable == expected


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_packed_report_and_continue_matches_string(seed):
    trace = random_trace(
        seed,
        RandomTraceConfig(
            n_threads=3, n_vars=2, n_locks=1, length=35, p_begin=0.3, p_end=0.2
        ),
    )
    for dedupe in (False, True):
        via_string = find_all_violations(trace, dedupe=dedupe)
        via_packed = find_all_violations(pack(trace), dedupe=dedupe)
        assert [(v.event_idx, v.thread, v.site) for v in via_string] == [
            (v.event_idx, v.thread, v.site) for v in via_packed
        ]


def test_check_trace_accepts_packed():
    trace = Trace(
        [
            begin("t1"), write("t1", "x"),
            begin("t2"), read("t2", "x"), write("t2", "y"), end("t2"),
            read("t1", "y"), end("t1"),
        ]
    )
    result = check_trace(pack(trace))
    assert not result.serializable
    assert result.violation.event_idx == 6


class TestEpochFallback:
    """Clock growth and memo invalidation corner cases."""

    def test_thread_appearing_mid_trace_grows_clocks(self):
        # t3's first event arrives after t1/t2 have built up state: every
        # lane layout (and the SWAR guard mask) must grow on demand.
        trace = Trace(
            [
                begin("t1"), write("t1", "x"), end("t1"),
                begin("t2"), read("t2", "x"), end("t2"),
                begin("t3"), read("t3", "x"), write("t3", "z"), end("t3"),
                begin("t1"), read("t1", "z"), end("t1"),
            ]
        )
        for algorithm in FAST_PATH_ALGORITHMS:
            assert_packed_agrees(trace, algorithm)
            assert make_checker(algorithm).run(trace).serializable

    def test_fork_into_new_lane(self):
        # Forking a brand-new thread after substantial history exercises
        # joins between clocks of different lane counts.
        events = [begin("t0"), write("t0", "a"), end("t0")]
        for i in range(1, 6):
            events.append(fork("t0", f"child{i}"))
            events.append(begin(f"child{i}"))
            events.append(read(f"child{i}", "a"))
            events.append(end(f"child{i}"))
            events.append(join("t0", f"child{i}"))
        trace = Trace(events)
        for algorithm in FAST_PATH_ALGORITHMS:
            assert_packed_agrees(trace, algorithm)

    def test_write_epoch_invalidated_by_end_propagation(self):
        # t2's write to x is published, then t1's transaction end joins
        # into W_x; a stale epoch must not suppress the refreshed clock.
        # The crossed read afterwards must still be flagged.
        trace = Trace(
            [
                begin("t1"), write("t1", "g"),
                write("t2", "x"),     # unary publish of W_x
                read("t2", "g"),      # unary: t2 now after t1's open txn
                end("t1"),
                begin("t3"), read("t3", "x"), write("t3", "y"), end("t3"),
                begin("t2"), read("t2", "y"), write("t2", "x"), end("t2"),
            ]
        )
        for algorithm in FAST_PATH_ALGORITHMS:
            assert_packed_agrees(trace, algorithm)

    def test_repeated_unary_reads_hit_flush_memo(self):
        # Same thread re-reading the same variable with an unchanged
        # clock takes the memoized no-op path; a clock change in between
        # (via the lock) must fall back to a real flush.
        trace = Trace(
            [
                write("t1", "x"),
                read("t2", "x"), read("t2", "x"), read("t2", "x"),
                begin("t1"), write("t1", "x"), end("t1"),
                read("t2", "x"),
            ]
        )
        for algorithm in FAST_PATH_ALGORITHMS:
            assert_packed_agrees(trace, algorithm)

    def test_string_then_packed_on_same_checker(self):
        # A checker may consume string events and then a packed suffix:
        # interners must line up by name, not by position.
        trace = Trace(
            [
                begin("t1"), write("t1", "x"),
                begin("t2"), read("t2", "x"), write("t2", "y"), end("t2"),
                read("t1", "y"), end("t1"),
            ]
        )
        packed = pack(trace)
        for algorithm in FAST_PATH_ALGORITHMS:
            checker = make_checker(algorithm)
            for event in list(trace)[:4]:
                checker.process(event)
            result = checker.run_packed(packed, start=4)
            assert not result.serializable
            assert result.violation.event_idx == 6
