"""Live-instrumentation tests (real Python threads)."""

import threading

import pytest

from repro import Op, TraceRecorder, check_trace, validate
from repro.trace.metainfo import metainfo


class TestSingleThread:
    def test_shared_var_records_accesses(self):
        recorder = TraceRecorder()
        x = recorder.shared("x", initial=0)
        x.set(5)
        assert x.get() == 5
        assert x.value == 5
        x.value = 7
        trace = recorder.trace()
        ops = [e.op for e in trace]
        assert ops == [Op.WRITE, Op.READ, Op.READ, Op.WRITE]
        assert all(e.target == "x" for e in trace)

    def test_atomic_context_manager(self):
        recorder = TraceRecorder()
        with recorder.atomic("increment"):
            recorder.shared("c").set(1)
        trace = recorder.trace()
        assert trace[0].op is Op.BEGIN
        assert trace[0].target == "increment"
        assert trace[-1].op is Op.END

    def test_atomic_closes_on_exception(self):
        recorder = TraceRecorder()
        with pytest.raises(RuntimeError):
            with recorder.atomic():
                raise RuntimeError("boom")
        trace = recorder.trace()
        assert [e.op for e in trace] == [Op.BEGIN, Op.END]

    def test_lock_context_manager(self):
        recorder = TraceRecorder()
        lock = recorder.lock("l")
        with lock:
            recorder.shared("x").set(1)
        trace = recorder.trace()
        assert [e.op for e in trace] == [Op.ACQUIRE, Op.WRITE, Op.RELEASE]
        validate(trace)

    def test_len_and_snapshot_isolation(self):
        recorder = TraceRecorder()
        recorder.shared("x").set(1)
        snapshot = recorder.trace()
        recorder.shared("x").set(2)
        assert len(snapshot) == 1
        assert len(recorder) == 2


class TestSpawnJoin:
    def test_fork_join_events(self):
        recorder = TraceRecorder()
        x = recorder.shared("x", initial=0)

        def child():
            x.set(1)

        thread = recorder.spawn(child)
        recorder.join(thread)
        trace = recorder.trace()
        validate(trace, require_forked_threads=True)
        ops = [e.op for e in trace]
        assert ops[0] is Op.FORK
        assert ops[-1] is Op.JOIN
        # The child's write is between fork and join.
        child_write = next(e for e in trace if e.op is Op.WRITE)
        assert child_write.thread == trace[0].target

    def test_join_foreign_thread_rejected(self):
        recorder = TraceRecorder()
        alien = threading.Thread(target=lambda: None)
        alien.start()
        with pytest.raises(ValueError, match="not spawned"):
            recorder.join(alien)
        alien.join()

    def test_many_children_unique_names(self):
        recorder = TraceRecorder()
        x = recorder.shared("x", initial=0)
        threads = [recorder.spawn(lambda: x.get()) for _ in range(4)]
        for thread in threads:
            recorder.join(thread)
        trace = recorder.trace()
        forked = [e.target for e in trace if e.op is Op.FORK]
        assert len(set(forked)) == 4
        validate(trace, require_forked_threads=True)


class TestEndToEnd:
    def test_deterministic_handoff_violation(self):
        """A controlled two-thread interleaving reproducing ρ2 with real
        threads: threading.Event gates force the crossed order."""
        recorder = TraceRecorder()
        x = recorder.shared("x", initial=0)
        y = recorder.shared("y", initial=0)
        t1_wrote_x = threading.Event()
        t2_wrote_y = threading.Event()

        def t1_body():
            with recorder.atomic("t1-block"):
                x.set(1)
                t1_wrote_x.set()
                t2_wrote_y.wait()
                y.get()

        def t2_body():
            with recorder.atomic("t2-block"):
                t1_wrote_x.wait()
                x.get()
                y.set(1)
                t2_wrote_y.set()

        t1 = recorder.spawn(t1_body)
        t2 = recorder.spawn(t2_body)
        recorder.join(t1)
        recorder.join(t2)
        trace = recorder.trace()
        validate(trace, require_forked_threads=True)
        result = check_trace(trace)
        assert not result.serializable

    def test_locked_version_is_serializable(self):
        recorder = TraceRecorder()
        x = recorder.shared("x", initial=0)
        lock = recorder.lock("guard")
        barrier = threading.Barrier(2)

        def body():
            barrier.wait()
            for _ in range(5):
                with recorder.atomic("incr"):
                    with lock:
                        x.set(x.get() + 1)

        threads = [recorder.spawn(body) for _ in range(2)]
        for thread in threads:
            recorder.join(thread)
        trace = recorder.trace()
        validate(trace, require_forked_threads=True)
        assert check_trace(trace).serializable
        assert x.get() == 10
        assert metainfo(trace).transactions == 10
