"""Atomicity specification and trace filtering tests."""

import pytest

from repro import AtomicitySpec, apply_spec, load_spec, parse_trace, save_spec
from repro.spec.atomicity_spec import NAIVE_EXCLUDED_METHODS
from repro.trace.filters import strip_labels, strip_markers
from repro.trace.metainfo import metainfo


class TestSpecModel:
    def test_explicit_spec(self):
        spec = AtomicitySpec.of(["transfer", "deposit"])
        assert spec.is_atomic("transfer")
        assert not spec.is_atomic("main")

    def test_naive_spec(self):
        spec = AtomicitySpec.naive()
        assert spec.is_atomic("anyMethod")
        assert not spec.is_atomic("main")
        assert not spec.is_atomic("run")
        assert NAIVE_EXCLUDED_METHODS == {"main", "run"}

    def test_none_spec(self):
        spec = AtomicitySpec.none()
        assert not spec.is_atomic("anything")

    def test_unlabeled_markers_always_atomic(self):
        assert AtomicitySpec.none().is_atomic(None)
        assert AtomicitySpec.naive().is_atomic(None)

    def test_load_save_roundtrip(self, tmp_path):
        spec = AtomicitySpec.of(["a", "b", "c"], name="demo")
        path = tmp_path / "demo.spec"
        save_spec(spec, path)
        loaded = load_spec(path)
        assert loaded.atomic_methods == spec.atomic_methods
        assert loaded.name == "demo"

    def test_load_skips_comments(self, tmp_path):
        path = tmp_path / "s.spec"
        path.write_text("# comment\nfoo\n\nbar\n")
        assert load_spec(path).atomic_methods == {"foo", "bar"}

    def test_save_naive_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no finite file form"):
            save_spec(AtomicitySpec.naive(), tmp_path / "x")


RAW = """
t1|begin(main)
t1|begin(transfer)
t1|w(x)
t1|end(transfer)
t1|begin(log)
t1|r(x)
t1|end(log)
t1|end(main)
"""


class TestApplySpec:
    def test_realistic_spec_keeps_only_listed(self):
        trace = parse_trace(RAW)
        filtered = apply_spec(trace, AtomicitySpec.of(["transfer"]))
        info = metainfo(filtered)
        assert info.transactions == 1
        assert info.events == 4  # begin, w, end for transfer + r(x) + ...

    def test_naive_spec_drops_main(self):
        trace = parse_trace(RAW)
        filtered = apply_spec(trace, AtomicitySpec.naive())
        info = metainfo(filtered)
        assert info.transactions == 2  # transfer and log, not main

    def test_matching_ends_follow_begin_decision(self):
        trace = parse_trace(
            """
            t1|begin(keep)
            t1|begin(drop)
            t1|w(x)
            t1|end(drop)
            t1|end(keep)
            """
        )
        filtered = apply_spec(trace, AtomicitySpec.of(["keep"]))
        ops = [str(e) for e in filtered]
        assert ops == ["t1|begin(keep)", "t1|w(x)", "t1|end(keep)"]

    def test_unbalanced_end_raises(self):
        trace = parse_trace("t1|end(x)")
        with pytest.raises(ValueError, match="unmatched end"):
            apply_spec(trace, AtomicitySpec.naive())

    def test_strip_markers(self):
        trace = parse_trace(RAW)
        stripped = strip_markers(trace)
        assert metainfo(stripped).transactions == 0
        assert metainfo(stripped).events == 2

    def test_strip_labels(self):
        trace = parse_trace(RAW)
        unlabeled = strip_labels(trace)
        assert all(
            e.target is None for e in unlabeled if e.is_marker
        )
        assert metainfo(unlabeled).transactions == metainfo(trace).transactions
