"""The shared jittered-backoff policy (``repro.service.backoff``).

One policy object paces every retry loop in the service and cluster
layers — client reconnects, BUSY waits, cluster routing, seed joins.
These tests pin its contract: exponential growth to a hard cap, full
jitter in ``(delay/2, delay]``, and byte-for-byte determinism under a
seeded RNG (what makes the chaos/cluster drills reproducible).
"""

import random

import pytest

from repro.service import BACKOFF_CAP, Backoff
from repro.service.backoff import (
    DEFAULT_BUSY_DELAY,
    DEFAULT_RECONNECT_DELAY,
)


class TestBounds:
    def test_next_jitters_within_half_open_interval(self):
        policy = Backoff(initial=0.1, cap=10.0, seed=7)
        for _ in range(50):
            ceiling = policy.delay
            value = policy.next()
            assert ceiling / 2 < value <= ceiling

    def test_delay_never_exceeds_cap(self):
        policy = Backoff(initial=0.05, cap=0.5, seed=1)
        for _ in range(20):
            assert policy.next() <= 0.5
        assert policy.delay == 0.5

    def test_growth_is_exponential_until_capped(self):
        policy = Backoff(initial=0.05, cap=0.5, factor=2.0, seed=0)
        ceilings = []
        for _ in range(6):
            ceilings.append(policy.delay)
            policy.next()
        assert ceilings == [0.05, 0.1, 0.2, 0.4, 0.5, 0.5]

    def test_custom_factor(self):
        policy = Backoff(initial=1.0, cap=100.0, factor=3.0, seed=0)
        policy.next()
        assert policy.delay == 3.0
        policy.next()
        assert policy.delay == 9.0

    def test_reset_returns_to_initial(self):
        policy = Backoff(initial=0.05, cap=0.5, seed=2)
        for _ in range(5):
            policy.next()
        assert policy.delay == 0.5
        policy.reset()
        assert policy.delay == 0.05


class TestDeterminism:
    def test_equal_seeds_produce_equal_sequences(self):
        a = Backoff(initial=0.05, seed=42)
        b = Backoff(initial=0.05, seed=42)
        assert [a.next() for _ in range(10)] == [
            b.next() for _ in range(10)
        ]

    def test_different_seeds_diverge(self):
        a = Backoff(initial=0.05, seed=1)
        b = Backoff(initial=0.05, seed=2)
        assert [a.next() for _ in range(10)] != [
            b.next() for _ in range(10)
        ]

    def test_injected_rng_is_used(self):
        rng = random.Random(99)
        expected_rng = random.Random(99)
        policy = Backoff(initial=0.1, cap=1.0, rng=rng)
        got = policy.next()
        assert got == 0.1 * (0.5 + 0.5 * expected_rng.random())

    def test_unseeded_instances_still_jitter_in_bounds(self):
        policy = Backoff(initial=0.2, cap=0.2)
        for _ in range(10):
            assert 0.1 < policy.next() <= 0.2


class TestValidation:
    @pytest.mark.parametrize("initial", [0.0, -0.1])
    def test_nonpositive_initial_rejected(self, initial):
        with pytest.raises(ValueError):
            Backoff(initial=initial)

    def test_cap_below_initial_rejected(self):
        with pytest.raises(ValueError):
            Backoff(initial=1.0, cap=0.5)

    def test_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            Backoff(initial=0.1, factor=0.9)

    def test_defaults_are_sane(self):
        assert 0 < DEFAULT_BUSY_DELAY < DEFAULT_RECONNECT_DELAY
        assert DEFAULT_RECONNECT_DELAY <= BACKOFF_CAP
        policy = Backoff()
        assert policy.delay <= BACKOFF_CAP
