"""Sharded AeroDrome tests: verdict equivalence and the synchronization
profile backing the paper's §6 distributed-implementation claim."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Trace, begin, check_trace, end, read, write
from repro.core.sharded import ShardedAeroDromeChecker
from repro.sim.random_traces import RandomTraceConfig, random_trace


def test_rejects_zero_shards():
    with pytest.raises(ValueError, match="at least one"):
        ShardedAeroDromeChecker(n_object_shards=0)


def test_paper_traces_all_shard_counts(paper_traces):
    for trace, serializable in paper_traces:
        for shards in (1, 2, 5):
            checker = ShardedAeroDromeChecker(n_object_shards=shards)
            result = checker.run(trace)
            assert result.serializable == serializable, (trace.name, shards)


def test_violation_event_matches_aerodrome(rho2, rho3, rho4):
    for trace in (rho2, rho3, rho4):
        expected = check_trace(trace, algorithm="aerodrome-basic").violation
        actual = ShardedAeroDromeChecker().run(trace).violation
        assert actual.event_idx == expected.event_idx, trace.name
        assert actual.thread == expected.thread, trace.name


@settings(max_examples=150, deadline=None)
@given(
    seed=st.integers(0, 10**9),
    shards=st.integers(1, 6),
)
def test_matches_basic_aerodrome_on_random_traces(seed, shards):
    trace = random_trace(
        seed,
        RandomTraceConfig(
            n_threads=4, n_vars=4, n_locks=2, length=50, p_begin=0.2, p_end=0.2
        ),
    )
    expected = check_trace(trace, algorithm="aerodrome-basic")
    result = ShardedAeroDromeChecker(n_object_shards=shards).run(trace)
    assert result.serializable == expected.serializable


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10**9))
def test_matches_with_forks(seed):
    trace = random_trace(
        seed,
        RandomTraceConfig(n_threads=3, n_vars=3, n_locks=1, length=40,
                          with_forks=True),
    )
    expected = check_trace(trace, algorithm="aerodrome-basic")
    result = ShardedAeroDromeChecker().run(trace)
    assert result.serializable == expected.serializable


def test_reset_clears_stats(rho2):
    checker = ShardedAeroDromeChecker()
    checker.run(rho2)
    assert checker.stats.total > 0
    checker.reset()
    assert checker.stats.total == 0
    assert checker.violation is None


class TestSyncProfile:
    def test_memory_access_touches_one_object_shard(self):
        # A trace with only one thread and one variable: each access is
        # one local step plus one remote (object shard) step; no end
        # fan-out beyond the shard broadcast.
        trace = Trace([write("t1", "x"), read("t1", "x")])
        checker = ShardedAeroDromeChecker(n_object_shards=4)
        checker.run(trace)
        assert checker.stats.local_accesses == 2
        assert checker.stats.remote_accesses == 2
        assert checker.stats.end_broadcasts == 0

    def test_end_fanout_counts_broadcasts(self):
        trace = Trace([begin("t1"), write("t1", "x"), end("t1")])
        shards = 3
        checker = ShardedAeroDromeChecker(n_object_shards=shards)
        checker.run(trace)
        # End event: no other thread shards, one broadcast per object shard.
        assert checker.stats.end_broadcasts == shards

    def test_remote_fraction_bounded(self):
        trace = random_trace(
            7, RandomTraceConfig(n_threads=4, n_vars=6, n_locks=2, length=200)
        )
        checker = ShardedAeroDromeChecker(n_object_shards=4)
        checker.run(trace)
        fraction = checker.stats.remote_fraction()
        assert 0.0 < fraction < 1.0

    def test_empty_trace_remote_fraction_zero(self):
        checker = ShardedAeroDromeChecker()
        assert checker.stats.remote_fraction() == 0.0

    def test_shard_routing_is_stable(self):
        checker = ShardedAeroDromeChecker(n_object_shards=4)
        assert checker.shard_of("x") is checker.shard_of("x")

    def test_load_spreads_across_shards(self):
        trace = random_trace(
            11,
            RandomTraceConfig(n_threads=3, n_vars=12, n_locks=0, length=300),
        )
        checker = ShardedAeroDromeChecker(n_object_shards=4)
        checker.run(trace)
        loaded = {s for s, n in checker.stats.per_shard.items() if n > 0}
        assert len(loaded) >= 2
