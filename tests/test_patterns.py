"""Workload-pattern tests: known verdicts under known schedules."""

import pytest

from repro import check_trace, conflict_serializable, metainfo
from repro.sim.runtime import execute
from repro.sim.scheduler import RandomScheduler, RoundRobinScheduler
from repro.sim.workloads.patterns import (
    bank_transfer,
    dining_philosophers,
    double_checked_flag,
    fork_join_pipeline,
    locked_counter,
    producer_consumer,
    read_shared_write_private,
    unprotected_counter,
)

FINE = RoundRobinScheduler(quantum=1)


def verdicts(program, scheduler):
    trace = execute(program, scheduler, validate_output=True)
    oracle = conflict_serializable(trace)
    aero = check_trace(trace, "aerodrome").serializable
    velo = check_trace(trace, "velodrome").serializable
    assert aero == velo == oracle
    return oracle


class TestSerializablePatterns:
    @pytest.mark.parametrize("seed", range(5))
    def test_locked_counter_any_schedule(self, seed):
        assert verdicts(locked_counter(), RandomScheduler(seed=seed))

    @pytest.mark.parametrize("seed", range(5))
    def test_guarded_bank_transfer(self, seed):
        assert verdicts(bank_transfer(guarded=True), RandomScheduler(seed=seed))

    @pytest.mark.parametrize("seed", range(5))
    def test_guarded_producer_consumer(self, seed):
        assert verdicts(
            producer_consumer(guarded=True), RandomScheduler(seed=seed)
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_dining_philosophers(self, seed):
        assert verdicts(dining_philosophers(), RandomScheduler(seed=seed))

    @pytest.mark.parametrize("seed", range(3))
    def test_fork_join_pipeline(self, seed):
        assert verdicts(fork_join_pipeline(), RandomScheduler(seed=seed))

    @pytest.mark.parametrize("seed", range(3))
    def test_read_shared_write_private(self, seed):
        assert verdicts(
            read_shared_write_private(), RandomScheduler(seed=seed)
        )


class TestViolatingPatterns:
    def test_unprotected_counter_fine_grained(self):
        assert not verdicts(unprotected_counter(), RoundRobinScheduler(quantum=1))

    def test_unprotected_counter_serial_schedule_ok(self):
        # Coarse scheduling runs each block to completion: serializable.
        assert verdicts(unprotected_counter(), RoundRobinScheduler(quantum=1000))

    def test_racy_bank_transfer_some_schedule_violates(self):
        # Atomicity violations are schedule-dependent (the lockstep
        # round-robin interleaving happens to serialize this one); some
        # random schedule must expose the lost-update cycle.
        outcomes = [
            verdicts(bank_transfer(guarded=False), RandomScheduler(seed=seed))
            for seed in range(10)
        ]
        assert not all(outcomes)

    def test_racy_producer_consumer_fine_grained(self):
        assert not verdicts(producer_consumer(guarded=False), FINE)

    def test_double_checked_flag_fine_grained(self):
        assert not verdicts(double_checked_flag(), FINE)


class TestShapes:
    def test_locked_counter_trace_shape(self):
        trace = execute(locked_counter(n_threads=2, increments=3), FINE)
        info = metainfo(trace)
        assert info.threads == 2
        assert info.transactions == 6
        assert info.locks == 1

    def test_philo_shape(self):
        trace = execute(dining_philosophers(n=5, bites=1), FINE)
        info = metainfo(trace)
        assert info.threads == 5
        assert info.locks == 5
