"""≤CHB timestamp tests: unit cases plus brute-force cross-check."""

from hypothesis import given, settings, strategies as st

from repro import Trace, acquire, begin, end, fork, join, read, release, trace_of, write
from repro.analysis.chb import chb_pairs, compute_chb
from repro.sim.random_traces import RandomTraceConfig, random_trace


def brute_force_chb(trace: Trace):
    """Transitive closure over directly-conflicting pairs (paper §2)."""
    n = len(trace)
    events = trace.events

    def conflicting(a, b) -> bool:
        if a.thread == b.thread:
            return True
        if a.is_fork and a.target == b.thread:
            return True
        if b.is_join and b.target == a.thread:
            return True
        if (
            a.is_memory_access
            and b.is_memory_access
            and a.target == b.target
            and (a.is_write or b.is_write)
        ):
            return True
        if a.is_release and b.is_acquire and a.target == b.target:
            return True
        return False

    reach = [[False] * n for _ in range(n)]
    for i in range(n):
        reach[i][i] = True
        for j in range(i + 1, n):
            if conflicting(events[i], events[j]):
                reach[i][j] = True
    # Floyd-Warshall restricted to forward edges.
    for k in range(n):
        for i in range(k):
            if reach[i][k]:
                row_i, row_k = reach[i], reach[k]
                for j in range(k + 1, n):
                    if row_k[j]:
                        row_i[j] = True
    return {(i, j) for i in range(n) for j in range(i + 1, n) if reach[i][j]}


class TestUnitCases:
    def test_program_order(self):
        trace = trace_of(read("t", "x"), read("t", "y"))
        assert (0, 1) in chb_pairs(trace)

    def test_read_read_not_ordered(self):
        trace = trace_of(read("t1", "x"), read("t2", "x"))
        assert (0, 1) not in chb_pairs(trace)

    def test_write_read_ordered(self):
        trace = trace_of(write("t1", "x"), read("t2", "x"))
        assert (0, 1) in chb_pairs(trace)

    def test_release_acquire_ordered(self):
        trace = trace_of(
            acquire("t1", "l"),
            release("t1", "l"),
            acquire("t2", "l"),
        )
        pairs = chb_pairs(trace)
        assert (1, 2) in pairs
        assert (0, 2) in pairs  # transitively through the release

    def test_acquire_acquire_not_directly_ordered(self):
        # Different locks: no ordering between the two threads at all.
        trace = trace_of(acquire("t1", "l1"), acquire("t2", "l2"))
        assert (0, 1) not in chb_pairs(trace)

    def test_fork_orders_child(self):
        trace = trace_of(write("t1", "a"), fork("t1", "t2"), write("t2", "b"))
        pairs = chb_pairs(trace)
        assert (0, 2) in pairs and (1, 2) in pairs

    def test_join_orders_parent(self):
        trace = trace_of(fork("t1", "t2"), write("t2", "b"), join("t1", "t2"), write("t1", "a"))
        pairs = chb_pairs(trace)
        assert (1, 2) in pairs and (1, 3) in pairs

    def test_transitivity_through_variable(self, rho1):
        # Example 1: e1 ≤CHB e5 because e1-e2 (thread), e2-e4 (w-r on x),
        # e4-e5 (thread). Indices are 0-based here.
        index = compute_chb(rho1)
        assert index.ordered(0, 4)

    def test_reflexive_and_order_respecting(self, rho2):
        index = compute_chb(rho2)
        assert index.ordered(3, 3)
        assert not index.ordered(5, 2)

    def test_no_chb_cycle_path_in_rho3(self, rho3):
        # Example 4: no ≤CHB path starting and ending in one transaction.
        index = compute_chb(rho3)
        # t1's events are 0,2,4,6; t2's are 1,3,5,7.
        # e3(w x by t1) ≤CHB e6(r x by t2): 2 -> 5
        assert index.ordered(2, 5)
        # but nothing of t2 is CHB-before anything of t1 except via y:
        assert index.ordered(3, 4)  # w(y) -> r(y)
        # begin of t1 must not reach back into t1 through t2:
        assert not index.ordered(0, 3)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_chb_matches_brute_force(seed):
    trace = random_trace(
        seed, RandomTraceConfig(n_threads=3, n_vars=3, n_locks=2, length=24)
    )
    assert set(chb_pairs(trace)) == brute_force_chb(trace)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_chb_matches_brute_force_with_forks(seed):
    trace = random_trace(
        seed,
        RandomTraceConfig(
            n_threads=4, n_vars=2, n_locks=1, length=20, with_forks=True
        ),
    )
    assert set(chb_pairs(trace)) == brute_force_chb(trace)
