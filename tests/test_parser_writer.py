"""Parser/writer unit tests and round-trip properties."""

import io

import pytest
from hypothesis import given, strategies as st

from repro import (
    Op,
    Trace,
    dump_trace,
    iter_events,
    load_trace,
    parse_trace,
    save_trace,
)
from repro.trace.parser import TraceParseError, parse_line
from repro.trace.writer import format_event


class TestParseLine:
    def test_read(self):
        event = parse_line("t1|r(x)")
        assert (event.thread, event.op, event.target) == ("t1", Op.READ, "x")

    def test_whitespace_tolerated(self):
        event = parse_line("  t1 | acq( l1 )  ")
        assert (event.thread, event.op, event.target) == ("t1", Op.ACQUIRE, "l1")

    def test_begin_without_target(self):
        assert parse_line("t|begin").target is None

    def test_begin_with_label(self):
        assert parse_line("t|begin(work)").target == "work"

    def test_case_insensitive_mnemonic(self):
        assert parse_line("t|R(x)").op is Op.READ

    @pytest.mark.parametrize(
        "line",
        [
            "no-pipe",
            "t|unknownop(x)",
            "t|r",  # read requires a target
            "t|r()",  # empty target
            "|r(x)",  # empty thread
        ],
    )
    def test_malformed_lines(self, line):
        with pytest.raises(TraceParseError):
            parse_line(line)

    def test_error_carries_line_number(self):
        with pytest.raises(TraceParseError) as excinfo:
            parse_line("garbage", line_number=42)
        assert excinfo.value.line_number == 42


class TestParseTrace:
    def test_skips_comments_and_blanks(self):
        trace = parse_trace("# header\n\nt1|w(x)\n  \n# trailing\nt2|r(x)\n")
        assert len(trace) == 2

    def test_iter_events_is_lazy(self):
        lines = iter(["t1|w(x)", "bogus line"])
        stream = iter_events(lines)
        first = next(stream)
        assert first.op is Op.WRITE
        with pytest.raises(TraceParseError):
            next(stream)


class TestRoundTrip:
    def test_dump_and_parse(self, rho4):
        text = dump_trace(rho4)
        again = parse_trace(text)
        assert again == rho4

    def test_save_and_load_path(self, tmp_path, rho2):
        path = tmp_path / "rho2.std"
        save_trace(rho2, path)
        assert load_trace(path) == rho2
        assert load_trace(path).name == "rho2"

    def test_save_and_load_stream(self, rho1):
        buffer = io.StringIO()
        save_trace(rho1, buffer)
        buffer.seek(0)
        assert load_trace(buffer) == rho1

    def test_format_event_matches_parser(self):
        from repro import acquire, begin

        for event in (acquire("t", "l"), begin("t", "m")):
            assert parse_line(format_event(event)) == event


_identifiers = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_", min_size=1, max_size=8
)


@st.composite
def _traces(draw):
    trace = Trace()
    kinds = draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    [Op.READ, Op.WRITE, Op.ACQUIRE, Op.RELEASE, Op.FORK, Op.JOIN]
                ),
                _identifiers,
                _identifiers,
            ),
            max_size=30,
        )
    )
    from repro.trace.events import Event

    for op, thread, target in kinds:
        trace.append(Event(thread, op, target))
    return trace


@given(_traces())
def test_roundtrip_property(trace):
    assert parse_trace(dump_trace(trace)) == trace
