"""Chaos drills and the hardening they pin down.

Every scenario in :mod:`repro.faults.scenarios` must terminate in
either *recovered* (report equals the offline run) or a *documented
typed degradation* — never a hang, a corrupt report, or a dead shard
taking its tenants down. These tests run the full seeded matrix (the
same entry point as CI's ``chaos-smoke`` job and ``repro chaos``),
plus targeted checks on the hardening pieces: client deadlines,
typed unreachable/deadline exit codes, quarantine isolation, stats
counters, and ``session=... shard=...`` log attribution.
"""

import logging

import pytest

from repro.faults import FaultPlan, injected, uninstall
from repro.faults.scenarios import (
    DEFAULT_SEED,
    SCENARIOS,
    run_plan_drill,
    run_scenario,
)
from repro.service import (
    DeadlineExceeded,
    ServiceClient,
    ServiceError,
    ServiceServer,
    ServiceUnreachable,
    submit_trace,
)
from repro.cli import main
from repro.sim import trace_zoo

ANALYSES = ["aerodrome", "races", "lockset"]


@pytest.fixture(autouse=True)
def no_leftover_plan():
    uninstall()
    yield
    uninstall()


# -- the seeded scenario matrix ---------------------------------------------


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_terminates_in_pinned_outcome(name):
    result = run_scenario(name, seed=DEFAULT_SEED)
    assert result.ok, "\n".join(result.checks)
    assert result.outcome in ("recovered", "degraded")
    assert result.injected, "the drill must actually inject something"


def test_plan_drill_runs_arbitrary_plans():
    plan = FaultPlan(seed=5).add(
        "wire.send", op="corrupt", after_n=2, times=1, match="drill-plan"
    )
    result = run_plan_drill(plan)
    assert result.ok, "\n".join(result.checks)
    assert result.outcome == "recovered"  # corrupt frame healed by retry


# -- client deadlines and typed failures ------------------------------------


def test_unreachable_server_is_typed():
    with pytest.raises(ServiceUnreachable) as info:
        ServiceClient("127.0.0.1", 1, connect_timeout=0.5)
    assert info.value.code == "unreachable"


def test_deadline_bounds_a_stalled_submission():
    events = list(trace_zoo.get("paper-rho2").trace())
    plan = FaultPlan(seed=2).add(
        "shard.inbox", op="stall", times=None, match="stall-forever"
    )
    with ServiceServer(port=0).start() as server:
        with injected(plan):
            with pytest.raises(DeadlineExceeded) as info:
                submit_trace(
                    server.host, server.port, events, ANALYSES,
                    session_id="stall-forever", deadline=0.4, jitter_seed=2,
                )
        assert info.value.code == "deadline"
        # the server survives and still answers a healthy client
        spec = trace_zoo.get("paper-rho1")
        doc = submit_trace(
            server.host, server.port, list(spec.trace()), ANALYSES,
            name=spec.name, deadline=30.0,
        )
        assert doc["verdict"] in ("pass", "fail", "undecided")


def test_deadline_bounds_the_connect():
    # a spent budget fails before any network I/O happens
    with pytest.raises(DeadlineExceeded):
        ServiceClient("127.0.0.1", 9, deadline=0.0, connect_timeout=5.0)


# -- quarantine isolation ----------------------------------------------------


def test_quarantine_isolates_one_tenant(caplog):
    spec = trace_zoo.get("paper-rho2")
    events = list(spec.trace())
    plan = FaultPlan(seed=3).add(
        "analysis.step", op="raise", after_n=1, times=None, match="toxic"
    )
    with ServiceServer(port=0, shards=2).start() as server:
        with injected(plan):
            with caplog.at_level(logging.ERROR, logger="repro.service"):
                with pytest.raises(ServiceError) as info:
                    submit_trace(
                        server.host, server.port, events, ANALYSES,
                        name="toxic", session_id="q-victim",
                        batch=3, deadline=30.0,
                    )
        assert info.value.code == "analysis"
        assert "FaultInjected" in str(info.value)
        # satellite guarantee: server-side logs carry attribution
        attributed = [
            r.getMessage() for r in caplog.records
            if "session=q-victim" in r.getMessage()
        ]
        assert attributed and all("shard=" in m for m in attributed)
        # the shard survives: a sibling on the same server still works
        doc = submit_trace(
            server.host, server.port, events, ANALYSES,
            name=spec.name, deadline=30.0,
        )
        assert doc["trace"]["events"] == len(events)
        with ServiceClient(server.host, server.port) as client:
            stats = client.stats()
        assert stats["sessions_quarantined"] == 1
        assert stats["events_dropped"] > 0


# -- stats round trip --------------------------------------------------------


def test_service_stats_round_trip_includes_hardening_counters():
    spec = trace_zoo.get("paper-rho1")
    plan = FaultPlan(seed=4).add(
        "shard.inbox", op="stall", times=2, match="busy-one"
    )
    with ServiceServer(port=0, shards=2).start() as server:
        with injected(plan):
            submit_trace(
                server.host, server.port, list(spec.trace()), ANALYSES,
                name=spec.name, session_id="busy-one",
                deadline=30.0, jitter_seed=4,
            )
        with ServiceClient(server.host, server.port) as client:
            stats = client.stats()
    # router aggregates
    for key in (
        "sessions_quarantined", "events_dropped",
        "checkpoint_failures", "shard_restarts",
    ):
        assert key in stats, key
    for row in stats["shards"]:
        assert "sessions_quarantined" in row
        assert "checkpoint_failures" in row
    # server-level counters ride the same STATS reply
    assert stats["server"]["busy_replies"] >= 2
    assert stats["server"]["read_timeouts"] == 0
    assert stats["server"]["wire_errors"] == 0


# -- CLI surface -------------------------------------------------------------


class TestChaosCli:
    def test_list(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_single_scenario_json(self, capsys):
        import json

        assert main(
            ["chaos", "--scenario", "inbox-stall", "--json"]
        ) == 0
        docs = json.loads(capsys.readouterr().out)
        assert docs[0]["scenario"] == "inbox-stall"
        assert docs[0]["ok"] is True
        assert docs[0]["injected"]

    def test_plan_file(self, tmp_path, capsys):
        import json

        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps({
            "version": "repro-faults/1",
            "seed": 6,
            "rules": [{
                "site": "server.events", "op": "duplicate",
                "times": None, "match": "drill-plan",
            }],
        }))
        assert main(["chaos", "--plan", str(plan_file)]) == 0
        out = capsys.readouterr().out
        assert "plan-drill" in out and "recovered" in out

    def test_bad_usage(self, capsys):
        assert main(["chaos"]) == 2
        assert main(["chaos", "--scenario", "nope"]) == 2
        capsys.readouterr()

    def test_submit_unreachable_exit_code(self, tmp_path, capsys):
        trace = tmp_path / "t.std"
        trace.write_text("t1|begin\nt1|w(x)\nt1|end\n")
        assert main(
            ["submit", str(trace), "--port", "59998"]
        ) == 3
        err = capsys.readouterr().err
        assert "no service at" in err
        assert "Traceback" not in err
