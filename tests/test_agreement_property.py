"""The central correctness property: all checkers agree with the oracle.

On traces whose transactions are all completed (the Theorem 3 regime),
AeroDrome (basic and optimized), Velodrome (with and without GC) and
DoubleChecker must all produce exactly the oracle's verdict — plain
conflict serializability per Definition 1.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import check_trace, conflict_serializable
from repro.sim.random_traces import RandomTraceConfig, random_trace

ALGORITHMS = [
    "aerodrome",
    "aerodrome-basic",
    "aerodrome-sharded",
    "velodrome",
    "velodrome-nogc",
    "velodrome-pk",
    "doublechecker",
]


def assert_all_agree(trace):
    expected = conflict_serializable(trace)
    for algorithm in ALGORITHMS:
        result = check_trace(trace, algorithm=algorithm)
        assert result.serializable == expected, (
            f"{algorithm} disagrees with oracle on {trace.name}: "
            f"{result.serializable} != {expected}\n"
            + "\n".join(str(e) for e in trace)
        )


@settings(max_examples=300, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_agreement_small_dense(seed):
    trace = random_trace(
        seed,
        RandomTraceConfig(
            n_threads=3, n_vars=2, n_locks=1, length=25, p_begin=0.25, p_end=0.2
        ),
    )
    assert_all_agree(trace)


@settings(max_examples=150, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_agreement_medium(seed):
    trace = random_trace(
        seed,
        RandomTraceConfig(n_threads=4, n_vars=4, n_locks=2, length=60),
    )
    assert_all_agree(trace)


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_agreement_with_forks(seed):
    trace = random_trace(
        seed,
        RandomTraceConfig(
            n_threads=4, n_vars=3, n_locks=1, length=40, with_forks=True
        ),
    )
    assert_all_agree(trace)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_agreement_deep_nesting(seed):
    trace = random_trace(
        seed,
        RandomTraceConfig(
            n_threads=3,
            n_vars=2,
            n_locks=1,
            length=40,
            p_begin=0.3,
            p_end=0.2,
            max_nesting=4,
        ),
    )
    assert_all_agree(trace)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_agreement_lock_heavy(seed):
    trace = random_trace(
        seed,
        RandomTraceConfig(
            n_threads=4, n_vars=2, n_locks=3, length=50, p_lock=0.45
        ),
    )
    assert_all_agree(trace)


@pytest.mark.parametrize("seed", range(25))
def test_agreement_fixed_seeds_regression(seed):
    """Deterministic regression net independent of hypothesis' shrinking."""
    trace = random_trace(
        seed, RandomTraceConfig(n_threads=4, n_vars=3, n_locks=2, length=80)
    )
    assert_all_agree(trace)
