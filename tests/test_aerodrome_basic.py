"""Handler-level tests for the basic AeroDrome checker (Algorithm 1)."""

import pytest

from repro import (
    VectorClock,
    acquire,
    begin,
    end,
    fork,
    join,
    read,
    release,
    trace_of,
    write,
)
from repro.core.aerodrome import AeroDromeChecker


def run(*events):
    checker = AeroDromeChecker()
    return checker, checker.run(trace_of(*events))


class TestBeginEnd:
    def test_begin_increments_local_component(self):
        checker, _ = run(begin("t1"))
        assert checker.thread_clock("t1") == VectorClock([2])
        assert checker.begin_clock("t1") == VectorClock([2])

    def test_nested_begin_ignored(self):
        checker, _ = run(begin("t1"), begin("t1"))
        assert checker.thread_clock("t1") == VectorClock([2])

    def test_sequential_transactions_increment(self):
        checker, _ = run(begin("t1"), end("t1"), begin("t1"))
        assert checker.thread_clock("t1") == VectorClock([3])

    def test_unmatched_end_raises(self):
        checker = AeroDromeChecker()
        with pytest.raises(ValueError, match="end without matching begin"):
            checker.run(trace_of(end("t1")))


class TestLocks:
    def test_acquire_joins_release_clock(self):
        checker, result = run(
            begin("t1"),
            acquire("t1", "l"),
            release("t1", "l"),
            end("t1"),
            acquire("t2", "l"),
        )
        assert result.serializable
        # t2 inherits t1's clock through the lock.
        assert checker.thread_clock("t2") == VectorClock([2, 1])

    def test_same_thread_reacquire_skips_check(self):
        checker, result = run(
            acquire("t1", "l"), release("t1", "l"), acquire("t1", "l")
        )
        assert result.serializable

    def test_lock_cycle_detected(self):
        # Two transactions interleaved around one lock in a crossed way is
        # impossible (locks are well nested), but a lock plus a variable
        # can cross: t1 holds its block open across t2's locked block.
        _, result = run(
            begin("t1"),
            acquire("t1", "l"),
            write("t1", "x"),
            release("t1", "l"),
            acquire("t2", "l"),
            read("t2", "x"),
            write("t2", "y"),
            release("t2", "l"),
            read("t1", "y"),
            end("t1"),
        )
        assert not result.serializable


class TestForkJoin:
    def test_fork_passes_clock_to_child(self):
        checker, _ = run(begin("t1"), fork("t1", "t2"))
        assert checker.thread_clock("t2") == VectorClock([2, 1])

    def test_join_pulls_child_clock(self):
        checker, _ = run(
            fork("t1", "t2"), write("t2", "x"), join("t1", "t2")
        )
        clock = checker.thread_clock("t1")
        assert clock.get(1) >= 1

    def test_fork_join_cycle(self):
        # t1's open transaction observes the child's work, and the child
        # observed t1's transaction: join closes the cycle.
        _, result = run(
            begin("t1"),
            write("t1", "x"),
            fork("t1", "t2"),
            read("t2", "x"),
            write("t2", "y"),
            read("t1", "y"),
            end("t1"),
        )
        assert not result.serializable


class TestReadsWrites:
    def test_same_thread_write_read_no_check(self):
        _, result = run(begin("t1"), write("t1", "x"), read("t1", "x"), end("t1"))
        assert result.serializable

    def test_write_read_conflict_tracked(self):
        checker, _ = run(write("t1", "x"), read("t2", "x"))
        assert checker.thread_clock("t2") == VectorClock([1, 1])

    def test_write_after_read_joins_read_clock(self):
        checker, _ = run(read("t1", "x"), write("t2", "x"))
        assert checker.thread_clock("t2") == VectorClock([1, 1])

    def test_read_clock_stored_per_thread(self):
        checker, _ = run(read("t1", "x"), read("t2", "x"))
        assert checker.read_clock("t1", "x") == VectorClock([1])
        assert checker.read_clock("t2", "x") == VectorClock([0, 1])

    def test_unread_clocks_are_bottom(self):
        checker, _ = run(read("t1", "x"))
        assert checker.read_clock("t1", "nope").is_bottom()
        assert checker.write_clock("nope").is_bottom()
        assert checker.lock_clock("nope").is_bottom()


class TestUnaryTransactions:
    def test_unary_events_never_violate(self):
        # Same shape as ρ2 but with no atomic blocks at all.
        _, result = run(
            write("t1", "x"),
            read("t2", "x"),
            write("t2", "y"),
            read("t1", "y"),
        )
        assert result.serializable

    def test_unary_against_open_transaction_violates(self):
        _, result = run(
            begin("t1"),
            write("t1", "x"),
            write("t2", "x"),
            read("t1", "x"),
            end("t1"),
        )
        assert not result.serializable


class TestStopping:
    def test_processing_after_violation_raises(self, rho2):
        checker = AeroDromeChecker()
        checker.run(rho2)
        with pytest.raises(RuntimeError, match="already found"):
            checker.process(read("t9", "q"))

    def test_reset_clears_state(self, rho2):
        checker = AeroDromeChecker()
        assert not checker.run(rho2).serializable
        checker.reset()
        assert checker.violation is None
        assert checker.events_processed == 0
        assert checker.run(trace_of(read("t", "x"))).serializable

    def test_stops_at_first_violation(self, rho2):
        checker = AeroDromeChecker()
        result = checker.run(rho2)
        assert result.events_processed == 6
