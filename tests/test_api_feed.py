"""The incremental session lifecycle: run() ≡ feed-in-chunks-then-finish.

The property the streaming service stands on: for every registered
analysis, feeding a trace in arbitrary batches through
``Session.feed`` + ``Session.finish`` produces a report identical to a
one-shot ``Session.run`` — on the string path, the packed path (batches
as slices of one source ``PackedTrace`` *and* raw events interned into
the session's growing store), and across a mid-stream pickle
(checkpoint/restore).
"""

import pickle
import random

import pytest

from repro.api import Session
from repro.api.registry import available_analyses
from repro.sim import trace_zoo
from repro.sim.random_traces import RandomTraceConfig, random_trace
from repro.trace.packed import PackedTrace, pack

#: Specimens covering verdicts, locks, fork/join and early stops.
SPECIMENS = (
    "paper-rho1",
    "paper-rho2",
    "lock-cycle",
    "fork-join-handoff",
    "three-party-cycle",
    "unary-only",
)


def analyses_json(result):
    """The per-analysis reports — the comparable core of a result."""
    return result.to_json()["analyses"]


def chunked(items, sizes, seed=0):
    rng = random.Random(seed)
    out = []
    i = 0
    while i < len(items):
        n = rng.choice(sizes)
        out.append(items[i : i + n])
        i += n
    return out


@pytest.mark.parametrize("name", available_analyses())
@pytest.mark.parametrize("specimen", SPECIMENS)
def test_run_equals_feed_string(name, specimen):
    spec = trace_zoo.get(specimen)
    base = Session(spec.trace(), [name]).run()
    fed = Session(None, [name], name=specimen)
    for batch in chunked(list(spec.trace()), [1, 2, 3, 5]):
        fed.feed(batch)
    assert analyses_json(fed.finish()) == analyses_json(base)


@pytest.mark.parametrize("name", available_analyses())
@pytest.mark.parametrize("specimen", SPECIMENS)
def test_run_equals_feed_packed_slices(name, specimen):
    spec = trace_zoo.get(specimen)
    packed = pack(spec.trace())
    base = Session(packed, [name]).run()
    fed = Session(None, [name], name=specimen)
    source = pack(spec.trace())
    for i in range(0, len(source), 3):
        fed.feed(source[i : i + 3])
    assert analyses_json(fed.finish()) == analyses_json(base)


@pytest.mark.parametrize("name", available_analyses())
def test_run_equals_feed_packed_from_events(name):
    spec = trace_zoo.get("three-party-cycle")
    base = Session(pack(spec.trace()), [name]).run()
    fed = Session(None, [name], name=spec.name)
    events = list(spec.trace())
    fed.feed(events[:4], packed=True)
    fed.feed(events[4:])
    assert analyses_json(fed.finish()) == analyses_json(base)


@pytest.mark.parametrize("packed", [False, True], ids=["string", "packed"])
def test_all_analyses_corun_feed(packed):
    """Every registered analysis co-run on one incremental sweep."""
    names = available_analyses()
    spec = trace_zoo.get("paper-rho4")
    trace = spec.trace()
    base = Session(pack(trace) if packed else trace, names).run()
    fed = Session(None, names, name=spec.name)
    if packed:
        source = pack(spec.trace())
        for i in range(0, len(source), 2):
            fed.feed(source[i : i + 2])
    else:
        for batch in chunked(list(spec.trace()), [1, 4]):
            fed.feed(batch)
    assert analyses_json(fed.finish()) == analyses_json(base)


@pytest.mark.parametrize("packed", [False, True], ids=["string", "packed"])
def test_feed_checkpoint_restore_mid_stream(packed):
    """A pickled mid-stream session resumes to the identical report."""
    names = ["aerodrome", "races", "lockset", "velodrome"]
    spec = trace_zoo.get("three-party-cycle")
    base = Session(
        pack(spec.trace()) if packed else spec.trace(), names
    ).run()
    fed = Session(None, names, name=spec.name)
    if packed:
        source = pack(spec.trace())
        half = len(source) // 2
        fed.feed(source[:half])
        fed = pickle.loads(pickle.dumps(fed))
        fed.feed(source[half:])
    else:
        events = list(spec.trace())
        half = len(events) // 2
        fed.feed(events[:half])
        fed = pickle.loads(pickle.dumps(fed))
        fed.feed(events[half:])
    assert analyses_json(fed.finish()) == analyses_json(base)


def test_restore_then_finish_does_not_double_count():
    """A session checkpointed after its last event must finish with the
    same counters (regression: rebinding used to reset the packed
    step-count baseline mid-stream)."""
    names = available_analyses()
    spec = trace_zoo.get("unary-only")  # clean: every analysis sweeps all
    base = Session(pack(spec.trace()), names).run()
    fed = Session(None, names, name=spec.name)
    fed.feed(pack(spec.trace())[:])
    restored = pickle.loads(pickle.dumps(fed))
    assert analyses_json(restored.finish()) == analyses_json(base)


def test_feed_random_traces_random_batches():
    """Fuzz the batching on richer traces (locks, forks, many threads)."""
    names = ["aerodrome", "races", "lockset"]
    for seed in range(6):
        trace = random_trace(
            seed,
            RandomTraceConfig(n_threads=4, n_vars=4, n_locks=2, length=120),
        )
        base = Session(trace, names).run()
        fed = Session(None, names, name=trace.name)
        for batch in chunked(list(trace), [1, 2, 7, 13], seed=seed):
            fed.feed(batch)
        assert analyses_json(fed.finish()) == analyses_json(base), seed


def test_feed_stops_sweeping_once_done():
    """events_swept matches run()'s early stop, then freezes."""
    spec = trace_zoo.get("paper-rho2")  # violation before the end
    base = Session(spec.trace(), ["aerodrome"]).run()
    fed = Session(None, ["aerodrome"], name=spec.name)
    events = list(spec.trace())
    for event in events:
        fed.feed([event])
    fed.feed(events)  # extra events after every analysis finished
    result = fed.finish()
    assert result.events_swept == base.events_swept
    assert analyses_json(result) == analyses_json(base)


def test_feed_lifecycle_errors():
    session = Session(None, ["aerodrome"])
    session.feed([])
    with pytest.raises(RuntimeError):
        session.run()  # streaming sessions cannot also run()
    session.finish()
    with pytest.raises(RuntimeError):
        session.feed([])
    with pytest.raises(RuntimeError):
        session.finish()
    with pytest.raises(ValueError):
        Session(None, ["aerodrome"]).run()  # no trace to run


def test_feed_mode_mismatch_rejected():
    spec = trace_zoo.get("paper-rho1")
    session = Session(None, ["aerodrome"])
    session.feed(list(spec.trace())[:2])  # string mode
    with pytest.raises(ValueError):
        session.feed(pack(spec.trace()))


def test_finish_without_events_is_empty_pass():
    result = Session(None, ["aerodrome", "races"]).finish()
    assert result.events_swept == 0
    assert result.reports["aerodrome"].verdict is True
    assert result.reports["races"].verdict is True


def test_packed_store_grows_interners_mid_stream():
    """Names unseen at bind time appear in later batches (the growth
    case lazy_binder must survive)."""
    from repro.trace.events import begin, end, read, write

    events = [
        begin("t1"), write("t1", "x"), end("t1"),
        # new thread, new variable, after the first batch bound
        begin("t2"), read("t2", "x"), write("t2", "y"), end("t2"),
        begin("t3"), read("t3", "zz"), end("t3"),
    ]
    names = ["aerodrome", "aerodrome-basic", "aerodrome-sharded", "velodrome"]
    from repro.trace.trace import Trace

    base = Session(pack(Trace(events, name="grow")), names).run()
    fed = Session(None, names, name="grow")
    fed.feed(events[:3], packed=True)
    fed.feed(events[3:7])
    fed.feed(events[7:])
    assert analyses_json(fed.finish()) == analyses_json(base)


def test_extend_from_remaps_foreign_interners():
    spec = trace_zoo.get("lock-cycle")
    a = pack(spec.trace())
    store = PackedTrace("store")
    store.extend_from(a)  # foreign interners: full remap
    assert list(store) == list(a)
    b = pack(spec.trace())
    store.extend_from(b[: len(b)])
    assert len(store) == 2 * len(a)
    names = ["aerodrome"]
    double = list(spec.trace()) + list(spec.trace())
    from repro.trace.trace import Trace

    base = Session(pack(Trace(double, name="store")), names).run()
    assert (
        analyses_json(Session(store, names, name="store").run())
        == analyses_json(base)
    )
