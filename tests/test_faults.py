"""The fault-injection layer itself: plans, the injector switchboard,
the injection sites, and the hardening each site forces.

The load-bearing properties:

* **determinism** — the same plan seed fires the same faults at the
  same arrivals (the chaos drills' reproducibility story);
* **zero overhead by default** — with no plan installed, every site is
  a no-op and the service runs its untouched code paths;
* **typed failure surfacing** — every injected fault lands as a typed
  error (``RecoveryError``, ``SessionQuarantined``, a ``PayloadError``
  CRC mismatch), never as silent corruption.
"""

import json

import pytest

from repro.api import Session
from repro.faults import (
    FaultInjected,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    PLAN_VERSION,
    SITES,
    current,
    fire,
    injected,
    install,
    load_plan,
    mutate_frame,
    save_plan,
    uninstall,
)
from repro.service import protocol
from repro.service.recovery import RecoveryError, RecoveryManager
from repro.service.session import StreamingSession
from repro.sim import trace_zoo


@pytest.fixture(autouse=True)
def no_leftover_plan():
    uninstall()
    yield
    uninstall()


# -- FaultPlan / FaultRule ---------------------------------------------------


class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultRule(site="nope", op="crash")

    def test_unsupported_op_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultRule(site="wire.send", op="crash")

    def test_every_catalog_entry_constructs(self):
        for site, ops in SITES.items():
            for op in ops:
                FaultRule(site=site, op=op)

    def test_after_n_skips_then_fires(self):
        plan = FaultPlan(seed=1)
        plan.add("shard.batch", op="crash", after_n=2, times=1)
        assert plan.fire("shard.batch") is None
        assert plan.fire("shard.batch") is None
        action = plan.fire("shard.batch")
        assert action is not None and action.op == "crash"
        assert plan.fire("shard.batch") is None  # times=1 exhausted

    def test_times_none_fires_forever(self):
        plan = FaultPlan(seed=1).add("shard.inbox", op="stall", times=None)
        assert all(
            plan.fire("shard.inbox") is not None for _ in range(10)
        )

    def test_match_filters_on_context_key(self):
        plan = FaultPlan(seed=1).add(
            "spool.write", op="enospc", times=None, match="victim"
        )
        assert plan.fire("spool.write", key="bystander") is None
        assert plan.fire("spool.write", key=None) is None
        assert plan.fire("spool.write", key="the-victim-session") is not None

    def test_seeded_prob_replays_identically(self):
        def draws(seed):
            plan = FaultPlan(seed=seed).add(
                "wire.send", op="corrupt", prob=0.5, times=None
            )
            return [plan.fire("wire.send") is not None for _ in range(40)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)  # astronomically unlikely to collide
        assert any(draws(7)) and not all(draws(7))

    def test_log_records_fired_faults(self):
        plan = FaultPlan(seed=1).add("analysis.step", op="raise")
        plan.fire("analysis.step", key="tr")
        assert plan.log == [("analysis.step", "raise", "tr")]

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(seed=42)
        plan.add("wire.send", op="truncate", after_n=3)
        plan.add("spool.write", op="torn", times=None, match="s1", prob=0.5)
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        loaded = load_plan(path)
        assert loaded.seed == 42
        assert loaded.to_json() == plan.to_json()
        assert loaded.to_json()["version"] == PLAN_VERSION

    def test_bad_documents_rejected(self, tmp_path):
        for doc in (
            [],  # not an object
            {"version": "repro-faults/9"},
            {"seed": "x"},
            {"rules": {}},
            {"rules": [{"site": "wire.send", "op": "corrupt", "bogus": 1}]},
            {"rules": [{"op": "corrupt"}]},
        ):
            path = tmp_path / "bad.json"
            path.write_text(json.dumps(doc))
            with pytest.raises(FaultPlanError):
                load_plan(path)
        path.write_text("{not json")
        with pytest.raises(FaultPlanError):
            load_plan(path)
        with pytest.raises(FaultPlanError):
            load_plan(tmp_path / "missing.json")


# -- the injector switchboard ------------------------------------------------


class TestInjector:
    def test_no_plan_is_a_noop(self):
        assert current() is None
        assert fire("wire.send", key="anything") is None

    def test_install_uninstall(self):
        plan = FaultPlan(seed=1).add("shard.inbox", op="stall")
        install(plan)
        assert current() is plan
        assert fire("shard.inbox") is not None
        uninstall()
        assert fire("shard.inbox") is None

    def test_injected_scope_restores_on_error(self):
        plan = FaultPlan(seed=1)
        with pytest.raises(RuntimeError):
            with injected(plan):
                assert current() is plan
                raise RuntimeError("drill abort")
        assert current() is None

    def test_mutate_frame_truncates_deterministically(self):
        plan = FaultPlan(seed=9).add("wire.send", op="truncate", times=None)
        frame = bytes(range(64))
        action = plan.fire("wire.send")
        cut = mutate_frame(frame, action)
        assert 1 <= len(cut) < len(frame)
        assert frame.startswith(cut)
        replay = FaultPlan(seed=9).add("wire.send", op="truncate", times=None)
        assert mutate_frame(frame, replay.fire("wire.send")) == cut

    def test_mutate_frame_corrupts_past_length_field(self):
        plan = FaultPlan(seed=9).add("wire.reply", op="corrupt", times=None)
        frame = bytes(64)
        bad = mutate_frame(frame, plan.fire("wire.reply"))
        assert len(bad) == len(frame)
        assert bad[:4] == frame[:4]  # framing length is left intact
        assert bad != frame


# -- the analysis.step site --------------------------------------------------


class TestAnalysisSite:
    def test_injected_step_raises_fault_injected(self):
        spec = trace_zoo.get("paper-rho1")
        plan = FaultPlan(seed=1).add(
            "analysis.step", op="raise", match=spec.name
        )
        with injected(plan):
            session = Session(None, ["aerodrome"], name=spec.name)
            with pytest.raises(FaultInjected):
                session.feed(list(spec.trace()))

    def test_no_plan_leaves_feed_untouched(self):
        spec = trace_zoo.get("paper-rho1")
        session = Session(None, ["aerodrome"], name=spec.name)
        session.feed(list(spec.trace()))
        session.finish()


# -- positioned EVENTS frames ------------------------------------------------


class TestPositionedEvents:
    def events(self):
        return list(trace_zoo.get("paper-rho1").trace())

    @pytest.mark.parametrize("encoding", ["text", "delta"])
    def test_positioned_round_trip(self, encoding):
        events = self.events()
        if encoding == "text":
            payload = protocol.encode_events_text(events, base=17)
            decoded, base = protocol.decode_events_ex(payload)
        else:
            payload = protocol.DeltaEncoder().encode(events, base=17)
            decoded, base = protocol.decode_events_ex(
                payload, protocol.DeltaDecoder()
            )
        assert base == 17
        assert [str(e) for e in decoded] == [str(e) for e in events]

    @pytest.mark.parametrize("encoding", ["text", "delta"])
    def test_unpositioned_stays_compatible(self, encoding):
        events = self.events()
        if encoding == "text":
            payload = protocol.encode_events_text(events)
        else:
            payload = protocol.DeltaEncoder().encode(events)
        decoded, base = protocol.decode_events_ex(
            payload, protocol.DeltaDecoder()
        )
        assert base is None
        assert len(decoded) == len(events)

    def test_corrupt_body_raises_typed_crc_error(self):
        payload = bytearray(
            protocol.encode_events_text(self.events(), base=0)
        )
        payload[-1] ^= 0x20  # flip a bit inside the body
        with pytest.raises(protocol.PayloadError, match="CRC"):
            protocol.decode_events_ex(bytes(payload))

    def test_duplicate_positioned_batch_is_idempotent(self):
        events = self.events()
        session = StreamingSession("dup", ["aerodrome"], name="dup")
        session.feed(events[:4], base=0)
        session.feed(events[:4], base=0)  # exact redelivery
        session.feed(events[2:], base=2)  # overlapping redelivery
        assert session.position == len(events)
        assert not session.out_of_sync

    def test_gap_marks_out_of_sync_until_resent(self):
        events = self.events()
        session = StreamingSession("gap", ["aerodrome"], name="gap")
        session.feed(events[:2], base=0)
        session.feed(events[5:], base=5)  # events 2..4 lost
        assert session.out_of_sync
        assert session.position == 2  # the gapped batch was dropped whole
        session.feed(events[2:], base=2)
        assert not session.out_of_sync
        assert session.position == len(events)


# -- the spool.write site ----------------------------------------------------


def _session(sid="s1", n=6):
    spec = trace_zoo.get("paper-rho1")
    session = StreamingSession(sid, ["aerodrome"], name=spec.name)
    session.feed(list(spec.trace())[:n])
    return session


class TestSpoolFaults:
    def test_enospc_is_typed_and_leaves_previous_entry(self, tmp_path):
        manager = RecoveryManager(tmp_path)
        session = _session()
        manager.save(session)
        plan = FaultPlan(seed=1).add("spool.write", op="enospc")
        with injected(plan):
            with pytest.raises(RecoveryError, match="No space left"):
                manager.save(session)
        # the earlier good entry still loads
        assert manager.load(session.session_id).position == session.position

    def test_torn_write_detected_at_load(self, tmp_path):
        manager = RecoveryManager(tmp_path)
        plan = FaultPlan(seed=1).add("spool.write", op="torn")
        with injected(plan):
            manager.save(_session())
        with pytest.raises(RecoveryError, match="truncated or torn"):
            manager.load("s1")
        # header is intact, so scan still lists it; load-time salvage
        ids, salvage = manager.scan()
        assert ids == ["s1"] and salvage == []

    def test_corrupt_write_detected_by_crc(self, tmp_path):
        manager = RecoveryManager(tmp_path)
        plan = FaultPlan(seed=3).add("spool.write", op="corrupt")
        with injected(plan):
            manager.save(_session())
        with pytest.raises(RecoveryError):
            manager.load("s1")

    def test_quarantine_moves_entry_aside(self, tmp_path):
        manager = RecoveryManager(tmp_path)
        plan = FaultPlan(seed=3).add("spool.write", op="corrupt")
        with injected(plan):
            manager.save(_session())
        bad = manager.quarantine("s1")
        assert bad.suffix == ".bad" and bad.exists()
        assert manager.session_ids() == []
        with pytest.raises(RecoveryError, match="no spooled checkpoint"):
            manager.load("s1")
