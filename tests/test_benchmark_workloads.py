"""Benchmark-analog generator tests (the Table 1/2 workloads)."""

import pytest

from repro import check_trace, metainfo, validate
from repro.sim.workloads.benchmarks import (
    ALL_CASES,
    CASES_BY_NAME,
    TABLE1,
    TABLE2,
    get_case,
)

SMALL = 0.05  # scale factor keeping each trace around a thousand events


class TestCatalogue:
    def test_all_rows_present(self):
        assert len(TABLE1) == 14
        assert len(TABLE2) == 7
        assert {c.name for c in TABLE1} == {
            "avrora", "elevator", "hedc", "luindex", "lusearch", "moldyn",
            "montecarlo", "philo", "pmd", "raytracer", "sor", "sunflow",
            "tsp", "xalan",
        }
        assert {c.name for c in TABLE2} == {
            "batik", "crypt", "fop", "lufact", "series", "sparsematmult",
            "tomcat",
        }

    def test_paper_verdicts_recorded(self):
        # ✓ rows in the paper: elevator, philo, raytracer (T1), fop (T2).
        serializable = {c.name for c in ALL_CASES if c.paper.atomic}
        assert serializable == {"elevator", "philo", "raytracer", "fop"}

    def test_violation_flag_consistent_with_paper(self):
        for case in ALL_CASES:
            assert (case.violation_at is None) == case.paper.atomic, case.name

    def test_get_case(self):
        assert get_case("avrora").table == 1
        with pytest.raises(ValueError, match="unknown benchmark"):
            get_case("nonesuch")

    def test_unknown_style_rejected(self):
        import dataclasses

        broken = dataclasses.replace(CASES_BY_NAME["avrora"], style="bogus")
        with pytest.raises(ValueError, match="unknown style"):
            broken.generate()


@pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name)
class TestEveryCase:
    def test_trace_well_formed(self, case):
        trace = case.generate(seed=3, scale=SMALL)
        validate(trace, allow_held_locks=False)

    def test_verdict_matches_design(self, case):
        trace = case.generate(seed=3, scale=SMALL)
        result = check_trace(trace, "aerodrome")
        assert result.serializable == (case.violation_at is None), case.name

    def test_checkers_agree(self, case):
        trace = case.generate(seed=3, scale=SMALL)
        aero = check_trace(trace, "aerodrome")
        basic = check_trace(trace, "aerodrome-basic")
        velo = check_trace(trace, "velodrome")
        assert aero.serializable == basic.serializable == velo.serializable

    def test_deterministic(self, case):
        assert case.generate(seed=5, scale=SMALL) == case.generate(
            seed=5, scale=SMALL
        )

    def test_thread_count_matches_paper(self, case):
        trace = case.generate(seed=3, scale=SMALL)
        assert metainfo(trace).threads <= case.threads
        # Within a small tolerance: tiny scales may not touch every thread.
        assert metainfo(trace).threads >= min(case.threads, 2)


class TestViolationPlacement:
    def test_late_violation_found_late(self):
        case = get_case("avrora")
        trace = case.generate(seed=3, scale=0.2)
        result = check_trace(trace, "aerodrome")
        assert result.violation is not None
        assert result.violation.event_idx > 0.8 * len(trace) * 0.9

    def test_early_violation_found_early(self):
        case = get_case("crypt")
        trace = case.generate(seed=3, scale=0.2)
        result = check_trace(trace, "aerodrome")
        assert result.violation is not None
        assert result.violation.event_idx < 0.1 * len(trace)

    def test_velodrome_graph_grows_on_coordinator_shape(self):
        from repro.baselines.velodrome import VelodromeChecker

        case = get_case("raytracer")
        trace = case.generate(seed=3, scale=0.1)
        checker = VelodromeChecker()
        checker.run(trace)
        # The open coordinator transaction pins every reader transaction.
        assert checker.peak_graph_size > 100

    def test_velodrome_graph_small_on_independent_shape(self):
        from repro.baselines.velodrome import VelodromeChecker

        case = get_case("pmd")
        trace = case.generate(seed=3, scale=0.1)
        checker = VelodromeChecker()
        checker.run(trace)
        assert checker.peak_graph_size < 60
