"""Live-monitor tests: online detection in real Python threads.

Thread interleavings are pinned down with `threading.Event` gates, so
the violating order is deterministic despite real concurrency.
"""

import threading

import pytest

from repro import AtomicityViolationError, check_trace
from repro.instrument.monitor import LiveMonitor, monitored_run


def test_rejects_unknown_policy():
    with pytest.raises(ValueError, match="policy"):
        LiveMonitor(policy="explode")


def test_clean_single_thread_run():
    monitor = LiveMonitor()
    x = monitor.shared("x", initial=0)
    with monitor.atomic("inc"):
        x.set(x.get() + 1)
    assert monitor.clean
    assert monitor.first_violation() is None
    assert check_trace(monitor.trace()).serializable


def _run_rho2_shape(monitor):
    """Two live threads interleaving the paper's ρ2 pattern, with
    event gates forcing w(x) -> r(x),w(y) -> r(y)."""
    x = monitor.shared("x", initial=0)
    y = monitor.shared("y", initial=0)
    first_write_done = threading.Event()
    second_txn_done = threading.Event()
    failures = []

    def worker1():
        try:
            with monitor.atomic("t1"):
                x.set(1)
                first_write_done.set()
                assert second_txn_done.wait(timeout=5)
                y.get()
        except AtomicityViolationError as error:
            failures.append(error)

    def worker2():
        assert first_write_done.wait(timeout=5)
        with monitor.atomic("t2"):
            x.get()
            y.set(1)
        second_txn_done.set()

    threads = [monitor.spawn(worker1), monitor.spawn(worker2)]
    for thread in threads:
        monitor.join(thread)
    return failures


def test_record_policy_collects_violation():
    monitor = LiveMonitor(policy="record")
    failures = _run_rho2_shape(monitor)
    assert failures == []  # record policy never raises
    assert not monitor.clean
    violation = monitor.first_violation()
    assert violation is not None
    # The cycle closes at worker1's read of y.
    assert monitor.trace()[violation.event_idx].target == "y"
    # Post-mortem agrees with the online verdict.
    assert not check_trace(monitor.trace(), "aerodrome-basic").serializable


def test_raise_policy_fails_the_offending_thread():
    monitor = LiveMonitor(policy="raise")
    failures = _run_rho2_shape(monitor)
    assert len(failures) == 1
    assert isinstance(failures[0], AtomicityViolationError)
    assert monitor.violations  # still recorded


def test_callback_policy():
    seen = []
    monitor = LiveMonitor(policy=seen.append)
    _run_rho2_shape(monitor)
    assert len(seen) >= 1
    assert seen[0] is monitor.violations[0]


def test_locked_threads_stay_clean():
    monitor = LiveMonitor()
    counter = monitor.shared("counter", initial=0)
    guard = monitor.lock("guard")

    def worker():
        for _ in range(5):
            with monitor.atomic("inc"):
                with guard:
                    counter.set(counter.get() + 1)

    threads = [monitor.spawn(worker) for _ in range(4)]
    for thread in threads:
        monitor.join(thread)
    assert monitor.clean
    assert counter.get() == 20
    assert check_trace(monitor.trace()).serializable


def test_monitored_run_harness():
    def scenario(monitor):
        x = monitor.shared("x")
        with monitor.atomic("a"):
            x.set(1)

    monitor = monitored_run(scenario)
    assert monitor.clean
    assert monitor.algorithm == "aerodrome"


def test_monitor_with_velodrome_engine():
    monitor = LiveMonitor(algorithm="velodrome")
    failures = _run_rho2_shape(monitor)
    assert failures == []
    assert not monitor.clean
