"""Benchmark harness and reporting tests."""

import pytest

from repro.bench.harness import (
    RowResult,
    TimedRun,
    run_case,
    run_scaling,
    run_table,
    run_timed,
)
from repro.bench.reporting import (
    format_comparison,
    format_scaling,
    format_table,
)
from repro.sim.workloads.benchmarks import TABLE2, get_case


class TestRunTimed:
    def test_runs_to_completion(self, rho1):
        run = run_timed("aerodrome", rho1)
        assert not run.timed_out
        assert run.result.serializable
        assert run.seconds >= 0
        assert run.display_time != "TO"

    def test_stops_at_violation(self, rho2):
        run = run_timed("aerodrome", rho2)
        assert run.violation is not None
        assert run.result.events_processed == 6

    def test_timeout_reported(self):
        trace = get_case("avrora").generate(seed=1, scale=0.3)
        run = run_timed("velodrome", trace, timeout=0.0)
        assert run.timed_out
        assert run.display_time == "TO"

    def test_velodrome_exposes_peak_graph(self, rho1):
        run = run_timed("velodrome", rho1)
        assert run.peak_graph_size is not None
        assert run.peak_graph_size >= 3

    def test_aerodrome_has_no_graph(self, rho1):
        assert run_timed("aerodrome", rho1).peak_graph_size is None


class TestRunCase:
    @pytest.fixture(scope="class")
    def row(self):
        return run_case(get_case("crypt"), seed=3, scale=0.05)

    def test_runs_both_algorithms(self, row):
        assert set(row.runs) == {"aerodrome", "velodrome"}

    def test_verdicts_agree(self, row):
        assert row.verdicts_agree
        assert row.serializable is False

    def test_speedup_positive(self, row):
        assert row.speedup > 0
        assert row.speedup_display

    def test_info_populated(self, row):
        assert row.info.events > 0
        assert row.info.threads == 7


class TestRunTable:
    def test_runs_all_rows(self):
        results = run_table(TABLE2[:3], seed=3, scale=0.03)
        assert len(results) == 3
        assert all(r.verdicts_agree for r in results)

    def test_formatting(self):
        results = run_table(TABLE2[:2], seed=3, scale=0.03)
        table = format_table(results, title="T")
        assert "Program" in table and "Speed-up" in table
        assert results[0].case.name in table
        comparison = format_comparison(results)
        assert "Match" in comparison


class TestRunScaling:
    def test_points_and_format(self):
        points = run_scaling(get_case("raytracer"), sizes=[400, 800], seed=3)
        assert [p.events >= 400 for p in points]
        assert points[0].events < points[1].events
        text = format_scaling(points, title="scaling")
        assert "Events" in text and "Speed-up" in text

    def test_speedup_property(self):
        points = run_scaling(get_case("raytracer"), sizes=[500], seed=3)
        assert points[0].speedup >= 0
