"""C10k: the event-loop backend holds thousands of idle sessions.

The point of the selectors front end is that an *open* session costs a
few kilobytes of state, not a thread. The tier-1 smoke leg opens 1k
sessions against an in-process async server on one thread and checks
the loop's own gauges; the ``slow``-marked leg (``pytest -m slow``)
drives 10k sessions against a ``repro serve --backend async``
subprocess and asserts its resident set stays bounded — the acceptance
bar in docs/SERVICE.md.
"""

import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import ServiceServer
from repro.service import protocol
from repro.service.protocol import FrameStream, FrameType


def open_idle_session(host, port, index, analyses=("lockset",)):
    """One raw HELLO handshake; returns the open socket."""
    sock = socket.create_connection((host, port), timeout=30)
    hello = {
        "protocol": protocol.PROTOCOL,
        "analyses": list(analyses),
        "session": f"idle-{index}",
        "name": f"idle-{index}",
    }
    sock.sendall(protocol.encode_json(FrameType.HELLO, hello))
    reply = FrameStream(sock.makefile("rb")).read_frame()
    assert reply is not None
    ftype, payload = reply
    assert ftype == FrameType.OK, protocol.decode_json(payload)
    return sock


def fetch_stats(host, port):
    sock = socket.create_connection((host, port), timeout=30)
    try:
        sock.sendall(protocol.encode_frame(FrameType.STATS))
        ftype, payload = FrameStream(sock.makefile("rb")).read_frame()
        assert ftype == FrameType.OK
        return protocol.decode_json(payload)["stats"]
    finally:
        sock.close()


def test_1k_idle_sessions_single_thread():
    """Tier-1 smoke: 1000 open sessions on one event-loop thread."""
    sockets = []
    with ServiceServer(shards=1, backend="async").start() as server:
        try:
            for i in range(1000):
                sockets.append(open_idle_session(server.host, server.port, i))
            stats = fetch_stats(server.host, server.port)
            gauges = stats["server"]
            assert gauges["backend"] == "async"
            assert gauges["open_connections"] >= 1000
            assert stats["sessions_open"] >= 1000
            # Idle HELLO traffic never buffers more than one small frame.
            assert gauges["ring_high_water"] < 4096
        finally:
            for sock in sockets:
                sock.close()


def _server_rss_kib(pid):
    status = Path(f"/proc/{pid}/status").read_text()
    for line in status.splitlines():
        if line.startswith("VmRSS:"):
            return int(line.split()[1])
    raise AssertionError("no VmRSS in /proc status")


@pytest.mark.slow
def test_10k_idle_sessions_bounded_rss(tmp_path):
    """The C10k acceptance leg: 10k sessions, one CPU, bounded memory."""
    ready = tmp_path / "ready.txt"
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--backend", "async", "--shards", "1",
            "--ready-file", str(ready),
        ],
        cwd=str(Path(__file__).resolve().parent.parent),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    sockets = []
    try:
        deadline = time.monotonic() + 30
        while not ready.exists() and time.monotonic() < deadline:
            assert proc.poll() is None, "server died before ready"
            time.sleep(0.05)
        host, port = ready.read_text().split()
        port = int(port)

        baseline_kib = _server_rss_kib(proc.pid)
        for i in range(10_000):
            sockets.append(open_idle_session(host, port, i))
        stats = fetch_stats(host, port)
        assert stats["server"]["open_connections"] >= 10_000
        assert stats["sessions_open"] >= 10_000

        grown_kib = _server_rss_kib(proc.pid) - baseline_kib
        per_session_kib = grown_kib / 10_000
        # An idle session is a socket + codec + analysis shell. 100 KiB
        # apiece (≈1 GiB for the fleet) is the generous ceiling; a
        # thread-per-connection build blows past it on stacks alone.
        assert per_session_kib < 100, (
            f"{per_session_kib:.1f} KiB per idle session "
            f"({grown_kib} KiB for 10k)"
        )
    finally:
        for sock in sockets:
            sock.close()
        proc.terminate()
        try:
            proc.wait(10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(10)
