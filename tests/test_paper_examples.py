"""Executable versions of the paper's worked examples (Figures 1-7).

Each test replays AeroDrome (Algorithm 1) on ρ2, ρ3 and ρ4 and asserts
the exact intermediate clock values printed in Figures 5, 6 and 7, then
that the violation fires at the event the paper says.
"""

import pytest

from repro import VectorClock
from repro.core.aerodrome import AeroDromeChecker


def _feed(checker, trace, count):
    """Process the first ``count`` events, returning the last violation."""
    violation = None
    for event in trace.events[:count]:
        violation = checker.process(event)
        if violation is not None:
            break
    return violation


class TestFigure5Rho2:
    """Figure 5: AeroDrome on ρ2; violation at e6 via C⊲_t1 ⊑ W_y."""

    def test_clock_evolution(self, rho2):
        checker = AeroDromeChecker()
        assert _feed(checker, rho2, 2) is None
        # After the two begins: C_t1 = <2,0>, C_t2 = <0,2>.
        assert checker.thread_clock("t1") == VectorClock([2, 0])
        assert checker.thread_clock("t2") == VectorClock([0, 2])
        assert checker.begin_clock("t1") == VectorClock([2, 0])

        checker = AeroDromeChecker()
        assert _feed(checker, rho2, 3) is None
        # e3 = w(x): W_x = <2,0>.
        assert checker.write_clock("x") == VectorClock([2, 0])

        checker = AeroDromeChecker()
        assert _feed(checker, rho2, 4) is None
        # e4 = r(x) joins W_x into C_t2 = <2,2>.
        assert checker.thread_clock("t2") == VectorClock([2, 2])

        checker = AeroDromeChecker()
        assert _feed(checker, rho2, 5) is None
        # e5 = w(y): W_y = <2,2>.
        assert checker.write_clock("y") == VectorClock([2, 2])

    def test_violation_at_e6(self, rho2):
        checker = AeroDromeChecker()
        violation = _feed(checker, rho2, 6)
        assert violation is not None
        assert violation.event_idx == 5  # e6, 0-based
        assert violation.thread == "t1"
        assert violation.site == "read"


class TestFigure6Rho3:
    """Figure 6: AeroDrome on ρ3; violation at the end event e7."""

    def test_clock_evolution(self, rho3):
        checker = AeroDromeChecker()
        assert _feed(checker, rho3, 5) is None
        # e5 = r(y) by t1 joins W_y: C_t1 = <2,2>, no violation because
        # C⊲_t1 = <2,0> ⋢ W_y = <0,2>.
        assert checker.thread_clock("t1") == VectorClock([2, 2])
        assert checker.write_clock("x") == VectorClock([2, 0])
        assert checker.write_clock("y") == VectorClock([0, 2])

        checker = AeroDromeChecker()
        assert _feed(checker, rho3, 6) is None
        # e6 = r(x) by t2: C_t2 = <2,2>, still no violation.
        assert checker.thread_clock("t2") == VectorClock([2, 2])

    def test_violation_at_end_event(self, rho3):
        checker = AeroDromeChecker()
        violation = _feed(checker, rho3, 7)
        assert violation is not None
        assert violation.event_idx == 6  # e7 = <t1, end>
        assert violation.site == "end"
        # The cycle is closed against t2's active transaction.
        assert violation.thread == "t2"


class TestFigure7Rho4:
    """Figure 7: AeroDrome on ρ4; violation at e11 via C⊲_t1 ⊑ W_z."""

    def test_clock_evolution(self, rho4):
        checker = AeroDromeChecker()
        assert _feed(checker, rho4, 5) is None
        # e5 = r(x) by t2: C_t2 = <2,2,0>.
        assert checker.thread_clock("t2") == VectorClock([2, 2, 0])

        checker = AeroDromeChecker()
        assert _feed(checker, rho4, 6) is None
        # e6 = end of T2: W_y (written inside T2) absorbs C_t2 = <2,2,0>;
        # thread clocks of t1/t3 unchanged.
        assert checker.write_clock("y") == VectorClock([2, 2, 0])
        assert checker.thread_clock("t1") == VectorClock([2, 0, 0])

        checker = AeroDromeChecker()
        assert _feed(checker, rho4, 8) is None
        # e8 = r(y) by t3: C_t3 = <2,2,2>.
        assert checker.thread_clock("t3") == VectorClock([2, 2, 2])

        checker = AeroDromeChecker()
        assert _feed(checker, rho4, 9) is None
        # e9 = w(z): W_z = <2,2,2>.
        assert checker.write_clock("z") == VectorClock([2, 2, 2])

    def test_violation_at_e11(self, rho4):
        checker = AeroDromeChecker()
        violation = _feed(checker, rho4, 11)
        assert violation is not None
        assert violation.event_idx == 10  # e11 = <t1, r(z)>
        assert violation.thread == "t1"
        assert violation.site == "read"


class TestExample5Prefixes:
    """Example 5: ρ3's prefixes — σ6 has no detectable violation yet."""

    def test_sigma6_clean(self, rho3):
        checker = AeroDromeChecker()
        assert _feed(checker, rho3, 6) is None

    def test_full_trace_detects(self, rho3):
        checker = AeroDromeChecker()
        result = checker.run(rho3)
        assert not result.serializable
        assert result.events_processed == 7  # stops at e7
