"""Two-phase DoubleChecker-style checker tests."""

from hypothesis import given, settings, strategies as st

from repro import DoubleCheckerChecker, conflict_serializable
from repro.baselines.doublechecker import _CoarsePass
from repro.sim.random_traces import RandomTraceConfig, random_trace


class TestVerdicts:
    def test_paper_traces(self, paper_traces):
        for trace, expected in paper_traces:
            result = DoubleCheckerChecker().run(trace)
            assert result.serializable == expected, trace.name

    def test_violation_event_index_comes_from_precise_pass(self, rho2):
        result = DoubleCheckerChecker().run(rho2)
        assert result.violation is not None
        assert result.violation.event_idx == 5

    def test_result_idempotent(self, rho1):
        checker = DoubleCheckerChecker()
        checker.run(rho1)
        first = checker.result()
        second = checker.result()
        assert first.serializable == second.serializable


class TestCoarsePassSoundness:
    """Acyclic coarse graph must imply a serializable trace."""

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_no_coarse_cycle_implies_serializable(self, seed):
        trace = random_trace(
            seed, RandomTraceConfig(n_threads=3, n_vars=3, n_locks=1, length=30)
        )
        coarse = _CoarsePass()
        for event in trace:
            coarse.feed(event)
        if not coarse.may_have_cycle():
            assert conflict_serializable(trace)

    def test_coarse_pass_can_overapproximate(self):
        # Read-read sharing is treated as a conflict by phase 1, so this
        # serializable trace needs the precise pass to be exonerated.
        from repro import begin, end, read, trace_of, write

        trace = trace_of(
            begin("t1"),
            read("t1", "x"),
            begin("t2"),
            read("t2", "x"),
            read("t1", "x"),
            end("t1"),
            end("t2"),
        )
        coarse = _CoarsePass()
        for event in trace:
            coarse.feed(event)
        assert coarse.may_have_cycle()  # false alarm from phase 1
        assert DoubleCheckerChecker().run(trace).serializable  # fixed by phase 2
