"""Packed int-clock (SWAR) laws, cross-checked against VectorClock."""

from hypothesis import given, settings, strategies as st

from repro.core import intclock
from repro.core.intclock import (
    LANE_MAX,
    clear_lane,
    from_vector_clock,
    get,
    grow_guard,
    join,
    leq,
    make_guard,
    pack,
    to_vector_clock,
    unit,
    unpack,
)
from repro.core.vector_clock import VectorClock

_LANES = 5
_H = make_guard(_LANES)

# Mix small and large components; large ones exercise multi-digit
# big-int limbs, and LANE_MAX-1 sits just below the guard bit.
_component = st.one_of(
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=0, max_value=LANE_MAX - 1),
)
_clocks = st.lists(_component, min_size=0, max_size=_LANES).map(pack)


class TestBasics:
    def test_pack_unpack(self):
        values = [3, 0, 7, 0, 9]
        assert unpack(pack(values)) == [3, 0, 7, 0, 9]

    def test_unpack_drops_trailing_zeros(self):
        assert unpack(pack([1, 0, 0])) == [1]
        assert unpack(0) == []

    def test_unit_and_get(self):
        v = unit(3, 5)
        assert get(v, 3) == 5
        assert get(v, 0) == 0
        assert get(v, 7) == 0

    def test_clear_lane(self):
        v = pack([4, 5, 6])
        assert unpack(clear_lane(v, 1)) == [4, 0, 6]

    def test_guard_growth(self):
        h3 = make_guard(3)
        assert grow_guard(h3, 5) == make_guard(5)
        assert grow_guard(0, 2) == make_guard(2)

    def test_vector_clock_bridge(self):
        clock = VectorClock([2, 0, 9])
        assert to_vector_clock(from_vector_clock(clock)) == clock

    def test_pack_rejects_out_of_range(self):
        import pytest

        with pytest.raises(ValueError):
            pack([-1])
        with pytest.raises(ValueError):
            pack([LANE_MAX + 1])


def _ref_join(a: int, b: int) -> int:
    return from_vector_clock(to_vector_clock(a).joined(to_vector_clock(b)))


@settings(max_examples=300, deadline=None)
@given(_clocks, _clocks)
def test_join_matches_vector_clock(a, b):
    assert join(a, b, _H) == _ref_join(a, b)


@settings(max_examples=300, deadline=None)
@given(_clocks, _clocks)
def test_leq_matches_vector_clock(a, b):
    assert leq(a, b, _H) == to_vector_clock(a).leq(to_vector_clock(b))


@settings(max_examples=200, deadline=None)
@given(_clocks, _clocks)
def test_join_commutative(a, b):
    assert join(a, b, _H) == join(b, a, _H)


@settings(max_examples=200, deadline=None)
@given(_clocks, _clocks, _clocks)
def test_join_associative(a, b, c):
    assert join(join(a, b, _H), c, _H) == join(a, join(b, c, _H), _H)


@settings(max_examples=200, deadline=None)
@given(_clocks)
def test_join_idempotent(a):
    assert join(a, a, _H) == a


@settings(max_examples=200, deadline=None)
@given(_clocks, _clocks)
def test_leq_iff_join_absorbs(a, b):
    assert leq(a, b, _H) == (join(a, b, _H) == b)


@settings(max_examples=200, deadline=None)
@given(_clocks, _clocks)
def test_oversized_guard_is_harmless(a, b):
    big_h = make_guard(_LANES + 3)
    assert join(a, b, big_h) == join(a, b, _H)
    assert leq(a, b, big_h) == leq(a, b, _H)
