"""Transaction extraction tests: nesting, unary, active transactions."""

import pytest

from repro import (
    begin,
    count_transactions,
    end,
    extract_transactions,
    read,
    trace_of,
    write,
)


class TestBasicExtraction:
    def test_single_transaction(self):
        trace = trace_of(begin("t"), write("t", "x"), end("t"))
        index = extract_transactions(trace)
        assert len(index.transactions) == 1
        txn = index.transactions[0]
        assert txn.thread == "t"
        assert txn.begin_idx == 0
        assert txn.end_idx == 2
        assert txn.event_indices == [0, 1, 2]
        assert txn.is_completed and not txn.is_unary

    def test_txn_of_mapping(self, rho1):
        index = extract_transactions(rho1)
        # e1..e2 and e9..e10 belong to T1; e3..e5 to T2; e6..e8 to T3.
        assert index.txn_of[0] == index.txn_of[1] == index.txn_of[8] == index.txn_of[9]
        assert index.txn_of[2] == index.txn_of[3] == index.txn_of[4]
        assert index.txn_of[5] == index.txn_of[6] == index.txn_of[7]
        assert index.non_unary_count == 3

    def test_transaction_of(self, rho1):
        index = extract_transactions(rho1)
        assert index.transaction_of(3).thread == "t2"


class TestNesting:
    def test_nested_blocks_flattened(self):
        trace = trace_of(
            begin("t"),
            begin("t"),
            write("t", "x"),
            end("t"),
            end("t"),
        )
        index = extract_transactions(trace)
        assert len(index.transactions) == 1
        txn = index.transactions[0]
        assert txn.begin_idx == 0
        assert txn.end_idx == 4
        assert len(txn) == 5

    def test_sequential_transactions(self):
        trace = trace_of(begin("t"), end("t"), begin("t"), end("t"))
        index = extract_transactions(trace)
        assert index.non_unary_count == 2


class TestUnary:
    def test_events_outside_blocks_are_unary(self):
        trace = trace_of(read("t", "x"), begin("t"), write("t", "x"), end("t"))
        index = extract_transactions(trace)
        assert len(index.transactions) == 2
        unary = index.transactions[0]
        assert unary.is_unary
        assert unary.is_completed
        assert len(unary) == 1

    def test_each_unary_event_its_own_transaction(self):
        trace = trace_of(read("t", "x"), read("t", "y"))
        index = extract_transactions(trace)
        assert len(index.transactions) == 2


class TestActive:
    def test_open_transaction_is_active(self):
        trace = trace_of(begin("t"), write("t", "x"))
        index = extract_transactions(trace)
        assert index.transactions[0].is_active
        assert index.active_count == 1

    def test_end_without_begin_raises(self):
        with pytest.raises(ValueError, match="end without matching begin"):
            extract_transactions(trace_of(end("t")))


class TestCounting:
    def test_count_matches_paper_columns(self, rho4):
        assert count_transactions(rho4) == 3

    def test_count_with_unary(self):
        trace = trace_of(read("t", "x"), begin("t"), end("t"))
        assert count_transactions(trace) == 1
        assert count_transactions(trace, include_unary=True) == 2
