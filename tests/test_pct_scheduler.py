"""PCT scheduler tests: determinism, priority semantics, and bug-finding
power versus uniform random scheduling."""

import pytest

from repro import check_trace
from repro.sim.runtime import execute
from repro.sim.scheduler import PCTScheduler, RandomScheduler
from repro.sim.workloads.patterns import (
    locked_counter,
    producer_consumer,
    unprotected_counter,
)


def test_rejects_bad_parameters():
    with pytest.raises(ValueError, match="depth"):
        PCTScheduler(depth=0)
    with pytest.raises(ValueError, match="max_steps"):
        PCTScheduler(max_steps=0)


def test_deterministic_in_seed():
    program = unprotected_counter(n_threads=3, increments=3)
    a = execute(program, PCTScheduler(seed=5, depth=3))
    b = execute(program, PCTScheduler(seed=5, depth=3))
    assert list(a) == list(b)
    c = execute(program, PCTScheduler(seed=6, depth=3))
    # A different seed gives different priorities; schedules usually
    # differ (not guaranteed for any single seed, so only check the
    # structure, not inequality).
    assert len(c) == len(a)


def test_depth_one_never_preempts_by_priority():
    """With depth=1 there are no change points: the highest-priority
    thread runs to completion, then the next — a serial schedule."""
    program = unprotected_counter(n_threads=3, increments=2)
    trace = execute(program, PCTScheduler(seed=3, depth=1))
    # Serial per thread: once a thread stops appearing it never returns.
    seen_done = set()
    current = None
    for event in trace:
        if event.thread != current:
            assert event.thread not in seen_done
            if current is not None:
                seen_done.add(current)
            current = event.thread
    # And a serial schedule of atomic increments is serializable.
    assert check_trace(trace).serializable


def test_well_formed_output():
    from repro import is_well_formed

    program = producer_consumer(items=5, guarded=True)
    for seed in range(5):
        trace = execute(
            program, PCTScheduler(seed=seed, depth=4), validate_output=True
        )
        assert is_well_formed(trace)


def test_preserves_verdict_on_safe_program():
    program = locked_counter(n_threads=3, increments=3)
    for seed in range(5):
        trace = execute(program, PCTScheduler(seed=seed, depth=4))
        assert check_trace(trace).serializable


def test_finds_violations_at_low_depth():
    """PCT with small depth should expose the lost-update violation in
    a healthy fraction of runs (its guarantee is per-run probability,
    with the steps bound k set to the actual program length)."""
    program = unprotected_counter(n_threads=2, increments=2)
    k = program.total_statements()
    found = sum(
        1
        for seed in range(20)
        if not check_trace(
            execute(program, PCTScheduler(seed=seed, depth=3, max_steps=k))
        ).serializable
    )
    assert found >= 3


def test_comparable_power_to_uniform_on_this_workload():
    # Not a theorem — a sanity check that the implementation actually
    # explores: both strategies find the bug somewhere in 20 seeds.
    program = unprotected_counter(n_threads=2, increments=2)

    k = program.total_statements()

    def hits(make_scheduler):
        return sum(
            1
            for seed in range(20)
            if not check_trace(
                execute(program, make_scheduler(seed))
            ).serializable
        )

    assert hits(lambda s: PCTScheduler(seed=s, depth=3, max_steps=k)) > 0
    assert hits(lambda s: RandomScheduler(seed=s)) > 0


class TestFuzzStrategies:
    def test_pct_strategy_finds_the_bug(self):
        from repro.sim.explore import fuzz

        result = fuzz(
            unprotected_counter(n_threads=2, increments=2),
            schedules=20,
            strategy="pct",
        )
        assert result.violating > 0
        assert result.witness is not None
        assert not result.exhaustive

    def test_unknown_strategy_rejected(self):
        from repro.sim.explore import fuzz

        with pytest.raises(ValueError, match="strategy"):
            fuzz(unprotected_counter(), strategy="quantum")

    def test_safe_program_survives_pct_fuzzing(self):
        from repro.sim.explore import fuzz

        result = fuzz(
            locked_counter(n_threads=3, increments=2),
            schedules=15,
            strategy="pct",
        )
        assert result.always_atomic
