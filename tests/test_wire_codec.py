"""Sans-IO codec equivalence: incremental decode == one-shot decode.

The event-loop backend feeds :class:`~repro.service.protocol.FrameDecoder`
whatever chunks ``recv`` happens to return, so the decoder must produce
byte-identical frames — and raise the *same* typed
:class:`~repro.service.protocol.WireError` on the same broken input —
no matter how the stream is split. This suite drives the decoder
byte-at-a-time and through hypothesis-chosen random splits against the
one-shot :func:`~repro.service.protocol.decode_frame` as ground truth,
plus the ring-buffer/counter plumbing ``service-stats`` reports and the
:func:`~repro.service.protocol.read_frame` deprecation shim.
"""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.service import protocol
from repro.service.protocol import (
    FrameDecoder,
    FrameEncoder,
    FrameError,
    FrameStream,
    FrameType,
    RingBuffer,
    decode_frame,
    encode_frame,
    encode_json,
    read_frame,
)


def reference_decode(data: bytes):
    """One-shot ground truth: every frame, or the typed error raised."""
    frames, end = [], 0
    while end < len(data):
        out = decode_frame(data[end:])
        if out is None:
            break  # trailing partial frame
        ftype, payload, used = out
        frames.append((ftype, bytes(payload)))
        end += used
    return frames


def incremental_decode(data: bytes, cuts):
    """Feed ``data`` split at ``cuts`` and drain after every chunk."""
    decoder = FrameDecoder()
    frames = []
    last = 0
    for cut in list(cuts) + [len(data)]:
        decoder.feed(data[last:cut])
        last = cut
        frames.extend((ftype, bytes(p)) for ftype, p in decoder)
    return frames, decoder


def stream_corpus(seed: int) -> bytes:
    """A deterministic multi-frame conversation."""
    body = bytes((seed * 7 + i) % 256 for i in range(seed % 400))
    return (
        encode_json(FrameType.HELLO, {"protocol": protocol.PROTOCOL, "n": seed})
        + encode_frame(FrameType.EVENTS, bytes([0]) + b"t1|w(x)")
        + encode_frame(FrameType.EVENTS, bytes([0]) + body.hex().encode())
        + encode_frame(FrameType.FLUSH)
        + encode_frame(FrameType.CLOSE)
    )


# -- equivalence ------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 500))
def test_byte_at_a_time_agrees_with_one_shot(seed):
    data = stream_corpus(seed)
    expected = reference_decode(data)
    got, decoder = incremental_decode(data, range(1, len(data)))
    assert got == expected
    assert decoder.buffered == 0
    assert decoder.frames_decoded == len(expected)


@settings(max_examples=80, deadline=None)
@given(
    seed=st.integers(0, 500),
    cuts=st.lists(st.integers(0, 2_000), max_size=12),
)
def test_random_splits_agree_with_one_shot(seed, cuts):
    data = stream_corpus(seed)
    expected = reference_decode(data)
    points = sorted({c % (len(data) + 1) for c in cuts})
    got, _ = incremental_decode(data, points)
    assert got == expected


@settings(max_examples=80, deadline=None)
@given(
    seed=st.integers(0, 200),
    position=st.integers(0, 5_000),
    byte=st.integers(0, 255),
)
def test_corrupted_streams_raise_the_same_typed_error(seed, position, byte):
    """Both decoders fail identically (or both accept) any 1-byte flip."""
    data = bytearray(stream_corpus(seed))
    data[position % len(data)] = byte
    data = bytes(data)

    one_shot_error = None
    try:
        expected = reference_decode(data)
    except FrameError as error:
        one_shot_error = error

    decoder = FrameDecoder()
    got = []
    incremental_error = None
    try:
        for i in range(len(data)):
            decoder.feed(data[i : i + 1])
            got.extend((ftype, bytes(p)) for ftype, p in decoder)
    except FrameError as error:
        incremental_error = error

    if one_shot_error is None:
        assert incremental_error is None
        assert got == expected
    else:
        assert incremental_error is not None
        assert str(incremental_error) == str(one_shot_error)


def test_partial_frame_stays_buffered():
    frame = encode_frame(FrameType.OK, b"abcdef")
    decoder = FrameDecoder()
    decoder.feed(frame[:-1])
    assert decoder.next_frame() is None
    assert decoder.buffered == len(frame) - 1
    decoder.feed(frame[-1:])
    assert decoder.next_frame() == (FrameType.OK, b"abcdef")
    assert decoder.buffered == 0


def test_needed_counts_down_to_a_frame():
    frame = encode_frame(FrameType.FLUSH, b"xyz")
    decoder = FrameDecoder()
    assert decoder.needed() == protocol._HEADER.size
    decoder.feed(frame[:2])
    assert decoder.needed() == protocol._HEADER.size - 2
    decoder.feed(frame[2 : protocol._HEADER.size])
    assert decoder.needed() == 3  # the payload
    decoder.feed(frame[protocol._HEADER.size :])
    assert decoder.needed() == 0


def test_needed_rejects_bad_headers_early():
    decoder = FrameDecoder()
    decoder.feed((protocol.MAX_FRAME + 10).to_bytes(4, "big") + bytes([2]))
    with pytest.raises(FrameError, match="out of range"):
        decoder.needed()
    decoder = FrameDecoder()
    decoder.feed((1).to_bytes(4, "big") + bytes([99]))
    with pytest.raises(FrameError, match="unknown frame type"):
        decoder.needed()


# -- ring buffer ------------------------------------------------------------


def test_ring_buffer_compacts_consumed_prefix():
    ring = RingBuffer()
    ring.write(b"a" * 100)
    assert ring.take(60) == b"a" * 60
    # Dead prefix (60) outweighs live bytes (40): next write compacts.
    ring.write(b"b")
    assert ring._start == 0
    assert bytes(ring.view()) == b"a" * 40 + b"b"


def test_ring_buffer_high_water_tracks_peak():
    ring = RingBuffer()
    ring.write(b"x" * 10)
    ring.skip(10)
    ring.write(b"y" * 4)
    assert ring.high_water == 10
    assert len(ring) == 4


# -- encoder counters -------------------------------------------------------


def test_frame_encoder_counts_traffic():
    encoder = FrameEncoder()
    a = encoder.encode(FrameType.OK, b"hi")
    b = encoder.encode_json(FrameType.ERROR, {"code": "wire"})
    assert encoder.frames_encoded == 2
    assert encoder.bytes_encoded == len(a) + len(b)
    assert decode_frame(b)[0] == FrameType.ERROR


# -- blocking shims ---------------------------------------------------------


def test_frame_stream_eof_semantics():
    frame = encode_frame(FrameType.OK, b"abc")
    stream = FrameStream(io.BytesIO(frame + frame))
    assert stream.read_frame() == (FrameType.OK, b"abc")
    assert stream.read_frame() == (FrameType.OK, b"abc")
    assert stream.read_frame() is None  # clean EOF at a boundary
    with pytest.raises(FrameError, match="truncated"):
        FrameStream(io.BytesIO(frame[:-1])).read_frame()


def test_read_frame_shim_is_deprecated_but_correct():
    frame = encode_frame(FrameType.REPORT, b"{}")
    with pytest.warns(DeprecationWarning, match="read_frame is deprecated"):
        assert read_frame(io.BytesIO(frame)) == (FrameType.REPORT, b"{}")
    stream = io.BytesIO(frame + frame)
    with pytest.warns(DeprecationWarning):
        # Reads exactly one frame: the second stays for the next caller.
        assert read_frame(stream) == (FrameType.REPORT, b"{}")
    assert stream.read() == frame
