"""Unit tests for the event model."""

import pytest

from repro.trace.events import (
    Event,
    Op,
    acquire,
    begin,
    end,
    fork,
    format_op,
    join,
    read,
    release,
    write,
)


class TestConstructors:
    def test_read(self):
        event = read("t1", "x")
        assert event.thread == "t1"
        assert event.op is Op.READ
        assert event.target == "x"

    def test_write(self):
        event = write("t2", "y")
        assert event.op is Op.WRITE
        assert event.target == "y"

    def test_acquire_release(self):
        assert acquire("t", "l").op is Op.ACQUIRE
        assert release("t", "l").op is Op.RELEASE

    def test_fork_join(self):
        assert fork("t", "u").target == "u"
        assert join("t", "u").op is Op.JOIN

    def test_begin_end_unlabeled(self):
        assert begin("t").target is None
        assert end("t").target is None

    def test_begin_end_labeled(self):
        assert begin("t", "method").target == "method"
        assert end("t", "method").target == "method"

    def test_target_required_for_non_markers(self):
        with pytest.raises(ValueError, match="require a target"):
            Event("t", Op.READ)
        with pytest.raises(ValueError, match="require a target"):
            Event("t", Op.FORK)

    def test_default_idx_is_unset(self):
        assert read("t", "x").idx == -1


class TestPredicates:
    def test_memory_access(self):
        assert read("t", "x").is_memory_access
        assert write("t", "x").is_memory_access
        assert not acquire("t", "l").is_memory_access

    def test_lock_op(self):
        assert acquire("t", "l").is_lock_op
        assert release("t", "l").is_lock_op
        assert not begin("t").is_lock_op

    def test_marker(self):
        assert begin("t").is_marker
        assert end("t").is_marker
        assert not join("t", "u").is_marker

    def test_individual_predicates(self):
        assert read("t", "x").is_read
        assert write("t", "x").is_write
        assert acquire("t", "l").is_acquire
        assert release("t", "l").is_release
        assert fork("t", "u").is_fork
        assert join("t", "u").is_join
        assert begin("t").is_begin
        assert end("t").is_end


class TestFormatting:
    def test_format_op(self):
        assert format_op(Op.READ, "x") == "r(x)"
        assert format_op(Op.ACQUIRE, "l") == "acq(l)"
        assert format_op(Op.BEGIN, None) == "begin"
        assert format_op(Op.BEGIN, "m") == "begin(m)"

    def test_str(self):
        assert str(read("t1", "x")) == "t1|r(x)"
        assert str(end("t2")) == "t2|end"

    def test_repr_contains_idx(self):
        event = read("t1", "x")
        event.idx = 5
        assert "5" in repr(event)


class TestEquality:
    def test_equal_ignores_idx(self):
        a, b = read("t", "x"), read("t", "x")
        a.idx, b.idx = 1, 2
        assert a == b
        assert hash(a) == hash(b)

    def test_not_equal_different_op(self):
        assert read("t", "x") != write("t", "x")

    def test_not_equal_other_type(self):
        assert read("t", "x") != "t|r(x)"
