"""Program-model tests: builders and static validation."""

import pytest

from repro.sim.program import (
    Acquire,
    Begin,
    End,
    Fork,
    Join,
    Program,
    ProgramError,
    Read,
    Release,
    ThreadBody,
    Write,
    atomic,
    flatten,
    locked,
    program_of,
)


class TestBuilders:
    def test_atomic_wraps_body(self):
        stmts = atomic(Read("x"), Write("x"), label="incr")
        assert stmts[0] == Begin("incr")
        assert stmts[-1] == End("incr")
        assert len(stmts) == 4

    def test_locked_wraps_body(self):
        stmts = locked("l", Read("x"))
        assert stmts == [Acquire("l"), Read("x"), Release("l")]

    def test_nesting_flattens(self):
        stmts = atomic(locked("l", Read("x")), Write("y"))
        assert stmts == [
            Begin(None),
            Acquire("l"),
            Read("x"),
            Release("l"),
            Write("y"),
            End(None),
        ]

    def test_flatten_deep(self):
        assert flatten([[Read("a")], [[Write("b")]]]) == [Read("a"), Write("b")]

    def test_program_of(self):
        program = program_of({"t1": [Read("x")], "t2": [Write("x")]})
        assert program.thread_names() == ["t1", "t2"]
        assert program.total_statements() == 2


class TestValidation:
    def test_duplicate_thread_names(self):
        with pytest.raises(ProgramError, match="duplicate"):
            Program([ThreadBody("t"), ThreadBody("t")])

    def test_unknown_fork_target(self):
        with pytest.raises(ProgramError, match="unknown thread"):
            Program([ThreadBody("t", [Fork("ghost")])])

    def test_self_fork(self):
        with pytest.raises(ProgramError, match="forks/joins itself"):
            Program([ThreadBody("t", [Fork("t")])])

    def test_double_fork(self):
        with pytest.raises(ProgramError, match="forked 2 times"):
            Program(
                [
                    ThreadBody("a", [Fork("c")]),
                    ThreadBody("b", [Fork("c")]),
                    ThreadBody("c"),
                ]
            )

    def test_unbalanced_end(self):
        with pytest.raises(ProgramError, match="no matching Begin"):
            Program([ThreadBody("t", [End()])])

    def test_open_block(self):
        with pytest.raises(ProgramError, match="open"):
            Program([ThreadBody("t", [Begin()])])

    def test_fork_cycle_has_no_root(self):
        with pytest.raises(ProgramError, match="no root thread"):
            Program(
                [
                    ThreadBody("a", [Fork("b")]),
                    ThreadBody("b", [Fork("a")]),
                ]
            )

    def test_root_threads(self):
        program = Program(
            [ThreadBody("main", [Fork("w")]), ThreadBody("w", [Read("x")])]
        )
        assert program.root_threads() == ["main"]

    def test_body_lookup(self):
        program = program_of({"t": [Read("x")]})
        assert len(program.body("t")) == 1
        with pytest.raises(KeyError):
            program.body("ghost")
