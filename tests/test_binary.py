"""Binary trace format tests."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.random_traces import RandomTraceConfig, random_trace
from repro.trace.binary import (
    MAGIC,
    BinaryTraceError,
    load_binary,
    read_binary,
    save_binary,
    write_binary,
)
from repro.trace.parser import parse_trace
from repro.trace.writer import dump_trace


class TestRoundTrip:
    def test_paper_trace(self, rho4, tmp_path):
        path = tmp_path / "rho4.rtb"
        save_binary(rho4, path)
        again = load_binary(path)
        assert again == rho4
        assert again.name == rho4.name

    def test_labeled_markers(self, tmp_path):
        trace = parse_trace("t1|begin(work)\nt1|w(x)\nt1|end(work)\n")
        path = tmp_path / "t.rtb"
        save_binary(trace, path)
        assert load_binary(path) == trace
        assert load_binary(path)[0].target == "work"

    def test_empty_trace(self, tmp_path):
        from repro.trace.trace import Trace

        path = tmp_path / "empty.rtb"
        save_binary(Trace(name="nothing"), path)
        loaded = load_binary(path)
        assert len(loaded) == 0
        assert loaded.name == "nothing"

    def test_smaller_than_text(self, tmp_path):
        trace = random_trace(1, RandomTraceConfig(length=500))
        binary = io.BytesIO()
        write_binary(trace, binary)
        assert len(binary.getvalue()) < len(dump_trace(trace).encode())


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(BinaryTraceError, match="bad magic"):
            read_binary(io.BytesIO(b"NOTATRACE"))

    def test_truncated_header(self):
        with pytest.raises(BinaryTraceError, match="truncated"):
            read_binary(io.BytesIO(MAGIC))

    def test_truncated_events(self, rho1):
        buffer = io.BytesIO()
        write_binary(rho1, buffer)
        data = buffer.getvalue()
        with pytest.raises(BinaryTraceError, match="truncated"):
            read_binary(io.BytesIO(data[:-4]))

    def test_corrupt_op_code(self, rho1):
        buffer = io.BytesIO()
        write_binary(rho1, buffer)
        data = bytearray(buffer.getvalue())
        data[-9] = 0xEE  # clobber the last event's op byte
        with pytest.raises(BinaryTraceError, match="corrupt"):
            read_binary(io.BytesIO(bytes(data)))


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_roundtrip_property(seed):
    trace = random_trace(seed, RandomTraceConfig(length=40, with_forks=True))
    buffer = io.BytesIO()
    write_binary(trace, buffer)
    buffer.seek(0)
    assert read_binary(buffer) == trace
