"""The streaming service end to end: router, server, recovery.

The load-bearing test is the **agreement property**: every trace-zoo
specimen streamed through a live TCP server — in random batch splits,
with either wire encoding, with and without a mid-stream
checkpoint + server restart — produces a ``repro-report/1`` document
whose analyses and verdict are identical to the offline
``Session.run()`` on the full trace. That is the service-level
extension of the checkpoint-equivalence property in
``tests/test_snapshot.py``.
"""

import random
import socket

import pytest

from repro.api import Session, validate_report
from repro.service import (
    BusyError,
    RemoteChecker,
    Router,
    ServiceClient,
    ServiceError,
    ServiceServer,
    StreamingSession,
    SessionNotFound,
    submit_trace,
)
from repro.service.recovery import RecoveryManager
from repro.sim import trace_zoo

ANALYSES = ["aerodrome", "races", "lockset"]


def offline_doc(trace, analyses=ANALYSES, name=None):
    return Session(trace, analyses, name=name or trace.name).run().to_json()


def batches(events, seed):
    rng = random.Random(seed)
    out, i = [], 0
    while i < len(events):
        n = rng.randint(1, 4)
        out.append(events[i : i + n])
        i += n
    return out


# -- StreamingSession (no wire) ---------------------------------------------


class TestStreamingSession:
    def test_feed_finish_matches_offline(self):
        spec = trace_zoo.get("paper-rho2")
        session = StreamingSession("s1", ANALYSES, name=spec.name)
        for batch in batches(list(spec.trace()), seed=1):
            session.feed(batch)
        assert session.position == len(spec.trace())
        doc = session.report()
        base = offline_doc(spec.trace(), name=spec.name)
        assert doc["analyses"] == base["analyses"]
        assert doc["verdict"] == base["verdict"]
        assert doc["trace"]["events"] == base["trace"]["events"]

    def test_violation_log_is_monotonic_and_drains_once(self):
        spec = trace_zoo.get("three-party-cycle")
        session = StreamingSession("s2", ANALYSES, name=spec.name)
        drained = []
        for batch in batches(list(spec.trace()), seed=2):
            session.feed(batch)
            drained.extend(session.drain_findings())
        session.finish()
        drained.extend(session.drain_findings())
        assert drained == session.findings  # each finding exactly once
        assert any(f["analysis"] == "aerodrome" for f in drained)

    def test_checkpoint_round_trip_mid_stream(self):
        spec = trace_zoo.get("lock-cycle")
        events = list(spec.trace())
        half = len(events) // 2
        session = StreamingSession("s3", ANALYSES, name=spec.name)
        session.feed(events[:half])
        restored = StreamingSession.from_bytes(session.to_bytes())
        assert restored.position == half
        restored.feed(events[half:])
        base = offline_doc(spec.trace(), name=spec.name)
        assert restored.report()["analyses"] == base["analyses"]

    def test_feed_after_close_rejected(self):
        session = StreamingSession("s4", ["aerodrome"])
        session.finish()
        with pytest.raises(RuntimeError):
            session.feed([])


# -- Router -----------------------------------------------------------------


class TestRouter:
    def test_sessions_route_stably_and_share_nothing(self):
        with Router(shards=3) as router:
            ids = [f"session-{i}" for i in range(12)]
            for session_id in ids:
                router.open_session(
                    [("aerodrome", {})], session_id=session_id
                )
            stats = router.stats()
            assert stats["sessions_open"] == 12
            per_shard = [s["sessions_open"] for s in stats["shards"]]
            assert sum(per_shard) == 12
            assert all(
                router.shard_of(s) == router.shard_of(s) for s in ids
            )

    def test_full_inbox_raises_busy(self):
        with Router(shards=1, queue_size=2) as router:
            info = router.open_session([("aerodrome", {})])
            sid = info["session"]
            spec = trace_zoo.get("paper-rho1")
            events = list(spec.trace())
            # swamp the queue faster than the shard can drain: big burst
            with pytest.raises(BusyError):
                for _ in range(10_000):
                    router.feed(sid, events)

    def test_unknown_session(self):
        with Router() as router:
            with pytest.raises(SessionNotFound):
                router.flush("nope")

    def test_duplicate_open_rejected(self):
        with Router() as router:
            router.open_session([("aerodrome", {})], session_id="dup")
            with pytest.raises(Exception, match="already open"):
                router.open_session([("aerodrome", {})], session_id="dup")

    def test_close_returns_report_and_frees_session(self):
        with Router(shards=2) as router:
            spec = trace_zoo.get("paper-rho3")
            info = router.open_session(
                [(n, {}) for n in ANALYSES], name=spec.name
            )
            sid = info["session"]
            router.feed(sid, list(spec.trace()))
            router.flush(sid)
            out = router.close(sid)
            validate_report(out["report"])
            base = offline_doc(spec.trace(), name=spec.name)
            assert out["report"]["analyses"] == base["analyses"]
            with pytest.raises(SessionNotFound):
                router.flush(sid)
            assert router.stats()["sessions_closed"] == 1

    def test_bad_analysis_surfaces_not_poisons(self):
        with Router() as router:
            with pytest.raises(Exception, match="unknown analysis"):
                router.open_session([("not-an-analysis", {})])
            # the shard still works
            info = router.open_session([("aerodrome", {})])
            assert router.flush(info["session"])["position"] == 0

    @pytest.mark.parametrize("workers", ["thread", "process"])
    def test_worker_modes_agree(self, workers):
        spec = trace_zoo.get("three-party-cycle")
        base = offline_doc(spec.trace(), name=spec.name)
        with Router(shards=2, workers=workers) as router:
            info = router.open_session(
                [(n, {}) for n in ANALYSES], name=spec.name
            )
            sid = info["session"]
            for batch in batches(list(spec.trace()), seed=3):
                router.feed(sid, batch)
            report = router.close(sid)["report"]
        assert report["analyses"] == base["analyses"]
        assert report["verdict"] == base["verdict"]


# -- live server: the agreement property ------------------------------------


@pytest.fixture(scope="module", params=["thread", "async"])
def server(request):
    """One live server per wire backend — every test below runs against
    both the thread-per-connection and the selectors event-loop front
    end, which is what keeps the two byte-for-byte equivalent."""
    with ServiceServer(shards=2, backend=request.param).start() as srv:
        yield srv


def test_zoo_agreement_over_live_server(server):
    """Satellite property: every specimen, random batches, both
    encodings, report ≡ offline."""
    for i, spec in enumerate(trace_zoo.all_specimens()):
        trace = spec.trace()
        base = offline_doc(spec.trace(), name=spec.name)
        encoding = "delta" if i % 2 else "text"
        doc = submit_trace(
            server.host,
            server.port,
            list(trace),
            ANALYSES,
            name=spec.name,
            batch=random.Random(i).randint(1, 5),
            encoding=encoding,
        )
        assert doc["analyses"] == base["analyses"], spec.name
        assert doc["verdict"] == base["verdict"], spec.name
        assert doc["trace"]["events"] == base["trace"]["events"], spec.name
        validate_report(doc)


@pytest.mark.parametrize("backend", ["thread", "async"])
def test_zoo_agreement_with_restart_mid_stream(tmp_path, backend):
    """Satellite property: checkpoint, kill the server, restart from
    the spool, resume, and the report still matches offline."""
    spool = tmp_path / "spool"
    for i, spec in enumerate(trace_zoo.all_specimens()):
        trace = list(spec.trace())
        base = offline_doc(spec.trace(), name=spec.name)
        cut = random.Random(100 + i).randint(1, max(1, len(trace) - 1))
        sid = f"restart-{spec.name}"
        with ServiceServer(shards=2, spool=spool, backend=backend).start() as first:
            part = submit_trace(
                first.host,
                first.port,
                trace,
                ANALYSES,
                name=spec.name,
                batch=2,
                session_id=sid,
                stop_after=cut,
                checkpoint=True,
            )
            assert part["open"] and part["position"] == cut
        # first server is gone (stop() ≈ the crash); a new incarnation
        # recovers the session from the spool.
        with ServiceServer(shards=2, spool=spool, backend=backend).start() as second:
            assert sid in second.recovered
            doc = submit_trace(
                second.host,
                second.port,
                trace,
                ANALYSES,
                name=spec.name,
                batch=3,
                session_id=sid,
                resume=True,
            )
        assert doc["analyses"] == base["analyses"], spec.name
        assert doc["verdict"] == base["verdict"], spec.name
        assert doc["service"]["resumed"], spec.name


def test_concurrent_tenants_do_not_interfere(server):
    import threading

    specs = [trace_zoo.get(n) for n in (
        "paper-rho1", "paper-rho2", "three-party-cycle", "unary-only",
        "lock-cycle", "fork-join-handoff",
    )]
    results = {}
    errors = []

    def stream(spec):
        try:
            results[spec.name] = submit_trace(
                server.host, server.port, list(spec.trace()),
                ANALYSES, name=spec.name, batch=1,
            )
        except Exception as exc:  # pragma: no cover - diagnostic
            errors.append((spec.name, exc))

    threads = [threading.Thread(target=stream, args=(s,)) for s in specs]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    for spec in specs:
        base = offline_doc(spec.trace(), name=spec.name)
        assert results[spec.name]["analyses"] == base["analyses"], spec.name


def test_corrupt_bytes_poison_only_their_connection(server):
    """Satellite: wire garbage kills the connection, not the shard or
    its other sessions."""
    spec = trace_zoo.get("paper-rho2")
    # a healthy session, opened first, on the same (only two) shards
    client = ServiceClient(server.host, server.port)
    handle = client.open_session(ANALYSES, name=spec.name)
    events = list(spec.trace())
    handle.send(events[:3])

    # junk connection 1: raw garbage
    sock = socket.create_connection((server.host, server.port), timeout=5)
    sock.sendall(b"\xde\xad\xbe\xef" * 10)
    sock.close()
    # junk connection 2: valid frame, corrupt payload
    with ServiceClient(server.host, server.port) as bad:
        from repro.service import protocol

        with pytest.raises((ServiceError, protocol.WireError)):
            bad.roundtrip(
                protocol.encode_frame(protocol.FrameType.HELLO, b"{broken")
            )

    # the healthy session is unaffected
    handle.send(events[3:])
    doc = handle.result()
    client.close()
    base = offline_doc(spec.trace(), name=spec.name)
    assert doc["analyses"] == base["analyses"]


def test_events_before_hello_is_an_error(server):
    with ServiceClient(server.host, server.port) as client:
        from repro.service import protocol

        with pytest.raises(ServiceError, match="HELLO"):
            client.roundtrip(
                protocol.encode_frame(
                    protocol.FrameType.EVENTS,
                    protocol.encode_events_text([]),
                )
            )


def test_stats_frame(server):
    with ServiceClient(server.host, server.port) as client:
        stats = client.stats()
    assert {"shards", "sessions_open", "events", "violations"} <= set(stats)
    assert len(stats["shards"]) == 2


def test_malformed_event_line_parks_error_on_session(server):
    from repro.service import protocol

    with ServiceClient(server.host, server.port) as client:
        client.open_session(["aerodrome"], name="bad-events")
        with pytest.raises(ServiceError):
            # fork with no target is a payload error at decode time
            client.roundtrip(
                protocol.encode_frame(
                    protocol.FrameType.EVENTS, bytes([0]) + b"t1|fork"
                )
            )


def test_remote_checker_live_monitor(server):
    from repro.instrument.monitor import LiveMonitor

    remote = RemoteChecker(
        server.host, server.port, analyses=["aerodrome"], batch=1
    )
    monitor = LiveMonitor(checker=remote)
    x = monitor.shared("x")
    with monitor.atomic("bump"):
        x.set(1)
        x.set(x.get() + 1)
    remote.flush()
    assert monitor.clean
    report = remote.finish()
    assert report["verdict"] == "pass"
    assert remote.result().serializable


def test_remote_checker_reports_violation(server):
    spec = trace_zoo.get("paper-rho2")
    remote = RemoteChecker(
        server.host, server.port, analyses=["aerodrome"], batch=2
    )
    found = None
    for event in spec.trace():
        found = remote.process(event) or found
    found = remote.flush() or found
    assert remote.finish()["verdict"] == "fail"
    assert remote.violation is not None
    base = Session(spec.trace(), ["aerodrome"]).run()
    expected = base.reports["aerodrome"].native.violation
    assert remote.violation.event_idx == expected.event_idx


# -- recovery unit tests ----------------------------------------------------


class TestRecovery:
    def test_spool_round_trip(self, tmp_path):
        manager = RecoveryManager(tmp_path / "spool")
        spec = trace_zoo.get("paper-rho4")
        session = StreamingSession("abc", ANALYSES, name=spec.name)
        session.feed(list(spec.trace())[:4])
        checkpoint = manager.save(session)
        assert checkpoint.position == 4
        assert checkpoint.analyses == ANALYSES
        assert len(checkpoint) > 0
        assert manager.session_ids() == ["abc"]
        restored = manager.load("abc")
        assert restored.position == 4
        manager.delete("abc")
        assert manager.session_ids() == []

    def test_corrupt_spool_entry_skipped(self, tmp_path):
        manager = RecoveryManager(tmp_path / "spool")
        session = StreamingSession("good", ["aerodrome"])
        manager.save(session)
        (tmp_path / "spool" / "bad.ckpt").write_bytes(b"not a checkpoint")
        assert manager.session_ids() == ["good"]
        assert set(manager.load_all()) == {"good"}

    def test_session_ids_are_sanitized(self, tmp_path):
        manager = RecoveryManager(tmp_path / "spool")
        path = manager.path_for("../../etc/passwd")
        assert path.parent == manager.spool
        assert "/" not in path.name
