"""Checkpoint/restore tests: splitting a stream at any point must not
change the verdict, for every registered algorithm."""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro import available_algorithms, check_trace, make_checker
from repro.core.snapshot import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    load_checkpoint,
    restore,
    save_checkpoint,
    snapshot,
)
from repro.sim.random_traces import RandomTraceConfig, random_trace

#: Atomizer is registered but deliberately unsound; it still must be
#: checkpointable like the rest.
ALGORITHMS = available_algorithms()


def run_split(trace, algorithm, split):
    """Run with a snapshot/restore boundary after ``split`` events."""
    checker = make_checker(algorithm)
    events = list(trace)
    for event in events[:split]:
        if checker.process(event) is not None:
            return checker.result()
    resumed = restore(snapshot(checker))
    for event in events[split:]:
        if resumed.process(event) is not None:
            break
    return resumed.result()


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_split_preserves_verdict_on_paper_traces(algorithm, paper_traces):
    for trace, _ in paper_traces:
        expected = check_trace(trace, algorithm=algorithm)
        for split in range(len(trace) + 1):
            result = run_split(trace, algorithm, split)
            assert result.serializable == expected.serializable
            if expected.violation is not None:
                assert result.violation.event_idx == expected.violation.event_idx


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10**9),
    split_frac=st.floats(0.0, 1.0),
    algorithm=st.sampled_from(["aerodrome", "aerodrome-basic", "velodrome"]),
)
def test_split_preserves_verdict_on_random_traces(seed, split_frac, algorithm):
    trace = random_trace(
        seed, RandomTraceConfig(n_threads=3, n_vars=3, n_locks=1, length=40)
    )
    split = int(split_frac * len(trace))
    expected = check_trace(trace, algorithm=algorithm)
    result = run_split(trace, algorithm, split)
    assert result.serializable == expected.serializable


def test_snapshot_does_not_disturb_the_original(rho2):
    checker = make_checker("aerodrome")
    events = list(rho2)
    for event in events[:3]:
        checker.process(event)
    checkpoint = snapshot(checker)
    # Original keeps processing to the violation...
    for event in events[3:]:
        if checker.process(event) is not None:
            break
    assert checker.violation is not None
    # ...while the checkpoint still describes the old position.
    assert checkpoint.events_processed == 3
    resumed = restore(checkpoint)
    assert resumed.violation is None
    assert resumed.events_processed == 3


def test_restored_checker_is_independent(rho2):
    checker = make_checker("aerodrome")
    events = list(rho2)
    for event in events[:4]:
        checker.process(event)
    first = restore(snapshot(checker))
    second = restore(snapshot(checker))
    for event in events[4:]:
        if first.process(event) is not None:
            break
    assert first.violation is not None
    assert second.violation is None  # untouched sibling


def test_checkpoint_metadata(rho1):
    checker = make_checker("velodrome")
    for event in rho1:
        checker.process(event)
    checkpoint = snapshot(checker)
    assert checkpoint.algorithm == "velodrome"
    assert checkpoint.events_processed == len(rho1)
    assert checkpoint.version == CHECKPOINT_VERSION
    assert len(checkpoint) == len(checkpoint.payload) > 0


def test_file_round_trip(tmp_path, rho2):
    checker = make_checker("aerodrome")
    events = list(rho2)
    for event in events[:4]:
        checker.process(event)
    path = tmp_path / "analysis.ckpt"
    save_checkpoint(checker, path)
    resumed = load_checkpoint(path)
    for event in events[4:]:
        if resumed.process(event) is not None:
            break
    assert resumed.violation is not None


def test_version_mismatch_rejected():
    checkpoint = Checkpoint(
        algorithm="aerodrome",
        events_processed=0,
        payload=b"",
        version=CHECKPOINT_VERSION + 1,
    )
    with pytest.raises(CheckpointError, match="version"):
        restore(checkpoint)


def test_corrupt_payload_rejected():
    checkpoint = Checkpoint(
        algorithm="aerodrome", events_processed=0, payload=b"garbage"
    )
    with pytest.raises(CheckpointError, match="corrupt"):
        restore(checkpoint)


def test_non_checker_payload_rejected():
    payload = pickle.dumps({"not": "a checker"})
    checkpoint = Checkpoint(
        algorithm="aerodrome", events_processed=0, payload=payload
    )
    with pytest.raises(CheckpointError, match="not a StreamingChecker"):
        restore(checkpoint)


def test_load_rejects_wrong_file_contents(tmp_path):
    path = tmp_path / "bogus.ckpt"
    with open(path, "wb") as handle:
        pickle.dump([1, 2, 3], handle)
    with pytest.raises(CheckpointError, match="does not contain"):
        load_checkpoint(path)
