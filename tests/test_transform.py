"""Trace-transformation tests (rename / concat / interleave)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Trace, check_trace, fork, is_well_formed, join, write
from repro.sim.random_traces import RandomTraceConfig, random_trace
from repro.sim.trace_zoo import get as zoo_get
from repro.trace.transform import (
    concat,
    interleave,
    relabel_disjoint,
    rename,
)


class TestRename:
    def test_threads_variables_locks(self):
        trace = zoo_get("lock-cycle").trace()
        renamed = rename(
            trace,
            threads={"t1": "alice", "t2": "bob"},
            variables={"x": "balance"},
            locks={"l": "mutex"},
        )
        assert {e.thread for e in renamed} == {"alice", "bob"}
        assert any(e.target == "balance" for e in renamed)
        assert any(e.target == "mutex" for e in renamed)

    def test_fork_join_targets_renamed(self):
        trace = Trace([fork("t1", "t2"), write("t2", "x"), join("t1", "t2")])
        renamed = rename(trace, threads={"t2": "child"})
        assert renamed[0].target == "child"
        assert renamed[2].target == "child"
        assert is_well_formed(renamed)

    def test_rejects_merging_map(self):
        trace = Trace([write("t1", "x"), write("t2", "y")])
        with pytest.raises(ValueError, match="not injective"):
            rename(trace, threads={"t1": "t", "t2": "t"})

    def test_rejects_merge_into_existing(self):
        trace = Trace([write("t1", "x"), write("t2", "y")])
        with pytest.raises(ValueError, match="merges into existing"):
            rename(trace, threads={"t1": "t2"})

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_verdict_preserved(self, seed):
        trace = random_trace(
            seed, RandomTraceConfig(n_threads=3, n_vars=3, n_locks=1, length=30)
        )
        renamed = rename(
            trace,
            threads={"t0": "alpha", "t1": "beta"},
            variables={"x0": "v_zero"},
            locks={"l0": "guard"},
        )
        assert (
            check_trace(renamed).serializable
            == check_trace(trace).serializable
        )


class TestConcat:
    def test_disjoint_verdict_is_disjunction(self):
        good = relabel_disjoint([zoo_get("paper-rho1").trace()], prefix="a")[0]
        bad = relabel_disjoint([zoo_get("paper-rho2").trace()], prefix="b")[0]
        assert check_trace(concat([good])).serializable
        assert not check_trace(concat([good, bad])).serializable
        assert not check_trace(concat([bad, good])).serializable

    def test_shared_threads_rejected(self):
        rho1 = zoo_get("paper-rho1").trace()
        with pytest.raises(ValueError, match="share thread"):
            concat([rho1, zoo_get("paper-rho2").trace()])

    def test_unchecked_mode_allows_sharing(self):
        part = Trace([write("t1", "x")])
        merged = concat([part, part], disjoint_threads=False)
        assert len(merged) == 2


class TestInterleave:
    def test_round_robin_order(self):
        a = Trace([write("a", "x"), write("a", "y")])
        b = Trace([write("b", "p"), write("b", "q")])
        merged = interleave([a, b])
        assert [e.thread for e in merged] == ["a", "b", "a", "b"]

    def test_chunked(self):
        a = Trace([write("a", "x"), write("a", "y")])
        b = Trace([write("b", "p")])
        merged = interleave([a, b], chunk=2)
        assert [e.thread for e in merged] == ["a", "a", "b"]

    def test_rejects_zero_chunk(self):
        with pytest.raises(ValueError, match="chunk"):
            interleave([Trace([])], chunk=0)

    def test_disjoint_groups_keep_their_verdicts(self):
        groups = relabel_disjoint(
            [zoo_get("paper-rho2").trace() for _ in range(3)]
        )
        merged = interleave(groups)
        assert is_well_formed(merged)
        assert not check_trace(merged).serializable

    def test_serializable_groups_stay_serializable(self):
        groups = relabel_disjoint(
            [zoo_get("paper-rho1").trace() for _ in range(3)]
        )
        merged = interleave(groups)
        assert check_trace(merged).serializable


class TestRelabel:
    def test_namespaces_are_disjoint(self):
        groups = relabel_disjoint([zoo_get("lock-cycle").trace()] * 2)
        names_a = {e.thread for e in groups[0]}
        names_b = {e.thread for e in groups[1]}
        assert not names_a & names_b
        for group in groups:
            assert not check_trace(group).serializable  # verdict kept
