"""Epoch fencing at the wire: stale writers get FENCED, never served.

Every cluster frame that can change session state carries the sender's
membership epoch; a node whose own view is behind answers a typed
``FENCED`` frame and refuses the write. These tests pin all four fence
points — HELLO, HANDOFF, OWNED, and the per-frame pinned-epoch check on
shard-bound frames — plus the recovery contract: a fenced handoff is
undone on the source, which drains the session itself without
double-reporting its violations.
"""

import pytest

from repro.api import Session
from repro.cluster import (
    DEAD,
    NodeInfo,
    StaleEpochError,
    json_call,
    migrate_session,
    ship_handoff,
)
from repro.service import ServiceServer
from repro.service.client import ServiceClient, SessionFenced
from repro.service.client import submit_trace as node_submit
from repro.service.connection import WireConnection
from repro.service.protocol import (
    PROTOCOL,
    FrameDecoder,
    FrameType,
    decode_json,
    encode_events_text,
    encode_frame,
    encode_json,
)
from repro.service.router import Router
from repro.sim import trace_zoo

ANALYSES = ["aerodrome", "races", "lockset"]


def offline_doc(spec):
    return Session(spec.trace(), ANALYSES, name=spec.name).run().to_json()


def bump_epoch(server, n=1):
    """Advance a node's membership epoch without touching its ring
    (dead members never join the ring), so previously-stamped frames
    become stale."""
    cluster = server.cluster
    with cluster._lock:
        for i in range(n):
            cluster.membership.add(
                NodeInfo(f"ghost-{cluster.membership.epoch}-{i}",
                         "127.0.0.1", 1, DEAD)
            )
    return cluster.epoch


@pytest.fixture
def node(tmp_path):
    """One clustered node with a quiet gossip loop."""
    server = ServiceServer(
        shards=2, backend="thread", spool=str(tmp_path / "node"),
        cluster=True, node_id="n1",
        gossip_interval=5.0, suspect_after=60.0,
    ).start()
    yield server
    server.stop()


# -- HELLO ------------------------------------------------------------------


def test_hello_from_future_epoch_is_fenced(node):
    """A client routed by a membership newer than the node's: the node
    may be the stale side of a partition and must not serve."""
    before = node.cluster.epoch
    with ServiceClient(node.host, node.port) as client:
        with pytest.raises(SessionFenced) as excinfo:
            client.open_session(ANALYSES, epoch=before + 1)
    assert excinfo.value.code == "fenced"
    assert excinfo.value.epoch == before
    with ServiceClient(node.host, node.port) as client:
        assert client.stats()["server"]["fenced"] >= 1


def test_hello_at_current_epoch_pins_and_serves(node):
    spec = trace_zoo.get("paper-rho1")
    base = offline_doc(spec)
    with ServiceClient(node.host, node.port) as client:
        handle = client.open_session(ANALYSES, epoch=node.cluster.epoch)
        handle.send(list(spec.trace()))
        doc = handle.result()
    assert doc["analyses"] == base["analyses"]
    assert doc["verdict"] == base["verdict"]


# -- HANDOFF / OWNED control frames -----------------------------------------


def test_stale_handoff_is_fenced(node):
    """A partitioned old owner pushing state decided under a superseded
    ring is refused before its blob is even looked at."""
    stale = node.cluster.epoch
    current = bump_epoch(node)
    meta = {"session": "fence-h1", "live": True,
            "epoch": stale, "origin": "ghost"}
    with pytest.raises(StaleEpochError) as excinfo:
        ship_handoff(node.host, node.port, meta, b"bogus", timeout=10.0)
    assert excinfo.value.peer_epoch == current
    # The fenced blob was never imported.
    assert not any(
        row["session"] == "fence-h1"
        for row in node.router.list_sessions()
    )


def test_handoff_at_current_epoch_is_accepted(node):
    """Same frame, fresh epoch: the replica path stores the blob."""
    meta = {"session": "fence-h2", "live": False,
            "epoch": node.cluster.epoch, "origin": "peer"}
    reply = ship_handoff(node.host, node.port, meta, b"blob", timeout=10.0)
    assert reply.get("session") == "fence-h2"


def test_stale_owned_notice_is_fenced(node):
    """A stale peer's drop notice must not destroy a replica the
    current ring may still need for failover."""
    stale = node.cluster.epoch
    current = bump_epoch(node)
    with pytest.raises(StaleEpochError) as excinfo:
        json_call(
            node.host, node.port, FrameType.OWNED,
            {"from": "ghost", "session": "fence-o1",
             "closed": True, "epoch": stale},
            timeout=10.0,
        )
    assert excinfo.value.peer_epoch == current
    # The same notice stamped with the current epoch goes through.
    reply = json_call(
        node.host, node.port, FrameType.OWNED,
        {"from": "ghost", "session": "fence-o1",
         "closed": True, "epoch": node.cluster.epoch},
        timeout=10.0,
    )
    assert isinstance(reply, dict)


# -- the per-frame pinned-epoch fence (sans-IO) ------------------------------


class StubCluster:
    """Just enough coordinator surface for a WireConnection, with a
    settable epoch — the only way to exercise the defense-in-depth
    pinned-epoch check, since real epochs are monotone."""

    def __init__(self, epoch):
        self.epoch = epoch
        self.vnodes = 8

    def owns(self, session_id):
        return True

    def local_session_id(self):
        return "stub-session"

    def session_closed(self, session_id):
        pass

    def stats(self):
        return {}


def drive(conn, timeout=10.0):
    """Pump a sans-IO connection until idle, waiting on shard futures."""
    while True:
        waiting = conn.pump()
        if not waiting:
            return
        for future in waiting:
            future.join(timeout)


def replies(conn):
    """Decode every reply frame the connection has queued so far."""
    decoder = FrameDecoder()
    for chunk in conn.outbox:
        decoder.feed(chunk)
    frames = []
    while True:
        frame = decoder.next_frame()
        if frame is None:
            return frames
        ftype, payload = frame
        frames.append((ftype, decode_json(payload) if payload else {}))


def test_events_behind_pinned_epoch_is_fenced():
    """A shard-bound frame on a connection whose node fell behind its
    pinned routing epoch answers FENCED, not silence."""
    router = Router(shards=1)
    try:
        counters = {}

        def count(name):
            counters[name] = counters.get(name, 0) + 1

        stub = StubCluster(epoch=3)
        conn = WireConnection(router, count, lambda: dict(counters), stub)
        conn.receive_bytes(encode_json(FrameType.HELLO, {
            "protocol": PROTOCOL, "analyses": ["races"],
            "session": "pin-1", "epoch": 3,
        }))
        drive(conn)
        assert conn.pinned_epoch == 3
        assert replies(conn)[-1][0] == FrameType.OK
        # The node's view regresses behind the pin (stale partition
        # side): the very next shard-bound frame must fence.
        stub.epoch = 2
        conn.receive_bytes(
            encode_frame(FrameType.EVENTS, encode_events_text([]))
        )
        drive(conn)
        ftype, obj = replies(conn)[-1]
        assert ftype == FrameType.FENCED
        assert obj["code"] == "fenced"
        assert obj["session"] == "pin-1"
        assert obj["epoch"] == 2
        assert counters["fenced"] == 1
    finally:
        router.shutdown()


def test_hello_behind_epoch_is_fenced_sans_io():
    router = Router(shards=1)
    try:
        conn = WireConnection(
            router, lambda name: None, dict, StubCluster(epoch=2)
        )
        conn.receive_bytes(encode_json(FrameType.HELLO, {
            "protocol": PROTOCOL, "analyses": ["races"],
            "session": "pin-2", "epoch": 5,
        }))
        drive(conn)
        ftype, obj = replies(conn)[-1]
        assert ftype == FrameType.FENCED
        assert obj["epoch"] == 2
        assert conn.session_id is None  # the session never opened
    finally:
        router.shutdown()


# -- fenced drain: no duplicate violation reports ----------------------------


def test_fenced_handoff_drains_on_source_without_double_reporting(tmp_path):
    """A fenced live migration is undone: the source re-imports the
    session and drains it itself, and the final report still equals the
    offline run — the aborted handoff neither loses acked events nor
    duplicates the violations already found."""
    spec = trace_zoo.get("paper-rho2")
    base = offline_doc(spec)
    events = list(spec.trace())
    source = ServiceServer(
        shards=1, backend="thread", spool=str(tmp_path / "src"),
        checkpoint_every=4,
    ).start()
    target = ServiceServer(
        shards=1, backend="thread", spool=str(tmp_path / "dst"),
        cluster=True, node_id="t1",
        gossip_interval=5.0, suspect_after=60.0,
    ).start()
    try:
        stale = target.cluster.epoch
        bump_epoch(target)
        half = max(4, len(events) // 2)
        info = node_submit(
            source.host, source.port, events, ANALYSES, batch=4,
            session_id="drain-1", stop_after=half, checkpoint=True,
        )
        assert info["open"] and info["position"] == half
        with pytest.raises(StaleEpochError):
            migrate_session(
                source.router, "drain-1", target.host, target.port,
                timeout=10.0, epoch=stale, origin="src",
            )
        # Undone: the session is live on the source again, at its
        # checkpointed position, and absent from the fencing target.
        assert any(
            row["session"] == "drain-1"
            for row in source.router.list_sessions()
        )
        assert not any(
            row["session"] == "drain-1"
            for row in target.router.list_sessions()
        )
        doc = node_submit(
            source.host, source.port, events, ANALYSES, batch=4,
            session_id="drain-1", resume=True,
        )
        assert doc["analyses"] == base["analyses"]
        assert doc["verdict"] == base["verdict"]
        with ServiceClient(target.host, target.port) as client:
            assert client.stats()["server"]["fenced"] >= 1
    finally:
        target.stop()
        source.stop()
