"""Digraph substrate tests, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.graph import Digraph


class TestBasics:
    def test_add_nodes_and_edges(self):
        g = Digraph()
        assert g.add_edge("a", "b")
        assert not g.add_edge("a", "b")  # duplicate
        assert len(g) == 2
        assert g.edge_count() == 1
        assert g.in_degree("b") == 1
        assert "a" in g

    def test_self_loops_rejected(self):
        g = Digraph()
        assert not g.add_edge("a", "a")
        assert g.edge_count() == 0

    def test_peak_nodes(self):
        g = Digraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.remove_node("a")
        assert g.peak_nodes == 3
        assert len(g) == 2

    def test_remove_node_returns_zeroed(self):
        g = Digraph()
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        g.add_edge("d", "c")
        zeroed = g.remove_node("a")
        assert set(zeroed) == {"b"}  # c still has d's edge


class TestReachability:
    def test_reaches_direct_and_transitive(self):
        g = Digraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert g.reaches(1, 3)
        assert not g.reaches(3, 1)
        assert g.reaches(2, 2)

    def test_reaches_missing_nodes(self):
        g = Digraph()
        g.add_node(1)
        assert not g.reaches(1, 99)
        assert not g.reaches(99, 1)

    def test_creates_cycle(self):
        g = Digraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert g.creates_cycle(3, 1)
        assert not g.creates_cycle(1, 3)
        assert not g.creates_cycle(1, 1)


class TestCycles:
    def test_acyclic(self):
        g = Digraph()
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        g.add_edge(2, 3)
        assert not g.has_cycle()
        assert g.find_cycle() == []

    def test_simple_cycle(self):
        g = Digraph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.has_cycle()
        assert set(g.find_cycle()) == {1, 2}

    def test_long_cycle_found(self):
        g = Digraph()
        for i in range(10):
            g.add_edge(i, (i + 1) % 10)
        cycle = g.find_cycle()
        assert len(cycle) == 10

    def test_cycle_in_disconnected_component(self):
        g = Digraph()
        g.add_edge("a", "b")
        g.add_edge("x", "y")
        g.add_edge("y", "x")
        assert g.has_cycle()


_edge_lists = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=60
)


@settings(max_examples=200, deadline=None)
@given(_edge_lists)
def test_has_cycle_matches_networkx(edges):
    g = Digraph()
    nxg = nx.DiGraph()
    for src, dst in edges:
        if src != dst:
            g.add_edge(src, dst)
            nxg.add_edge(src, dst)
    if len(nxg) == 0:
        assert not g.has_cycle()
    else:
        assert g.has_cycle() == (not nx.is_directed_acyclic_graph(nxg))


@settings(max_examples=100, deadline=None)
@given(_edge_lists, st.integers(0, 12), st.integers(0, 12))
def test_reaches_matches_networkx(edges, src, dst):
    g = Digraph()
    nxg = nx.DiGraph()
    for a, b in edges:
        if a != b:
            g.add_edge(a, b)
            nxg.add_edge(a, b)
    if src in g and dst in g:
        assert g.reaches(src, dst) == nx.has_path(nxg, src, dst)


@settings(max_examples=100, deadline=None)
@given(_edge_lists)
def test_find_cycle_is_a_real_cycle(edges):
    g = Digraph()
    for a, b in edges:
        g.add_edge(a, b)
    cycle = g.find_cycle()
    if cycle:
        for i, node in enumerate(cycle):
            succ = cycle[(i + 1) % len(cycle)]
            assert succ in g.successors(node)
    else:
        assert not g.has_cycle()
