"""Spec-inference tests: greedy refutation over labeled traces."""

import pytest

from repro import Trace, begin, check_trace, end, read, write
from repro.sim.runtime import execute
from repro.sim.scheduler import RoundRobinScheduler
from repro.sim.workloads.patterns import (
    locked_counter,
    producer_consumer,
    unprotected_counter,
)
from repro.spec.inference import (
    InferenceError,
    infer_spec,
    labeled_methods,
)
from repro.trace.filters import apply_spec

FINE = RoundRobinScheduler(quantum=1)


def labeled_rho2(label1: str = "m1", label2: str = "m2") -> Trace:
    return Trace(
        [
            begin("t1", label1),
            begin("t2", label2),
            write("t1", "x"),
            read("t2", "x"),
            write("t2", "y"),
            read("t1", "y"),
            end("t2", label2),
            end("t1", label1),
        ]
    )


def test_labeled_methods_extraction():
    assert labeled_methods(labeled_rho2()) == {"m1", "m2"}


def test_serializable_trace_keeps_everything(rho1):
    # Unlabeled markers: no candidates, and the trace already passes.
    inferred = infer_spec(rho1)
    assert inferred.iterations == 1
    assert inferred.removed == ()


def test_rho2_shape_drops_exactly_one_method():
    inferred = infer_spec(labeled_rho2())
    assert inferred.iterations == 2
    assert len(inferred.refuted_methods) == 1
    # Dropping either side of a two-cycle breaks it; the kept one must
    # make the filtered trace serializable.
    assert inferred.atomic_methods | set(inferred.refuted_methods) == {
        "m1",
        "m2",
    }
    filtered = apply_spec(labeled_rho2(), inferred.spec)
    assert check_trace(filtered).serializable


def test_inferred_spec_is_consistent_with_trace():
    trace = execute(unprotected_counter(n_threads=3, increments=3), FINE)
    inferred = infer_spec(trace)
    filtered = apply_spec(trace, inferred.spec)
    assert check_trace(filtered).serializable
    # The one candidate ("increment") is the culprit.
    assert inferred.refuted_methods == ["increment"]
    assert inferred.atomic_methods == set()


def test_locked_counter_keeps_its_method():
    trace = execute(locked_counter(n_threads=3, increments=3), FINE)
    inferred = infer_spec(trace)
    assert inferred.atomic_methods == {"increment"}
    assert inferred.removed == ()


def test_producer_consumer_refutes_until_clean():
    trace = execute(producer_consumer(items=4, guarded=False), FINE)
    inferred = infer_spec(trace)
    filtered = apply_spec(trace, inferred.spec)
    assert check_trace(filtered).serializable
    assert set(inferred.refuted_methods) <= {"produce", "consume"}
    assert inferred.refuted_methods  # the racy variant must drop something
    assert inferred.iterations == len(inferred.refuted_methods) + 1


def test_unlabeled_violation_is_an_error(rho2):
    # rho2's markers carry no labels: nothing can be removed.
    with pytest.raises(InferenceError, match="cannot"):
        infer_spec(rho2)


def test_velodrome_engine_also_works():
    inferred = infer_spec(labeled_rho2(), algorithm="velodrome")
    filtered = apply_spec(labeled_rho2(), inferred.spec)
    assert check_trace(filtered).serializable


def test_str_summary():
    summary = str(infer_spec(labeled_rho2()))
    assert "refuted" in summary
    assert "pass(es)" in summary
