"""Exact-oracle tests on the paper's example traces."""

from repro import begin, conflict_serializable, end, read, trace_of, violation_witness, write
from repro.baselines.oracle import first_violating_prefix, transaction_graph


class TestVerdicts:
    def test_paper_traces(self, paper_traces):
        for trace, expected in paper_traces:
            assert conflict_serializable(trace) == expected, trace.name

    def test_empty_trace(self):
        assert conflict_serializable(trace_of())

    def test_single_thread_always_serializable(self):
        trace = trace_of(
            begin("t"), write("t", "x"), end("t"), begin("t"), read("t", "x"), end("t")
        )
        assert conflict_serializable(trace)


class TestTransactionGraph:
    def test_rho1_edges(self, rho1):
        # T1 ⋖ T2 (via x) and T3 ⋖ T1 (via z); no cycle.
        graph = transaction_graph(rho1)
        assert len(graph) == 3
        assert graph.reaches(0, 1)  # T1 -> T2
        assert graph.reaches(2, 0)  # T3 -> T1
        assert not graph.has_cycle()

    def test_rho2_cycle(self, rho2):
        graph = transaction_graph(rho2)
        assert graph.has_cycle()

    def test_unary_transactions_participate(self):
        # A unary read between two halves of a transaction's writes can
        # still not form a cycle alone; but a unary write conflicting both
        # ways with an open transaction can.
        trace = trace_of(
            begin("t1"),
            write("t1", "x"),
            write("t2", "x"),  # unary: after t1's write, before t1's read
            read("t1", "x"),
            end("t1"),
        )
        assert not conflict_serializable(trace)


class TestWitness:
    def test_witness_on_violation(self, rho4):
        witness = violation_witness(rho4)
        assert witness is not None
        threads = {txn.thread for txn in witness}
        assert len(witness) >= 2
        assert threads <= {"t1", "t2", "t3"}

    def test_no_witness_when_serializable(self, rho1):
        assert violation_witness(rho1) is None


class TestFirstViolatingPrefix:
    def test_rho2_prefix(self, rho2):
        # The cycle is complete once e6 = r(y) by t1 appears (1-based e6).
        assert first_violating_prefix(rho2) == 6

    def test_rho4_prefix(self, rho4):
        assert first_violating_prefix(rho4) == 11

    def test_serializable_returns_none(self, rho1):
        assert first_violating_prefix(rho1) is None
