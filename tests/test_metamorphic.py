"""Metamorphic properties of the checkers.

These tests transform traces in verdict-preserving ways and assert the
verdict is indeed preserved:

* consistent renaming of threads, variables or locks is irrelevant;
* swapping *adjacent non-conflicting* events yields an equivalent trace
  (this is the very equivalence Definition 1 is built on);
* events on fresh variables by fresh threads cannot create cycles;
* violations are monotone: a violating prefix stays violating under
  any well-formed extension.
"""

import random

from hypothesis import given, settings, strategies as st

from repro import Trace, check_trace, conflict_serializable
from repro.trace.events import Event
from repro.sim.random_traces import RandomTraceConfig, random_trace

CONFIG = RandomTraceConfig(n_threads=3, n_vars=3, n_locks=2, length=30)


def _conflicting(a: Event, b: Event) -> bool:
    if a.thread == b.thread:
        return True
    if a.is_fork and a.target == b.thread:
        return True
    if b.is_join and b.target == a.thread:
        return True
    if (
        a.is_memory_access
        and b.is_memory_access
        and a.target == b.target
        and (a.is_write or b.is_write)
    ):
        return True
    if a.is_lock_op and b.is_lock_op and a.target == b.target:
        # Swapping any two same-lock operations can break lock
        # discipline; treat them as unswappable.
        return True
    return False


def _swap_non_conflicting(trace: Trace, seed: int, attempts: int = 20) -> Trace:
    rng = random.Random(seed)
    events = [Event(e.thread, e.op, e.target) for e in trace]
    for _ in range(attempts):
        if len(events) < 2:
            break
        i = rng.randrange(len(events) - 1)
        if not _conflicting(events[i], events[i + 1]):
            events[i], events[i + 1] = events[i + 1], events[i]
    return Trace(events, name=f"{trace.name}+swapped")


def _rename(trace: Trace, prefix: str) -> Trace:
    renamed = Trace(name=f"{trace.name}+renamed")
    for event in trace:
        target = event.target
        if target is not None:
            target = f"{prefix}{target}"
        renamed.append(Event(f"{prefix}{event.thread}", event.op, target))
    return renamed


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_renaming_invariance(seed):
    trace = random_trace(seed, CONFIG)
    original = check_trace(trace).serializable
    assert check_trace(_rename(trace, "zz_")).serializable == original


@settings(max_examples=80, deadline=None)
@given(
    st.integers(min_value=0, max_value=10**9),
    st.integers(min_value=0, max_value=10**6),
)
def test_commuting_non_conflicting_events_preserves_verdict(seed, swap_seed):
    trace = random_trace(seed, CONFIG)
    swapped = _swap_non_conflicting(trace, swap_seed)
    for algorithm in ("aerodrome", "aerodrome-basic", "aerodrome-sharded", "velodrome", "velodrome-pk"):
        assert (
            check_trace(trace, algorithm).serializable
            == check_trace(swapped, algorithm).serializable
        ), algorithm


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_fresh_thread_noise_is_inert(seed):
    from repro import begin, end, read, write

    trace = random_trace(seed, CONFIG)
    original = check_trace(trace).serializable
    noisy = Trace(
        [Event(e.thread, e.op, e.target) for e in trace],
        name=f"{trace.name}+noise",
    )
    noisy.append(begin("fresh"))
    noisy.append(write("fresh", "fresh_var"))
    noisy.append(read("fresh", "fresh_var"))
    noisy.append(end("fresh"))
    assert check_trace(noisy).serializable == original


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=10**9),
    st.integers(min_value=0, max_value=10**9),
)
def test_violation_monotone_under_extension(seed, extension_seed):
    trace = random_trace(seed, CONFIG)
    if conflict_serializable(trace):
        return
    # Concatenate a fresh-namespace well-formed suffix: still violating.
    extension = _rename(random_trace(extension_seed, CONFIG), "ext_")
    combined = Trace(
        [Event(e.thread, e.op, e.target) for e in trace]
        + [Event(e.thread, e.op, e.target) for e in extension],
        name="combined",
    )
    assert not conflict_serializable(combined)
    assert not check_trace(combined).serializable
