"""Farzan–Madhusudan lock-model tests.

Pins down both directions of the model comparison:

* ``IGNORED`` misses cycles that close through a lock (false negatives
  relative to the standard §2 conflict model);
* ``AS_WRITES`` agrees with the standard model on well-formed traces —
  a reproduction finding, verified here by a hypothesis sweep over
  random well-formed traces.
"""

from hypothesis import given, settings, strategies as st

from repro import (
    Trace,
    acquire,
    begin,
    check_trace,
    conflict_serializable,
    end,
    read,
    release,
    write,
)
from repro.baselines.lock_models import (
    LOCK_VAR_PREFIX,
    FarzanMadhusudanChecker,
    LockModel,
    transform_lock_events,
)
from repro.sim.random_traces import RandomTraceConfig, random_trace
from repro.trace.events import Op


def lock_cycle_trace() -> Trace:
    """A violation whose cycle closes *only* through a lock.

    T1 holds two critical sections on ``l`` with T2's critical section
    between them; T2 also reads what T1 wrote. Edges: T1 -> T2 (variable),
    T2 -> T1 (release of l -> T1's second acquire).
    """
    return Trace(
        [
            begin("t1"),
            acquire("t1", "l"),
            write("t1", "x"),
            release("t1", "l"),
            begin("t2"),
            acquire("t2", "l"),
            read("t2", "x"),
            release("t2", "l"),
            end("t2"),
            acquire("t1", "l"),
            release("t1", "l"),
            end("t1"),
        ]
    )


# -- the transformation itself ----------------------------------------------


def test_standard_model_is_identity(rho4):
    transformed = list(transform_lock_events(rho4, LockModel.STANDARD))
    assert transformed == list(rho4)


def test_ignored_drops_lock_events():
    trace = lock_cycle_trace()
    transformed = list(transform_lock_events(trace, LockModel.IGNORED))
    assert all(ev.op not in (Op.ACQUIRE, Op.RELEASE) for ev in transformed)
    assert len(transformed) == len(trace) - 6


def test_as_writes_rewrites_lock_events():
    trace = lock_cycle_trace()
    transformed = list(transform_lock_events(trace, LockModel.AS_WRITES))
    assert len(transformed) == len(trace)
    lock_writes = [
        ev for ev in transformed if ev.target == LOCK_VAR_PREFIX + "l"
    ]
    assert len(lock_writes) == 6
    assert all(ev.op is Op.WRITE for ev in lock_writes)


def test_transformation_preserves_indices():
    trace = lock_cycle_trace()
    for model in (LockModel.AS_WRITES, LockModel.IGNORED):
        for ev in transform_lock_events(trace, model):
            assert trace[ev.idx].thread == ev.thread


# -- verdicts ----------------------------------------------------------------


def test_lock_cycle_is_a_real_violation():
    trace = lock_cycle_trace()
    assert not conflict_serializable(trace)
    assert not check_trace(trace).serializable


def test_ignored_model_misses_the_lock_cycle():
    trace = lock_cycle_trace()
    result = FarzanMadhusudanChecker(LockModel.IGNORED).run(trace)
    assert result.serializable  # false negative, as documented


def test_as_writes_model_catches_the_lock_cycle():
    trace = lock_cycle_trace()
    result = FarzanMadhusudanChecker(LockModel.AS_WRITES).run(trace)
    assert not result.serializable


def test_standard_model_matches_check_trace(rho2, rho4):
    for trace in (rho2, rho4):
        result = FarzanMadhusudanChecker(LockModel.STANDARD).run(trace)
        assert result.serializable == check_trace(trace).serializable


def test_all_models_agree_on_lock_free_traces(paper_traces):
    # The paper's example traces use no locks: every lock model must
    # give the oracle verdict.
    for trace, serializable in paper_traces:
        for model in LockModel:
            result = FarzanMadhusudanChecker(model).run(trace)
            assert result.serializable == serializable, (trace.name, model)


def test_algorithm_name_and_reset():
    checker = FarzanMadhusudanChecker(LockModel.AS_WRITES)
    assert checker.algorithm == "farzan-madhusudan[as-writes]"
    checker.run(lock_cycle_trace())
    assert checker.violation is not None
    checker.reset()
    assert checker.violation is None
    assert checker.events_processed == 0


def test_velodrome_engine_composes():
    result = FarzanMadhusudanChecker(
        LockModel.AS_WRITES, engine="velodrome"
    ).run(lock_cycle_trace())
    assert not result.serializable


# -- property: AS_WRITES ≡ STANDARD on well-formed traces ---------------------


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_as_writes_equals_standard_on_random_traces(seed):
    cfg = RandomTraceConfig(n_threads=3, n_vars=3, n_locks=2, length=50)
    trace = random_trace(seed, cfg)
    standard = check_trace(trace).serializable
    as_writes = FarzanMadhusudanChecker(LockModel.AS_WRITES).run(trace)
    assert as_writes.serializable == standard


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_ignored_never_reports_more_than_standard(seed):
    cfg = RandomTraceConfig(n_threads=3, n_vars=3, n_locks=2, length=50)
    trace = random_trace(seed, cfg)
    ignored = FarzanMadhusudanChecker(LockModel.IGNORED).run(trace)
    if not ignored.serializable:
        assert not check_trace(trace).serializable
