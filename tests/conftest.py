"""Shared fixtures: the paper's example traces ρ1–ρ4 and helpers."""

from __future__ import annotations

import pytest

from repro import Trace, begin, end, read, write


def _rho1() -> Trace:
    """Figure 1: three transactions, conflict serializable (T3 T1 T2)."""
    return Trace(
        [
            begin("t1"),       # e1
            write("t1", "x"),  # e2
            begin("t2"),       # e3
            read("t2", "x"),   # e4
            end("t2"),         # e5
            begin("t3"),       # e6
            write("t3", "z"),  # e7
            end("t3"),         # e8
            read("t1", "z"),   # e9
            end("t1"),         # e10
        ],
        name="rho1",
    )


def _rho2() -> Trace:
    """Figure 2: T1 and T2 mutually ordered — violation (found at e6)."""
    return Trace(
        [
            begin("t1"),       # e1
            begin("t2"),       # e2
            write("t1", "x"),  # e3
            read("t2", "x"),   # e4
            write("t2", "y"),  # e5
            read("t1", "y"),   # e6
            end("t2"),         # e7
            end("t1"),         # e8
        ],
        name="rho2",
    )


def _rho3() -> Trace:
    """Figure 3: violation with no ≤CHB path returning to one transaction
    (found at the end event e7)."""
    return Trace(
        [
            begin("t1"),       # e1
            begin("t2"),       # e2
            write("t1", "x"),  # e3
            write("t2", "y"),  # e4
            read("t1", "y"),   # e5
            read("t2", "x"),   # e6
            end("t1"),         # e7
            end("t2"),         # e8
        ],
        name="rho3",
    )


def _rho4() -> Trace:
    """Figure 4: violation through a completed mediating transaction
    (found at e11)."""
    return Trace(
        [
            begin("t1"),       # e1
            write("t1", "x"),  # e2
            begin("t2"),       # e3
            write("t2", "y"),  # e4
            read("t2", "x"),   # e5
            end("t2"),         # e6
            begin("t3"),       # e7
            read("t3", "y"),   # e8
            write("t3", "z"),  # e9
            end("t3"),         # e10
            read("t1", "z"),   # e11
            end("t1"),         # e12
        ],
        name="rho4",
    )


@pytest.fixture
def rho1() -> Trace:
    return _rho1()


@pytest.fixture
def rho2() -> Trace:
    return _rho2()


@pytest.fixture
def rho3() -> Trace:
    return _rho3()


@pytest.fixture
def rho4() -> Trace:
    return _rho4()


@pytest.fixture
def paper_traces(rho1, rho2, rho3, rho4):
    """All four example traces with their expected serializability."""
    return [
        (rho1, True),
        (rho2, False),
        (rho3, False),
        (rho4, False),
    ]
