"""PackedTrace unit tests: compilation, reconstruction, slicing, APIs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.random_traces import RandomTraceConfig, random_trace
from repro.trace.events import Op, acquire, begin, end, fork, join, read, release, write
from repro.trace.packed import NO_TARGET, Interner, PackedTrace, pack
from repro.trace.trace import Trace


def sample_trace() -> Trace:
    return Trace(
        [
            begin("t1", "m"),
            write("t1", "x"),
            fork("t1", "t2"),
            acquire("t2", "l"),
            read("t2", "x"),
            release("t2", "l"),
            end("t1"),
            join("t1", "t2"),
        ],
        name="sample",
    )


class TestInterner:
    def test_interning_is_stable(self):
        interner = Interner()
        assert interner.index_of("a") == 0
        assert interner.index_of("b") == 1
        assert interner.index_of("a") == 0
        assert interner.name_of(1) == "b"
        assert len(interner) == 2
        assert "a" in interner and "c" not in interner

    def test_lookup_does_not_intern(self):
        interner = Interner()
        assert interner.lookup("ghost") is None
        assert len(interner) == 0

    def test_seeded_names(self):
        interner = Interner(["x", "y"])
        assert interner.names() == ["x", "y"]


class TestCompilation:
    def test_round_trip_events(self):
        trace = sample_trace()
        packed = pack(trace)
        assert len(packed) == len(trace)
        assert list(packed) == list(trace)
        assert [e.idx for e in packed] == list(range(len(trace)))

    def test_namespaces_are_separate(self):
        # "x" the variable and a hypothetical lock "x" must not collide.
        trace = Trace([write("t", "x"), acquire("t", "x"), release("t", "x")])
        packed = pack(trace)
        assert packed.variable_names == ["x"]
        assert packed.lock_names == ["x"]
        assert list(packed) == list(trace)

    def test_fork_targets_intern_into_thread_namespace(self):
        packed = pack(sample_trace())
        assert "t2" in packed.thread_set()
        assert packed.thread_names == ["t1", "t2"]

    def test_marker_labels_preserved(self):
        trace = Trace([begin("t", "method"), end("t", "method"), begin("t"), end("t")])
        packed = pack(trace)
        assert [e.target for e in packed] == ["method", "method", None, None]
        threads_arr, ops_arr, targets_arr = packed.arrays()
        assert targets_arr[2] == NO_TARGET

    def test_pack_is_idempotent(self):
        packed = pack(sample_trace())
        assert pack(packed) is packed

    def test_to_trace(self):
        trace = sample_trace()
        assert pack(trace).to_trace() == trace

    def test_counts_by_op(self):
        trace = sample_trace()
        assert pack(trace).counts_by_op() == trace.counts_by_op()

    def test_entity_sets_match_trace(self):
        trace = sample_trace()
        packed = pack(trace)
        assert packed.thread_set() == trace.threads()
        assert packed.variable_set() == trace.variables()
        assert packed.lock_set() == trace.locks()

    def test_nbytes_is_dense(self):
        packed = pack(sample_trace())
        # 4 (thread) + 1 (op) + 4 (target) bytes per event.
        assert packed.nbytes() == 9 * len(packed)


class TestSequenceProtocol:
    def test_indexing(self):
        trace = sample_trace()
        packed = pack(trace)
        assert packed[1] == trace[1]
        assert packed[1].idx == 1

    def test_slicing_returns_packed(self):
        packed = pack(sample_trace())
        sliced = packed[2:5]
        assert isinstance(sliced, PackedTrace)
        assert len(sliced) == 3
        assert [str(e) for e in sliced] == [str(e) for e in list(pack(sample_trace()))[2:5]]

    def test_slice_shares_interners(self):
        packed = pack(sample_trace())
        assert packed[:3].threads is packed.threads

    def test_append(self):
        packed = PackedTrace(name="built")
        for event in sample_trace():
            packed.append(event)
        assert list(packed) == list(sample_trace())


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_random_round_trip(seed):
    trace = random_trace(
        seed,
        RandomTraceConfig(n_threads=3, n_vars=3, n_locks=2, length=40, with_forks=True),
    )
    packed = pack(trace)
    assert list(packed) == list(trace)
    assert packed.thread_set() == trace.threads()
    assert packed.variable_set() == trace.variables()
    assert packed.lock_set() == trace.locks()
