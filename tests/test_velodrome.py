"""Velodrome baseline tests: verdicts, edges, garbage collection."""

import pytest

from repro import (
    acquire,
    begin,
    end,
    fork,
    join,
    read,
    release,
    trace_of,
    write,
)
from repro.baselines.velodrome import VelodromeChecker


def run(*events, gc=True):
    checker = VelodromeChecker(garbage_collect=gc)
    result = checker.run(trace_of(*events))
    return checker, result


class TestVerdicts:
    def test_paper_traces(self, paper_traces):
        for trace, expected in paper_traces:
            for gc in (True, False):
                result = VelodromeChecker(garbage_collect=gc).run(trace)
                assert result.serializable == expected, (trace.name, gc)

    def test_algorithm_names(self):
        assert VelodromeChecker().algorithm == "velodrome"
        assert VelodromeChecker(garbage_collect=False).algorithm == "velodrome-nogc"

    def test_unary_only_trace_serializable(self):
        _, result = run(
            write("t1", "x"), read("t2", "x"), write("t1", "x"), read("t2", "x")
        )
        assert result.serializable

    def test_violation_reports_event_index(self, rho2):
        result = VelodromeChecker().run(rho2)
        assert result.violation.event_idx == 5
        assert result.violation.site == "cycle"


class TestEdges:
    def test_program_order_chains_transactions(self):
        checker, _ = run(begin("t"), end("t"), begin("t"), end("t"), gc=False)
        # Two transactions linked by program order.
        assert checker.graph.edge_count() >= 1

    def test_fork_edge(self):
        _, result = run(
            begin("t1"),
            write("t1", "x"),
            fork("t1", "t2"),
            read("t2", "x"),
            write("t2", "y"),
            read("t1", "y"),
            end("t1"),
        )
        assert not result.serializable

    def test_join_edge(self):
        _, result = run(
            fork("t1", "t2"),
            begin("t1"),
            write("t1", "x"),
            read("t2", "x"),
            write("t2", "y"),
            read("t1", "y"),
            end("t1"),
        )
        assert not result.serializable

    def test_lock_edge(self):
        _, result = run(
            begin("t1"),
            acquire("t1", "l"),
            write("t1", "x"),
            release("t1", "l"),
            acquire("t2", "l"),
            read("t2", "x"),
            write("t2", "y"),
            release("t2", "l"),
            read("t1", "y"),
            end("t1"),
        )
        assert not result.serializable

    def test_readers_cleared_on_write(self):
        checker, _ = run(
            read("t1", "x"), read("t2", "x"), write("t3", "x"), gc=False
        )
        assert checker._last_readers.get("x") in (None, {})


class TestGarbageCollection:
    def test_gc_keeps_graph_small_on_independent_txns(self):
        events = []
        for i in range(50):
            thread = f"t{i % 3}"
            events.extend(
                [
                    begin(thread),
                    read(thread, f"{thread}_v"),
                    write(thread, f"{thread}_v"),
                    end(thread),
                ]
            )
        checker, result = run(*events, gc=True)
        assert result.serializable
        assert checker.graph_size <= 6

    def test_nogc_graph_grows(self):
        events = []
        for i in range(50):
            thread = f"t{i % 3}"
            events.extend(
                [begin(thread), write(thread, f"{thread}_v"), end(thread)]
            )
        checker, _ = run(*events, gc=False)
        assert checker.graph_size == 50
        assert checker.peak_graph_size == 50

    def test_gc_cascades(self):
        # A chain of completed transactions collapses entirely.
        events = []
        for i in range(10):
            events.extend([begin("t1"), write("t1", "x"), end("t1")])
        checker, _ = run(*events, gc=True)
        assert checker.graph_size <= 1

    def test_open_transaction_pins_successors(self):
        checker, _ = run(
            begin("t1"),
            write("t1", "g"),
            begin("t2"),
            read("t2", "g"),
            end("t2"),
            begin("t2"),
            read("t2", "g"),
            end("t2"),
        )
        # t1 still open; both t2 transactions hang off it.
        assert checker.graph_size == 3

    def test_gc_does_not_change_verdicts(self, paper_traces):
        for trace, _ in paper_traces:
            with_gc = VelodromeChecker(garbage_collect=True).run(trace)
            without = VelodromeChecker(garbage_collect=False).run(trace)
            assert with_gc.serializable == without.serializable


class TestStopping:
    def test_processing_after_violation_raises(self, rho2):
        checker = VelodromeChecker()
        checker.run(rho2)
        with pytest.raises(RuntimeError, match="already found"):
            checker.process(read("t9", "q"))

    def test_reset_preserves_gc_flag(self, rho2):
        checker = VelodromeChecker(garbage_collect=False)
        checker.run(rho2)
        checker.reset()
        assert checker.garbage_collect is False
        assert checker.violation is None

    def test_unmatched_end_raises(self):
        checker = VelodromeChecker()
        with pytest.raises(ValueError, match="end without matching begin"):
            checker.run(trace_of(end("t1")))
