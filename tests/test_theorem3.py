"""Theorem 3's caveat: witnesses with at most one incomplete transaction.

AeroDrome reports a violation iff the trace has a witness cycle in which
every transaction, except possibly one, is complete. On the prefix σ6 of
ρ3 the (only) cycle runs between two still-open transactions — plain
Definition 1 (the oracle, and an eager graph checker like Velodrome)
already calls it non-serializable, but AeroDrome stays silent until the
first end event arrives. On full traces, where everything completes, the
notions coincide (the agreement property test).
"""

from repro import check_trace, conflict_serializable


def test_sigma6_cycle_with_two_open_transactions(rho3):
    sigma6 = rho3.prefix(6)
    # Definition 1 on the prefix: already a cycle.
    assert not conflict_serializable(sigma6)
    # Velodrome's eager edge insertion sees it immediately ...
    assert not check_trace(sigma6, "velodrome").serializable
    # ... but both incomplete transactions put it outside Theorem 3's
    # guarantee, and basic AeroDrome is silent on the prefix. (The
    # optimized variant's lazy write clock stands in the whole open
    # writer transaction, so it does fire here — a sound superset; see
    # test_aerodrome_opt.TestAgreesWithBasicOnPaperTraces.)
    assert check_trace(sigma6, "aerodrome-basic").serializable
    assert not check_trace(sigma6, "aerodrome").serializable


def test_one_end_event_restores_detection(rho3):
    sigma7 = rho3.prefix(7)  # t1's end: now only T2 is incomplete
    assert not check_trace(sigma7, "aerodrome-basic").serializable
    assert not check_trace(sigma7, "aerodrome").serializable


def test_rho4_prefix_with_one_active_witness(rho4):
    # At e11, T2 and T3 are complete and only T1 is active: within the
    # guarantee, so AeroDrome detects on the prefix.
    sigma11 = rho4.prefix(11)
    assert not check_trace(sigma11, "aerodrome-basic").serializable
    assert not check_trace(sigma11, "aerodrome").serializable


def test_rho2_detected_while_both_open(rho2):
    # ρ2's cycle is also between two open transactions, yet AeroDrome
    # reports at e6: Theorem 2's condition (T⊲ ⋖E e and e ⋖E f) holds
    # because the ⋖E path into t1's transaction is direct (no completed
    # mediator needed). The "at most one incomplete" clause of Theorem 3
    # is about what is guaranteed, not an upper bound on what is found.
    sigma6 = rho2.prefix(6)
    assert not check_trace(sigma6, "aerodrome-basic").serializable
