"""repro-packed/1 column store: round trips, mmap loads, corrupt inputs.

The contract mirrors the binary format's hardening (tests/test_binary*):
``save_packed``/``load_packed`` round-trip every valid packed trace
(interners, ops, targets, event reconstruction, slicing), the loader is
O(1) per event (``memoryview`` columns over the mapping, never a heap
copy), and corrupt or truncated files raise the typed
:class:`~repro.trace.packed_io.PackedTraceError` — never a raw
``struct.error`` or ``IndexError``, never silent garbage.
"""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.random_traces import RandomTraceConfig, random_trace
from repro.trace.events import (
    Op,
    acquire,
    begin,
    end,
    fork,
    join,
    read,
    release,
    write,
)
from repro.trace.packed import PackedTrace, pack
from repro.trace.packed_io import (
    MAGIC,
    MappedPackedTrace,
    PackedTraceError,
    load_any,
    load_packed,
    parse_packed,
    parse_packed_text,
    read_packed,
    save_packed,
    sniff_format,
    write_packed,
)
from repro.trace.parser import TraceParseError, parse_trace
from repro.trace.trace import Trace
from repro.trace.writer import dump_trace


def sample_trace() -> Trace:
    return Trace(
        [
            begin("t1", "m"),
            write("t1", "x"),
            fork("t1", "t2"),
            acquire("t2", "l"),
            read("t2", "x"),
            release("t2", "l"),
            end("t1"),
            join("t1", "t2"),
            begin("t2"),
            end("t2"),
        ],
        name="sample",
    )


def encode(packed: PackedTrace) -> bytes:
    buffer = io.BytesIO()
    write_packed(packed, buffer)
    return buffer.getvalue()


class TestRoundTrip:
    def test_events_round_trip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.rpt"
        save_packed(pack(trace), path)
        loaded = load_packed(path)
        assert list(loaded) == list(trace)
        assert loaded.name == "sample"

    def test_interners_round_trip(self, tmp_path):
        packed = pack(sample_trace())
        path = tmp_path / "t.rpt"
        save_packed(packed, path)
        loaded = load_packed(path)
        assert loaded.thread_names == packed.thread_names
        assert loaded.variable_names == packed.variable_names
        assert loaded.lock_names == packed.lock_names
        assert loaded.labels.names() == packed.labels.names()

    def test_columns_round_trip(self, tmp_path):
        packed = pack(sample_trace())
        path = tmp_path / "t.rpt"
        save_packed(packed, path)
        loaded = load_packed(path)
        for original, reloaded in zip(packed.arrays(), loaded.arrays()):
            assert list(original) == list(reloaded)

    def test_event_at_equality(self, tmp_path):
        packed = pack(sample_trace())
        path = tmp_path / "t.rpt"
        save_packed(packed, path)
        loaded = load_packed(path)
        for i in range(len(packed)):
            a, b = packed.event_at(i), loaded.event_at(i)
            assert a == b and a.idx == b.idx == i

    def test_slicing_round_trip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.rpt"
        save_packed(pack(trace), path)
        loaded = load_packed(path)
        assert list(loaded[2:7]) == [trace[i] for i in range(2, 7)]
        assert list(loaded[::2]) == [trace[i] for i in range(0, len(trace), 2)]

    def test_save_accepts_unpacked_trace(self, tmp_path):
        path = tmp_path / "t.rpt"
        save_packed(sample_trace(), path)  # packs on the way out
        assert list(load_packed(path)) == list(sample_trace())

    def test_empty_trace_round_trips(self, tmp_path):
        path = tmp_path / "empty.rpt"
        save_packed(pack(Trace(name="empty")), path)
        loaded = load_packed(path)
        assert len(loaded) == 0
        assert loaded.name == "empty"

    def test_loaded_trace_analyzes_identically(self, tmp_path):
        from repro.api import run

        trace = random_trace(
            3, RandomTraceConfig(n_threads=4, n_vars=5, n_locks=2, length=400)
        )
        packed = pack(trace)
        path = tmp_path / "t.rpt"
        save_packed(packed, path)
        loaded = load_packed(path)
        names = ["aerodrome", "races", "lockset"]
        a = run(packed, names)
        b = run(loaded, names)
        assert [r.to_json() for r in a.reports.values()] == [
            r.to_json() for r in b.reports.values()
        ]

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_random_traces_round_trip(self, seed):
        trace = random_trace(
            seed, RandomTraceConfig(n_threads=3, n_vars=4, n_locks=2, length=60)
        )
        packed = pack(trace)
        loaded = read_packed(encode(packed))
        assert list(loaded) == list(trace)
        for original, reloaded in zip(packed.arrays(), loaded.arrays()):
            assert list(original) == list(reloaded)


class TestMappedSemantics:
    def test_loaded_columns_are_zero_copy_views(self, tmp_path):
        path = tmp_path / "t.rpt"
        save_packed(pack(sample_trace()), path)
        loaded = load_packed(path)
        threads, ops, targets = loaded.arrays()
        assert isinstance(threads, memoryview)
        assert isinstance(ops, memoryview)
        assert isinstance(targets, memoryview)
        assert threads.itemsize == 4 and ops.itemsize == 1

    def test_mapped_trace_is_read_only(self, tmp_path):
        path = tmp_path / "t.rpt"
        save_packed(pack(sample_trace()), path)
        loaded = load_packed(path)
        with pytest.raises(PackedTraceError):
            loaded.append(read("t1", "x"))

    def test_mapped_trace_pickles_by_reloading(self, tmp_path):
        import pickle

        path = tmp_path / "t.rpt"
        save_packed(pack(sample_trace()), path)
        loaded = load_packed(path)
        clone = pickle.loads(pickle.dumps(loaded))
        assert isinstance(clone, MappedPackedTrace)
        assert list(clone) == list(loaded)

    def test_resave_of_mapped_trace_round_trips(self, tmp_path):
        first = tmp_path / "a.rpt"
        second = tmp_path / "b.rpt"
        save_packed(pack(sample_trace()), first)
        save_packed(load_packed(first), second)
        assert first.read_bytes() == second.read_bytes()

    def test_verify_accepts_valid_file(self, tmp_path):
        path = tmp_path / "t.rpt"
        save_packed(pack(sample_trace()), path)
        loaded = load_packed(path, verify=True)
        assert len(loaded) == len(sample_trace())


class TestCorruptInputs:
    def test_bad_magic(self):
        with pytest.raises(PackedTraceError, match="magic"):
            read_packed(b"NOTMAGIC" + b"\x00" * 64)

    def test_empty_buffer(self):
        with pytest.raises(PackedTraceError):
            read_packed(b"")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.rpt"
        path.write_bytes(b"")
        with pytest.raises(PackedTraceError):
            load_packed(path)

    def test_truncated_everywhere(self):
        data = encode(pack(sample_trace()))
        for cut in range(len(data)):
            with pytest.raises(PackedTraceError):
                read_packed(data[:cut])

    def test_bad_utf8_in_table(self):
        data = bytearray(encode(pack(sample_trace())))
        # The trace name starts right after the magic: length then text.
        data[len(MAGIC) + 2] = 0xFF
        data[len(MAGIC) + 3] = 0xFE
        with pytest.raises(PackedTraceError, match="string table|truncated"):
            read_packed(bytes(data))

    def test_implausible_event_count(self):
        data = bytearray(encode(pack(sample_trace())))
        # The u64 event count is the 8 bytes before the first column;
        # blow it up far past the file size.
        head = encode(pack(sample_trace()))
        count_at = head.rindex((10).to_bytes(8, "little"))
        data[count_at : count_at + 8] = (2**40).to_bytes(8, "little")
        with pytest.raises(PackedTraceError, match="truncated"):
            read_packed(bytes(data))

    def test_verify_rejects_out_of_range_op(self, tmp_path):
        packed = pack(sample_trace())
        data = bytearray(encode(packed))
        loaded = read_packed(bytes(data))  # find the op column offset
        threads, ops, targets = loaded.arrays()
        # Mutate one op byte to an invalid code and re-verify.
        raw = bytes(data)
        op_bytes = bytes(ops)
        op_off = raw.index(op_bytes)
        data[op_off] = 99
        with pytest.raises(PackedTraceError, match="op code"):
            read_packed(bytes(data), verify=True)

    def test_verify_rejects_out_of_range_target(self):
        packed = pack(sample_trace())
        data = bytearray(encode(packed))
        loaded = read_packed(bytes(data))
        threads, ops, targets = loaded.arrays()
        raw = bytes(data)
        target_off = len(raw) - 4 * len(targets)
        data[target_off : target_off + 4] = (12345).to_bytes(
            4, "little", signed=True
        )
        with pytest.raises(PackedTraceError, match="target|without target"):
            read_packed(bytes(data), verify=True)

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        position=st.integers(0, 10**6),
        byte=st.integers(0, 255),
    )
    def test_single_byte_corruption_never_crashes(self, seed, position, byte):
        trace = random_trace(
            seed % 50,
            RandomTraceConfig(n_threads=2, n_vars=2, n_locks=1, length=15),
        )
        data = bytearray(encode(pack(trace)))
        position %= len(data)
        data[position] = byte
        try:
            loaded = read_packed(bytes(data), verify=True)
        except PackedTraceError:
            return  # clean typed failure
        # Otherwise the byte hit a don't-care position (padding, a
        # name byte, ...) and the result must still be consumable.
        for event in loaded:
            pass


class TestFusedParser:
    def test_matches_parse_then_pack(self):
        text = dump_trace(sample_trace())
        via_events = pack(parse_trace(text, name="t"))
        fused = parse_packed_text(text, name="t")
        assert list(fused) == list(via_events)
        for a, b in zip(fused.arrays(), via_events.arrays()):
            assert list(a) == list(b)
        assert fused.thread_names == via_events.thread_names
        assert fused.variable_names == via_events.variable_names
        assert fused.lock_names == via_events.lock_names

    def test_comments_and_blanks_skipped(self):
        fused = parse_packed_text("# header\n\nt1|begin\nt1|w(x)\nt1|end\n")
        assert [str(e) for e in fused] == ["t1|begin", "t1|w(x)", "t1|end"]

    def test_parse_errors_match_event_parser(self):
        for bad in ("t1|frobnicate(x)", "t1|r", "|w(x)", "t1|r()"):
            with pytest.raises(TraceParseError):
                parse_packed_text(f"t1|begin\n{bad}\n")

    def test_parse_from_path(self, tmp_path):
        path = tmp_path / "t.std"
        path.write_text(dump_trace(sample_trace()), encoding="utf-8")
        fused = parse_packed(path)
        assert fused.name == "t"
        assert list(fused) == list(sample_trace())

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_random_traces_fuse_identically(self, seed):
        trace = random_trace(
            seed, RandomTraceConfig(n_threads=3, n_vars=4, n_locks=2, length=60)
        )
        text = dump_trace(trace)
        assert list(parse_packed_text(text)) == list(trace)


class TestSniffing:
    def test_sniffs_all_three_formats(self, tmp_path):
        from repro.trace.binary import save_binary
        from repro.trace.writer import save_trace

        trace = sample_trace()
        std = tmp_path / "t.std"
        rtb = tmp_path / "t.rtb"
        rpt = tmp_path / "t.rpt"
        save_trace(trace, std)
        save_binary(trace, rtb)
        save_packed(pack(trace), rpt)
        assert sniff_format(std) == "text"
        assert sniff_format(rtb) == "binary"
        assert sniff_format(rpt) == "packed"

    def test_load_any_dispatches(self, tmp_path):
        from repro.trace.binary import save_binary
        from repro.trace.writer import save_trace

        trace = sample_trace()
        std = tmp_path / "t.std"
        rtb = tmp_path / "t.rtb"
        rpt = tmp_path / "t.rpt"
        save_trace(trace, std)
        save_binary(trace, rtb)
        save_packed(pack(trace), rpt)
        assert isinstance(load_any(rpt), MappedPackedTrace)
        assert isinstance(load_any(rtb), Trace)
        assert isinstance(load_any(std), Trace)
        assert isinstance(load_any(std, prefer_packed=True), PackedTrace)
        assert isinstance(load_any(rtb, prefer_packed=True), PackedTrace)
        for loaded in (load_any(std), load_any(rtb), load_any(rpt)):
            assert list(loaded) == list(trace)

    def test_extension_is_irrelevant(self, tmp_path):
        # A packed file under a .std name still loads as packed.
        disguised = tmp_path / "lies.std"
        save_packed(pack(sample_trace()), disguised)
        assert sniff_format(disguised) == "packed"
        assert isinstance(load_any(disguised), MappedPackedTrace)
