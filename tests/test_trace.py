"""Unit tests for the Trace container."""

import pytest

from repro import Op, Trace, acquire, begin, end, fork, read, release, trace_of, write


@pytest.fixture
def sample() -> Trace:
    return trace_of(
        begin("t1"),
        write("t1", "x"),
        acquire("t2", "l"),
        read("t2", "x"),
        release("t2", "l"),
        fork("t1", "t3"),
        end("t1"),
        name="sample",
    )


class TestConstruction:
    def test_append_stamps_idx(self, sample):
        assert [e.idx for e in sample] == list(range(len(sample)))

    def test_len(self, sample):
        assert len(sample) == 7

    def test_extend(self):
        trace = Trace()
        trace.extend([read("t", "x"), write("t", "x")])
        assert len(trace) == 2
        assert trace[1].idx == 1

    def test_name_default(self):
        assert Trace().name == "trace"


class TestSequenceProtocol:
    def test_getitem(self, sample):
        assert sample[0].op is Op.BEGIN
        assert sample[-1].op is Op.END

    def test_slice_returns_trace(self, sample):
        prefix = sample[:3]
        assert isinstance(prefix, Trace)
        assert len(prefix) == 3
        assert [e.idx for e in prefix] == [0, 1, 2]

    def test_prefix(self, sample):
        assert len(sample.prefix(4)) == 4

    def test_slice_is_a_copy(self, sample):
        prefix = sample.prefix(2)
        prefix.append(read("t9", "q"))
        assert len(sample) == 7

    def test_equality(self):
        a = trace_of(read("t", "x"))
        b = trace_of(read("t", "x"))
        assert a == b
        assert a != trace_of(write("t", "x"))

    def test_repr(self, sample):
        assert "sample" in repr(sample)
        assert "7" in repr(sample)


class TestEntityAccessors:
    def test_threads_includes_fork_targets(self, sample):
        assert sample.threads() == {"t1", "t2", "t3"}

    def test_variables(self, sample):
        assert sample.variables() == {"x"}

    def test_locks(self, sample):
        assert sample.locks() == {"l"}

    def test_project(self, sample):
        t2_events = sample.project("t2")
        assert len(t2_events) == 3
        assert all(e.thread == "t2" for e in t2_events)

    def test_counts_by_op(self, sample):
        counts = sample.counts_by_op()
        assert counts[Op.READ] == 1
        assert counts[Op.WRITE] == 1
        assert counts[Op.BEGIN] == 1
        assert counts[Op.JOIN] == 0
