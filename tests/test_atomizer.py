"""Atomizer (Lipton reduction) baseline tests.

The interesting properties are the *disagreements* with conflict
serializability: Atomizer's false positives (reducibility failures on
serializable traces, caused by lockset imprecision) and false negatives
(lock-free cycles it cannot see). Both directions are pinned down here,
because they are the reason the field moved to Velodrome-style checking
(paper §1, §6).
"""

from repro import (
    Trace,
    acquire,
    begin,
    check_trace,
    conflict_serializable,
    end,
    fork,
    join,
    read,
    release,
    write,
)
from repro.baselines.atomizer import (
    AtomizerChecker,
    Mover,
    atomizer_warnings,
)


def run_atomizer(trace):
    return AtomizerChecker().run(trace)


# -- reducible blocks are accepted ------------------------------------------


def test_empty_trace_is_clean():
    assert run_atomizer(Trace([])).serializable


def test_single_locked_block_reduces():
    trace = Trace(
        [
            begin("t1"),
            acquire("t1", "l"),
            read("t1", "x"),
            write("t1", "x"),
            release("t1", "l"),
            end("t1"),
        ]
    )
    assert run_atomizer(trace).serializable


def test_two_disjoint_locked_blocks_in_one_transaction_fail():
    """acquire-release-acquire inside one block breaks (R|B)*[N](L|B)*."""
    trace = Trace(
        [
            begin("t1"),
            acquire("t1", "l1"),
            release("t1", "l1"),
            acquire("t1", "l2"),  # right-mover after the commit point
            release("t1", "l2"),
            end("t1"),
        ]
    )
    result = run_atomizer(trace)
    assert not result.serializable
    assert result.violation.site == "reduction"
    assert result.violation.event_idx == 3


def test_nested_locks_reduce():
    trace = Trace(
        [
            begin("t1"),
            acquire("t1", "l1"),
            acquire("t1", "l2"),
            write("t1", "x"),
            release("t1", "l2"),
            release("t1", "l1"),
            end("t1"),
        ]
    )
    assert run_atomizer(trace).serializable


def test_events_outside_blocks_are_never_flagged():
    trace = Trace(
        [
            acquire("t1", "l1"),
            release("t1", "l1"),
            acquire("t1", "l2"),
            release("t1", "l2"),
        ]
    )
    assert run_atomizer(trace).serializable


def test_racy_access_as_commit_point_is_allowed():
    # One unprotected shared access inside the block: exactly the single
    # permitted non-mover.
    trace = Trace(
        [
            write("t2", "x"),
            begin("t1"),
            write("t1", "x"),  # racy (no common lock) -> non-mover
            end("t1"),
        ]
    )
    assert run_atomizer(trace).serializable


def test_two_racy_accesses_fail():
    trace = Trace(
        [
            write("t2", "x"),
            write("t2", "y"),
            begin("t1"),
            write("t1", "x"),  # non-mover #1: commit
            write("t1", "y"),  # non-mover #2: violation
            end("t1"),
        ]
    )
    result = run_atomizer(trace)
    assert not result.serializable
    assert result.violation.event_idx == 4
    assert "second racy access" in result.violation.details


def test_acquire_after_racy_access_fails():
    trace = Trace(
        [
            write("t2", "x"),
            begin("t1"),
            write("t1", "x"),  # non-mover: commit
            acquire("t1", "l"),  # right-mover after commit
            release("t1", "l"),
            end("t1"),
        ]
    )
    result = run_atomizer(trace)
    assert not result.serializable
    assert "right-mover" in result.violation.details


# -- disagreements with conflict serializability -----------------------------


def test_false_positive_from_fork_join_blindness():
    """Serializable trace flagged by Atomizer.

    The child's write is ordered by fork, so the oracle and AeroDrome are
    happy; the lockset analysis marks x racy, making the second access in
    t2's block a post-commit non-mover.
    """
    trace = Trace(
        [
            write("t1", "x"),
            write("t1", "y"),
            fork("t1", "t2"),
            begin("t2"),
            acquire("t2", "l"),
            release("t2", "l"),  # commit point (left-mover)
            write("t2", "x"),  # lockset-racy -> non-mover after commit
            end("t2"),
            join("t1", "t2"),
        ]
    )
    assert conflict_serializable(trace)
    assert check_trace(trace).serializable
    assert not run_atomizer(trace).serializable


def test_false_negative_on_lock_free_cycle(rho2):
    """The paper's ρ2 violation is invisible to Atomizer.

    Both transactions interleave writes with no locks anywhere; the two
    racy accesses in each block occur pre-commit/at-commit, so reduction
    never fails — but the trace is not conflict serializable.
    """
    assert not conflict_serializable(rho2)
    assert run_atomizer(rho2).serializable


def test_mover_classification():
    checker = AtomizerChecker()
    trace = Trace(
        [
            acquire("t1", "l"),
            release("t1", "l"),
            write("t1", "x"),
            write("t2", "x"),
        ]
    )
    movers = []
    for event in trace:
        checker.process(event)
        movers.append(checker.classify(event))
    assert movers == [Mover.RIGHT, Mover.LEFT, Mover.BOTH, Mover.NON]


def test_atomizer_warnings_collects_all():
    trace = Trace(
        [
            write("t2", "x"),
            write("t2", "y"),
            # block 1: two post-commit failures
            begin("t1"),
            acquire("t1", "l"),
            release("t1", "l"),
            write("t1", "x"),
            write("t1", "y"),
            end("t1"),
            # block 2: one failure
            begin("t1"),
            acquire("t1", "l"),
            release("t1", "l"),
            acquire("t1", "l"),
            release("t1", "l"),
            end("t1"),
        ]
    )
    warnings = atomizer_warnings(trace)
    assert [w.event_idx for w in warnings] == [5, 6, 11]
    assert {w.thread for w in warnings} == {"t1"}


def test_run_stops_at_first_violation():
    trace = Trace(
        [
            write("t2", "x"),
            begin("t1"),
            acquire("t1", "l"),
            release("t1", "l"),
            write("t1", "x"),
            write("t1", "x"),
            end("t1"),
        ]
    )
    result = run_atomizer(trace)
    assert result.events_processed == 5
