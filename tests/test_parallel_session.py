"""Process-parallel sessions agree with serial runs, byte for byte.

``Session.run(jobs=N)`` fans the analyses across worker processes
(:mod:`repro.api.parallel`); the merged result must match the serial
sweep on verdicts, violation indices and the full ``repro-report/1``
JSON of every analysis — the only sanctioned difference is ``native``
(in-memory result objects do not cross the process boundary) and
timing. Runs with a single analysis, iterator traces, or ``jobs=1``
must keep the serial hot path.
"""

import pytest

from repro.api import Session, validate_report
from repro.api.parallel import ParallelExecutor, partition_analyses
from repro.sim.random_traces import RandomTraceConfig, random_trace
from repro.sim.workloads.benchmarks import CASES_BY_NAME
from repro.trace import pack, save_packed, load_packed
from repro.trace.events import begin, end, read, write
from repro.trace.trace import Trace

#: The co-run set every agreement test uses (>= 4 analyses, mixed shapes:
#: two packed-dispatch checkers, two event-path analyses, one offline).
ANALYSES = ["aerodrome", "doublechecker", "races", "lockset", "profile"]


def violating_trace() -> Trace:
    """Two overlapping transactions with a conflict cycle."""
    return Trace(
        [
            begin("t1"),
            write("t1", "x"),
            begin("t2"),
            write("t2", "y"),
            read("t2", "x"),
            end("t2"),
            read("t1", "y"),
            end("t1"),
        ],
        name="violating",
    )


def workload_packed(scale: float = 0.05):
    case = CASES_BY_NAME["raytracer"]
    return pack(case.generate(seed=7, scale=scale))


def reports_json(result):
    return [r.to_json() for r in result.reports.values()]


def assert_sessions_agree(trace, analyses, jobs):
    serial = Session(trace, list(analyses)).run()
    parallel = Session(trace, list(analyses)).run(jobs=jobs)
    assert list(serial.reports.keys()) == list(parallel.reports.keys())
    assert reports_json(serial) == reports_json(parallel)
    assert serial.to_json()["verdict"] == parallel.to_json()["verdict"]
    validate_report(parallel.to_json())
    return serial, parallel


class TestAgreement:
    def test_packed_workload_jobs2(self):
        assert_sessions_agree(workload_packed(), ANALYSES, jobs=2)

    def test_packed_workload_jobs3(self):
        assert_sessions_agree(workload_packed(), ANALYSES, jobs=3)

    def test_string_trace_jobs2(self):
        trace = random_trace(
            11, RandomTraceConfig(n_threads=4, n_vars=5, n_locks=2, length=600)
        )
        assert_sessions_agree(trace, ANALYSES, jobs=2)

    def test_mapped_trace_jobs2(self, tmp_path):
        path = tmp_path / "w.rpt"
        save_packed(workload_packed(), path)
        assert_sessions_agree(load_packed(path), ANALYSES, jobs=2)

    def test_violation_indices_agree(self):
        trace = pack(violating_trace())
        serial, parallel = assert_sessions_agree(
            trace, ["aerodrome", "aerodrome-basic", "velodrome", "races"], jobs=2
        )
        report = parallel.reports["aerodrome"]
        assert report.verdict is False
        assert (
            report.violations
            == serial.reports["aerodrome"].violations
        )
        assert report.violations[0]["event_idx"] == (
            serial.reports["aerodrome"].violations[0]["event_idx"]
        )

    def test_more_jobs_than_analyses(self):
        assert_sessions_agree(workload_packed(0.02), ANALYSES, jobs=16)

    def test_jobs_zero_means_cpu_count(self):
        # jobs=0 resolves to the CPU count; on a 1-CPU host that is a
        # clean serial fallback, elsewhere a real fan-out — either way
        # the reports agree.
        assert_sessions_agree(workload_packed(0.02), ANALYSES, jobs=0)

    def test_duplicate_analyses_keep_suffix_keys(self):
        trace = workload_packed(0.02)
        serial = Session(trace, ["aerodrome", "aerodrome", "races"]).run()
        parallel = Session(trace, ["aerodrome", "aerodrome", "races"]).run(jobs=2)
        assert list(serial.reports.keys()) == ["aerodrome", "aerodrome#2", "races"]
        assert list(parallel.reports.keys()) == list(serial.reports.keys())
        assert reports_json(serial) == reports_json(parallel)


class TestSerialFallbacks:
    def test_single_analysis_stays_serial(self):
        result = Session(workload_packed(0.02), ["aerodrome"]).run(jobs=4)
        # Solo stop-first checkers keep their native result object —
        # proof the inlined serial hot loop ran, not a worker.
        assert result.reports["aerodrome"].native is not None

    def test_iterator_trace_stays_serial(self):
        events = list(violating_trace())
        result = Session(iter(events), ["aerodrome", "races"]).run(jobs=2)
        assert result.reports["aerodrome"].verdict is False
        assert result.reports["aerodrome"].native is not None

    def test_jobs1_is_the_serial_path(self):
        result = Session(workload_packed(0.02), ANALYSES).run(jobs=1)
        for report in result.reports.values():
            assert report.native is not None

    def test_parallel_reports_have_no_native(self):
        result = Session(workload_packed(0.02), ANALYSES).run(jobs=2)
        for report in result.reports.values():
            assert report.native is None

    def test_sessions_stay_single_use(self):
        session = Session(workload_packed(0.02), ANALYSES)
        session.run(jobs=2)
        with pytest.raises(RuntimeError, match="single-use"):
            session.run(jobs=2)


class TestPartition:
    def test_all_analyses_covered_exactly_once(self):
        from repro.api.registry import create_analysis

        analyses = [create_analysis(name) for name in ANALYSES]
        for jobs in (1, 2, 3, 8):
            chunks = partition_analyses(analyses, jobs)
            flat = sorted(i for chunk in chunks for i in chunk)
            assert flat == list(range(len(analyses)))
            assert len(chunks) <= max(1, jobs)
            assert all(chunk for chunk in chunks)

    def test_chunks_preserve_order_within(self):
        from repro.api.registry import create_analysis

        analyses = [create_analysis(name) for name in ANALYSES]
        for chunk in partition_analyses(analyses, 3):
            assert chunk == sorted(chunk)


class TestExecutorMap:
    def test_map_returns_in_order(self):
        executor = ParallelExecutor(jobs=3)
        assert executor.map(_square, list(range(10))) == [
            i * i for i in range(10)
        ]

    def test_map_single_worker_runs_inline(self):
        executor = ParallelExecutor(jobs=1)
        assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_map_propagates_worker_failure(self):
        from repro.api.parallel import ParallelExecutionError

        executor = ParallelExecutor(jobs=2)
        with pytest.raises(ParallelExecutionError, match="boom"):
            executor.map(_explode, [1, 2])


def _square(x):
    return x * x


def _explode(x):
    raise RuntimeError("boom")
