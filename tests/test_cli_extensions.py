"""CLI tests for the extension subcommands (profile, dot, zoo,
violations, atomizer, lockset, viewserial)."""

import pytest

from repro.cli import main


@pytest.fixture
def violating_trace(tmp_path):
    path = tmp_path / "viol.std"
    path.write_text(
        "t1|begin\nt2|begin\nt1|w(x)\nt2|r(x)\nt2|w(y)\nt1|r(y)\nt2|end\nt1|end\n"
    )
    return path


@pytest.fixture
def clean_trace(tmp_path):
    path = tmp_path / "ok.std"
    path.write_text("t1|begin\nt1|w(x)\nt1|end\n")
    return path


class TestProfile:
    def test_reports_shape(self, violating_trace, capsys):
        assert main(["profile", str(violating_trace)]) == 0
        out = capsys.readouterr().out
        assert "events            : 8" in out
        assert "hot variables" in out

    def test_top_flag(self, violating_trace, capsys):
        assert main(["profile", str(violating_trace), "--top", "1"]) == 0
        out = capsys.readouterr().out
        # Only one variable line under the hot-variables header.
        hot = out.split("hot variables")[1]
        assert hot.count("r=") == 1


class TestDot:
    def test_stdout_transaction_graph(self, violating_trace, capsys):
        assert main(["dot", str(violating_trace)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "crimson" in out  # witness highlighted

    def test_event_graph(self, violating_trace, capsys):
        assert main(["dot", str(violating_trace), "--events"]) == 0
        assert "subgraph cluster_0" in capsys.readouterr().out

    def test_output_file(self, violating_trace, tmp_path, capsys):
        out_path = tmp_path / "g.dot"
        assert main(["dot", str(violating_trace), "-o", str(out_path)]) == 0
        assert out_path.read_text(encoding="utf-8").startswith("digraph")


class TestZoo:
    def test_listing(self, capsys):
        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        assert "paper-rho2" in out
        assert "view-not-conflict" in out

    def test_print_specimen(self, capsys):
        assert main(["zoo", "paper-rho2"]) == 0
        out = capsys.readouterr().out
        assert "t1|begin" in out

    def test_write_specimen(self, tmp_path, capsys):
        out_path = tmp_path / "rho2.std"
        assert main(["zoo", "paper-rho2", "-o", str(out_path)]) == 0
        assert out_path.exists()
        assert main(["check", str(out_path)]) == 1

    def test_unknown_specimen(self, capsys):
        assert main(["zoo", "nope"]) == 2
        assert "unknown specimen" in capsys.readouterr().err


class TestViolations:
    def test_streams_reports(self, violating_trace, capsys):
        assert main(["violations", str(violating_trace)]) == 1
        out = capsys.readouterr().out
        assert "violation report(s)" in out

    def test_clean_trace(self, clean_trace, capsys):
        assert main(["violations", str(clean_trace)]) == 0
        assert "0 violation report(s)" in capsys.readouterr().out

    def test_limit(self, violating_trace, capsys):
        assert main(["violations", str(violating_trace), "--limit", "1"]) == 1
        assert "1 violation report(s)" in capsys.readouterr().out


class TestAtomizer:
    def test_clean(self, clean_trace, capsys):
        assert main(["atomizer", str(clean_trace)]) == 0
        assert "0 reduction warning(s)" in capsys.readouterr().out

    def test_warns(self, tmp_path, capsys):
        path = tmp_path / "red.std"
        path.write_text(
            "t2|w(x)\nt1|begin\nt1|acq(l)\nt1|rel(l)\nt1|w(x)\nt1|end\n"
        )
        assert main(["atomizer", str(path)]) == 1
        assert "not reducible" in capsys.readouterr().out


class TestLockset:
    def test_clean(self, clean_trace, capsys):
        assert main(["lockset", str(clean_trace)]) == 0
        assert "0 lockset warning(s)" in capsys.readouterr().out

    def test_warns(self, tmp_path, capsys):
        path = tmp_path / "race.std"
        path.write_text("t1|w(x)\nt2|w(x)\n")
        assert main(["lockset", str(path)]) == 1
        assert "no common lock" in capsys.readouterr().out


class TestViewSerial:
    def test_view_serializable(self, clean_trace, capsys):
        assert main(["viewserial", str(clean_trace)]) == 0
        assert "witness order" in capsys.readouterr().out

    def test_not_view_serializable(self, violating_trace, capsys):
        assert main(["viewserial", str(violating_trace)]) == 1
        assert "not view serializable" in capsys.readouterr().out

    def test_too_large(self, tmp_path, capsys):
        lines = []
        for _ in range(12):
            lines += ["t1|begin", "t1|w(x)", "t1|end"]
        path = tmp_path / "big.std"
        path.write_text("\n".join(lines) + "\n")
        assert main(["viewserial", str(path)]) == 2
        assert "undecided" in capsys.readouterr().err


class TestSerialize:
    def test_emits_witness(self, clean_trace, capsys):
        assert main(["serialize", str(clean_trace)]) == 0
        assert "t1|begin" in capsys.readouterr().out

    def test_violating_has_no_witness(self, violating_trace, capsys):
        assert main(["serialize", str(violating_trace)]) == 1
        assert "no serial witness" in capsys.readouterr().err

    def test_output_file_round_trips(self, tmp_path, capsys):
        src = tmp_path / "rho1.std"
        assert main(["zoo", "paper-rho1", "-o", str(src)]) == 0
        out = tmp_path / "serial.std"
        assert main(["serialize", str(src), "-o", str(out)]) == 0
        assert main(["check", str(out)]) == 0


class TestInferSpec:
    def test_infers_and_writes(self, tmp_path, capsys):
        trace_path = tmp_path / "labeled.std"
        trace_path.write_text(
            "t1|begin(m1)\nt2|begin(m2)\nt1|w(x)\nt2|r(x)\nt2|w(y)\n"
            "t1|r(y)\nt2|end(m2)\nt1|end(m1)\n"
        )
        spec_path = tmp_path / "spec.txt"
        code = main(["inferspec", str(trace_path), "-o", str(spec_path)])
        assert code == 1  # something was refuted
        out = capsys.readouterr().out
        assert "refuted" in out
        assert spec_path.exists()

    def test_clean_trace_exits_zero(self, clean_trace, capsys):
        assert main(["inferspec", str(clean_trace)]) == 0
        assert "refuted = (none)" in capsys.readouterr().out

    def test_unlabeled_violation_fails(self, violating_trace, capsys):
        assert main(["inferspec", str(violating_trace)]) == 2
        assert "inference failed" in capsys.readouterr().err


class TestZooRender:
    def test_render_draws_columns(self, capsys):
        assert main(["zoo", "paper-rho2", "--render"]) == 0
        out = capsys.readouterr().out
        assert "⊲" in out
        assert "← violation" in out
        assert "✗" in out


class TestMemory:
    def test_growth_table(self, violating_trace, capsys):
        assert main(["memory", str(violating_trace), "--samples", "2"]) == 0
        out = capsys.readouterr().out
        assert "state growth" in out
        assert "total_clocks" in out

    def test_velodrome_reports_nodes(self, violating_trace, capsys):
        code = main(
            ["memory", str(violating_trace), "--algorithm", "velodrome"]
        )
        assert code == 0
        assert "live_nodes" in capsys.readouterr().out


class TestMinimize:
    def test_minimizes_and_renders(self, violating_trace, capsys):
        assert main(["minimize", str(violating_trace)]) == 0
        out = capsys.readouterr().out
        assert "minimized 8 -> 8 events" in out  # rho2 is already minimal
        assert "← violation" in out

    def test_output_file(self, tmp_path, capsys):
        src = tmp_path / "noisy.std"
        lines = []
        for i in range(3):
            lines += [f"t3|begin", f"t3|w(n{i})", "t3|end"]
        lines += [
            "t1|begin", "t2|begin", "t1|w(x)", "t2|r(x)",
            "t2|w(y)", "t1|r(y)", "t2|end", "t1|end",
        ]
        src.write_text("\n".join(lines) + "\n")
        out = tmp_path / "core.std"
        assert main(["minimize", str(src), "-o", str(out)]) == 0
        assert main(["check", str(out)]) == 1
        event_lines = [
            line
            for line in out.read_text().strip().splitlines()
            if line and not line.startswith("#")
        ]
        assert len(event_lines) == 8

    def test_serializable_input_fails(self, clean_trace, capsys):
        assert main(["minimize", str(clean_trace)]) == 2
        assert "cannot minimize" in capsys.readouterr().err
