"""Report-and-continue tests (violation_stream / find_all_violations)."""

from repro import Trace, begin, check_trace, end, read, write
from repro.core.multi import find_all_violations, violation_stream


def two_independent_cycles() -> Trace:
    """Two disjoint ρ2-shaped violations on separate variable pairs and
    separate thread pairs."""
    return Trace(
        [
            # cycle 1: t1/t2 over x,y
            begin("t1"),
            begin("t2"),
            write("t1", "x"),
            read("t2", "x"),
            write("t2", "y"),
            read("t1", "y"),  # idx 5: first violation
            end("t2"),
            end("t1"),
            # cycle 2: t3/t4 over a,b
            begin("t3"),
            begin("t4"),
            write("t3", "a"),
            read("t4", "a"),
            write("t4", "b"),
            read("t3", "b"),  # idx 13: second violation
            end("t4"),
            end("t3"),
        ]
    )


def test_serializable_trace_yields_nothing(rho1):
    assert find_all_violations(rho1) == []


def test_first_report_matches_check_trace(rho2):
    stream = list(violation_stream(rho2))
    expected = check_trace(rho2).violation
    assert stream[0].event_idx == expected.event_idx
    assert stream[0].thread == expected.thread
    assert stream[0].site == expected.site


def test_two_independent_cycles_both_reported():
    trace = two_independent_cycles()
    violations = find_all_violations(trace)
    indices = [v.event_idx for v in violations]
    assert 5 in indices
    assert 13 in indices
    threads = {v.thread for v in violations}
    assert {"t1", "t3"} <= threads


def test_limit_stops_early():
    trace = two_independent_cycles()
    violations = find_all_violations(trace, limit=1)
    assert len(violations) == 1
    assert violations[0].event_idx == 5


def test_stream_is_lazy():
    trace = two_independent_cycles()
    stream = violation_stream(trace)
    first = next(stream)
    assert first.event_idx == 5
    rest = list(stream)
    assert any(v.event_idx == 13 for v in rest)


def test_dedupe_mutes_repeats_within_a_transaction():
    # One open transaction in t1 keeps tripping the read check on y and z
    # against t2's completed transaction; dedupe collapses the repeats.
    trace = Trace(
        [
            begin("t1"),
            write("t1", "x"),
            begin("t2"),
            read("t2", "x"),
            write("t2", "y"),
            write("t2", "z"),
            end("t2"),
            read("t1", "y"),  # violation (read site)
            read("t1", "z"),  # same (thread, site): muted under dedupe
            end("t1"),
        ]
    )
    noisy = find_all_violations(trace)
    quiet = find_all_violations(trace, dedupe=True)
    assert len(noisy) >= 2
    assert len(quiet) < len(noisy)
    assert quiet[0].event_idx == noisy[0].event_idx


def test_dedupe_unmutes_at_transaction_boundary():
    trace = two_independent_cycles()
    quiet = find_all_violations(trace, dedupe=True)
    # The two cycles involve different threads, so dedupe keeps both.
    assert {v.event_idx for v in quiet} >= {5, 13}


def test_works_with_velodrome():
    trace = two_independent_cycles()
    violations = find_all_violations(trace, algorithm="velodrome")
    assert violations, "graph checker must also stream violations"
    assert violations[0].event_idx == 5
