"""repro.obs.metrics: typed instruments, repro-stats/1, prom exposition.

Covers the PR-10 tentpole leg 1 and satellites 1–2: the versioned
``service-stats`` schema holds on both backends (1-node and cluster),
the Prometheus rendering matches the documented catalog on a live
scrape, and ``repro service-stats`` fails typed (exit 3) against an
unreachable node.
"""

import json
import urllib.request

import pytest

from repro.cli import main
from repro.obs.metrics import (
    CATALOG_BY_NAME,
    METRICS_CATALOG,
    STATS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prom_names,
    stats_to_prom,
    validate_prom_text,
)
from repro.service.client import ServiceClient, submit_trace
from repro.service.server import ServiceServer
from repro.sim.workloads.benchmarks import get_case


# -- instruments -------------------------------------------------------------


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_goes_both_ways(self):
        g = Gauge("g")
        g.set(10)
        g.dec(3)
        g.inc()
        assert g.value == 8

    def test_histogram_buckets_are_cumulative(self):
        h = Histogram("h", buckets=(10, 100))
        for v in (5, 50, 500):
            h.observe(v)
        doc = h.to_json()
        assert doc["count"] == 3
        assert doc["sum"] == 555
        assert doc["buckets"] == {"10": 1, "100": 2, "+Inf": 3}

    def test_registry_factories_are_idempotent(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")  # name already bound to a Counter
        assert len(r) == 1

    def test_registry_snapshot(self):
        r = MetricsRegistry()
        r.counter("a").inc(2)
        r.gauge("b").set(1.5)
        snap = r.snapshot()
        assert snap == {"a": 2, "b": 1.5}


# -- prom rendering ----------------------------------------------------------


def test_catalog_names_are_unique_and_typed():
    assert len(CATALOG_BY_NAME) == len(METRICS_CATALOG)
    for spec in METRICS_CATALOG:
        assert spec.type in ("counter", "gauge", "histogram")
        assert spec.name.startswith("repro_")


def test_stats_to_prom_renders_labels_and_histograms():
    doc = {
        "schema": STATS_SCHEMA,
        "shards": [
            {
                "shard": 0,
                "events": 10,
                "queue_depth": 2,
                "checkpoint_lag": 7,
                "checkpoint_lag_histogram": {
                    "count": 1, "sum": 7.0, "buckets": {"64": 1, "+Inf": 1},
                },
                "tenant_violations": {"tenant-a": 3},
            }
        ],
        "shed": 1,
        "shard_restarts": 0,
        "uptime_seconds": 1.25,
        "server": {"backend": "thread", "busy_replies": 4},
    }
    text = stats_to_prom(doc)
    assert 'repro_shard_events_total{shard="0"} 10' in text
    assert 'repro_tenant_violations_total{tenant="tenant-a"} 3' in text
    assert 'repro_server_busy_replies_total{backend="thread"} 4' in text
    assert 'repro_shard_checkpoint_lag_bucket{le="64",shard="0"} 1' in text
    assert 'repro_shard_checkpoint_lag_count{shard="0"} 1' in text
    assert "# TYPE repro_shard_checkpoint_lag histogram" in text
    assert "repro_router_shed_total 1" in text


def test_validate_prom_text_flags_unknown_and_missing():
    problems = validate_prom_text("made_up_metric 1\n")
    assert any("unknown metric" in p for p in problems)
    assert any("required metric missing" in p for p in problems)


def test_parse_prom_names_folds_histogram_suffixes():
    text = (
        'repro_shard_checkpoint_lag_bucket{le="+Inf",shard="0"} 1\n'
        'repro_shard_checkpoint_lag_sum{shard="0"} 7\n'
        'repro_shard_checkpoint_lag_count{shard="0"} 1\n'
    )
    names = parse_prom_names(text)
    assert names == {"repro_shard_checkpoint_lag": 3}


# -- live servers: the repro-stats/1 shape (satellite 1) ---------------------


@pytest.fixture(scope="module")
def small_trace():
    return list(get_case("avrora").generate(seed=3, scale=0.02))


REQUIRED_SHARD_KEYS = {
    "shard", "sessions_open", "sessions_closed", "sessions_quarantined",
    "events", "events_dropped", "events_per_second", "violations",
    "errors", "checkpoint_failures", "lenient_restarts", "uptime_seconds",
    "queue_depth", "checkpoint_lag", "checkpoint_lag_histogram",
    "tenant_violations", "workers",
}

REQUIRED_TOP_KEYS = {
    "schema", "shards", "sessions_open", "sessions_closed", "events",
    "violations", "errors", "shard_restarts", "shed", "uptime_seconds",
    "server",
}


def _assert_stats_shape(stats, backend, cluster):
    assert stats["schema"] == STATS_SCHEMA
    assert REQUIRED_TOP_KEYS <= set(stats)
    for row in stats["shards"]:
        assert REQUIRED_SHARD_KEYS <= set(row)
    assert stats["server"]["backend"] == backend
    if cluster:
        assert "cluster" in stats
        assert {"node", "epoch", "peers", "gossip_ticks"} <= set(
            stats["cluster"]
        )
    else:
        assert "cluster" not in stats
    # The prom rendering of this very document matches the catalog.
    assert validate_prom_text(stats_to_prom(stats)) == []


@pytest.mark.parametrize("backend", ["thread", "async"])
@pytest.mark.parametrize("cluster", [False, True], ids=["1-node", "cluster"])
def test_stats_schema_shape(small_trace, backend, cluster):
    with ServiceServer(
        port=0, backend=backend, shards=2, cluster=cluster,
        gossip_interval=0.1 if cluster else None,
    ) as server:
        server.start()
        submit_trace(
            server.host, server.port, iter(small_trace), ["aerodrome"],
            name="avrora",
        )
        with ServiceClient(server.host, server.port) as client:
            stats = client.stats()
    json.dumps(stats)  # the whole document stays JSON-serializable
    _assert_stats_shape(stats, backend, cluster)


@pytest.mark.parametrize("backend", ["thread", "async"])
def test_metrics_endpoint_scrape(small_trace, backend):
    with ServiceServer(
        port=0, backend=backend, shards=2, metrics_port=0
    ) as server:
        server.start()
        submit_trace(
            server.host, server.port, iter(small_trace), ["aerodrome"],
            name="avrora",
        )
        url = f"http://{server.host}:{server.metrics_port}/metrics"
        with urllib.request.urlopen(url, timeout=10) as response:
            assert response.status == 200
            assert "text/plain" in response.headers["Content-Type"]
            body = response.read().decode("utf-8")
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(
                f"http://{server.host}:{server.metrics_port}/nope",
                timeout=10,
            )
    assert validate_prom_text(body) == []
    assert f'repro_server_busy_replies_total{{backend="{backend}"}}' in body


def test_tenant_violation_counts_reach_the_exposition(small_trace):
    with ServiceServer(port=0, shards=1) as server:
        server.start()
        submit_trace(
            server.host, server.port, iter(small_trace), ["aerodrome"],
            name="avrora", session_id="tenant-x",
        )
        with ServiceClient(server.host, server.port) as client:
            stats = client.stats()
    tenants = stats["shards"][0]["tenant_violations"]
    assert tenants.get("tenant-x", 0) >= 1
    assert 'repro_tenant_violations_total{tenant="tenant-x"}' in (
        stats_to_prom(stats)
    )


# -- the CLI surface (satellite 2) -------------------------------------------


def test_service_stats_unreachable_exits_3(capsys):
    # Port 1 is never listening; must be the typed diagnostic + exit 3
    # (mirrors `repro submit`), not a raw connection traceback / exit 2.
    assert main(["service-stats", "--host", "127.0.0.1", "--port", "1"]) == 3
    err = capsys.readouterr().err
    assert "no service at 127.0.0.1:1" in err
    assert "repro serve" in err


@pytest.mark.parametrize("fmt", ["json", "prom"])
def test_service_stats_formats(small_trace, fmt, capsys):
    with ServiceServer(port=0, shards=1) as server:
        server.start()
        submit_trace(
            server.host, server.port, iter(small_trace), ["aerodrome"],
            name="avrora",
        )
        code = main(
            [
                "service-stats", "--host", server.host,
                "--port", str(server.port), "--format", fmt,
            ]
        )
    assert code == 0
    out = capsys.readouterr().out
    if fmt == "json":
        assert json.loads(out)["schema"] == STATS_SCHEMA
    else:
        assert validate_prom_text(out) == []
