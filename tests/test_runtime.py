"""Runtime tests: execution, blocking, deadlock, determinism."""

import pytest

from repro import Op, validate
from repro.sim.program import (
    Acquire,
    Begin,
    End,
    Fork,
    Join,
    Program,
    Read,
    Release,
    ThreadBody,
    Write,
    program_of,
)
from repro.sim.runtime import DeadlockError, execute
from repro.sim.scheduler import FixedScheduler, RandomScheduler, RoundRobinScheduler


class TestBasicExecution:
    def test_single_thread(self):
        program = program_of({"t": [Begin(), Write("x"), End()]})
        trace = execute(program)
        assert [e.op for e in trace] == [Op.BEGIN, Op.WRITE, Op.END]
        assert all(e.thread == "t" for e in trace)

    def test_round_robin_interleaving(self):
        program = program_of({"a": [Read("x"), Read("y")], "b": [Write("z")]})
        trace = execute(program, RoundRobinScheduler(quantum=1))
        assert [e.thread for e in trace] == ["a", "b", "a"]

    def test_output_well_formed(self):
        program = program_of(
            {
                "main": [Fork("w"), Acquire("l"), Write("x"), Release("l"), Join("w")],
                "w": [Acquire("l"), Read("x"), Release("l")],
            }
        )
        trace = execute(program, RandomScheduler(seed=3), validate_output=True)
        validate(trace, require_forked_threads=True)

    def test_labels_propagate(self):
        program = program_of({"t": [Begin("work"), End("work")]})
        trace = execute(program)
        assert trace[0].target == "work"


class TestBlocking:
    def test_lock_blocks_other_thread(self):
        # b cannot run between a's acquire and release even though the
        # scheduler would prefer alternating.
        program = program_of(
            {
                "a": [Acquire("l"), Write("x"), Release("l")],
                "b": [Acquire("l"), Read("x"), Release("l")],
            }
        )
        trace = execute(program, RoundRobinScheduler(quantum=1))
        acquire_indices = [e.idx for e in trace if e.op is Op.ACQUIRE]
        release_indices = [e.idx for e in trace if e.op is Op.RELEASE]
        assert release_indices[0] < acquire_indices[1]

    def test_reentrant_lock(self):
        program = program_of(
            {"t": [Acquire("l"), Acquire("l"), Release("l"), Release("l")]}
        )
        trace = execute(program)
        assert len(trace) == 4

    def test_join_waits_for_child(self):
        program = program_of(
            {
                "main": [Fork("w"), Join("w"), Read("done")],
                "w": [Write("done")],
            }
        )
        trace = execute(program, RoundRobinScheduler(quantum=1))
        join_idx = next(e.idx for e in trace if e.op is Op.JOIN)
        child_write = next(e.idx for e in trace if e.thread == "w")
        assert child_write < join_idx

    def test_forked_thread_waits_for_fork(self):
        program = program_of(
            {
                "main": [Read("a"), Read("b"), Fork("w")],
                "w": [Write("x")],
            }
        )
        trace = execute(program, RoundRobinScheduler(quantum=1))
        fork_idx = next(e.idx for e in trace if e.op is Op.FORK)
        child_first = next(e.idx for e in trace if e.thread == "w")
        assert fork_idx < child_first


class TestDeadlock:
    def test_lock_cycle_deadlocks(self):
        program = program_of(
            {
                "a": [Acquire("l1"), Acquire("l2"), Release("l2"), Release("l1")],
                "b": [Acquire("l2"), Acquire("l1"), Release("l1"), Release("l2")],
            }
        )
        # Force the interleaving that deadlocks: a takes l1, b takes l2.
        with pytest.raises(DeadlockError, match="waiting for lock"):
            execute(program, FixedScheduler(["a", "b", "a", "b", "a", "b"]))

    def test_never_forked_thread_detected(self):
        # main holds the lock forever (blocked on joining w); src cannot
        # take the lock to fork w; w never starts: a three-way deadlock.
        program = Program(
            [
                ThreadBody("main", [Acquire("l"), Join("w"), Release("l")]),
                ThreadBody("w", [Write("x")]),
                ThreadBody("src", [Acquire("l"), Fork("w"), Release("l")]),
            ]
        )
        with pytest.raises(DeadlockError, match="never forked"):
            execute(program, RoundRobinScheduler())

    def test_max_steps_guard(self):
        program = program_of({"t": [Read("x")] * 10})
        with pytest.raises(RuntimeError, match="exceeded"):
            execute(program, max_steps=3)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        program = program_of(
            {
                "a": [Begin(), Read("x"), Write("x"), End()] * 5,
                "b": [Begin(), Read("x"), Write("x"), End()] * 5,
            }
        )
        t1 = execute(program, RandomScheduler(seed=11))
        t2 = execute(program, RandomScheduler(seed=11))
        assert t1 == t2

    def test_different_seed_different_trace(self):
        program = program_of(
            {
                "a": [Read("x")] * 10,
                "b": [Write("y")] * 10,
            }
        )
        t1 = execute(program, RandomScheduler(seed=1))
        t2 = execute(program, RandomScheduler(seed=2))
        assert t1 != t2
