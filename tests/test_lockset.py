"""Eraser lockset analysis tests: state machine, refinement, and the
canonical fork/join false positive."""

import pytest

from repro import (
    Trace,
    acquire,
    begin,
    end,
    fork,
    join,
    read,
    release,
    write,
)
from repro.analysis.lockset import (
    LocksetAnalyzer,
    VarState,
    lockset_analysis,
)
from repro.analysis.races import find_races


def test_virgin_to_exclusive_on_first_access():
    analyzer = LocksetAnalyzer()
    trace = Trace([write("t1", "x")])
    analyzer.process(trace[0])
    assert analyzer.state_of("x") is VarState.EXCLUSIVE


def _run(events):
    trace = Trace(list(events))
    return lockset_analysis(trace)


def test_single_thread_never_warns():
    report = _run([write("t1", "x"), read("t1", "x"), write("t1", "x")])
    assert report.warnings == []
    assert report.final_states["x"] is VarState.EXCLUSIVE


def test_consistently_locked_variable_is_clean():
    report = _run(
        [
            acquire("t1", "l"),
            write("t1", "x"),
            release("t1", "l"),
            acquire("t2", "l"),
            write("t2", "x"),
            release("t2", "l"),
        ]
    )
    assert report.warnings == []
    assert report.final_states["x"] is VarState.SHARED_MODIFIED


def test_unprotected_shared_write_warns():
    report = _run([write("t1", "x"), write("t2", "x")])
    assert len(report.warnings) == 1
    warning = report.warnings[0]
    assert warning.variable == "x"
    assert warning.thread == "t2"
    assert warning.is_write


def test_read_shared_without_locks_does_not_warn():
    # Read-shared data is fine in Eraser: warnings only fire in
    # SHARED_MODIFIED.
    report = _run([write("t1", "x"), read("t2", "x"), read("t3", "x")])
    assert report.warnings == []
    assert report.final_states["x"] is VarState.SHARED


def test_candidate_set_refinement_across_two_locks():
    # t2 holds {l1,l2} at the first shared access; t1 then accesses under
    # {l1} only — candidate set shrinks to {l1}, stays non-empty.
    report = _run(
        [
            write("t1", "x"),
            acquire("t2", "l1"),
            acquire("t2", "l2"),
            write("t2", "x"),
            release("t2", "l2"),
            release("t2", "l1"),
            acquire("t1", "l1"),
            write("t1", "x"),
            release("t1", "l1"),
        ]
    )
    assert report.warnings == []


def test_refinement_to_empty_set_warns():
    # Threads protect x with *different* locks. The first shared access
    # initializes the candidate set to {l2}; t1's next access under l1
    # refines it to the empty set.
    report = _run(
        [
            acquire("t1", "l1"),
            write("t1", "x"),
            release("t1", "l1"),
            acquire("t2", "l2"),
            write("t2", "x"),
            release("t2", "l2"),
            acquire("t1", "l1"),
            write("t1", "x"),
            release("t1", "l1"),
        ]
    )
    assert [w.variable for w in report.warnings] == ["x"]
    assert report.warnings[0].event_idx == 7


def test_one_warning_per_variable():
    report = _run(
        [
            write("t1", "x"),
            write("t2", "x"),
            write("t1", "x"),
            write("t2", "x"),
        ]
    )
    assert len(report.warnings) == 1


def test_fork_join_false_positive():
    """The canonical Eraser false alarm: fork/join order is invisible.

    The happens-before detector (FastTrack) correctly sees no race; the
    lockset analysis flags the variable anyway.
    """
    trace = Trace(
        [
            write("t1", "x"),
            fork("t1", "t2"),
            write("t2", "x"),
            join("t1", "t2"),
            read("t1", "x"),
        ]
    )
    assert find_races(trace) == []  # ground truth: ordered by fork
    report = lockset_analysis(trace)
    assert report.racy_variables == {"x"}


def test_is_racy_is_online():
    analyzer = LocksetAnalyzer()
    events = Trace([write("t1", "x"), write("t2", "x")])
    analyzer.process(events[0])
    assert not analyzer.is_racy("x")
    analyzer.process(events[1])
    assert analyzer.is_racy("x")


def test_locks_held_tracking():
    analyzer = LocksetAnalyzer()
    trace = Trace([acquire("t1", "l1"), acquire("t1", "l2"), release("t1", "l1")])
    for event in trace:
        analyzer.process(event)
    assert analyzer.locks_held("t1") == frozenset({"l2"})
    assert analyzer.locks_held("t2") == frozenset()


def test_candidate_set_none_until_shared():
    analyzer = LocksetAnalyzer()
    trace = Trace([write("t1", "x")])
    analyzer.process(trace[0])
    assert analyzer.candidate_set("x") is None


@pytest.mark.parametrize("n_threads", [2, 3, 4])
def test_warning_count_bounded_by_variables(n_threads):
    events = []
    for v in ("a", "b"):
        for i in range(n_threads):
            events.append(write(f"t{i}", v))
    report = _run(events)
    assert len(report.warnings) == 2
