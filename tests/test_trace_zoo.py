"""Zoo regression tests: every specimen's recorded verdicts hold against
the oracle, every registered sound checker, and (where asserted) the
exact view-serializability decision procedure."""

import pytest

from repro import check_trace, conflict_serializable, is_well_formed
from repro.analysis.view_serializability import view_serializable
from repro.sim import trace_zoo

#: The sound conflict-serializability checkers (atomizer is registered
#: but deliberately incomparable, so it is excluded here).
SOUND_ALGORITHMS = [
    "aerodrome",
    "aerodrome-basic",
    "aerodrome-sharded",
    "velodrome",
    "velodrome-nogc",
    "velodrome-pk",
    "doublechecker",
]

SPECIMENS = trace_zoo.all_specimens()


def test_zoo_is_nonempty_and_unique():
    assert len(SPECIMENS) >= 15
    assert len({s.name for s in SPECIMENS}) == len(SPECIMENS)


def test_names_and_get_agree():
    for name in trace_zoo.names():
        assert trace_zoo.get(name).name == name


def test_get_unknown_raises_with_listing():
    with pytest.raises(KeyError, match="paper-rho1"):
        trace_zoo.get("no-such-specimen")


@pytest.mark.parametrize("specimen", SPECIMENS, ids=lambda s: s.name)
def test_specimen_is_well_formed(specimen):
    assert is_well_formed(specimen.trace())


@pytest.mark.parametrize("specimen", SPECIMENS, ids=lambda s: s.name)
def test_oracle_verdict(specimen):
    assert conflict_serializable(specimen.trace()) == (
        specimen.conflict_serializable
    )


@pytest.mark.parametrize("specimen", SPECIMENS, ids=lambda s: s.name)
@pytest.mark.parametrize("algorithm", SOUND_ALGORITHMS)
def test_checker_verdicts(specimen, algorithm):
    result = check_trace(specimen.trace(), algorithm=algorithm)
    assert result.serializable == specimen.conflict_serializable


@pytest.mark.parametrize(
    "specimen",
    [s for s in SPECIMENS if s.view_serializable is not None],
    ids=lambda s: s.name,
)
def test_view_verdicts(specimen):
    assert view_serializable(specimen.trace()) == specimen.view_serializable


def test_view_conflict_containment_in_zoo():
    # conflict serializable => view serializable, on every specimen
    # where both verdicts are recorded.
    for specimen in SPECIMENS:
        if specimen.conflict_serializable and specimen.view_serializable is not None:
            assert specimen.view_serializable, specimen.name


def test_traces_are_fresh_copies():
    specimen = trace_zoo.get("paper-rho2")
    a, b = specimen.trace(), specimen.trace()
    assert a is not b
    assert list(a) == list(b)
    assert a.name == "paper-rho2"
