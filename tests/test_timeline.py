"""Columnar trace rendering tests."""

from repro import Trace, begin, check_trace, end, read, write
from repro.analysis.timeline import (
    BEGIN_GLYPH,
    END_GLYPH,
    render_columns,
    render_with_verdict,
)


def test_one_column_per_thread(rho2):
    rendered = render_columns(rho2)
    lines = rendered.splitlines()
    header = lines[0]
    assert "t1" in header and "t2" in header
    assert header.index("t1") < header.index("t2")
    assert len(lines) == 1 + len(rho2)


def test_glyphs_and_ops(rho2):
    rendered = render_columns(rho2)
    assert BEGIN_GLYPH in rendered
    assert END_GLYPH in rendered
    assert "w(x)" in rendered
    assert "r(y)" in rendered


def test_events_land_in_their_thread_column(rho2):
    lines = render_columns(rho2).splitlines()
    header = lines[0]
    t2_col = header.index("t2")
    # e4 = r(x) by t2 — its cell must start at or after t2's column.
    row = lines[4]
    assert row.index("r(x)") >= t2_col


def test_rows_numbered_like_the_paper(rho2):
    lines = render_columns(rho2).splitlines()
    assert lines[1].lstrip().startswith("1")
    assert lines[-1].lstrip().startswith(str(len(rho2)))


def test_violation_marker(rho2):
    result = check_trace(rho2)
    rendered = render_columns(rho2, violation=result.violation)
    marked = [l for l in rendered.splitlines() if "← violation" in l]
    assert len(marked) == 1
    assert f"({result.violation.site} check)" in marked[0]


def test_explicit_thread_order():
    trace = Trace([write("a", "x"), write("b", "x")])
    rendered = render_columns(trace, threads=["b", "a"])
    header = rendered.splitlines()[0]
    assert header.index("b") < header.index("a")


def test_labeled_markers_keep_label():
    trace = Trace([begin("t1", "m"), end("t1", "m")])
    rendered = render_columns(trace)
    assert f"{BEGIN_GLYPH}m" in rendered
    assert f"{END_GLYPH}m" in rendered


def test_render_with_verdict(rho1, rho2):
    good = render_with_verdict(rho1)
    assert "✓" in good
    bad = render_with_verdict(rho2)
    assert "✗" in bad
    assert "← violation" in bad


def test_empty_trace():
    assert render_columns(Trace([])) == ""
