"""MetaInfo analysis tests (paper tables, columns 2-6)."""

from repro import (
    Op,
    acquire,
    begin,
    collect_metainfo,
    end,
    fork,
    join,
    metainfo,
    read,
    release,
    trace_of,
    write,
)


def test_counts_basic(rho4):
    info = metainfo(rho4)
    assert info.events == 12
    assert info.threads == 3
    assert info.locks == 0
    assert info.variables == 3
    assert info.transactions == 3


def test_counts_locks_and_threads_from_targets():
    trace = trace_of(
        fork("t1", "t2"),
        acquire("t2", "l1"),
        release("t2", "l1"),
        join("t1", "t2"),
        join("t1", "t3"),  # t3 never acts but is counted
    )
    info = metainfo(trace)
    assert info.threads == 3
    assert info.locks == 1
    assert info.variables == 0


def test_nested_begins_count_once():
    trace = trace_of(begin("t"), begin("t"), end("t"), end("t"))
    assert metainfo(trace).transactions == 1


def test_op_counts_and_ratios():
    trace = trace_of(
        read("t", "x"), read("t", "y"), write("t", "x"), begin("t"), end("t")
    )
    info = metainfo(trace)
    assert info.reads == 2
    assert info.writes == 1
    assert info.memory_accesses == 3
    assert info.op_counts[Op.BEGIN] == 1


def test_streaming_over_iterator(rho1):
    info = collect_metainfo(iter(rho1))
    assert info.events == len(rho1)


def test_as_row_and_str(rho1):
    info = metainfo(rho1)
    row = info.as_row()
    assert row["events"] == 10
    assert "threads=3" in str(info)
