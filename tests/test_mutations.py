"""Failure injection: every corruption class must be caught by the
validator (and by nothing silently downstream)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import WellFormednessError, validate
from repro.sim.mutations import MUTATORS, MutationError, mutate
from repro.sim.random_traces import RandomTraceConfig, random_trace


def rich_trace(seed=0):
    """A random trace guaranteed to contain locks, blocks and forks."""
    return random_trace(
        seed,
        RandomTraceConfig(
            n_threads=4,
            n_vars=3,
            n_locks=2,
            length=60,
            p_begin=0.25,
            p_end=0.2,
            p_lock=0.3,
            with_forks=True,
        ),
    )


@pytest.mark.parametrize("kind", sorted(MUTATORS))
@pytest.mark.parametrize("seed", range(3))
def test_every_mutation_is_caught(kind, seed):
    trace = rich_trace(seed)
    try:
        corrupted = mutate(trace, kind, seed=seed)
    except MutationError:
        pytest.skip(f"{kind} not applicable to this trace")
    with pytest.raises(WellFormednessError):
        validate(
            corrupted,
            allow_open_transactions=False,
            allow_held_locks=False,
            require_forked_threads=False,
        )


def test_unknown_mutation_rejected(rho1):
    with pytest.raises(MutationError, match="unknown mutation"):
        mutate(rho1, "made_up")


def test_mutation_errors_on_missing_material(rho1):
    # rho1 has no locks or joins.
    with pytest.raises(MutationError):
        mutate(rho1, "drop_release")
    with pytest.raises(MutationError):
        mutate(rho1, "event_after_join")


def test_mutators_do_not_modify_input(rho2):
    snapshot = [str(e) for e in rho2]
    mutate(rho2, "drop_begin")
    assert [str(e) for e in rho2] == snapshot


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_drop_begin_always_caught(seed):
    trace = rich_trace(seed)
    corrupted = mutate(trace, "drop_begin", seed=seed)
    with pytest.raises(WellFormednessError):
        validate(corrupted, allow_open_transactions=False)
