"""Random trace generator tests: well-formedness and determinism."""

from hypothesis import given, settings, strategies as st

from repro import metainfo, validate
from repro.sim.random_traces import RandomTraceConfig, random_trace
from repro.trace.transactions import extract_transactions


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=0, max_value=10**9),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=80),
)
def test_always_well_formed(seed, n_threads, n_vars, n_locks, length):
    config = RandomTraceConfig(
        n_threads=n_threads, n_vars=n_vars, n_locks=n_locks, length=length
    )
    trace = random_trace(seed, config)
    validate(trace, allow_open_transactions=False, allow_held_locks=False)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_with_forks_well_formed(seed):
    config = RandomTraceConfig(n_threads=4, length=40, with_forks=True)
    trace = random_trace(seed, config)
    validate(
        trace,
        allow_open_transactions=False,
        allow_held_locks=False,
        require_forked_threads=True,
    )


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_all_transactions_complete(seed):
    trace = random_trace(seed, RandomTraceConfig(length=50, p_begin=0.3))
    index = extract_transactions(trace)
    assert index.active_count == 0


def test_deterministic():
    config = RandomTraceConfig(length=100)
    assert random_trace(42, config) == random_trace(42, config)
    assert random_trace(42, config) != random_trace(43, config)


def test_respects_entity_budgets():
    config = RandomTraceConfig(n_threads=3, n_vars=2, n_locks=1, length=200)
    info = metainfo(random_trace(0, config))
    assert info.threads <= 3
    assert info.variables <= 2
    assert info.locks <= 1


def test_name_default_and_override():
    assert random_trace(9).name == "random-9"
    assert random_trace(9, name="custom").name == "custom"
