"""Tests for the extended workload patterns (reader/writer, barriers,
work stealing, lazy init, pipelines, map-reduce)."""

import pytest

from repro import check_trace, conflict_serializable, metainfo
from repro.sim.runtime import execute
from repro.sim.scheduler import RandomScheduler, RoundRobinScheduler
from repro.sim.workloads.patterns import (
    barrier_phases,
    lazy_initialization,
    map_reduce,
    pipeline_stages,
    reader_writer,
    work_stealing,
)

FINE = RoundRobinScheduler(quantum=1)


def verdicts(program, scheduler):
    trace = execute(program, scheduler, validate_output=True)
    oracle = conflict_serializable(trace)
    aero = check_trace(trace, "aerodrome").serializable
    velo = check_trace(trace, "velodrome").serializable
    assert aero == velo == oracle
    return oracle


class TestSerializablePatterns:
    @pytest.mark.parametrize("seed", range(5))
    def test_guarded_reader_writer(self, seed):
        assert verdicts(reader_writer(guarded=True), RandomScheduler(seed=seed))

    @pytest.mark.parametrize("seed", range(5))
    def test_barrier_phases(self, seed):
        assert verdicts(barrier_phases(), RandomScheduler(seed=seed))

    @pytest.mark.parametrize("seed", range(5))
    def test_guarded_lazy_init(self, seed):
        assert verdicts(
            lazy_initialization(guarded=True), RandomScheduler(seed=seed)
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_pipeline_stages(self, seed):
        assert verdicts(pipeline_stages(), RandomScheduler(seed=seed))

    @pytest.mark.parametrize("seed", range(5))
    def test_guarded_map_reduce(self, seed):
        assert verdicts(map_reduce(guarded=True), RandomScheduler(seed=seed))


class TestViolatingPatterns:
    def test_racy_reader_writer_some_schedule_violates(self):
        # The lockstep round-robin happens to serialize this pattern
        # (the writer always moves first in each rotation); a random
        # schedule where a reader slips between the two record writes
        # closes the cycle.
        outcomes = [
            verdicts(reader_writer(guarded=False), RandomScheduler(seed=seed))
            for seed in range(10)
        ]
        assert not all(outcomes)

    def test_work_stealing_some_schedule_violates(self):
        outcomes = [
            verdicts(work_stealing(), RandomScheduler(seed=seed))
            for seed in range(10)
        ]
        assert not all(outcomes)

    def test_racy_lazy_init_fine_grained(self):
        assert not verdicts(lazy_initialization(guarded=False), FINE)

    def test_racy_map_reduce_some_schedule_violates(self):
        outcomes = [
            verdicts(map_reduce(guarded=False), RandomScheduler(seed=seed))
            for seed in range(10)
        ]
        assert not all(outcomes)


class TestShapes:
    def test_reader_writer_shape(self):
        trace = execute(reader_writer(n_readers=3, rounds=2), FINE)
        info = metainfo(trace)
        assert info.threads == 4
        assert info.transactions == 8  # 2 updates + 3*2 scans

    def test_barrier_uses_one_lock(self):
        trace = execute(barrier_phases(n_threads=3, phases=2), FINE)
        assert metainfo(trace).locks == 1

    def test_pipeline_locks_per_slot(self):
        trace = execute(pipeline_stages(stages=3), FINE)
        assert metainfo(trace).locks == 3

    def test_map_reduce_forks_workers(self):
        trace = execute(map_reduce(n_mappers=3), FINE)
        info = metainfo(trace)
        assert info.threads == 4

    def test_program_names_encode_guardedness(self):
        assert reader_writer(guarded=False).name.endswith("racy")
        assert lazy_initialization(guarded=True).name.endswith("locked")
