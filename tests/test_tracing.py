"""repro.obs.tracing: deterministic span logs.

The tracer is a module-global optional: instrumentation sites call
``tracing.span(...)`` unconditionally and it must be a no-op (and
cheap) when nothing is active. When a :class:`TickClock` drives it,
the span log is a pure function of the event order — two same-seed
netsim scenario runs must produce byte-identical ``trace.jsonl``.
"""

import json
import threading

import pytest

from repro.obs import tracing
from repro.obs.tracing import TickClock, Tracer


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    # Every test starts and ends with the global slot empty.
    tracing.deactivate()
    yield
    tracing.deactivate()


# -- the module-global slot --------------------------------------------------


def test_span_is_a_noop_when_inactive():
    assert tracing.active() is None
    with tracing.span("anything", key="value"):
        pass  # must not raise, must not record


def test_activate_returns_and_installs_a_tracer():
    tracer = tracing.activate()
    assert tracing.active() is tracer
    with tracing.span("work", n=1):
        pass
    assert [s.name for s in tracer.spans()] == ["work"]
    tracing.deactivate()
    assert tracing.active() is None
    with tracing.span("after"):
        pass
    assert len(tracer.spans()) == 1  # nothing recorded post-deactivate


# -- the tracer itself -------------------------------------------------------


def test_tick_clock_spans_are_integer_ordered():
    tracer = Tracer(clock=TickClock())
    with tracer.span("outer", kind="a"):
        with tracer.span("inner"):
            pass
    outer, inner = tracer.spans()[1], tracer.spans()[0]
    # Spans land in completion order; seq restores start order.
    assert (outer.name, inner.name) == ("outer", "inner")
    assert outer.seq < inner.seq
    assert outer.start == 0 and inner.start == 1
    assert inner.end < outer.end
    assert outer.attrs == {"kind": "a"}


def test_to_jsonl_is_sorted_by_seq_with_durations():
    tracer = Tracer(clock=TickClock())
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    lines = [json.loads(line) for line in tracer.to_jsonl().splitlines()]
    assert [row["name"] for row in lines] == ["a", "b"]
    assert [row["seq"] for row in lines] == [0, 1]
    for row in lines:
        assert row["dur"] == row["end"] - row["start"]


def test_span_survives_exceptions():
    tracer = Tracer(clock=TickClock())
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    (span,) = tracer.spans()
    assert span.name == "doomed"
    assert span.end is not None  # closed despite the raise


def test_tracer_limit_drops_overflow():
    tracer = Tracer(clock=TickClock(), limit=2)
    for i in range(5):
        with tracer.span(f"s{i}"):
            pass
    assert len(tracer.spans()) == 2


def test_tracer_is_thread_safe():
    tracer = Tracer(clock=TickClock())

    def worker(tag):
        for i in range(50):
            with tracer.span("t", tag=tag, i=i):
                pass

    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    spans = tracer.spans()
    assert len(spans) == 200
    assert sorted(s.seq for s in spans) == list(range(200))


def test_dump_jsonl_round_trips(tmp_path):
    tracer = Tracer(clock=TickClock())
    with tracer.span("x"):
        pass
    path = tmp_path / "trace.jsonl"
    assert tracer.dump_jsonl(str(path)) == 1
    assert json.loads(path.read_text())["name"] == "x"


# -- determinism under the fault simulator -----------------------------------


def _traced_scenario(seed):
    from repro.faults.netsim import run_cluster_scenario

    tracer = tracing.activate(Tracer(clock=TickClock()))
    try:
        result = run_cluster_scenario("partition-two-way", seed=seed)
    finally:
        tracing.deactivate()
    assert result.ok, result
    return tracer.to_jsonl()


def test_netsim_span_log_is_deterministic_per_seed():
    first = _traced_scenario(11)
    second = _traced_scenario(11)
    assert first == second, "same-seed scenario runs diverged"
    names = {json.loads(line)["name"] for line in first.splitlines()}
    # Every instrumented layer shows up in one chaos drill.
    assert {
        "session.ingest", "shard.dispatch", "shard.checkpoint",
        "cluster.tick", "cluster.migrate",
    } <= names
