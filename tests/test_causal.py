"""Causal atomicity extension tests."""

from hypothesis import given, settings, strategies as st

from repro import begin, check_causal_atomicity, conflict_serializable, end, read, trace_of, write
from repro.sim.random_traces import RandomTraceConfig, random_trace


class TestUnitCases:
    def test_serializable_trace_all_atomic(self, rho1):
        report = check_causal_atomicity(rho1)
        assert report.all_atomic
        assert not report.violating
        assert len(report.causally_atomic) == 3
        assert "all 3 transactions" in str(report)

    def test_rho2_blames_both_transactions(self, rho2):
        report = check_causal_atomicity(rho2)
        assert not report.all_atomic
        assert {t.thread for t in report.violating} == {"t1", "t2"}

    def test_localizes_blame(self, rho4):
        # All three of ρ4's transactions participate in the cycle
        # T1 -> T2 -> T3 -> T1? T2 and T3 mediate; check which are cyclic.
        report = check_causal_atomicity(rho4)
        assert not report.all_atomic
        blamed_threads = {t.thread for t in report.violating}
        assert "t1" in blamed_threads

    def test_innocent_bystander_stays_atomic(self):
        trace = trace_of(
            # The ρ2 cycle between t1 and t2 ...
            begin("t1"),
            begin("t2"),
            write("t1", "x"),
            read("t2", "x"),
            write("t2", "y"),
            read("t1", "y"),
            end("t2"),
            end("t1"),
            # ... and an unrelated, perfectly atomic transaction.
            begin("t3"),
            write("t3", "z"),
            end("t3"),
        )
        report = check_causal_atomicity(trace)
        assert not report.all_atomic
        atomic_threads = {t.thread for t in report.causally_atomic}
        assert "t3" in atomic_threads
        assert {t.thread for t in report.violating} == {"t1", "t2"}


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_all_atomic_iff_serializable(seed):
    trace = random_trace(
        seed, RandomTraceConfig(n_threads=3, n_vars=3, n_locks=1, length=30)
    )
    report = check_causal_atomicity(trace)
    assert report.all_atomic == conflict_serializable(trace)
