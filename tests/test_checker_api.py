"""Facade API tests: check_trace, registry, error handling."""

import pytest

from repro import (
    AtomicityViolationError,
    available_algorithms,
    check_trace,
    make_checker,
)
from repro.core.checker import StreamingChecker


class TestRegistry:
    def test_available_algorithms(self):
        names = available_algorithms()
        assert names == sorted(names)
        assert {
            "aerodrome",
            "aerodrome-basic",
            "velodrome",
            "velodrome-nogc",
            "doublechecker",
        } <= set(names)

    def test_make_checker_returns_fresh_instances(self):
        a = make_checker("aerodrome")
        b = make_checker("aerodrome")
        assert a is not b
        assert isinstance(a, StreamingChecker)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_checker("quantumdrome")
        with pytest.raises(ValueError, match="unknown algorithm"):
            check_trace([], algorithm="quantumdrome")


class TestCheckTrace:
    def test_default_is_optimized_aerodrome(self, rho2):
        result = check_trace(rho2)
        assert result.algorithm == "aerodrome"
        assert not result.serializable

    def test_accepts_iterables(self, rho2):
        result = check_trace(iter(rho2))
        assert not result.serializable

    def test_raise_on_violation(self, rho2):
        with pytest.raises(AtomicityViolationError) as excinfo:
            check_trace(rho2, raise_on_violation=True)
        assert excinfo.value.violation.thread == "t1"

    def test_no_raise_when_serializable(self, rho1):
        result = check_trace(rho1, raise_on_violation=True)
        assert result.serializable


class TestResultObjects:
    def test_result_str(self, rho1, rho2):
        good = check_trace(rho1)
        bad = check_trace(rho2)
        assert "✓" in str(good)
        assert "✗" in str(bad)
        assert "read check" in str(bad.violation)

    def test_events_processed_counts(self, rho1):
        result = check_trace(rho1)
        assert result.events_processed == len(rho1)
