"""Command-line interface tests."""

import pytest

from repro.cli import main


@pytest.fixture
def violating_trace(tmp_path):
    path = tmp_path / "viol.std"
    path.write_text(
        "t1|begin\nt2|begin\nt1|w(x)\nt2|r(x)\nt2|w(y)\nt1|r(y)\nt2|end\nt1|end\n"
    )
    return path


@pytest.fixture
def clean_trace(tmp_path):
    path = tmp_path / "ok.std"
    path.write_text("t1|begin\nt1|w(x)\nt1|end\n")
    return path


class TestCheck:
    def test_serializable_exits_zero(self, clean_trace, capsys):
        assert main(["check", str(clean_trace)]) == 0
        assert "✓" in capsys.readouterr().out

    def test_violation_exits_one(self, violating_trace, capsys):
        assert main(["check", str(violating_trace)]) == 1
        assert "violation" in capsys.readouterr().out

    def test_algorithm_choice(self, violating_trace):
        assert main(["check", str(violating_trace), "--algorithm", "velodrome"]) == 1

    def test_ill_formed_rejected(self, tmp_path, capsys):
        path = tmp_path / "bad.std"
        path.write_text("t1|end\n")
        assert main(["check", str(path)]) == 2
        assert "ill-formed" in capsys.readouterr().err

    def test_binary_garbage_rejected(self, tmp_path, capsys):
        path = tmp_path / "bad.std"
        path.write_bytes(b"garbage\x00\xff\xfe")
        with pytest.raises(SystemExit) as excinfo:
            main(["check", str(path)])
        assert excinfo.value.code == 2
        assert "cannot load" in capsys.readouterr().err

    def test_no_validate_skips_check(self, tmp_path):
        path = tmp_path / "open.std"
        path.write_text("t1|acq(l)\nt2|acq(l)\n")  # double acquire
        assert main(["check", str(path), "--no-validate"]) == 0

    def test_analysis_co_run(self, violating_trace, capsys):
        code = main(
            ["check", str(violating_trace), "--analysis", "aerodrome,races"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "[aerodrome]" in out
        assert "[races]" in out

    def test_explicit_algorithm_joins_analysis_list(
        self, violating_trace, capsys
    ):
        code = main(
            ["check", str(violating_trace),
             "--algorithm", "velodrome", "--analysis", "races"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "[velodrome]" in out
        assert "[races]" in out

    def test_json_report_validates(self, violating_trace, capsys):
        import json

        from repro.api import validate_report

        assert main(["check", str(violating_trace), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        validate_report(document)
        assert document["verdict"] == "fail"


class TestMetainfo:
    def test_prints_counts(self, violating_trace, capsys):
        assert main(["metainfo", str(violating_trace)]) == 0
        out = capsys.readouterr().out
        assert "events=8" in out
        assert "threads=2" in out


class TestGenerate:
    def test_writes_trace(self, tmp_path, capsys):
        out_path = tmp_path / "t.std"
        code = main(
            ["generate", "crypt", "-o", str(out_path), "--scale", "0.05", "--seed", "1"]
        )
        assert code == 0
        assert out_path.exists()
        assert "wrote" in capsys.readouterr().out
        # And the generated file is analyzable.
        assert main(["check", str(out_path)]) == 1  # crypt violates


class TestTables:
    def test_table2_small_scale(self, capsys):
        assert main(["table2", "--scale", "0.02", "--timeout", "30"]) == 0
        out = capsys.readouterr().out
        assert "Program" in out
        assert "batik" in out
        assert "Paper vs. measured" in out


class TestScaling:
    def test_scaling_command(self, capsys):
        code = main(
            ["scaling", "--benchmark", "raytracer", "--sizes", "300,600"]
        )
        assert code == 0
        assert "Scaling" in capsys.readouterr().out


class TestExplain:
    def test_explains_violation(self, violating_trace, capsys):
        assert main(["explain", str(violating_trace)]) == 1
        out = capsys.readouterr().out
        assert "witness cycle" in out
        assert "≤CHB" in out

    def test_nothing_to_explain(self, clean_trace, capsys):
        assert main(["explain", str(clean_trace)]) == 0
        assert "nothing to explain" in capsys.readouterr().out


class TestRaces:
    def test_reports_races(self, violating_trace, capsys):
        assert main(["races", str(violating_trace)]) == 1
        assert "race" in capsys.readouterr().out

    def test_race_free(self, tmp_path, capsys):
        path = tmp_path / "sync.std"
        path.write_text(
            "t1|acq(l)\nt1|w(x)\nt1|rel(l)\nt2|acq(l)\nt2|r(x)\nt2|rel(l)\n"
        )
        assert main(["races", str(path)]) == 0
        assert "no happens-before" in capsys.readouterr().out


class TestCausal:
    def test_blames_cycle_members(self, violating_trace, capsys):
        assert main(["causal", str(violating_trace)]) == 1
        assert "cycles" in capsys.readouterr().out

    def test_all_atomic(self, clean_trace, capsys):
        assert main(["causal", str(clean_trace)]) == 0
        assert "causally atomic" in capsys.readouterr().out


class TestAlgorithms:
    def test_lists_all(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("aerodrome", "velodrome", "doublechecker"):
            assert name in out
