"""repro.obs.experiment: locked artifacts and run diffing.

The determinism contract under test (PR-10 tentpole leg 2 +
satellite 3): two runs of the same experiment config produce
byte-identical ``experiment.json``/``manifest.json``/``trace.jsonl``,
``repro diff`` gates on verdicts/violation indices/config (exit 0/1)
while wall-clock timing only ever shows up as reported deltas, and
legacy flat ``BENCH_*.json`` artifacts from PR 4/5 still load.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.experiment import (
    DiffError,
    canonical_json,
    content_hash,
    diff_runs,
    load_comparable,
    normalize_report,
    run_experiment,
    store_bench_run,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
LEGACY_PR4 = REPO_ROOT / "BENCH_PR4.json"
LEGACY_PR5 = REPO_ROOT / "BENCH_PR5.json"


def _run(tmp_path, name, **kwargs):
    kwargs.setdefault("workload", "avrora")
    kwargs.setdefault("seed", 3)
    kwargs.setdefault("scale", 0.02)
    return run_experiment(out=str(tmp_path / name), **kwargs)


# -- canonical bytes ---------------------------------------------------------


def test_canonical_json_is_key_order_independent():
    a = canonical_json({"b": 1, "a": [1, 2]})
    b = canonical_json({"a": [1, 2], "b": 1})
    assert a == b
    assert a.endswith(b"\n")
    assert content_hash({"b": 1, "a": [1, 2]}) == content_hash(
        {"a": [1, 2], "b": 1}
    )


def test_normalize_report_strips_wall_clock_only():
    report = {
        "timing": {"seconds": 1.5, "events_per_second": 10.0, "events": 7},
        "trace": {"path": "/tmp/x", "events": 7},
        "verdict": "violation",
    }
    normalized = normalize_report(report)
    assert normalized["timing"] == {"events": 7}
    assert normalized["trace"] == {"events": 7}
    assert normalized["verdict"] == "violation"
    # The input is untouched.
    assert report["timing"]["seconds"] == 1.5


# -- same-seed runs are byte-identical (satellite 3, agree half) -------------


def test_same_seed_runs_hash_identical_and_diff_clean(tmp_path, capsys):
    a = _run(tmp_path, "a")
    b = _run(tmp_path, "b")

    for fname in ("experiment.json", "manifest.json", "trace.jsonl"):
        bytes_a = (Path(a["run_dir"]) / fname).read_bytes()
        bytes_b = (Path(b["run_dir"]) / fname).read_bytes()
        assert bytes_a == bytes_b, f"{fname} differs across same-seed runs"

    assert a["manifest"]["config_hash"] == b["manifest"]["config_hash"]
    assert a["manifest"]["report_hash"] == b["manifest"]["report_hash"]
    assert a["manifest"]["trace_hash"] == b["manifest"]["trace_hash"]

    assert main(["diff", a["run_dir"], b["run_dir"]]) == 0
    out = capsys.readouterr().out
    assert "agree" in out


def test_experiment_artifacts_layout(tmp_path):
    result = _run(tmp_path, "runs")
    run_dir = Path(result["run_dir"])
    present = {p.name for p in run_dir.iterdir()}
    assert {
        "experiment.json", "manifest.json", "report.json",
        "report.md", "trace.jsonl",
    } <= present

    experiment = json.loads((run_dir / "experiment.json").read_text())
    assert experiment["schema"] == "repro-experiment/1"
    assert experiment["workload"] == "avrora"
    assert experiment["seed"] == 3
    # Nothing volatile inside the hashed config: no run id, no clock.
    assert "run_id" not in experiment

    manifest = json.loads((run_dir / "manifest.json").read_text())
    assert manifest["schema"] == "repro-manifest/1"
    # config_hash covers the config minus its own embedded copy.
    config = {k: v for k, v in experiment.items() if k != "config_hash"}
    assert experiment["config_hash"] == content_hash(config)
    assert manifest["config_hash"] == experiment["config_hash"]
    assert manifest["spans"] > 0
    for row in manifest["analyses"]:
        assert {"analysis", "verdict", "violations", "violation_indices"} <= (
            set(row)
        )

    # trace.jsonl is valid JSONL with monotonically increasing seq.
    seqs = [
        json.loads(line)["seq"]
        for line in (run_dir / "trace.jsonl").read_text().splitlines()
    ]
    assert seqs == sorted(seqs)
    names = {
        json.loads(line)["name"]
        for line in (run_dir / "trace.jsonl").read_text().splitlines()
    }
    assert "session.ingest" in names
    assert "experiment.ingest" in names


def test_run_id_collision_gets_suffixed(tmp_path):
    a = _run(tmp_path, "runs", run_id="fixed")
    b = _run(tmp_path, "runs", run_id="fixed")
    assert a["run_dir"] != b["run_dir"]
    assert Path(b["run_dir"]).name == "fixed-2"
    # The collision suffix lives outside the hashed artifacts.
    assert a["manifest"]["config_hash"] == b["manifest"]["config_hash"]


# -- seeded divergence reports exact keys (satellite 3, differ half) ---------


def test_seeded_divergence_exits_1_with_exact_keys(tmp_path, capsys):
    a = _run(tmp_path, "a", seed=7)
    b = _run(tmp_path, "b", seed=8)

    assert main(["diff", a["run_dir"], b["run_dir"], "--json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["equal"] is False
    keys = [row["key"] for row in doc["differing"]]
    assert "seed" in keys
    assert "config_hash" in keys
    # Wall-clock never gates: timing shows up as metric deltas only.
    assert not any(k.endswith("timing.seconds") for k in keys)
    assert not any(k.endswith("events_per_second") for k in keys)

    diff = diff_runs(a["run_dir"], b["run_dir"])
    assert doc["differing"] == diff["differing"]


def test_diff_rejects_kind_mismatch(tmp_path):
    experiment = _run(tmp_path, "runs")
    with pytest.raises(DiffError):
        diff_runs(experiment["run_dir"], str(LEGACY_PR5))


def test_diff_on_missing_path_exits_2(tmp_path, capsys):
    assert main(["diff", str(tmp_path / "nope"), str(tmp_path / "nada")]) == 2
    assert "diff failed:" in capsys.readouterr().err


# -- legacy flat bench artifacts (satellite 3, legacy half) ------------------


def test_legacy_bench_artifacts_load():
    for path in (LEGACY_PR4, LEGACY_PR5):
        comparable = load_comparable(str(path))
        assert comparable["kind"] == "bench"
        assert comparable["gate"]
        assert comparable["metrics"]


def test_legacy_bench_self_diff_is_clean(capsys):
    assert main(["diff", str(LEGACY_PR5), str(LEGACY_PR5)]) == 0
    capsys.readouterr()


def test_legacy_bench_cross_schema_diff_reports(capsys):
    # PR4 (repro-bench/2) vs PR5 (repro-bench/3): comparable as benches,
    # different surface -> exit 1 with named keys, not a load error.
    assert main(["diff", str(LEGACY_PR4), str(LEGACY_PR5), "--json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "bench"
    assert doc["differing"]


# -- bench runs through the run-dir layout (satellite 6) ---------------------


def test_store_bench_run_round_trips(tmp_path, capsys):
    report = json.loads(LEGACY_PR5.read_text())
    stored = store_bench_run(report, str(tmp_path / "runs"))
    run_dir = Path(stored["run_dir"])
    assert (run_dir / "experiment.json").exists()
    assert (run_dir / "manifest.json").exists()
    assert not (run_dir / "trace.jsonl").exists()

    experiment = json.loads((run_dir / "experiment.json").read_text())
    assert experiment["kind"] == "bench"
    assert experiment["bench_schema"] == report["schema"]

    # A stored bench dir diffs clean against the flat file it came from.
    assert main(["diff", str(run_dir), str(LEGACY_PR5)]) == 0
    capsys.readouterr()


# -- the experiment CLI ------------------------------------------------------


def test_experiment_run_show_list_cli(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(
        [
            "experiment", "run", "--workload", "avrora", "--seed", "3",
            "--scale", "0.02",
        ]
    ) == 0
    out = capsys.readouterr().out
    run_id = next(
        line.split()[1] for line in out.splitlines() if line.startswith("run ")
    )

    assert main(["experiment", "show", run_id]) == 0
    shown = capsys.readouterr().out
    assert "avrora" in shown

    assert main(["experiment", "show", run_id, "--spans"]) == 0
    spans = capsys.readouterr().out
    assert "session.ingest" in spans

    assert main(["experiment", "list"]) == 0
    listing = capsys.readouterr().out
    assert run_id in listing


def test_experiment_run_unknown_workload_exits_2(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["experiment", "run", "--workload", "no-such"]) == 2
    assert "experiment failed:" in capsys.readouterr().err
