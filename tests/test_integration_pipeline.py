"""End-to-end pipeline integration: the full debugging workflow a user
would run, chained feature to feature.

generate → profile → check → minimize → explain → render → DOT →
serialize-the-fix, plus the spec-inference and checkpoint paths. Each
step consumes the previous step's artifact, so this suite catches
interface drift between modules that unit tests miss.
"""

import pytest

from repro import (
    check_trace,
    conflict_serializable,
    event_graph_dot,
    infer_spec,
    is_serial,
    is_well_formed,
    make_checker,
    profile_trace,
    render_columns,
    restore,
    serial_witness,
    snapshot,
    transaction_graph_dot,
    verify_equivalence,
)
from repro.analysis.explain import explain
from repro.analysis.minimize import is_one_minimal, minimize_violation
from repro.sim.workloads.benchmarks import CASES_BY_NAME
from repro.trace.filters import apply_spec
from repro.trace.parser import parse_trace
from repro.trace.writer import dump_trace


@pytest.fixture(scope="module")
def violating_benchmark():
    trace = CASES_BY_NAME["hedc"].generate(seed=7, scale=0.5)
    assert not conflict_serializable(trace)
    return trace


def test_debugging_pipeline(violating_benchmark):
    trace = violating_benchmark

    # 1. Profile says the workload has cross-thread conflicts.
    profile = profile_trace(trace)
    assert profile.cross_thread_conflicts > 0

    # 2. The checker finds the violation.
    result = check_trace(trace)
    assert not result.serializable

    # 3. Minimize to the core...
    core = minimize_violation(trace)
    assert is_well_formed(core)
    assert is_one_minimal(core)
    assert len(core) < len(trace)

    # 4. ...explain the core's witness cycle...
    explanation = explain(core)
    assert explanation is not None
    assert len(explanation.cycle) >= 2
    rendered = explanation.render()
    assert "witness cycle" in rendered

    # 5. ...and draw it, in both terminal and Graphviz form.
    columns = render_columns(core, violation=check_trace(core).violation)
    assert "← violation" in columns
    dot = transaction_graph_dot(core)
    assert "crimson" in dot
    assert event_graph_dot(core).startswith("digraph")


def test_round_trip_through_text_preserves_everything(violating_benchmark):
    text = dump_trace(violating_benchmark)
    reloaded = parse_trace(text)
    assert list(reloaded) == list(violating_benchmark)
    assert (
        check_trace(reloaded).serializable
        == check_trace(violating_benchmark).serializable
    )


def test_serial_witness_of_the_fixed_trace(violating_benchmark):
    # Emulate "fixing" the spec by dropping every atomic block (the
    # benchmark's markers are unlabeled, which strip_markers keeps by
    # design, so filter them directly).
    from repro import Event, Trace

    fixed = Trace(name="fixed")
    for event in violating_benchmark:
        if not event.is_marker:
            fixed.append(Event(event.thread, event.op, event.target))
    assert check_trace(fixed).serializable  # unary-only is trivially fine
    witness = serial_witness(fixed)
    assert witness is not None
    assert is_serial(witness)
    assert verify_equivalence(fixed, witness)


def test_monitoring_pipeline_with_checkpoint(violating_benchmark):
    checker = make_checker("aerodrome")
    events = list(violating_benchmark)
    midpoint = len(events) // 4
    for event in events[:midpoint]:
        assert checker.process(event) is None or True
        if checker.violation is not None:
            break
    resumed = restore(snapshot(checker))
    for event in events[checker.events_processed:]:
        if resumed.process(event) is not None:
            break
    expected = check_trace(violating_benchmark)
    assert resumed.violation is not None
    assert resumed.violation.event_idx == expected.violation.event_idx


def test_inference_pipeline_on_labeled_workload():
    from repro.sim.runtime import execute
    from repro.sim.scheduler import PCTScheduler
    from repro.sim.workloads.patterns import map_reduce

    program = map_reduce(n_mappers=3, guarded=False)
    k = program.total_statements()
    trace = None
    for seed in range(40):
        candidate = execute(program, PCTScheduler(seed=seed, depth=3, max_steps=k))
        if not check_trace(candidate).serializable:
            trace = candidate
            break
    assert trace is not None, "PCT should expose the racy fold"
    inferred = infer_spec(trace)
    assert "fold" in inferred.refuted_methods
    fixed = apply_spec(trace, inferred.spec)
    assert check_trace(fixed).serializable
