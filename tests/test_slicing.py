"""Trace slicing tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import check_trace, validate
from repro.sim.random_traces import RandomTraceConfig, random_trace
from repro.trace.slicing import project_threads, project_variables, window


class TestProjectThreads:
    def test_keeps_only_selected(self, rho4):
        sliced = project_threads(rho4, ["t1", "t2"])
        assert sliced.threads() <= {"t1", "t2"}
        assert len(sliced) == 8

    def test_projection_remains_well_formed(self, rho4):
        validate(project_threads(rho4, ["t1"]), allow_open_transactions=False)

    def test_violation_confirmed_on_slice(self, rho2):
        # Both cycle threads retained: the violation survives.
        sliced = project_threads(rho2, ["t1", "t2"])
        assert not check_trace(sliced).serializable

    def test_dropping_a_cycle_thread_loses_the_violation(self, rho2):
        sliced = project_threads(rho2, ["t1"])
        assert check_trace(sliced).serializable

    def test_drop_dangling_fork(self):
        from repro import fork, read, trace_of

        trace = trace_of(fork("t1", "t2"), read("t1", "x"), read("t2", "y"))
        keep = project_threads(trace, ["t1"])
        assert len(keep) == 2
        dropped = project_threads(trace, ["t1"], drop_dangling=True)
        assert len(dropped) == 1


class TestProjectVariables:
    def test_keeps_sync_events(self, rho4):
        sliced = project_variables(rho4, ["z"])
        ops = [str(e) for e in sliced if e.is_memory_access]
        assert ops == ["t3|w(z)", "t1|r(z)"]
        # begins/ends survive
        assert sum(1 for e in sliced if e.is_marker) == 6

    def test_cycle_variables_suffice(self, rho2):
        sliced = project_variables(rho2, ["x", "y"])
        assert not check_trace(sliced).serializable


class TestWindow:
    def test_window_repairs_open_transactions(self, rho4):
        # Cut the middle: t1's transaction is open at both boundaries.
        sliced = window(rho4, 2, 10)
        validate(sliced, allow_open_transactions=False, allow_held_locks=False)

    def test_window_bounds_checked(self, rho1):
        with pytest.raises(ValueError, match="bad window"):
            window(rho1, 5, 2)
        with pytest.raises(ValueError, match="bad window"):
            window(rho1, 0, 99)

    def test_full_window_is_identityish(self, rho2):
        sliced = window(rho2, 0, len(rho2))
        assert not check_trace(sliced).serializable

    def test_window_around_violation_confirms_it(self, rho4):
        # The ρ4 cycle completes at e11 (index 10); a window over the
        # whole body keeps it.
        sliced = window(rho4, 0, 11)
        assert not check_trace(sliced).serializable

    def test_window_repairs_held_locks(self):
        from repro import acquire, read, release, trace_of

        trace = trace_of(
            acquire("t1", "l"),
            read("t1", "x"),
            read("t1", "y"),
            release("t1", "l"),
        )
        sliced = window(trace, 1, 3)
        validate(sliced, allow_held_locks=False)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=10**9),
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=0, max_value=40),
)
def test_windows_always_well_formed(seed, a, b):
    trace = random_trace(seed, RandomTraceConfig(length=36, p_lock=0.3))
    start, stop = sorted((min(a, len(trace)), min(b, len(trace))))
    sliced = window(trace, start, stop)
    validate(sliced, allow_open_transactions=False, allow_held_locks=False)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_thread_projections_always_well_formed(seed):
    trace = random_trace(seed, RandomTraceConfig(n_threads=4, length=40))
    sliced = project_threads(trace, ["t0", "t2"])
    validate(sliced, allow_open_transactions=False, allow_held_locks=False)
