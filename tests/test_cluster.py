"""The cluster layer: ring, membership, handoff, migration, failover.

The load-bearing test is the **cluster agreement property**: a trace
streamed through a ring of serve nodes — across joins, live session
migrations, and a node hard-killed mid-stream — yields a report whose
analyses and verdict are identical to the offline ``Session.run()``.
That is the multi-node extension of the restart-equivalence property
in ``tests/test_service.py``: node loss is just a restart whose spool
lives on the replica successor.
"""

import json
import random
import time

import pytest

from repro.api import Session
from repro.cluster import (
    DEFAULT_VNODES,
    ClusterClient,
    ClusterError,
    HashRing,
    Membership,
    MembershipError,
    NodeInfo,
    RingError,
    parse_address,
    parse_membership,
)
from repro.service import ServiceServer, SessionRedirect
from repro.service.client import submit_trace as node_submit
from repro.service.protocol import (
    PayloadError,
    decode_handoff,
    encode_handoff,
)
from repro.sim import trace_zoo

ANALYSES = ["aerodrome", "races", "lockset"]

#: Zoo specimens the live-cluster drills stream (small but diverse:
#: both paper counterexamples, a lock cycle, a three-party cycle).
DRILL_SPECIMENS = [
    "paper-rho1",
    "paper-rho2",
    "lock-cycle",
    "three-party-cycle",
]


def offline_doc(trace, analyses=ANALYSES, name=None):
    return Session(trace, analyses, name=name or trace.name).run().to_json()


def wait_until(predicate, timeout=15.0, interval=0.05, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {what}")


# -- HashRing ---------------------------------------------------------------


class TestHashRing:
    def test_owner_is_deterministic_across_instances(self):
        a = HashRing(["n1", "n2", "n3"])
        b = HashRing(["n3", "n1", "n2"])  # order-insensitive
        for i in range(200):
            key = f"session-{i}"
            assert a.owner(key) == b.owner(key)

    def test_spread_is_roughly_fair(self):
        ring = HashRing(["a", "b", "c"])
        counts = ring.spread(f"key-{i}" for i in range(3000))
        assert sum(counts.values()) == 3000
        # vnodes smooth the arcs: nobody starves, nobody hogs.
        for node, owned in counts.items():
            assert owned > 300, (node, counts)
            assert owned < 2000, (node, counts)

    def test_preference_lists_distinct_nodes_owner_first(self):
        ring = HashRing(["a", "b", "c"])
        for i in range(100):
            key = f"k{i}"
            pref = ring.preference(key, n=3)
            assert pref[0] == ring.owner(key)
            assert len(pref) == len(set(pref)) == 3
            assert ring.successor(key) == pref[1]

    def test_single_node_ring_owns_everything(self):
        ring = HashRing(["only"])
        assert ring.owner("whatever") == "only"
        # Nowhere else to replicate: the successor is the owner.
        assert ring.successor("whatever") == "only"

    def test_removal_only_moves_the_lost_arcs(self):
        """The consistency property: dropping one node reassigns only
        the keys it owned — survivors keep every key they had."""
        before = HashRing(["a", "b", "c"])
        after = HashRing(["a", "b"])
        moved = 0
        for i in range(1000):
            key = f"key-{i}"
            old = before.owner(key)
            if old == "c":
                moved += 1
                assert after.owner(key) in ("a", "b")
            else:
                assert after.owner(key) == old
        assert moved > 0  # c owned something

    def test_empty_ring_and_bad_args_rejected(self):
        with pytest.raises(RingError):
            HashRing([])
        with pytest.raises(RingError):
            HashRing(["a"], vnodes=0)
        with pytest.raises(RingError):
            HashRing(["a"]).preference("k", n=0)

    def test_len_and_contains(self):
        ring = HashRing(["a", "b", "a"])  # duplicates collapse
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring


# -- Membership -------------------------------------------------------------


def _node(node_id, port=9000, status="alive"):
    return NodeInfo(node_id=node_id, host="127.0.0.1", port=port,
                    status=status)


class TestMembership:
    def test_mutations_bump_the_epoch(self):
        m = Membership()
        assert m.add(_node("a"))
        assert m.epoch == 1
        assert m.add(_node("b"))
        assert m.epoch == 2
        assert not m.add(_node("b"))  # idempotent re-add: no bump
        assert m.epoch == 2
        assert m.mark_dead("b")
        assert m.epoch == 3
        assert not m.mark_dead("b")  # death is absorbing
        assert not m.mark_dead("ghost")
        assert m.alive_ids() == ["a"]

    def test_merge_higher_epoch_replaces_wholesale(self):
        mine = Membership()
        mine.add(_node("a"))
        theirs = Membership()
        theirs.add(_node("a"))
        theirs.add(_node("b"))
        theirs.mark_dead("a")  # epoch 3 > 1
        assert mine.merge(theirs.to_json())
        assert mine.epoch == 3
        assert mine.alive_ids() == ["b"]

    def test_merge_equal_epoch_unions_and_dead_absorbs(self):
        mine = Membership(epoch=5)
        mine.nodes = {"a": _node("a"), "b": _node("b")}
        doc = {
            "epoch": 5,
            "nodes": [
                _node("b", status="dead").to_json(),
                _node("c").to_json(),
            ],
        }
        assert mine.merge(doc)
        assert mine.epoch == 5
        assert mine.alive_ids() == ["a", "c"]
        assert mine.get("b").status == "dead"

    def test_merge_lower_epoch_ignored(self):
        mine = Membership()
        mine.add(_node("a"))
        mine.add(_node("b"))  # epoch 2
        stale = {"epoch": 1, "nodes": [_node("a", status="dead").to_json()]}
        assert not mine.merge(stale)
        assert mine.get("a").alive

    def test_self_resurrection_outbids_the_death_notice(self):
        """A node that finds itself marked dead re-asserts with a
        bumped epoch — the revival wins the next gossip round."""
        me = Membership()
        me.add(_node("a"))
        verdict = Membership()
        verdict.add(_node("a"))
        verdict.add(_node("b"))
        verdict.mark_dead("a")  # epoch 3
        me.merge(verdict.to_json())
        assert not me.get("a").alive
        me.add(_node("a"))  # re-assert: epoch 4
        assert me.epoch == 4
        assert me.get("a").alive
        # ...and now *our* document dominates theirs.
        assert not verdict.merge(me.to_json()) or verdict.get("a").alive
        verdict.merge(me.to_json())
        assert verdict.get("a").alive

    @pytest.mark.parametrize("doc", [
        "nope",
        {"epoch": -1, "nodes": []},
        {"epoch": "x", "nodes": []},
        {"epoch": 1, "nodes": "x"},
        {"epoch": 1, "nodes": [{"node": "a"}]},
        {"epoch": 1, "nodes": [{"node": "a", "host": "h", "port": "80"}]},
        {"epoch": 1, "nodes": [
            {"node": "a", "host": "h", "port": 80, "status": "zombie"}
        ]},
    ])
    def test_malformed_documents_rejected(self, doc):
        with pytest.raises(MembershipError):
            parse_membership(doc)

    def test_document_round_trip(self):
        m = Membership()
        m.add(_node("a", port=9001))
        m.add(_node("b", port=9002))
        m.mark_dead("b")
        epoch, nodes = parse_membership(
            json.loads(json.dumps(m.to_json()))
        )
        assert epoch == 3
        assert nodes["a"].address == "127.0.0.1:9001"
        assert not nodes["b"].alive

    def test_parse_address(self):
        assert parse_address("10.0.0.1:8765") == ("10.0.0.1", 8765)
        with pytest.raises(ValueError):
            parse_address("no-port")


# -- HANDOFF codec ----------------------------------------------------------


class TestHandoffCodec:
    def test_round_trip(self):
        meta = {"session": "s1", "name": "t", "analyses": ANALYSES,
                "position": 42, "live": True}
        blob = bytes(range(256)) * 17
        out_meta, out_blob = decode_handoff(encode_handoff(meta, blob))
        assert out_meta == meta
        assert out_blob == blob

    def test_empty_blob_round_trips(self):
        meta, blob = decode_handoff(encode_handoff({"session": "x"}, b""))
        assert meta == {"session": "x"} and blob == b""

    def test_corruption_detected(self):
        payload = bytearray(encode_handoff({"session": "s"}, b"A" * 100))
        payload[-1] ^= 0xFF  # flip a blob byte: CRC must catch it
        with pytest.raises(PayloadError):
            decode_handoff(bytes(payload))

    @pytest.mark.parametrize("cut", [0, 2, 5, 20])
    def test_truncation_detected(self, cut):
        payload = encode_handoff({"session": "s"}, b"B" * 64)
        with pytest.raises(PayloadError):
            decode_handoff(payload[:cut])

    def test_bad_header_json_rejected(self):
        import struct
        junk = b"not json"
        payload = struct.pack("<I", len(junk)) + junk
        with pytest.raises(PayloadError):
            decode_handoff(payload)


# -- live clusters ----------------------------------------------------------


def start_cluster(base, backend, node_ids=("a", "b", "c"), shards=2):
    """Spin up a ring: the first node stands alone, the rest join it.
    Fast gossip so the drills converge in test time; suspicion stays at
    20 gossip ticks so a starved scheduler (full-suite runs share one
    CPU) cannot falsely declare a live peer dead."""
    nodes = []
    try:
        for node_id in node_ids:
            kwargs = dict(
                shards=shards,
                backend=backend,
                spool=base / node_id,
                node_id=node_id,
                gossip_interval=0.1,
                suspect_after=2.0,
            )
            if nodes:
                kwargs["join"] = [nodes[0].address]
            else:
                kwargs["cluster"] = True
            nodes.append(ServiceServer(**kwargs).start())
        wait_for_members(nodes, len(node_ids))
    except Exception:
        for node in nodes:
            node.stop()
        raise
    return nodes


def wait_for_members(nodes, count):
    def converged():
        for node in nodes:
            stats = node.cluster.stats()
            alive = 1 + sum(
                1 for p in stats["peers"] if p["status"] == "alive"
            )
            if alive != count:
                return False
        return True

    wait_until(converged, what=f"all nodes seeing {count} members")


def hard_kill(node):
    """``kill -9`` in process form: stop gossip, drop the listener,
    and tear down the router *without* checkpointing — live state and
    the node's own spool die with it. Survivors must recover from the
    replicas shipped to the ring successors."""
    node.cluster.stop()
    node._impl.shutdown()
    if node._thread is not None:
        node._thread.join(timeout=5.0)
        node._thread = None
    node._impl.server_close()
    node.router.shutdown()


def stream_halfway(client, specs, prefix):
    """Open one session per specimen and stream the first half with a
    checkpoint, leaving it open. Returns {session_id: spec}."""
    sessions = {}
    for spec in specs:
        events = list(spec.trace())
        sid = f"{prefix}-{spec.name}"
        part = client.submit_trace(
            events,
            ANALYSES,
            name=spec.name,
            batch=3,
            session_id=sid,
            stop_after=max(1, len(events) // 2),
            checkpoint=True,
        )
        assert part["open"], sid
        sessions[sid] = spec
    return sessions


def replicas_held(client):
    return sum(
        s["cluster"]["replicas_held"] for s in client.stats().values()
    )


@pytest.fixture(scope="module", params=["thread", "async"])
def ring3(request, tmp_path_factory):
    """One three-node cluster per wire backend, shared by the
    non-destructive tests below."""
    base = tmp_path_factory.mktemp(f"ring3-{request.param}")
    nodes = start_cluster(base, request.param)
    yield nodes
    for node in nodes:
        node.stop()


def test_cluster_stats_block_shape(ring3):
    """Satellite: ``service-stats`` grows a ``cluster`` block — pin
    its JSON shape (it is the operator's failover dashboard)."""
    client = ClusterClient([n.address for n in ring3], jitter_seed=0)
    client.refresh()
    assert sorted(client.members) == ["a", "b", "c"]
    stats = {}

    def settled():
        stats.clear()
        stats.update(client.stats())
        return sorted(stats) == ["a", "b", "c"] and all(
            len(doc["cluster"]["peers"]) == 2
            and all(
                p["status"] == "alive" for p in doc["cluster"]["peers"]
            )
            for doc in stats.values()
        )

    wait_until(settled, what="every node reporting two live peers")
    for node_id, doc in stats.items():
        json.dumps(doc)  # the whole document is JSON-serializable
        block = doc["cluster"]
        assert block["node"] == node_id
        assert isinstance(block["epoch"], int) and block["epoch"] >= 3
        assert sorted(block["ring"]["nodes"]) == ["a", "b", "c"]
        assert block["ring"]["vnodes"] == DEFAULT_VNODES
        assert len(block["peers"]) == 2
        for peer in block["peers"]:
            assert peer["status"] == "alive"
            assert ":" in peer["address"]
            assert isinstance(peer["silent_seconds"], float)
        for counter in (
            "sessions_owned",
            "replicas_held",
            "migrations_total",
            "handoffs_in",
            "handoffs_out",
            "handoff_bytes",
            "redirects",
            "gossip_ticks",
        ):
            assert isinstance(block[counter], int), counter
        assert block["gossip_ticks"] > 0


def test_zoo_agreement_over_cluster(ring3):
    """The agreement property, ring edition: every drill specimen,
    routed by session id to its owning node, matches offline."""
    client = ClusterClient([n.address for n in ring3], jitter_seed=1)
    owners = set()
    for i, name in enumerate(DRILL_SPECIMENS):
        spec = trace_zoo.get(name)
        base = offline_doc(spec.trace(), name=spec.name)
        sid = f"agree-{name}"
        doc = client.submit_trace(
            list(spec.trace()),
            ANALYSES,
            name=spec.name,
            batch=random.Random(i).randint(1, 5),
            encoding="delta" if i % 2 else "text",
            session_id=sid,
        )
        assert doc["analyses"] == base["analyses"], name
        assert doc["verdict"] == base["verdict"], name
        owners.add(client.ring.owner(sid))
    assert len(owners) > 1  # the drill actually exercised routing


def test_wrong_node_redirects(ring3):
    """A pinned HELLO at a non-owner comes back as REDIRECT carrying
    the owner's address — the raw client surfaces it, the cluster
    client follows it."""
    client = ClusterClient([n.address for n in ring3], jitter_seed=2)
    client.refresh()
    sid = "redirect-probe"
    owner_id = client.ring.owner(sid)
    wrong = next(n for n in ring3 if n.cluster.node_id != owner_id)
    spec = trace_zoo.get("paper-rho1")
    with pytest.raises(SessionRedirect) as excinfo:
        node_submit(
            wrong.host, wrong.port, list(spec.trace()), ANALYSES,
            session_id=sid, attempts=1,
        )
    redirect = excinfo.value
    assert redirect.node == owner_id
    assert (redirect.host, redirect.port) == client.owner_of(sid)
    # The ring-aware client heals the same seam transparently.
    base = offline_doc(spec.trace(), name=spec.name)
    doc = client.submit_trace(
        list(spec.trace()), ANALYSES, name=spec.name, session_id=sid,
    )
    assert doc["analyses"] == base["analyses"]


def test_unpinned_hello_gets_a_session_the_node_owns(ring3):
    """A HELLO without a session id must not mint an id the node would
    immediately redirect: the server draws ids until it owns one."""
    from repro.service import ServiceClient

    client = ClusterClient([n.address for n in ring3], jitter_seed=3)
    client.refresh()
    for node in ring3:
        with ServiceClient(node.host, node.port) as raw:
            handle = raw.open_session(["aerodrome"])
            assert client.ring.owner(handle.session_id) == \
                node.cluster.node_id
            handle.result()


def test_join_migrates_open_sessions(tmp_path):
    """Rebalancing: sessions opened on a cluster of one migrate live —
    checkpoint shipped, session resumable at the new owner — when a
    second node joins and takes over their arcs."""
    first = ServiceServer(
        shards=2, backend="thread", spool=tmp_path / "a",
        cluster=True, node_id="a",
        gossip_interval=0.1, suspect_after=2.0,
    ).start()
    second = None
    try:
        client = ClusterClient([first.address], jitter_seed=4)
        specs = [trace_zoo.get(n) for n in DRILL_SPECIMENS]
        # Pick ids that *will* change owner once "b" joins.
        two = HashRing(["a", "b"])
        sids, baselines = {}, {}
        for spec in specs:
            n = 0
            while True:
                sid = f"join-{spec.name}-{n}"
                if two.owner(sid) == "b":
                    break
                n += 1
            events = list(spec.trace())
            part = client.submit_trace(
                events, ANALYSES, name=spec.name, batch=3,
                session_id=sid,
                stop_after=max(1, len(events) // 2), checkpoint=True,
            )
            assert part["open"]
            sids[sid] = spec
            baselines[sid] = offline_doc(spec.trace(), name=spec.name)

        second = ServiceServer(
            shards=2, backend="thread", spool=tmp_path / "b",
            node_id="b", join=[first.address],
            gossip_interval=0.1, suspect_after=2.0,
        ).start()
        wait_for_members([first, second], 2)
        wait_until(
            lambda: second.cluster.stats()["sessions_owned"] >= len(sids),
            what="sessions migrating to the joiner",
        )
        assert first.cluster.stats()["migrations_total"] >= len(sids)

        client = ClusterClient(
            [first.address, second.address], jitter_seed=5
        )
        for sid, spec in sids.items():
            doc = client.submit_trace(
                list(spec.trace()), ANALYSES, name=spec.name, batch=4,
                session_id=sid, resume=True, deadline=30.0,
            )
            assert doc["analyses"] == baselines[sid]["analyses"], sid
            assert doc["verdict"] == baselines[sid]["verdict"], sid
            assert doc["service"]["resumed"], sid
    finally:
        if second is not None:
            second.stop()
        first.stop()


@pytest.mark.parametrize("backend", ["thread", "async"])
def test_failover_kill_drill(tmp_path, backend):
    """The tentpole drill: three nodes, four sessions streamed halfway,
    one owner hard-killed mid-stream. The ring must heal (epoch bump,
    dead peer), the survivors adopt the victim's replicas, and every
    resumed report must equal the offline run."""
    nodes = start_cluster(tmp_path, backend)
    try:
        client = ClusterClient([n.address for n in nodes], jitter_seed=6)
        specs = [trace_zoo.get(n) for n in DRILL_SPECIMENS]
        sessions = stream_halfway(client, specs, prefix=f"drill-{backend}")
        baselines = {
            sid: offline_doc(spec.trace(), name=spec.name)
            for sid, spec in sessions.items()
        }
        # Every open session's checkpoint must reach its successor
        # before the kill — that replica IS the failover story.
        wait_until(
            lambda: replicas_held(client) >= len(sessions),
            what="replicas covering every open session",
        )

        client.refresh()
        victim_id = client.ring.owner(next(iter(sessions)))
        victim = next(
            n for n in nodes if n.cluster.node_id == victim_id
        )
        survivors = [n for n in nodes if n is not victim]
        hard_kill(victim)

        def declared_dead():
            for node in survivors:
                peers = {
                    p["node"]: p["status"]
                    for p in node.cluster.stats()["peers"]
                }
                if peers.get(victim_id) != "dead":
                    return False
            return True

        wait_until(declared_dead, what="survivors declaring the victim dead")

        healed = ClusterClient(
            [n.address for n in survivors], jitter_seed=7
        )
        assert healed.refresh() > 3  # the death bumped the epoch
        assert victim_id not in healed.ring.nodes
        for sid, spec in sessions.items():
            doc = healed.submit_trace(
                list(spec.trace()), ANALYSES, name=spec.name, batch=3,
                session_id=sid, resume=True, deadline=60.0,
            )
            assert doc["analyses"] == baselines[sid]["analyses"], sid
            assert doc["verdict"] == baselines[sid]["verdict"], sid
        # At least one resumed session was owned by the victim.
        assert any(
            client.ring.owner(sid) == victim_id for sid in sessions
        )
    finally:
        for node in nodes:
            try:
                node.stop()
            except Exception:
                pass


def test_closed_sessions_do_not_resurrect(tmp_path):
    """A session closed normally must not come back from a replica
    when its old owner dies: the CLOSE notice drops the copy."""
    nodes = start_cluster(tmp_path, "thread", node_ids=("a", "b"))
    try:
        client = ClusterClient([n.address for n in nodes], jitter_seed=8)
        spec = trace_zoo.get("paper-rho1")
        events = list(spec.trace())
        sid = "closer-probe"
        # Stream halfway (forces a replica), then finish and close.
        client.submit_trace(
            events, ANALYSES, name=spec.name, session_id=sid,
            stop_after=max(1, len(events) // 2), checkpoint=True,
        )
        wait_until(
            lambda: replicas_held(client) >= 1,
            what="the replica landing",
        )
        client.submit_trace(
            events, ANALYSES, name=spec.name, session_id=sid,
            resume=True,
        )
        wait_until(
            lambda: replicas_held(client) == 0,
            what="the closed session's replica being dropped",
        )
        open_ids = {
            s["session"]
            for node in nodes
            for s in node.router.list_sessions()
        }
        assert sid not in open_ids
    finally:
        for node in nodes:
            node.stop()
