"""View serializability tests.

Includes the classic blind-write separation (view- but not
conflict-serializable) and the containment property
"conflict serializable ⇒ view serializable" on random traces.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import Trace, begin, conflict_serializable, end, read, write
from repro.analysis.view_serializability import (
    INITIAL,
    MAX_TRANSACTIONS,
    TooManyTransactions,
    serializing_order,
    view_profile,
    view_serializable,
)
from repro.sim.random_traces import RandomTraceConfig, random_trace
from repro.trace.transactions import extract_transactions


def blind_write_trace() -> Trace:
    """The textbook separation: r1(x) w2(x) w1(x) w3(x).

    View equivalent to the serial order T1 T2 T3 (the read still sees
    the initial value; T3's blind write is final either way), but the
    conflict graph has the cycle T1 ⇄ T2.
    """
    return Trace(
        [
            begin("t1"),
            read("t1", "x"),
            begin("t2"),
            write("t2", "x"),
            end("t2"),
            write("t1", "x"),
            end("t1"),
            begin("t3"),
            write("t3", "x"),
            end("t3"),
        ]
    )


# -- profiles ----------------------------------------------------------------


def test_profile_reads_from_initial():
    trace = Trace([read("t1", "x")])
    profile = view_profile(trace)
    assert profile.reads_from == ((0, INITIAL),)
    assert profile.final_writes == ()


def test_profile_reads_from_latest_write():
    trace = Trace(
        [write("t1", "x"), write("t2", "x"), read("t1", "x")]
    )
    profile = view_profile(trace)
    assert profile.reads_from == ((2, 1),)
    assert profile.final_writes == (("x", 1),)


# -- verdicts ----------------------------------------------------------------


def test_serial_trace_is_view_serializable(rho1):
    assert view_serializable(rho1)


def test_conflict_violation_that_is_also_view_violation(rho2):
    assert not view_serializable(rho2)


def test_rho3_not_view_serializable(rho3):
    # Both orders change what the reads observe.
    assert not view_serializable(rho3)


def test_blind_write_separation():
    trace = blind_write_trace()
    assert not conflict_serializable(trace)
    assert view_serializable(trace)
    order = serializing_order(trace)
    txns = extract_transactions(trace)
    threads = [txns.transactions[tid].thread for tid in order]
    assert threads == ["t1", "t2", "t3"]


def test_serializing_order_respects_program_order():
    # Two transactions of the same thread must stay in trace order even
    # if swapping them would also be view equivalent.
    trace = Trace(
        [
            begin("t1"),
            write("t1", "x"),
            end("t1"),
            begin("t1"),
            write("t1", "x"),
            end("t1"),
        ]
    )
    assert serializing_order(trace) == [0, 1]


def test_too_many_transactions_raises():
    events = []
    for i in range(MAX_TRANSACTIONS + 1):
        events.extend([begin("t1"), write("t1", "x"), end("t1")])
    with pytest.raises(TooManyTransactions):
        view_serializable(Trace(events))


def test_unary_transactions_participate():
    # Events outside blocks are unary transactions; they count toward
    # the serial order and the profile.
    trace = Trace([write("t1", "x"), read("t2", "x")])
    assert view_serializable(trace)
    assert serializing_order(trace) == [0, 1]


# -- containment property -----------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_conflict_serializable_implies_view_serializable(seed):
    cfg = RandomTraceConfig(
        n_threads=2, n_vars=2, n_locks=0, length=12, p_begin=0.3, p_end=0.3
    )
    trace = random_trace(seed, cfg)
    txns = extract_transactions(trace)
    assume(len(txns.transactions) <= 7)
    if conflict_serializable(trace):
        assert view_serializable(trace)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_view_violation_implies_conflict_violation(seed):
    # Contrapositive of the same containment, exercised independently.
    cfg = RandomTraceConfig(
        n_threads=3, n_vars=2, n_locks=0, length=10, p_begin=0.35, p_end=0.3
    )
    trace = random_trace(seed, cfg)
    txns = extract_transactions(trace)
    assume(len(txns.transactions) <= 6)
    if not view_serializable(trace):
        assert not conflict_serializable(trace)
