"""FastTrack race detector tests, cross-checked against a brute-force
happens-before oracle."""

from hypothesis import given, settings, strategies as st

from repro import Trace, acquire, begin, end, fork, join, read, release, trace_of, write
from repro.analysis.races import Epoch, FastTrackDetector, find_races
from repro.core.vector_clock import VectorClock
from repro.sim.random_traces import RandomTraceConfig, random_trace


def brute_force_races(trace: Trace):
    """All (variable, second-access index) pairs unordered by HB.

    HB = program order + rel→acq + fork/join edges (no variable edges).
    """
    n = len(trace)
    events = trace.events

    def hb_edge(a, b) -> bool:
        if a.thread == b.thread:
            return True
        if a.is_release and b.is_acquire and a.target == b.target:
            return True
        if a.is_fork and a.target == b.thread:
            return True
        if b.is_join and b.target == a.thread:
            return True
        return False

    reach = [[False] * n for _ in range(n)]
    for i in range(n):
        reach[i][i] = True
        for j in range(i + 1, n):
            if hb_edge(events[i], events[j]):
                reach[i][j] = True
    for k in range(n):
        for i in range(k):
            if reach[i][k]:
                row_i, row_k = reach[i], reach[k]
                for j in range(k + 1, n):
                    if row_k[j]:
                        row_i[j] = True

    racy = set()
    for j in range(n):
        b = events[j]
        if not b.is_memory_access:
            continue
        for i in range(j):
            a = events[i]
            if (
                a.is_memory_access
                and a.target == b.target
                and (a.is_write or b.is_write)
                and a.thread != b.thread
                and not reach[i][j]
            ):
                racy.add((b.target, j))
    return racy


class TestEpoch:
    def test_leq(self):
        assert Epoch(2, 0).leq(VectorClock([3, 0]))
        assert not Epoch(4, 0).leq(VectorClock([3, 0]))
        assert str(Epoch(2, 1)) == "2@1"


class TestUnitCases:
    def test_unsynchronized_write_write_races(self):
        races = find_races(trace_of(write("t1", "x"), write("t2", "x")))
        assert len(races) == 1
        assert races[0].kind == "write-write"
        assert races[0].variable == "x"

    def test_write_read_race(self):
        races = find_races(trace_of(write("t1", "x"), read("t2", "x")))
        assert [r.kind for r in races] == ["write-read"]

    def test_read_write_race(self):
        races = find_races(trace_of(read("t1", "x"), write("t2", "x")))
        assert [r.kind for r in races] == ["read-write"]

    def test_read_read_never_races(self):
        assert not find_races(trace_of(read("t1", "x"), read("t2", "x")))

    def test_lock_protection(self):
        trace = trace_of(
            acquire("t1", "l"),
            write("t1", "x"),
            release("t1", "l"),
            acquire("t2", "l"),
            write("t2", "x"),
            release("t2", "l"),
        )
        assert not find_races(trace)

    def test_fork_join_ordering(self):
        trace = trace_of(
            write("t1", "x"),
            fork("t1", "t2"),
            write("t2", "x"),
            join("t1", "t2"),
            write("t1", "x"),
        )
        assert not find_races(trace)

    def test_concurrent_reads_then_write(self):
        # Two unordered reads force the read state into vector-clock
        # mode; the unsynchronized write then races with both (one report).
        trace = trace_of(
            read("t1", "x"), read("t2", "x"), write("t3", "x")
        )
        races = find_races(trace)
        assert [r.kind for r in races] == ["read-write"]

    def test_atomic_markers_are_ignored(self):
        trace = trace_of(
            begin("t1"), write("t1", "x"), end("t1"),
            begin("t2"), write("t2", "x"), end("t2"),
        )
        assert len(find_races(trace)) == 1

    def test_racy_variables_property(self):
        detector = FastTrackDetector()
        detector.run(trace_of(write("t1", "x"), write("t2", "x")))
        assert detector.racy_variables == {"x"}


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_racy_access_set_matches_brute_force(seed):
    trace = random_trace(
        seed,
        RandomTraceConfig(n_threads=3, n_vars=3, n_locks=2, length=22),
    )
    expected = brute_force_races(trace)
    detected = {(r.variable, r.event_idx) for r in find_races(trace)}
    # FastTrack is sound and precise for the *first* race per access pair
    # summary it keeps; epoch summarisation can drop some subsequent racy
    # pairs, so we check detection ⊆ truth and emptiness agreement.
    assert detected <= expected
    assert bool(detected) == bool(expected)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_race_freedom_exact_with_forks(seed):
    trace = random_trace(
        seed,
        RandomTraceConfig(
            n_threads=4, n_vars=2, n_locks=2, length=24, with_forks=True
        ),
    )
    assert bool(find_races(trace)) == bool(brute_force_races(trace))
