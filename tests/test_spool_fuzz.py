"""Spool-file robustness: damaged checkpoints must fail *typed*.

The spool's contract mirrors the binary loader's
(``tests/test_binary_fuzz.py``): a valid entry round-trips; anything
else — truncation, bit flips, duplicate entries, stray garbage —
either still loads (the damage hit a don't-care byte) or raises the
typed :class:`RecoveryError`. Never a raw ``struct.error``, never an
``UnpicklingError`` escaping, and ``scan``/``load_all`` (the restart
path) never raise at all: a corrupt spool can degrade one session,
not the server.
"""

import shutil

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.snapshot import CheckpointError
from repro.service.recovery import RecoveryError, RecoveryManager
from repro.service.session import StreamingSession
from repro.sim import trace_zoo


def _spooled(tmp_path, sid="fuzz", n=6):
    """A spool with one good entry; returns (manager, entry path)."""
    manager = RecoveryManager(tmp_path)
    spec = trace_zoo.get("paper-rho1")
    session = StreamingSession(sid, ["aerodrome"], name=spec.name)
    session.feed(list(spec.trace())[:n])
    manager.save(session)
    return manager, manager.path_for(sid)


def _assert_typed(manager, sid="fuzz"):
    """Loading may succeed or fail — but only with the typed error."""
    try:
        session = manager.load(sid)
    except CheckpointError:
        return None  # RecoveryError or a thaw failure: both typed
    assert isinstance(session, StreamingSession)
    return session


class TestSpoolFuzz:
    @settings(max_examples=40, deadline=None)
    @given(cut=st.integers(0, 10**6))
    def test_truncation_at_any_point_is_typed(self, tmp_path_factory, cut):
        tmp_path = tmp_path_factory.mktemp("spool")
        manager, path = _spooled(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: cut % len(data)])
        with pytest.raises(RecoveryError):
            manager.load("fuzz")
        manager.load_all()  # the restart path never raises

    @settings(max_examples=60, deadline=None)
    @given(position=st.integers(0, 10**6), bit=st.integers(0, 7))
    def test_single_bit_flip_is_typed_or_harmless(
        self, tmp_path_factory, position, bit
    ):
        tmp_path = tmp_path_factory.mktemp("spool")
        manager, path = _spooled(tmp_path)
        data = bytearray(path.read_bytes())
        data[position % len(data)] ^= 1 << bit
        path.write_bytes(bytes(data))
        loaded = _assert_typed(manager)
        if loaded is not None:
            # a flip that still loads must have hit a don't-care byte
            # (e.g. inside the id padding): the state is still sane
            assert loaded.position >= 0
        manager.load_all()

    @settings(max_examples=30, deadline=None)
    @given(junk=st.binary(min_size=0, max_size=200))
    def test_arbitrary_junk_file_is_typed_and_salvaged(
        self, tmp_path_factory, junk
    ):
        tmp_path = tmp_path_factory.mktemp("spool")
        manager, path = _spooled(tmp_path)
        bad = path.with_name("junk.ckpt")
        bad.write_bytes(junk)
        ids, salvage = manager.scan()
        assert "fuzz" in ids
        # junk either parses as a (non-duplicate) header or is salvaged
        if salvage:
            assert salvage[0][0] == bad
        manager.load_all()

    def test_duplicate_entries_keep_one_and_salvage_rest(self, tmp_path):
        manager, path = _spooled(tmp_path)
        shutil.copy(path, path.with_name("copy-of" + path.name))
        ids, salvage = manager.scan()
        assert ids == ["fuzz"]
        assert len(salvage) == 1 and "duplicate" in salvage[0][1]
        assert len(manager.load_all()) == 1

    def test_salvage_quarantines_without_blocking_siblings(self, tmp_path):
        manager, path = _spooled(tmp_path, sid="good")
        bad = tmp_path / "rotten.ckpt"
        bad.write_bytes(b"RSPOOL2\n\xff\xff\xff\xff")
        ids, salvage = manager.scan()
        assert ids == ["good"]
        assert [p for p, _ in salvage] == [bad]
        quarantined = manager.quarantine_path(bad)
        assert not bad.exists() and quarantined.exists()
        assert manager.scan() == (["good"], [])
