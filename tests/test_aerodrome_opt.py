"""Tests for the optimized AeroDrome checker (Algorithms 2 + 3)."""

import pytest

from repro import (
    acquire,
    begin,
    end,
    fork,
    join,
    read,
    release,
    trace_of,
    write,
)
from repro.core.aerodrome import AeroDromeChecker
from repro.core.aerodrome_opt import OptimizedAeroDromeChecker


def verdict(*events):
    return OptimizedAeroDromeChecker().run(trace_of(*events))


class TestAgreesWithBasicOnPaperTraces:
    def test_paper_traces(self, paper_traces):
        for trace, expected in paper_traces:
            opt = OptimizedAeroDromeChecker().run(trace)
            basic = AeroDromeChecker().run(trace)
            assert opt.serializable == expected, trace.name
            assert opt.serializable == basic.serializable
            # The lazy clocks are upper bounds of the basic clocks, so the
            # optimized checker can only detect a cycle *earlier* (on ρ3
            # it fires at e6 where basic waits for the end event e7).
            assert opt.events_processed <= basic.events_processed, trace.name


class TestLazyWriteClocks:
    def test_read_checks_against_active_writer_thread_clock(self):
        # The write stays "stale" while its transaction is open; the read
        # must still observe it.
        result = verdict(
            begin("t1"),
            write("t1", "x"),
            begin("t2"),
            read("t2", "x"),
            write("t2", "y"),
            end("t2"),
            read("t1", "y"),
            end("t1"),
        )
        assert not result.serializable

    def test_stale_flag_cleared_at_end(self):
        # t1's transaction reads t2's earlier write, so it has an incoming
        # edge and its end event must publish W_x (non-GC path).
        checker = OptimizedAeroDromeChecker()
        checker.run(
            trace_of(
                write("t2", "seed"),
                begin("t1"),
                read("t1", "seed"),
                write("t1", "x"),
                end("t1"),
                read("t2", "x"),
            )
        )
        xs = checker._vars["x"]
        assert not xs.stale_write
        # After t1's end, W_x carries t1's component for future checks
        # (t1 is interned second, index 1).
        assert xs.write_clock.get(1) >= 2

    def test_gc_drops_write_clock_for_isolated_transaction(self):
        # Without any incoming edge, t1's transaction is garbage collected
        # at its end: W_x is deliberately not published (the transaction
        # can never be on a cycle).
        checker = OptimizedAeroDromeChecker()
        checker.run(
            trace_of(begin("t1"), write("t1", "x"), end("t1"), read("t2", "x"))
        )
        xs = checker._vars["x"]
        assert not xs.stale_write
        assert xs.last_w_thr is None
        assert xs.write_clock.is_bottom()

    def test_unary_write_published_eagerly(self):
        checker = OptimizedAeroDromeChecker()
        checker.run(trace_of(write("t1", "x")))
        xs = checker._vars["x"]
        assert not xs.stale_write
        assert xs.write_clock.get(0) == 1

    def test_write_write_conflict_through_stale(self):
        result = verdict(
            begin("t1"),
            write("t1", "x"),
            begin("t2"),
            write("t2", "x"),
            write("t2", "y"),
            end("t2"),
            write("t1", "y"),
            end("t1"),
        )
        assert not result.serializable


class TestLazyReadClocks:
    def test_reads_accumulate_in_stale_set(self):
        checker = OptimizedAeroDromeChecker()
        checker.run(
            trace_of(
                begin("t1"), read("t1", "x"), begin("t2"), read("t2", "x")
            )
        )
        xs = checker._vars["x"]
        assert {ts.name for ts in xs.stale_readers} == {"t1", "t2"}

    def test_write_flushes_stale_readers(self):
        checker = OptimizedAeroDromeChecker()
        checker.run(
            trace_of(
                begin("t1"),
                read("t1", "x"),
                write("t2", "x"),  # flushes t1 from Stale^r_x
            )
        )
        xs = checker._vars["x"]
        assert not xs.stale_readers
        # R_x includes t1's own component; hR_x zeroes each reader's own
        # component so a thread's reads never satisfy its own write check.
        assert xs.read_clock.get(0) >= 2
        assert xs.check_read_clock.get(0) == 0

    def test_own_read_does_not_trigger_own_write_check(self):
        result = verdict(begin("t1"), read("t1", "x"), write("t1", "x"), end("t1"))
        assert result.serializable

    def test_read_write_cycle_detected(self):
        # rho2 with the roles of reads and writes swapped: w-r and r-w.
        result = verdict(
            begin("t1"),
            begin("t2"),
            read("t1", "x"),
            write("t2", "x"),
            read("t2", "y"),
            write("t1", "y"),
            end("t2"),
            end("t1"),
        )
        assert not result.serializable


class TestUpdateSets:
    def test_update_sets_cleared_at_end(self):
        checker = OptimizedAeroDromeChecker()
        checker.run(
            trace_of(
                begin("t1"),
                read("t1", "x"),
                write("t1", "y"),
                end("t1"),
            )
        )
        ts = checker._threads["t1"]
        assert not ts.update_reads
        assert not ts.update_writes

    def test_cross_thread_dependency_registered(self):
        checker = OptimizedAeroDromeChecker()
        checker.run(
            trace_of(
                begin("t1"),
                write("t1", "g"),
                read("t2", "g"),  # unary read ⋖E-after t1's open txn
            )
        )
        ts = checker._threads["t1"]
        assert "g" in {xs.name for xs in ts.update_reads}


class TestEndPropagation:
    def test_end_propagates_to_dependent_thread(self, rho4):
        # In ρ4 the end of T2 must propagate its clock into W_y so that
        # T3 later inherits the T1-dependency — exactly Figure 7.
        checker = OptimizedAeroDromeChecker()
        result = checker.run(rho4)
        assert not result.serializable
        assert result.events_processed == 11

    def test_detects_rho3_cycle_early(self, rho3):
        # The lazy write clock already carries t1's whole active
        # transaction, so the cycle is visible at e6 = r(x), one event
        # before basic Algorithm 1's end-event detection.
        checker = OptimizedAeroDromeChecker()
        result = checker.run(rho3)
        assert not result.serializable
        assert result.events_processed == 6


class TestLocksAndForks:
    def test_lock_handoff(self):
        result = verdict(
            begin("t1"),
            acquire("t1", "l"),
            write("t1", "x"),
            release("t1", "l"),
            acquire("t2", "l"),
            read("t2", "x"),
            write("t2", "y"),
            release("t2", "l"),
            read("t1", "y"),
            end("t1"),
        )
        assert not result.serializable

    def test_acquire_after_gc_still_checks(self):
        # Even when the releasing transaction was garbage collected, the
        # lock clock is eagerly maintained and the acquire must join it.
        checker = OptimizedAeroDromeChecker()
        checker.run(
            trace_of(
                begin("t1"),
                acquire("t1", "l"),
                release("t1", "l"),
                end("t1"),  # no incoming edge: GC branch resets lastRelThr
                acquire("t2", "l"),
            )
        )
        assert checker._threads["t2"].clock.get(0) >= 2

    def test_fork_join_cycle(self):
        result = verdict(
            begin("t1"),
            write("t1", "x"),
            fork("t1", "t2"),
            read("t2", "x"),
            write("t2", "y"),
            read("t1", "y"),
            end("t1"),
        )
        assert not result.serializable

    def test_join_detects_dependency(self):
        result = verdict(
            begin("t1"),
            write("t1", "x"),
            begin("t2"),
            read("t2", "x"),
            write("t2", "y"),
            end("t2"),
            read("t1", "y"),
            end("t1"),
        )
        assert not result.serializable


class TestStopping:
    def test_processing_after_violation_raises(self, rho2):
        checker = OptimizedAeroDromeChecker()
        checker.run(rho2)
        with pytest.raises(RuntimeError, match="already found"):
            checker.process(read("t9", "q"))

    def test_reset(self, rho2):
        checker = OptimizedAeroDromeChecker()
        assert not checker.run(rho2).serializable
        checker.reset()
        assert checker.run(trace_of(read("t", "x"))).serializable
