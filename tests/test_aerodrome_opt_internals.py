"""White-box tests for the optimized checker's lazy/GC machinery."""

from repro import begin, end, fork, read, trace_of, write
from repro.core.aerodrome import AeroDromeChecker
from repro.core.aerodrome_opt import OptimizedAeroDromeChecker


def run_prefix(events, count=None):
    checker = OptimizedAeroDromeChecker()
    for event in trace_of(*events).events[:count]:
        checker.process(event)
    return checker


class TestStaleWriteTransitions:
    def test_stale_takeover_by_second_writer(self):
        # t1's lazy write is superseded by t2's write while t1 is still
        # open; lastWThr moves to t2, staleness persists (t2 active).
        checker = run_prefix(
            [
                begin("t1"),
                write("t1", "x"),
                begin("t2"),
                write("t2", "x"),
            ]
        )
        xs = checker._vars["x"]
        assert xs.stale_write
        assert xs.last_w_thr is checker._threads["t2"]

    def test_superseded_writer_end_does_not_publish(self):
        # When t1 ends, x is in its update set but lastWThr is t2 and
        # the write is still stale: W_x must not resurrect t1's write.
        checker = run_prefix(
            [
                begin("t1"),
                write("t1", "x"),
                begin("t2"),
                write("t2", "x"),
                end("t1"),
            ]
        )
        xs = checker._vars["x"]
        assert xs.stale_write
        assert xs.write_clock.is_bottom()

    def test_unary_write_supersedes_stale(self):
        checker = run_prefix(
            [
                begin("t1"),
                write("t1", "x"),
                write("t2", "x"),  # unary: eager publish
            ]
        )
        xs = checker._vars["x"]
        assert not xs.stale_write
        # The published clock absorbed t1's active transaction.
        assert xs.write_clock.get(0) >= 2

    def test_second_txn_same_writer_keeps_laziness(self):
        checker = run_prefix(
            [
                begin("t1"),
                write("t1", "x"),
                end("t1"),
                begin("t1"),
                write("t1", "x"),
            ]
        )
        xs = checker._vars["x"]
        assert xs.stale_write
        assert xs.last_w_thr is checker._threads["t1"]


class TestGarbageCollection:
    def test_fork_parent_alive_blocks_gc(self):
        # t2's transaction sees nothing new, but its forking parent's
        # transaction is still open: the fork edge is a real incoming
        # edge, so no GC.
        checker = run_prefix(
            [
                begin("t1"),
                fork("t1", "t2"),
                begin("t2"),
                write("t2", "x"),
            ]
        )
        ts = checker._threads["t2"]
        assert checker._has_incoming_edge(ts)

    def test_fork_parent_completed_allows_gc(self):
        checker = run_prefix(
            [
                begin("t1"),
                fork("t1", "t2"),
                end("t1"),
                begin("t2"),
                write("t2", "x"),
            ]
        )
        ts = checker._threads["t2"]
        assert not checker._has_incoming_edge(ts)

    def test_parent_txn_consumed_after_first_end(self):
        checker = run_prefix(
            [
                begin("t1"),
                fork("t1", "t2"),
                begin("t2"),
                end("t2"),
            ]
        )
        assert checker._threads["t2"].parent_txn is None

    def test_gc_clears_lock_ownership(self):
        from repro import acquire, release

        checker = run_prefix(
            [
                begin("t1"),
                acquire("t1", "l"),
                release("t1", "l"),
                end("t1"),
            ]
        )
        assert checker._locks["l"].last_rel_thr is None

    def test_clock_growth_blocks_gc(self):
        checker = run_prefix(
            [
                write("t2", "seed"),  # unary
                begin("t1"),
                read("t1", "seed"),  # t1's clock grows: t2's component
            ]
        )
        assert checker._has_incoming_edge(checker._threads["t1"])


class TestUpdateSetPlumbing:
    def test_unary_read_registers_dependency_on_active_writer(self):
        checker = run_prefix(
            [
                begin("t1"),
                write("t1", "g"),
                read("t2", "g"),  # unary, ⋖E-after t1's open txn
            ]
        )
        names = {xs.name for xs in checker._threads["t1"].update_reads}
        assert "g" in names

    def test_independent_access_not_registered(self):
        checker = run_prefix(
            [
                begin("t1"),
                write("t1", "g"),
                read("t2", "other"),  # no relation to t1's txn
            ]
        )
        names = {xs.name for xs in checker._threads["t1"].update_reads}
        assert "other" not in names

    def test_txn_serial_increments(self):
        checker = run_prefix(
            [begin("t1"), end("t1"), begin("t1"), end("t1"), begin("t1")]
        )
        assert checker._threads["t1"].txn_serial == 3


class TestAgreementOnTrickyShapes:
    def assert_agrees(self, *events):
        trace = trace_of(*events)
        opt = OptimizedAeroDromeChecker().run(trace)
        basic = AeroDromeChecker().run(trace)
        assert opt.serializable == basic.serializable

    def test_write_read_write_chain(self):
        self.assert_agrees(
            begin("t1"),
            write("t1", "a"),
            begin("t2"),
            read("t2", "a"),
            write("t2", "b"),
            end("t2"),
            begin("t3"),
            read("t3", "b"),
            write("t3", "c"),
            end("t3"),
            read("t1", "c"),
            end("t1"),
        )

    def test_gc_then_reuse_variable(self):
        self.assert_agrees(
            begin("t1"),
            write("t1", "x"),
            end("t1"),  # GC branch: W_x dropped
            begin("t2"),
            read("t2", "x"),
            write("t2", "y"),
            end("t2"),
            begin("t1"),
            read("t1", "y"),
            end("t1"),
        )

    def test_interleaved_stale_readers(self):
        self.assert_agrees(
            begin("t1"),
            read("t1", "x"),
            begin("t2"),
            read("t2", "x"),
            begin("t3"),
            write("t3", "x"),
            end("t3"),
            end("t2"),
            end("t1"),
        )
