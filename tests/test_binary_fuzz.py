"""Binary-format robustness: corrupt inputs must fail cleanly.

The loader's contract is "round-trips valid traces; raises
``BinaryTraceError`` on anything else" — it must never crash with a
raw ``struct.error``/``IndexError`` or silently return garbage.
"""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.random_traces import RandomTraceConfig, random_trace
from repro.trace.binary import (
    BinaryTraceError,
    read_binary,
    write_binary,
)


def encode(trace) -> bytes:
    buffer = io.BytesIO()
    write_binary(trace, buffer)
    return buffer.getvalue()


def try_decode(data: bytes):
    """Decode, asserting only clean outcomes are possible."""
    try:
        return read_binary(io.BytesIO(data))
    except BinaryTraceError:
        return None


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10**9))
def test_round_trip(seed):
    trace = random_trace(
        seed, RandomTraceConfig(n_threads=3, n_vars=3, n_locks=1, length=25)
    )
    decoded = read_binary(io.BytesIO(encode(trace)))
    assert list(decoded) == list(trace)
    assert decoded.name == trace.name


@settings(max_examples=80, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    position=st.integers(0, 400),
    byte=st.integers(0, 255),
)
def test_single_byte_corruption_never_crashes(seed, position, byte):
    trace = random_trace(
        seed % 50, RandomTraceConfig(n_threads=2, n_vars=2, n_locks=1, length=15)
    )
    data = bytearray(encode(trace))
    position %= len(data)
    data[position] = byte
    # Either a clean error, or a successfully decoded trace (the byte
    # may have hit a don't-care position or produced a different but
    # structurally valid trace).
    try_decode(bytes(data))


@settings(max_examples=80, deadline=None)
@given(seed=st.integers(0, 10**6), cut=st.floats(0.0, 0.99))
def test_truncation_never_crashes(seed, cut):
    trace = random_trace(
        seed % 50, RandomTraceConfig(n_threads=2, n_vars=2, n_locks=1, length=15)
    )
    data = encode(trace)
    truncated = data[: int(len(data) * cut)]
    assert try_decode(truncated) is None or len(truncated) == len(data)


@settings(max_examples=60, deadline=None)
@given(junk=st.binary(min_size=0, max_size=64))
def test_arbitrary_bytes_rejected_or_valid(junk):
    try_decode(junk)


def test_wrong_magic():
    with pytest.raises(BinaryTraceError, match="magic"):
        read_binary(io.BytesIO(b"NOTATRACE" + b"\x00" * 32))


def test_empty_stream():
    with pytest.raises(BinaryTraceError, match="truncated"):
        read_binary(io.BytesIO(b""))
