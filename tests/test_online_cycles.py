"""Pearce–Kelly incremental topological order tests.

Cross-checked against the DFS-based :class:`Digraph` on random edge
sequences, plus the Velodrome-with-PK checker against the oracle.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import check_trace, conflict_serializable
from repro.baselines.graph import Digraph
from repro.baselines.online_cycles import (
    CycleClosedError,
    IncrementalTopoDigraph,
)
from repro.baselines.velodrome import VelodromeChecker
from repro.sim.random_traces import RandomTraceConfig, random_trace


def test_forward_edge_is_cheap_and_ordered():
    g = IncrementalTopoDigraph()
    g.add_edge(1, 2)
    g.add_edge(2, 3)
    assert g.is_topological()
    assert g.order_index(1) < g.order_index(2) < g.order_index(3)
    assert g.reorders == 0


def test_back_edge_triggers_reorder():
    g = IncrementalTopoDigraph()
    # Insert nodes so that 3 gets a smaller index than 1 would like.
    g.add_node(3)
    g.add_node(1)
    g.add_edge(1, 3)  # goes against insertion order
    assert g.reorders == 1
    assert g.is_topological()


def test_creates_cycle_detects_two_cycle():
    g = IncrementalTopoDigraph()
    g.add_edge("a", "b")
    assert g.creates_cycle("b", "a")
    assert not g.creates_cycle("a", "b")


def test_creates_cycle_detects_long_cycle():
    g = IncrementalTopoDigraph()
    for i in range(9):
        g.add_edge(i, i + 1)
    assert g.creates_cycle(9, 0)
    assert not g.creates_cycle(0, 9)


def test_add_edge_raises_on_cycle():
    g = IncrementalTopoDigraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    with pytest.raises(CycleClosedError):
        g.add_edge("c", "a")


def test_self_loop_rejected_quietly():
    g = IncrementalTopoDigraph()
    g.add_node("a")
    assert not g.add_edge("a", "a")
    assert not g.creates_cycle("a", "a")


def test_duplicate_edge_is_noop():
    g = IncrementalTopoDigraph()
    assert g.add_edge(1, 2)
    assert not g.add_edge(1, 2)
    assert g.edge_count() == 1
    assert g.edges_added == 1


def test_remove_node_reports_zeroed_successors():
    g = IncrementalTopoDigraph()
    g.add_edge("a", "b")
    g.add_edge("a", "c")
    g.add_edge("x", "c")
    zeroed = g.remove_node("a")
    assert set(zeroed) == {"b"}  # c still has x as predecessor
    assert "a" not in g
    assert g.in_degree("c") == 1


def test_in_degree_and_len():
    g = IncrementalTopoDigraph()
    g.add_edge(1, 3)
    g.add_edge(2, 3)
    assert g.in_degree(3) == 2
    assert len(g) == 3
    assert set(g.nodes()) == {1, 2, 3}
    assert g.successors(1) == {3}


def test_has_cycle_is_always_false():
    g = IncrementalTopoDigraph()
    g.add_edge(1, 2)
    assert not g.has_cycle()


@settings(max_examples=120, deadline=None)
@given(
    seed=st.integers(0, 10**9),
    n_nodes=st.integers(2, 12),
    n_edges=st.integers(1, 40),
)
def test_agrees_with_dfs_digraph(seed, n_nodes, n_edges):
    """Both graphs must flag exactly the same edge as cycle-closing."""
    rng = random.Random(seed)
    dfs: Digraph = Digraph()
    pk: IncrementalTopoDigraph = IncrementalTopoDigraph()
    for _ in range(n_edges):
        src = rng.randrange(n_nodes)
        dst = rng.randrange(n_nodes)
        expected = dfs.creates_cycle(src, dst)
        assert pk.creates_cycle(src, dst) == expected
        if not expected:
            assert dfs.add_edge(src, dst) == pk.add_edge(src, dst)
            assert pk.is_topological()


@settings(max_examples=120, deadline=None)
@given(seed=st.integers(0, 10**9))
def test_agrees_with_dfs_under_removals(seed):
    """Removal is only defined for in-degree-0 nodes (the GC contract:
    Velodrome collects sources only), so the random mix honours that."""
    rng = random.Random(seed)
    dfs: Digraph = Digraph()
    pk: IncrementalTopoDigraph = IncrementalTopoDigraph()
    live = set()
    removed = set()
    for _ in range(60):
        sources = [n for n in sorted(live) if dfs.in_degree(n) == 0]
        if sources and rng.random() < 0.2:
            node = rng.choice(sources)
            live.discard(node)
            removed.add(node)
            assert sorted(dfs.remove_node(node)) == sorted(pk.remove_node(node))
        else:
            src, dst = rng.randrange(10), rng.randrange(10)
            if src == dst or src in removed or dst in removed:
                # Self-loops are no-ops; re-adding a collected node would
                # resurrect dangling references (Velodrome never does —
                # TxnNode ids are fresh).
                continue
            expected = dfs.creates_cycle(src, dst)
            assert pk.creates_cycle(src, dst) == expected
            if not expected:
                dfs.add_edge(src, dst)
                pk.add_edge(src, dst)
                live.update({src, dst})
                assert pk.is_topological()


@settings(max_examples=120, deadline=None)
@given(seed=st.integers(0, 10**9))
def test_velodrome_pk_matches_oracle(seed):
    cfg = RandomTraceConfig(
        n_threads=3, n_vars=3, n_locks=1, length=40, p_begin=0.2, p_end=0.2
    )
    trace = random_trace(seed, cfg)
    result = VelodromeChecker(incremental_topology=True).run(trace)
    assert result.serializable == conflict_serializable(trace)
    assert result.algorithm == "velodrome-pk"


def test_velodrome_pk_on_paper_traces(paper_traces):
    for trace, serializable in paper_traces:
        result = check_trace(trace, algorithm="velodrome-pk")
        assert result.serializable == serializable, trace.name
