"""Typed metrics and the versioned ``repro-stats/1`` surface.

Two layers live here:

* **Instrument types** — :class:`Counter`, :class:`Gauge`,
  :class:`Histogram` and the :class:`MetricsRegistry` that owns them.
  The service's hand-rolled stat ints (shard workers, wire servers, the
  cluster coordinator) are instances of these; each component keeps its
  own registry because shard workers are pickled into worker processes,
  so instruments carry no locks — every instrument is mutated only under
  its owner's existing synchronization (a shard's single thread, the
  server's counter lock, the coordinator's lock).
* **Exposition** — the JSON ``service-stats`` document is stamped
  ``schema: repro-stats/1``; :func:`stats_to_prom` renders that same
  document as Prometheus text exposition, and :data:`METRICS_CATALOG`
  is the machine-readable list of every metric the exposition may emit
  (mirrored in ``docs/OBSERVABILITY.md`` and enforced by
  :func:`validate_prom_text`, which CI runs against a live scrape).

Run ``python -m repro.obs.metrics --validate < scrape.txt`` to check a
scrape against the catalog from a shell (used by the ``experiment-smoke``
CI job).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Version tag stamped on every ``service-stats`` JSON document.
STATS_SCHEMA = "repro-stats/1"

#: Default histogram bucket upper bounds (events of checkpoint lag).
DEFAULT_BUCKETS = (64, 256, 1024, 4096, 16384)


class Counter:
    """Monotonically increasing count. No lock — see module docstring."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A value that can go up and down (queue depth, open sessions)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """Cumulative-bucket histogram (Prometheus classic shape)."""

    __slots__ = ("name", "help", "buckets", "_counts", "count", "sum")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[i] += 1

    def to_json(self) -> Dict[str, Any]:
        """Cumulative bucket counts keyed by upper bound, plus +Inf."""
        cumulative: Dict[str, int] = {}
        for bound, n in zip(self.buckets, self._counts):
            cumulative[str(int(bound) if bound == int(bound) else bound)] = n
        cumulative["+Inf"] = self.count
        return {"count": self.count, "sum": self.sum, "buckets": cumulative}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name} n={self.count})"


class MetricsRegistry:
    """A named bag of instruments; idempotent factories by name.

    Registries are plain picklable objects so a shard worker's registry
    survives the trip into a process shard.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, cls: type, name: str, help: str, **kwargs: Any) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def snapshot(self) -> Dict[str, Any]:
        """Plain JSON-able {name: value-or-histogram-dict} map."""
        out: Dict[str, Any] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Histogram):
                out[name] = metric.to_json()
            else:
                out[name] = metric.value
        return out

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)


# --------------------------------------------------------------------------
# The metric catalog: every series the Prometheus exposition may emit.
# ``required`` metrics appear on every scrape of a healthy node; optional
# ones depend on the backend (async-only gauges) or topology (cluster
# block, per-tenant counts appear only once a tenant has violations).
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricSpec:
    name: str
    type: str  # counter | gauge | histogram
    help: str
    labels: Tuple[str, ...] = ()
    required: bool = True


METRICS_CATALOG: Tuple[MetricSpec, ...] = (
    # Per-shard (labels: shard)
    MetricSpec("repro_shard_events_total", "counter",
               "Events ingested by this shard", ("shard",)),
    MetricSpec("repro_shard_events_per_second", "gauge",
               "Ingest rate since shard start", ("shard",)),
    MetricSpec("repro_shard_sessions_open", "gauge",
               "Live sessions owned by this shard", ("shard",)),
    MetricSpec("repro_shard_sessions_closed_total", "counter",
               "Sessions closed cleanly", ("shard",)),
    MetricSpec("repro_shard_sessions_quarantined_total", "counter",
               "Sessions poison-isolated after an analysis error", ("shard",)),
    MetricSpec("repro_shard_events_dropped_total", "counter",
               "Events discarded after quarantine", ("shard",)),
    MetricSpec("repro_shard_violations_total", "counter",
               "Findings raised by analyses on this shard", ("shard",)),
    MetricSpec("repro_shard_errors_total", "counter",
               "Analysis/feed errors", ("shard",)),
    MetricSpec("repro_shard_checkpoint_failures_total", "counter",
               "Checkpoint writes that failed", ("shard",)),
    MetricSpec("repro_shard_lenient_restarts_total", "counter",
               "Sessions restarted from zero under lenient recovery", ("shard",)),
    MetricSpec("repro_shard_queue_depth", "gauge",
               "Requests waiting in the shard mailbox", ("shard",)),
    MetricSpec("repro_shard_checkpoint_lag_events", "gauge",
               "Max events past last checkpoint across open sessions", ("shard",)),
    MetricSpec("repro_shard_checkpoint_lag", "histogram",
               "Events between consecutive checkpoints", ("shard",),
               required=False),
    # Router-wide
    MetricSpec("repro_router_shed_total", "counter",
               "Submissions shed by per-tenant quota"),
    MetricSpec("repro_router_shard_restarts_total", "counter",
               "Shard processes restarted after a crash"),
    MetricSpec("repro_router_uptime_seconds", "gauge",
               "Seconds since the slowest-started shard came up"),
    # Per-tenant (labels: tenant) — emitted once a tenant has findings.
    MetricSpec("repro_tenant_violations_total", "counter",
               "Findings per tenant session", ("tenant",), required=False),
    # Wire server (labels: backend)
    MetricSpec("repro_server_busy_replies_total", "counter",
               "BUSY backpressure replies sent", ("backend",)),
    MetricSpec("repro_server_read_timeouts_total", "counter",
               "Connections dropped on read deadline", ("backend",)),
    MetricSpec("repro_server_wire_errors_total", "counter",
               "Malformed-frame/protocol errors", ("backend",)),
    MetricSpec("repro_server_redirects_total", "counter",
               "REDIRECT replies (cluster ownership elsewhere)", ("backend",)),
    MetricSpec("repro_server_fenced_total", "counter",
               "FENCED replies (stale membership epoch)", ("backend",)),
    MetricSpec("repro_server_shed_total", "counter",
               "BUSY replies flagged shed=true", ("backend",)),
    # Async-backend-only gauges
    MetricSpec("repro_server_open_connections", "gauge",
               "Currently open connections", ("backend",), required=False),
    MetricSpec("repro_server_connections_total", "counter",
               "Connections accepted since start", ("backend",), required=False),
    MetricSpec("repro_server_ring_high_water", "gauge",
               "Largest decode ring buffer seen", ("backend",), required=False),
    MetricSpec("repro_server_write_queue_depth", "gauge",
               "Bytes queued for write across connections", ("backend",),
               required=False),
    MetricSpec("repro_server_write_queue_hwm", "gauge",
               "Write queue high-water mark", ("backend",), required=False),
    MetricSpec("repro_server_loop_lag_ms", "gauge",
               "Event-loop lag of the last tick", ("backend",), required=False),
    # Cluster coordinator (labels: node) — present when clustering is on.
    MetricSpec("repro_cluster_epoch", "gauge",
               "Membership epoch", ("node",), required=False),
    MetricSpec("repro_cluster_peers", "gauge",
               "Peers known to this node", ("node",), required=False),
    MetricSpec("repro_cluster_sessions_owned", "gauge",
               "Sessions this node owns", ("node",), required=False),
    MetricSpec("repro_cluster_replicas_held", "gauge",
               "Replica checkpoints held for peers", ("node",), required=False),
    MetricSpec("repro_cluster_migrations_total", "counter",
               "Sessions migrated away live", ("node",), required=False),
    MetricSpec("repro_cluster_handoffs_in_total", "counter",
               "Checkpoint blobs received", ("node",), required=False),
    MetricSpec("repro_cluster_handoffs_out_total", "counter",
               "Checkpoint blobs shipped", ("node",), required=False),
    MetricSpec("repro_cluster_handoff_bytes_total", "counter",
               "Bytes of checkpoint blobs shipped", ("node",), required=False),
    MetricSpec("repro_cluster_redirects_total", "counter",
               "Ownership redirects issued", ("node",), required=False),
    MetricSpec("repro_cluster_gossip_ticks_total", "counter",
               "Coordinator ticks completed", ("node",), required=False),
    MetricSpec("repro_cluster_fenced_out_total", "counter",
               "Stale-epoch requests fenced", ("node",), required=False),
)

CATALOG_BY_NAME: Dict[str, MetricSpec] = {m.name: m for m in METRICS_CATALOG}


# --------------------------------------------------------------------------
# Prometheus text exposition, rendered from a repro-stats/1 document.
# --------------------------------------------------------------------------


def _fmt_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _escape(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _PromWriter:
    """Accumulates samples, emitting HELP/TYPE once per metric family."""

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._seen: set = set()

    def sample(
        self,
        name: str,
        value: Any,
        labels: Optional[Mapping[str, Any]] = None,
        suffix: str = "",
    ) -> None:
        if value is None:
            return
        spec = CATALOG_BY_NAME.get(name)
        if name not in self._seen:
            self._seen.add(name)
            if spec is not None:
                self._lines.append(f"# HELP {name} {spec.help}")
                self._lines.append(f"# TYPE {name} {spec.type}")
        label_str = ""
        if labels:
            pairs = ",".join(
                f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())
            )
            label_str = "{" + pairs + "}"
        self._lines.append(f"{name}{suffix}{label_str} {_fmt_value(value)}")

    def histogram(
        self, name: str, hist: Mapping[str, Any], labels: Mapping[str, Any]
    ) -> None:
        spec = CATALOG_BY_NAME.get(name)
        if name not in self._seen:
            self._seen.add(name)
            if spec is not None:
                self._lines.append(f"# HELP {name} {spec.help}")
                self._lines.append(f"# TYPE {name} histogram")
        for bound, count in hist.get("buckets", {}).items():
            bucket_labels = dict(labels)
            bucket_labels["le"] = bound
            pairs = ",".join(
                f'{k}="{_escape(v)}"' for k, v in sorted(bucket_labels.items())
            )
            self._lines.append(f"{name}_bucket{{{pairs}}} {count}")
        pairs = ",".join(f'{k}="{_escape(v)}"' for k, v in sorted(labels.items()))
        label_str = "{" + pairs + "}" if pairs else ""
        self._lines.append(f"{name}_sum{label_str} {_fmt_value(hist.get('sum', 0))}")
        self._lines.append(f"{name}_count{label_str} {hist.get('count', 0)}")

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"


#: (stats-doc key in a shard row) -> prom metric name
_SHARD_KEYS = {
    "events": "repro_shard_events_total",
    "events_per_second": "repro_shard_events_per_second",
    "sessions_open": "repro_shard_sessions_open",
    "sessions_closed": "repro_shard_sessions_closed_total",
    "sessions_quarantined": "repro_shard_sessions_quarantined_total",
    "events_dropped": "repro_shard_events_dropped_total",
    "violations": "repro_shard_violations_total",
    "errors": "repro_shard_errors_total",
    "checkpoint_failures": "repro_shard_checkpoint_failures_total",
    "lenient_restarts": "repro_shard_lenient_restarts_total",
    "queue_depth": "repro_shard_queue_depth",
    "checkpoint_lag": "repro_shard_checkpoint_lag_events",
}

_SERVER_KEYS = {
    "busy_replies": "repro_server_busy_replies_total",
    "read_timeouts": "repro_server_read_timeouts_total",
    "wire_errors": "repro_server_wire_errors_total",
    "redirects": "repro_server_redirects_total",
    "fenced": "repro_server_fenced_total",
    "shed": "repro_server_shed_total",
    "open_connections": "repro_server_open_connections",
    "connections_total": "repro_server_connections_total",
    "ring_high_water": "repro_server_ring_high_water",
    "write_queue_depth": "repro_server_write_queue_depth",
    "write_queue_hwm": "repro_server_write_queue_hwm",
    "loop_lag_ms": "repro_server_loop_lag_ms",
}

_CLUSTER_KEYS = {
    "epoch": "repro_cluster_epoch",
    "sessions_owned": "repro_cluster_sessions_owned",
    "replicas_held": "repro_cluster_replicas_held",
    "migrations_total": "repro_cluster_migrations_total",
    "handoffs_in": "repro_cluster_handoffs_in_total",
    "handoffs_out": "repro_cluster_handoffs_out_total",
    "handoff_bytes": "repro_cluster_handoff_bytes_total",
    "redirects": "repro_cluster_redirects_total",
    "gossip_ticks": "repro_cluster_gossip_ticks_total",
    "fenced_out": "repro_cluster_fenced_out_total",
}


def stats_to_prom(stats: Mapping[str, Any]) -> str:
    """Render a ``repro-stats/1`` document as Prometheus text exposition.

    The JSON document on the STATS frame and the ``/metrics`` endpoint
    are two views of the same data; this function is the only mapping
    between them, so the schemas cannot drift apart.
    """
    w = _PromWriter()
    for row in stats.get("shards", ()):
        labels = {"shard": row.get("shard", 0)}
        for key, metric in _SHARD_KEYS.items():
            if key in row:
                w.sample(metric, row[key], labels)
        hist = row.get("checkpoint_lag_histogram")
        if isinstance(hist, Mapping):
            w.histogram("repro_shard_checkpoint_lag", hist, labels)
        tenants = row.get("tenant_violations")
        if isinstance(tenants, Mapping):
            for tenant, count in sorted(tenants.items()):
                w.sample(
                    "repro_tenant_violations_total", count, {"tenant": tenant}
                )
    w.sample("repro_router_shed_total", stats.get("shed"))
    w.sample("repro_router_shard_restarts_total", stats.get("shard_restarts"))
    w.sample("repro_router_uptime_seconds", stats.get("uptime_seconds"))
    server = stats.get("server")
    if isinstance(server, Mapping):
        labels = {"backend": server.get("backend", "thread")}
        for key, metric in _SERVER_KEYS.items():
            if key in server:
                w.sample(metric, server[key], labels)
    cluster = stats.get("cluster")
    if isinstance(cluster, Mapping):
        labels = {"node": cluster.get("node", "?")}
        for key, metric in _CLUSTER_KEYS.items():
            if key in cluster:
                w.sample(metric, cluster[key], labels)
        peers = cluster.get("peers")
        if isinstance(peers, list):
            w.sample("repro_cluster_peers", len(peers), labels)
    return w.text()


def parse_prom_names(text: str) -> Dict[str, int]:
    """Metric family name -> sample count, from prom text exposition."""
    names: Dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        token = line.split("{", 1)[0].split(" ", 1)[0]
        for suffix in ("_bucket", "_sum", "_count"):
            if token.endswith(suffix) and token[: -len(suffix)] in CATALOG_BY_NAME:
                token = token[: -len(suffix)]
                break
        names[token] = names.get(token, 0) + 1
    return names


def validate_prom_text(text: str) -> List[str]:
    """Check a scrape against :data:`METRICS_CATALOG`.

    Returns a list of problems (empty = valid): unknown series not in
    the catalog, or required series missing from the scrape.
    """
    names = parse_prom_names(text)
    problems: List[str] = []
    for name in sorted(names):
        if name not in CATALOG_BY_NAME:
            problems.append(f"unknown metric not in catalog: {name}")
    for spec in METRICS_CATALOG:
        if spec.required and spec.name not in names:
            problems.append(f"required metric missing from scrape: {spec.name}")
    return problems


def _main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """``python -m repro.obs.metrics --validate < scrape.txt``"""
    import argparse
    import sys

    parser = argparse.ArgumentParser(prog="repro.obs.metrics")
    parser.add_argument(
        "--validate", action="store_true",
        help="validate prom text on stdin against the metrics catalog",
    )
    parser.add_argument(
        "--catalog", action="store_true",
        help="print the metrics catalog as a markdown table",
    )
    args = parser.parse_args(argv)
    if args.catalog:
        print("| metric | type | labels | help |")
        print("|---|---|---|---|")
        for m in METRICS_CATALOG:
            labels = ", ".join(m.labels) or "—"
            print(f"| `{m.name}` | {m.type} | {labels} | {m.help} |")
        return 0
    if args.validate:
        problems = validate_prom_text(sys.stdin.read())
        for p in problems:
            print(p, file=sys.stderr)
        print("ok" if not problems else f"{len(problems)} problem(s)")
        return 0 if not problems else 1
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
