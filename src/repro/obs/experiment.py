"""Experiment artifacts: hashed configs, run directories, and run diffing.

One golden path: ``repro experiment run`` locks workload/scale/seed/
analyses into a content-hashed ``experiment.json`` and emits every
artifact under a run-id directory::

    runs/<run-id>/
      experiment.json   # the locked config + its sha256 content hash
      manifest.json     # deterministic result summary (hash-comparable)
      report.json       # full repro-report/1 session result (has timing)
      report.md         # human summary
      trace.jsonl       # span log (TickClock => byte-identical per seed)

Determinism contract: ``experiment.json``, ``manifest.json`` and
``trace.jsonl`` are **byte-identical** across two same-seed invocations
(no timestamps, no run-id, no wall-clock inside); all wall-clock timing
lives in ``report.json``/``report.md``, which ``repro diff`` treats as
informational metrics, never gates.

``repro diff <a> <b>`` compares two run directories — or two legacy
``repro-bench/1..5`` artifacts (``BENCH_PR*.json``) — on their *gating*
surface (verdicts, violation indices, agreement flags, locked config)
and reports wall-clock numbers as deltas only, because the build
container has 1 CPU and wall-clock is not a gate anywhere in this repo.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from . import tracing

#: Schema tag of ``experiment.json``.
EXPERIMENT_SCHEMA = "repro-experiment/1"
#: Schema tag of ``manifest.json``.
MANIFEST_SCHEMA = "repro-manifest/1"
#: Legacy flat bench artifacts ``repro diff`` understands.
BENCH_SCHEMAS = tuple(f"repro-bench/{n}" for n in range(1, 6))

#: Events per feed batch in ``repro experiment run`` (affects span
#: count, so it is locked into the config hash).
DEFAULT_BATCH = 512


class ExperimentError(Exception):
    """A run could not be executed or an artifact could not be written."""


class DiffError(Exception):
    """The two artifacts cannot be compared (missing/foreign/mixed)."""


# -- canonical JSON + hashing ------------------------------------------------


def canonical_json(obj: Any) -> bytes:
    """Canonical bytes: sorted keys, no whitespace, trailing newline."""
    return (
        json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def content_hash(obj: Any) -> str:
    """sha256 hex digest of the canonical JSON form."""
    return hashlib.sha256(canonical_json(obj)).hexdigest()


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def normalize_report(doc: Mapping[str, Any]) -> Dict[str, Any]:
    """The deterministic subset of a ``repro-report/1`` document.

    Drops wall-clock timing and the source path; keeps the verdicts,
    findings (with their indices) and per-analysis payloads — everything
    two same-seed runs must agree on byte for byte.
    """
    out = json.loads(json.dumps(doc))  # deep copy, JSON-able only
    timing = out.get("timing")
    if isinstance(timing, dict):
        timing.pop("seconds", None)
        timing.pop("events_per_second", None)
    trace = out.get("trace")
    if isinstance(trace, dict):
        trace.pop("path", None)
    return out


# -- running an experiment ---------------------------------------------------


def _unique_dir(root: str, run_id: str) -> Tuple[str, str]:
    """Pick ``root/run_id`` or the first free ``-N`` suffix."""
    candidate = run_id
    n = 1
    while os.path.exists(os.path.join(root, candidate)):
        n += 1
        candidate = f"{run_id}-{n}"
    return os.path.join(root, candidate), candidate


def _finding_index(finding: Mapping[str, Any]) -> Optional[int]:
    for key in ("idx", "index", "event_idx", "at"):
        value = finding.get(key)
        if isinstance(value, int):
            return value
    return None


def run_experiment(
    workload: str,
    seed: int = 0,
    scale: float = 0.1,
    analyses: Sequence[str] = ("aerodrome",),
    packed: bool = False,
    out: str = "runs",
    run_id: Optional[str] = None,
    batch: int = DEFAULT_BATCH,
    wall_clock: bool = False,
) -> Dict[str, Any]:
    """Run one locked experiment; emit its artifact directory.

    Returns ``{"run_id", "run_dir", "experiment", "manifest", "report"}``.
    ``wall_clock=True`` trades span determinism for real monotonic span
    times (the config hash records the choice).
    """
    from ..sim.workloads.benchmarks import get_case
    from ..service.session import StreamingSession

    config = {
        "schema": EXPERIMENT_SCHEMA,
        "kind": "experiment",
        "workload": workload,
        "seed": int(seed),
        "scale": float(scale),
        "analyses": list(analyses),
        "packed": bool(packed),
        "batch": int(batch),
        "clock": "wall" if wall_clock else "ticks",
    }
    config_hash = content_hash(config)
    experiment_doc = dict(config)
    experiment_doc["config_hash"] = config_hash

    if run_id is None:
        run_id = f"{workload}-s{seed}-{config_hash[:8]}"
    os.makedirs(out, exist_ok=True)
    run_dir, run_id = _unique_dir(out, run_id)
    os.makedirs(run_dir)

    tracer = tracing.Tracer(
        clock=None if wall_clock else tracing.TickClock()
    )
    previous = tracing.active()
    tracing.activate(tracer)
    try:
        with tracer.span("experiment.generate", workload=workload, seed=seed):
            trace = get_case(workload).generate(seed=seed, scale=scale)
            events = list(trace)
        stream = StreamingSession(
            "experiment",
            [(name, {}) for name in analyses],
            name=workload,
            packed=packed,
        )
        with tracer.span("experiment.ingest", events=len(events)):
            for lo in range(0, len(events), batch):
                stream.feed(events[lo : lo + batch])
        if stream.error is not None:
            raise ExperimentError(
                f"session quarantined ({stream.error_code}): {stream.error}"
            )
        with tracer.span("experiment.finish"):
            result = stream.finish()
    finally:
        if previous is not None:
            tracing.activate(previous)
        else:
            tracing.deactivate()

    report_doc = result.to_json()
    normalized = normalize_report(report_doc)

    trace_path = os.path.join(run_dir, "trace.jsonl")
    span_count = tracer.dump_jsonl(trace_path)

    analyses_summary: List[Dict[str, Any]] = []
    for rep in normalized.get("analyses", []):
        violations = rep.get("violations", [])
        analyses_summary.append(
            {
                "analysis": rep.get("analysis"),
                "verdict": rep.get("verdict"),
                "violations": len(violations),
                "violation_indices": [
                    _finding_index(v)
                    for v in violations
                    if _finding_index(v) is not None
                ],
            }
        )

    manifest = {
        "schema": MANIFEST_SCHEMA,
        "kind": "experiment",
        "config_hash": config_hash,
        "report_hash": content_hash(normalized),
        "trace_hash": None if wall_clock else _sha256_file(trace_path),
        "spans": span_count,
        "verdict": report_doc.get("verdict"),
        "events": report_doc.get("trace", {}).get("events"),
        "events_swept": report_doc.get("timing", {}).get("events_swept"),
        "analyses": analyses_summary,
    }

    _write_bytes(os.path.join(run_dir, "experiment.json"),
                 canonical_json(experiment_doc))
    _write_bytes(os.path.join(run_dir, "manifest.json"),
                 canonical_json(manifest))
    _write_text(os.path.join(run_dir, "report.json"),
                json.dumps(report_doc, indent=2, sort_keys=True) + "\n")
    _write_text(os.path.join(run_dir, "report.md"),
                _report_md(run_id, experiment_doc, manifest, report_doc))

    return {
        "run_id": run_id,
        "run_dir": run_dir,
        "experiment": experiment_doc,
        "manifest": manifest,
        "report": report_doc,
    }


def _write_bytes(path: str, data: bytes) -> None:
    with open(path, "wb") as fh:
        fh.write(data)


def _write_text(path: str, text: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)


def _report_md(
    run_id: str,
    experiment: Mapping[str, Any],
    manifest: Mapping[str, Any],
    report: Mapping[str, Any],
) -> str:
    timing = report.get("timing", {})
    lines = [
        f"# Experiment run `{run_id}`",
        "",
        f"- workload: `{experiment.get('workload')}`"
        f" · seed {experiment.get('seed')}"
        f" · scale {experiment.get('scale')}"
        f" · packed {experiment.get('packed')}",
        f"- analyses: {', '.join(experiment.get('analyses', []))}",
        f"- config hash: `{experiment.get('config_hash')}`",
        f"- verdict: **{manifest.get('verdict')}**",
        f"- events: {manifest.get('events')}"
        f" (swept {manifest.get('events_swept')})"
        f" · spans: {manifest.get('spans')}",
        "",
        "| analysis | verdict | violations | first indices |",
        "|---|---|---|---|",
    ]
    for row in manifest.get("analyses", []):
        idxs = row.get("violation_indices", [])[:5]
        lines.append(
            f"| {row.get('analysis')} | {row.get('verdict')} "
            f"| {row.get('violations')} "
            f"| {', '.join(str(i) for i in idxs) or '—'} |"
        )
    seconds = timing.get("seconds")
    eps = timing.get("events_per_second")
    lines += [
        "",
        "Timing (informational — never hashed, never gated; this repo's",
        "CI runs on 1 CPU so only agreement gates):",
        "",
        f"- seconds: {seconds}",
        f"- events/second: {eps}",
        "",
    ]
    return "\n".join(lines)


# -- bench artifacts through the run-dir layout ------------------------------


def _bench_config(report: Mapping[str, Any]) -> Dict[str, Any]:
    """The locked-config view of a flat bench report.

    Shared by :func:`store_bench_run` (which hashes it into the run
    directory) and :func:`load_comparable` (which recomputes the same
    hash for flat ``BENCH_*.json`` files), so a stored bench run diffs
    clean against the flat artifact it was mirrored from.
    """
    config: Dict[str, Any] = {
        "schema": EXPERIMENT_SCHEMA,
        "kind": "bench",
        "bench_schema": report.get("schema"),
    }
    for key in ("scale", "seed", "repeats", "algorithm", "backend", "tables"):
        if key in report:
            config[key] = report[key]
    return config


def store_bench_run(
    report: Mapping[str, Any],
    runs_root: str,
    run_id: Optional[str] = None,
) -> Dict[str, Any]:
    """Mirror a flat ``repro-bench/*`` report into a run-id directory.

    ``repro bench`` keeps writing its flat ``BENCH_*.json`` for backward
    compatibility; this adds the same report under
    ``<runs_root>/<run-id>/`` with ``experiment.json`` + ``manifest.json``
    so ``repro diff`` and ``repro experiment list`` see bench runs too.
    """
    config = _bench_config(report)
    config_hash = content_hash(config)
    experiment_doc = dict(config)
    experiment_doc["config_hash"] = config_hash

    if run_id is None:
        run_id = f"bench-s{report.get('seed', 0)}-{config_hash[:8]}"
    os.makedirs(runs_root, exist_ok=True)
    run_dir, run_id = _unique_dir(runs_root, run_id)
    os.makedirs(run_dir)

    gate, _metrics = _bench_surface(report)
    summary = report.get("summary", {})
    all_agree = summary.get("all_agree")
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "kind": "bench",
        "config_hash": config_hash,
        "report_hash": content_hash(gate),
        "verdict": "pass" if all_agree else "fail",
        "workloads": len(report.get("workloads", [])),
    }

    _write_bytes(os.path.join(run_dir, "experiment.json"),
                 canonical_json(experiment_doc))
    _write_bytes(os.path.join(run_dir, "manifest.json"),
                 canonical_json(manifest))
    _write_text(os.path.join(run_dir, "report.json"),
                json.dumps(report, indent=2, sort_keys=True) + "\n")
    _write_text(
        os.path.join(run_dir, "report.md"),
        "\n".join(
            [
                f"# Bench run `{run_id}`",
                "",
                f"- bench schema: `{report.get('schema')}`"
                f" · seed {report.get('seed')} · scale {report.get('scale')}",
                f"- config hash: `{config_hash}`",
                f"- all_agree: **{all_agree}**"
                f" · workloads: {len(report.get('workloads', []))}",
                "",
                "Full numbers in `report.json` (flat BENCH_*.json kept for",
                "backward compatibility next to it).",
                "",
            ]
        ),
    )
    return {"run_id": run_id, "run_dir": run_dir, "manifest": manifest}


# -- loading + diffing -------------------------------------------------------


def _flatten(obj: Any, prefix: str, out: Dict[str, Any]) -> None:
    if isinstance(obj, Mapping):
        for key in sorted(obj):
            _flatten(obj[key], f"{prefix}.{key}" if prefix else str(key), out)
    elif isinstance(obj, list):
        for i, item in enumerate(obj):
            _flatten(item, f"{prefix}[{i}]", out)
    else:
        out[prefix] = obj


def _bench_surface(
    report: Mapping[str, Any],
) -> Tuple[Dict[str, Any], Dict[str, float]]:
    """(gating keys, informational metrics) of a repro-bench/* report."""
    gate: Dict[str, Any] = {}
    metrics: Dict[str, float] = {}
    for key in ("scale", "seed", "repeats", "algorithm", "backend"):
        if key in report:
            gate[key] = report[key]
    for row in report.get("workloads", []):
        name = row.get("name", "?")
        for key in (
            "serializable", "violation_idx", "agree", "events",
            "events_processed", "table", "threads",
        ):
            if key in row:
                gate[f"workloads[{name}].{key}"] = row[key]
        for key, value in row.items():
            if (key.endswith("_eps") or key.endswith("_seconds")
                    or key.startswith("speedup")):
                if isinstance(value, (int, float)):
                    metrics[f"workloads[{name}].{key}"] = float(value)
    summary = report.get("summary", {})
    for key, value in summary.items():
        if isinstance(value, bool):
            gate[f"summary.{key}"] = value
        elif isinstance(value, (int, float)):
            metrics[f"summary.{key}"] = float(value)
    service = report.get("service")
    if isinstance(service, Mapping):
        for key in ("agree", "shards", "batch", "workload", "analyses"):
            if key in service:
                gate[f"service.{key}"] = service[key]
        for key in ("offline_eps", "offline_seconds"):
            if isinstance(service.get(key), (int, float)):
                metrics[f"service.{key}"] = float(service[key])
    cluster = report.get("cluster")
    if isinstance(cluster, Mapping):
        flat: Dict[str, Any] = {}
        _flatten(cluster, "cluster", flat)
        for key, value in flat.items():
            if isinstance(value, bool) or isinstance(value, str):
                gate[key] = value
            elif isinstance(value, (int, float)):
                metrics[key] = float(value)
    if isinstance(report.get("peak_rss_kb"), (int, float)):
        metrics["peak_rss_kb"] = float(report["peak_rss_kb"])
    return gate, metrics


_METRIC_GATE_EXCLUDE = ("seconds", "events_per_second")


def _experiment_surface(
    run_dir: str,
) -> Tuple[Dict[str, Any], Dict[str, float]]:
    experiment = _read_json(os.path.join(run_dir, "experiment.json"))
    report = _read_json(os.path.join(run_dir, "report.json"))
    gate: Dict[str, Any] = {}
    for key in ("workload", "seed", "scale", "analyses", "packed", "batch",
                "config_hash"):
        if key in experiment:
            _flatten(experiment[key], key, gate)
    flat_report: Dict[str, Any] = {}
    _flatten(normalize_report(report), "report", flat_report)
    gate.update(flat_report)
    metrics: Dict[str, float] = {}
    timing = report.get("timing", {})
    for key in _METRIC_GATE_EXCLUDE:
        if isinstance(timing.get(key), (int, float)):
            metrics[f"timing.{key}"] = float(timing[key])
    return gate, metrics


def _read_json(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        raise DiffError(f"missing artifact: {path}")
    except json.JSONDecodeError as error:
        raise DiffError(f"unreadable artifact {path}: {error}")


def load_comparable(path: str) -> Dict[str, Any]:
    """Load a run directory or legacy bench artifact for diffing.

    Returns ``{"kind", "label", "gate", "metrics"}`` where ``gate`` maps
    flat key -> value (differences fail the diff) and ``metrics`` maps
    flat key -> float (reported as deltas only).
    """
    if os.path.isdir(path):
        experiment = _read_json(os.path.join(path, "experiment.json"))
        kind = experiment.get("kind", "experiment")
        if kind == "bench":
            report = _read_json(os.path.join(path, "report.json"))
            gate, metrics = _bench_surface(report)
            gate["bench_schema"] = experiment.get("bench_schema")
            gate["config_hash"] = experiment.get("config_hash")
        else:
            gate, metrics = _experiment_surface(path)
        return {"kind": kind, "label": path, "gate": gate, "metrics": metrics}
    doc = _read_json(path)
    schema = doc.get("schema")
    if schema in BENCH_SCHEMAS:
        gate, metrics = _bench_surface(doc)
        gate["bench_schema"] = schema
        gate["config_hash"] = content_hash(_bench_config(doc))
        return {"kind": "bench", "label": path, "gate": gate,
                "metrics": metrics}
    raise DiffError(
        f"{path}: not a run directory and schema {schema!r} is not a "
        f"known bench artifact ({', '.join(BENCH_SCHEMAS)})"
    )


_MISSING = object()


def diff_runs(path_a: str, path_b: str) -> Dict[str, Any]:
    """Compare two artifacts; see :func:`load_comparable` for inputs.

    Returns::

        {"equal": bool, "kind": str, "a": label, "b": label,
         "differing": [{"key", "a", "b"}, ...],   # gating differences
         "metrics": [{"key", "a", "b", "delta"}, ...]}  # informational
    """
    a = load_comparable(path_a)
    b = load_comparable(path_b)
    if a["kind"] != b["kind"]:
        raise DiffError(
            f"cannot compare a {a['kind']} run with a {b['kind']} run "
            f"({path_a} vs {path_b})"
        )
    differing: List[Dict[str, Any]] = []
    for key in sorted(set(a["gate"]) | set(b["gate"])):
        va = a["gate"].get(key, _MISSING)
        vb = b["gate"].get(key, _MISSING)
        if va != vb:
            differing.append(
                {
                    "key": key,
                    "a": None if va is _MISSING else va,
                    "b": None if vb is _MISSING else vb,
                }
            )
    metrics: List[Dict[str, Any]] = []
    for key in sorted(set(a["metrics"]) & set(b["metrics"])):
        va, vb = a["metrics"][key], b["metrics"][key]
        metrics.append({"key": key, "a": va, "b": vb, "delta": vb - va})
    return {
        "equal": not differing,
        "kind": a["kind"],
        "a": a["label"],
        "b": b["label"],
        "differing": differing,
        "metrics": metrics,
    }


def format_diff(
    diff: Mapping[str, Any],
    max_metrics: int = 12,
    max_keys: int = 32,
) -> str:
    """Human rendering of a :func:`diff_runs` result.

    Long listings are truncated with an explicit "… N more" line (the
    full set is always available via ``repro diff --json``).
    """
    lines: List[str] = []
    if diff["equal"]:
        lines.append(
            f"runs agree ({diff['kind']}): {diff['a']} == {diff['b']}"
        )
    else:
        lines.append(
            f"runs DIFFER ({diff['kind']}): {diff['a']} vs {diff['b']} — "
            f"{len(diff['differing'])} gating key(s):"
        )
        for row in diff["differing"][:max_keys]:
            lines.append(f"  {row['key']}: {row['a']!r} != {row['b']!r}")
        hidden = len(diff["differing"]) - max_keys
        if hidden > 0:
            lines.append(f"  … {hidden} more gating keys (see --json)")
    shown = 0
    for row in diff["metrics"]:
        if shown >= max_metrics:
            lines.append(
                f"  … {len(diff['metrics']) - shown} more metric deltas"
            )
            break
        if row["a"]:
            pct = 100.0 * row["delta"] / row["a"]
            lines.append(
                f"  Δ {row['key']}: {row['a']:.6g} -> {row['b']:.6g} "
                f"({pct:+.1f}%)"
            )
        else:
            lines.append(
                f"  Δ {row['key']}: {row['a']:.6g} -> {row['b']:.6g}"
            )
        shown += 1
    return "\n".join(lines)
