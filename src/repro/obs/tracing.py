"""Lightweight begin/end span tracing for service and experiment runs.

A :class:`Tracer` collects :class:`Span` records from well-known sites —
session ingest (``session.ingest``), shard dispatch (``shard.dispatch``),
checkpoint writes (``shard.checkpoint``), live migration
(``cluster.migrate``) and gossip ticks (``cluster.tick``) — and dumps
them as one-JSON-object-per-line ``trace.jsonl``.

Tracing is **off by default**: the module-level :func:`span` helper is a
no-op until :func:`activate` installs a tracer, so the hot paths carry
only a global ``is None`` check. The tracer's ``clock`` attribute is
substitutable — bind it to a netsim ``SimClock`` (or the integer
:class:`TickClock`) and same-seed chaos/experiment runs produce
byte-identical span logs you can diff.

Span schema (one JSON object per ``trace.jsonl`` line)::

    {"seq": 0, "name": "session.ingest", "start": 3, "end": 4,
     "dur": 1, "attrs": {"session": "t0", "events": 512}}

``seq`` is the begin order (total order even when clocks are coarse).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass
class Span:
    """One finished begin/end interval."""

    seq: int
    name: str
    start: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "dur": self.end - self.start,
            "attrs": self.attrs,
        }


class TickClock:
    """A deterministic clock: each call returns the next integer.

    Experiment runs use this by default so ``trace.jsonl`` is
    byte-identical across same-seed invocations regardless of hardware.
    """

    def __init__(self) -> None:
        self._tick = -1

    def __call__(self) -> int:
        self._tick += 1
        return self._tick


class Tracer:
    """Collects spans; thread-safe; clock is substitutable.

    Args:
        clock: Zero-arg callable returning the current time. Defaults to
            ``time.monotonic``; bind a netsim ``SimClock.time`` or a
            :class:`TickClock` for deterministic logs.
        limit: Hard cap on retained spans (oldest kept) so a runaway
            chaos drill cannot exhaust memory.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        limit: int = 1_000_000,
    ) -> None:
        self.clock: Callable[[], float] = clock or time.monotonic
        self.limit = limit
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._seq = 0

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        with self._lock:
            seq = self._seq
            self._seq += 1
            start = self.clock()
        try:
            yield
        finally:
            end = self.clock()
            with self._lock:
                if len(self._spans) < self.limit:
                    self._spans.append(Span(seq, name, start, end, attrs))

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._seq = 0

    def to_jsonl(self) -> str:
        """Render every span, ordered by begin sequence."""
        rows = sorted(self.spans(), key=lambda s: s.seq)
        return "".join(
            json.dumps(s.to_json(), sort_keys=True) + "\n" for s in rows
        )

    def dump_jsonl(self, path: str) -> int:
        """Write ``trace.jsonl``; returns the number of spans written."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return text.count("\n")


# -- module-level switchboard ------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def activate(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the process-wide tracer."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def deactivate() -> None:
    """Remove the active tracer; :func:`span` becomes a no-op again."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[Tracer]:
    return _ACTIVE


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[None]:
    """Record a span on the active tracer, or do nothing when inactive.

    This is the form the service hot paths call — the inactive cost is
    one global load and an ``is None`` test per *batch* (never per
    event).
    """
    tracer = _ACTIVE
    if tracer is None:
        yield
    else:
        with tracer.span(name, **attrs):
            yield
