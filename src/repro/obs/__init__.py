"""repro.obs — observability: metrics, experiment artifacts, tracing.

Three legs, one golden path:

* :mod:`repro.obs.metrics` — typed counters/gauges/histograms behind a
  process-wide registry, the versioned ``repro-stats/1`` schema stamped
  on every ``service-stats`` document, and a Prometheus text exposition
  (``repro serve --metrics-port`` / ``repro service-stats --format prom``).
* :mod:`repro.obs.experiment` — ``repro experiment run`` locks
  workload/scale/seed/analyses into a content-hashed ``experiment.json``
  and emits ``manifest.json`` + ``report.json`` + ``report.md`` +
  ``trace.jsonl`` under a run-id directory; ``repro diff`` compares two
  runs (or legacy ``repro-bench/*`` artifacts) without hand-diffing.
* :mod:`repro.obs.tracing` — lightweight begin/end spans around session
  ingest, shard dispatch, checkpoints, migration and gossip ticks,
  deterministic under ``SimClock`` so chaos runs produce diffable logs.

The full metric catalog, artifact layout and span schema are documented
in ``docs/OBSERVABILITY.md``.
"""

from .metrics import (  # noqa: F401
    STATS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    METRICS_CATALOG,
    stats_to_prom,
    validate_prom_text,
)
from .tracing import Tracer, TickClock, span, activate, deactivate, active  # noqa: F401
from .experiment import (  # noqa: F401
    EXPERIMENT_SCHEMA,
    MANIFEST_SCHEMA,
    canonical_json,
    content_hash,
    run_experiment,
    store_bench_run,
    load_comparable,
    diff_runs,
)

__all__ = [
    "STATS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS_CATALOG",
    "stats_to_prom",
    "validate_prom_text",
    "Tracer",
    "TickClock",
    "span",
    "activate",
    "deactivate",
    "active",
    "EXPERIMENT_SCHEMA",
    "MANIFEST_SCHEMA",
    "canonical_json",
    "content_hash",
    "run_experiment",
    "store_bench_run",
    "load_comparable",
    "diff_runs",
]
