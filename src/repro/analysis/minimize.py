"""Violation minimization by structure-aware delta debugging.

A violating benchmark trace has tens of thousands of events; the cycle
that matters usually involves a handful. This module shrinks a
violating trace to a *1-minimal* one (at transaction granularity):
removing any single remaining unit makes the violation disappear — the
trace-level analog of Zeller's ddmin, specialised to our domain:

* the removable **units** are whole transactions (a unary transaction
  is its single event), so begin/end pairs never split;
* every candidate is gated by the well-formedness validator — a
  candidate that breaks lock discipline or fork/join order is simply
  treated as "does not reproduce" and never produced as output;
* the reproduction predicate is "some checker reports a violation",
  with the checker pluggable.

The result composes with :mod:`repro.analysis.explain` and
:mod:`repro.analysis.timeline`: minimize first, then render the
few-event core and its witness cycle (that is exactly what
``repro minimize`` does).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..trace.events import Event
from ..trace.trace import Trace
from ..trace.transactions import extract_transactions
from ..trace.wellformed import is_well_formed

#: Predicate deciding whether a candidate trace still "reproduces".
Reproduces = Callable[[Trace], bool]


def _subtrace(trace: Trace, units: Sequence[List[int]], keep: Sequence[bool]) -> Trace:
    """The trace restricted to the units marked ``keep`` (order kept)."""
    wanted = set()
    for unit, kept in zip(units, keep):
        if kept:
            wanted.update(unit)
    result = Trace(name=f"{trace.name}-min")
    for event in trace:
        if event.idx in wanted:
            result.append(Event(event.thread, event.op, event.target))
    return result


def _violates(trace: Trace, algorithm: str) -> bool:
    from ..api.session import check as check_trace

    return not check_trace(trace, algorithm=algorithm).serializable


def minimize_violation(
    trace: Trace,
    algorithm: str = "aerodrome",
    reproduces: Optional[Reproduces] = None,
) -> Trace:
    """Shrink a violating trace to a 1-minimal violating subtrace.

    Args:
        trace: A well-formed trace on which ``reproduces`` holds.
        algorithm: Checker used by the default predicate.
        reproduces: Custom predicate (default: ``algorithm`` reports a
            violation). Candidates that are not well-formed never reach
            it.

    Returns:
        A well-formed trace on which the predicate still holds and from
        which no single transaction unit can be removed — usually the
        bare witness cycle plus whatever orders it.

    Raises:
        ValueError: If the predicate does not hold on ``trace`` itself.
    """
    predicate: Reproduces = reproduces or (lambda t: _violates(t, algorithm))
    if not predicate(trace):
        raise ValueError("the input trace does not reproduce the violation")

    units = [txn.event_indices for txn in extract_transactions(trace).transactions]
    keep = [True] * len(units)

    def holds(candidate_keep: Sequence[bool]) -> bool:
        candidate = _subtrace(trace, units, candidate_keep)
        return is_well_formed(candidate) and predicate(candidate)

    # Phase 1 — coarse ddmin: try dropping exponentially shrinking
    # chunks of units until single-unit granularity.
    chunk = max(1, sum(keep) // 2)
    while chunk >= 1:
        changed = False
        start = 0
        while start < len(units):
            if not any(keep[start:start + chunk]):
                start += chunk
                continue
            trial = keep[:]
            trial[start:start + chunk] = [False] * len(trial[start:start + chunk])
            if holds(trial):
                keep = trial
                changed = True
            start += chunk
        if chunk == 1 and not changed:
            break
        if not changed:
            chunk //= 2
        # On progress, retry at the same granularity: dropping one
        # chunk often unlocks its neighbours.
    return _subtrace(trace, units, keep)


def is_one_minimal(
    trace: Trace,
    algorithm: str = "aerodrome",
    reproduces: Optional[Reproduces] = None,
) -> bool:
    """Whether no single transaction unit of ``trace`` can be dropped.

    The postcondition of :func:`minimize_violation`, exposed for tests.
    """
    predicate: Reproduces = reproduces or (lambda t: _violates(t, algorithm))
    units = [txn.event_indices for txn in extract_transactions(trace).transactions]
    for skip in range(len(units)):
        keep = [i != skip for i in range(len(units))]
        candidate = _subtrace(trace, units, keep)
        if is_well_formed(candidate) and predicate(candidate):
            return False
    return True
