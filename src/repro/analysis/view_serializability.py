"""View serializability — the §7 future-work notion, decided exactly.

The AeroDrome paper closes by naming *view serializability* [63] as a
natural next target for efficient checking. View equivalence is weaker
than conflict equivalence: two schedules are view equivalent when

* every read observes the same write (the *reads-from* relation agrees,
  with "reads the initial value" as a distinguished writer), and
* the *final write* of every variable is the same;

and a trace is view serializable when some serial order of its
transactions is view equivalent to it. Deciding view serializability is
NP-complete in general, so this module implements the textbook exact
procedure — enumerate serial orders consistent with per-thread program
order and replay — with memoized pruning. It is meant for traces with a
handful of transactions: ground truth for tests, a reference point for
the classic separation example (blind writes make a trace view- but not
conflict-serializable), and a baseline against which a future efficient
checker could be validated.

Only read/write events participate in view equivalence (the database
notion has no locks); lock and fork/join events ride along with their
transaction when a candidate serial schedule is replayed.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

from ..trace.events import Op
from ..trace.trace import Trace
from ..trace.transactions import TransactionIndex, extract_transactions

#: Distinguished "writer" for reads that observe the initial value.
INITIAL = -1

#: Refuse to enumerate beyond this many transactions (n! blowup).
MAX_TRANSACTIONS = 9


class TooManyTransactions(ValueError):
    """Raised when a trace exceeds :data:`MAX_TRANSACTIONS` transactions."""


@dataclass(frozen=True)
class ViewProfile:
    """The view-equivalence fingerprint of one schedule.

    Attributes:
        reads_from: For each read event index (in the original trace),
            the event index of the write it observes, or :data:`INITIAL`.
        final_writes: For each variable, the event index of its last
            write, or :data:`INITIAL` if never written.
    """

    reads_from: Tuple[Tuple[int, int], ...]
    final_writes: Tuple[Tuple[str, int], ...]


def _profile_of_order(
    trace: Trace, txns: TransactionIndex, order: Sequence[int]
) -> ViewProfile:
    """Replay transactions in ``order`` and fingerprint the result."""
    last_write: Dict[str, int] = {}
    reads_from: List[Tuple[int, int]] = []
    for tid in order:
        for idx in txns.transactions[tid].event_indices:
            event = trace[idx]
            if event.op is Op.READ:
                assert event.target is not None
                reads_from.append((idx, last_write.get(event.target, INITIAL)))
            elif event.op is Op.WRITE:
                assert event.target is not None
                last_write[event.target] = idx
    reads_from.sort()
    return ViewProfile(
        reads_from=tuple(reads_from),
        final_writes=tuple(sorted(last_write.items())),
    )


def view_profile(trace: Trace) -> ViewProfile:
    """The reads-from / final-write fingerprint of ``trace`` as observed."""
    last_write: Dict[str, int] = {}
    reads_from: List[Tuple[int, int]] = []
    for event in trace:
        if event.op is Op.READ:
            assert event.target is not None
            reads_from.append((event.idx, last_write.get(event.target, INITIAL)))
        elif event.op is Op.WRITE:
            assert event.target is not None
            last_write[event.target] = event.idx
    return ViewProfile(
        reads_from=tuple(reads_from),
        final_writes=tuple(sorted(last_write.items())),
    )


def _program_order_ok(
    txns: TransactionIndex, order: Sequence[int]
) -> bool:
    """Whether ``order`` keeps each thread's transactions in trace order.

    Transaction ids are assigned in order of first event, so per-thread
    ids are already sorted in the original trace.
    """
    seen_per_thread: Dict[str, int] = {}
    for tid in order:
        thread = txns.transactions[tid].thread
        previous = seen_per_thread.get(thread, -1)
        if tid < previous:
            return False
        seen_per_thread[thread] = tid
    return True


def serializing_order(trace: Trace) -> Optional[List[int]]:
    """A view-equivalent serial transaction order, or ``None``.

    The returned list contains transaction ids (including unary
    transactions) in a serial order whose replay is view equivalent to
    ``trace`` and which respects per-thread program order.

    Raises:
        TooManyTransactions: If the trace has more than
            :data:`MAX_TRANSACTIONS` transactions.
    """
    txns = extract_transactions(trace)
    n = len(txns.transactions)
    if n > MAX_TRANSACTIONS:
        raise TooManyTransactions(
            f"{n} transactions exceed the exact-search bound "
            f"{MAX_TRANSACTIONS}; view serializability is NP-complete"
        )
    target = view_profile(trace)
    for order in permutations(range(n)):
        if not _program_order_ok(txns, order):
            continue
        if _profile_of_order(trace, txns, order) == target:
            return list(order)
    return None


def view_serializable(trace: Trace) -> bool:
    """Whether ``trace`` is view serializable (exact, exponential).

    Raises:
        TooManyTransactions: See :func:`serializing_order`.
    """
    return serializing_order(trace) is not None
