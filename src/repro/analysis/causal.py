"""Causal atomicity — the weaker per-transaction criterion of [11].

The paper's conclusion (§7) lists causal atomicity (Farzan &
Madhusudan, CAV'06) as a natural extension target: instead of requiring
*every* transaction to be serializable together, ask for each
transaction ``T`` whether there is an equivalent trace in which *T
alone* is serial. On the conflict-serializability transaction graph
this becomes: ``T`` is causally atomic iff ``T`` does not lie on any
⋖Txn cycle — i.e. its strongly connected component is trivial.

Consequences worth noting (and tested):

* a trace is conflict serializable iff every transaction is causally
  atomic;
* a non-serializable trace can still have many causally atomic
  transactions — the analysis localizes the blame to the cyclic ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..baselines.oracle import transaction_graph
from ..trace.trace import Trace
from ..trace.transactions import Transaction, extract_transactions


@dataclass(frozen=True)
class CausalAtomicityReport:
    """Per-transaction causal atomicity verdicts for one trace.

    Attributes:
        transactions: All transactions of the trace.
        violating: Transactions on some ⋖Txn cycle (not causally atomic).
    """

    transactions: List[Transaction]
    violating: List[Transaction]

    @property
    def causally_atomic(self) -> List[Transaction]:
        blamed = {txn.tid for txn in self.violating}
        return [txn for txn in self.transactions if txn.tid not in blamed]

    @property
    def all_atomic(self) -> bool:
        """Equivalent to conflict serializability of the whole trace."""
        return not self.violating

    def __str__(self) -> str:
        total = len(self.transactions)
        bad = len(self.violating)
        if bad == 0:
            return f"all {total} transactions causally atomic"
        blamed = ", ".join(
            f"#{txn.tid}({txn.thread})" for txn in self.violating[:8]
        )
        suffix = ", ..." if bad > 8 else ""
        return f"{bad}/{total} transactions on ⋖Txn cycles: {blamed}{suffix}"


def check_causal_atomicity(trace: Trace) -> CausalAtomicityReport:
    """Classify every transaction of ``trace`` (quadratic; oracle-grade)."""
    graph = transaction_graph(trace)
    index = extract_transactions(trace)
    violating_ids = set()
    for component in graph.strongly_connected_components():
        if len(component) > 1:
            violating_ids.update(component)
    violating = [index.transactions[tid] for tid in sorted(violating_ids)]
    return CausalAtomicityReport(
        transactions=index.transactions, violating=violating
    )
