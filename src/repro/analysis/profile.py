"""Trace profiling: the workload-shape report behind the paper's tables.

The paper's evaluation narrative keys everything on trace *shape*:
how many transactions there are (Column 6), whether conflicts cross
threads early or late, and how contended variables and locks are. This
module computes that shape for an arbitrary trace and renders it as an
ASCII report (``python -m repro.cli profile``), so a user can predict
which checker will win on their workload before running either:
many transactions + late violation → AeroDrome territory (Table 1);
tiny graph + early violation → Velodrome parity (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..trace.events import Op
from ..trace.trace import Trace
from ..trace.transactions import extract_transactions


@dataclass(frozen=True)
class AccessProfile:
    """Access pattern of one variable or lock.

    Attributes:
        name: The variable/lock identifier.
        reads: Read count (acquires, for locks).
        writes: Write count (releases, for locks).
        threads: Distinct accessing threads, in first-touch order.
    """

    name: str
    reads: int
    writes: int
    threads: Tuple[str, ...]

    @property
    def total(self) -> int:
        return self.reads + self.writes

    @property
    def is_shared(self) -> bool:
        """Touched by more than one thread — the only variables that can
        contribute inter-thread ⋖Txn edges."""
        return len(self.threads) > 1


@dataclass(frozen=True)
class TraceProfile:
    """The full shape report of :func:`profile_trace`.

    Attributes:
        events: Total event count.
        op_counts: Events per operation kind.
        per_thread_ops: ``{thread: {op: count}}`` histogram.
        variables: Per-variable access profiles, hottest first.
        locks: Per-lock access profiles (reads = acquires), hottest first.
        transactions: Non-unary transaction count (paper Column 6).
        unary_transactions: Count of single-event trivial transactions.
        txn_length_histogram: ``{length-bucket: count}`` for non-unary
            transactions, bucketed by powers of two.
        cross_thread_conflicts: Direct conflicting pairs that cross
            threads (nearest-conflict count, not the closure).
        first_cross_conflict_idx: Index of the first inter-thread
            conflict — early values signal Table 2-like workloads.
    """

    events: int
    op_counts: Dict[Op, int]
    per_thread_ops: Dict[str, Dict[Op, int]]
    variables: List[AccessProfile]
    locks: List[AccessProfile]
    transactions: int
    unary_transactions: int
    txn_length_histogram: Dict[int, int]
    cross_thread_conflicts: int
    first_cross_conflict_idx: Optional[int]

    @property
    def shared_variables(self) -> List[AccessProfile]:
        return [v for v in self.variables if v.is_shared]

    @property
    def threads(self) -> List[str]:
        return sorted(self.per_thread_ops)


def _bucket(length: int) -> int:
    """Power-of-two bucket floor for the length histogram."""
    bucket = 1
    while bucket * 2 <= length:
        bucket *= 2
    return bucket


def profile_trace(trace: Trace) -> TraceProfile:
    """Two passes: one over events, one transaction extraction."""
    op_counts: Dict[Op, int] = {}
    per_thread: Dict[str, Dict[Op, int]] = {}
    var_reads: Dict[str, int] = {}
    var_writes: Dict[str, int] = {}
    var_threads: Dict[str, List[str]] = {}
    lock_acqs: Dict[str, int] = {}
    lock_rels: Dict[str, int] = {}
    lock_threads: Dict[str, List[str]] = {}

    cross_conflicts = 0
    first_cross: Optional[int] = None
    last_writer: Dict[str, str] = {}
    last_readers: Dict[str, Dict[str, int]] = {}
    last_releaser: Dict[str, str] = {}

    def note_cross(idx: int, count: int = 1) -> None:
        nonlocal cross_conflicts, first_cross
        if count <= 0:
            return
        cross_conflicts += count
        if first_cross is None:
            first_cross = idx

    def touch(registry: Dict[str, List[str]], key: str, thread: str) -> None:
        threads = registry.setdefault(key, [])
        if thread not in threads:
            threads.append(thread)

    for event in trace:
        op = event.op
        thread = event.thread
        op_counts[op] = op_counts.get(op, 0) + 1
        thread_ops = per_thread.setdefault(thread, {})
        thread_ops[op] = thread_ops.get(op, 0) + 1

        if op is Op.READ:
            variable = event.target
            var_reads[variable] = var_reads.get(variable, 0) + 1
            touch(var_threads, variable, thread)
            writer = last_writer.get(variable)
            if writer is not None and writer != thread:
                note_cross(event.idx)
            last_readers.setdefault(variable, {})[thread] = event.idx
        elif op is Op.WRITE:
            variable = event.target
            var_writes[variable] = var_writes.get(variable, 0) + 1
            touch(var_threads, variable, thread)
            writer = last_writer.get(variable)
            if writer is not None and writer != thread:
                note_cross(event.idx)
            readers = last_readers.pop(variable, {})
            note_cross(event.idx, sum(1 for u in readers if u != thread))
            last_writer[variable] = thread
        elif op is Op.ACQUIRE:
            lock = event.target
            lock_acqs[lock] = lock_acqs.get(lock, 0) + 1
            touch(lock_threads, lock, thread)
            releaser = last_releaser.get(lock)
            if releaser is not None and releaser != thread:
                note_cross(event.idx)
        elif op is Op.RELEASE:
            lock = event.target
            lock_rels[lock] = lock_rels.get(lock, 0) + 1
            last_releaser[lock] = thread

    index = extract_transactions(trace)
    histogram: Dict[int, int] = {}
    transactions = unary = 0
    for txn in index.transactions:
        if txn.is_unary:
            unary += 1
            continue
        transactions += 1
        bucket = _bucket(len(txn))
        histogram[bucket] = histogram.get(bucket, 0) + 1

    variables = sorted(
        (
            AccessProfile(
                name=name,
                reads=var_reads.get(name, 0),
                writes=var_writes.get(name, 0),
                threads=tuple(var_threads.get(name, ())),
            )
            for name in var_threads
        ),
        key=lambda p: (-p.total, p.name),
    )
    locks = sorted(
        (
            AccessProfile(
                name=name,
                reads=lock_acqs.get(name, 0),
                writes=lock_rels.get(name, 0),
                threads=tuple(lock_threads.get(name, ())),
            )
            for name in lock_threads
        ),
        key=lambda p: (-p.total, p.name),
    )
    return TraceProfile(
        events=len(trace),
        op_counts=op_counts,
        per_thread_ops=per_thread,
        variables=variables,
        locks=locks,
        transactions=transactions,
        unary_transactions=unary,
        txn_length_histogram=histogram,
        cross_thread_conflicts=cross_conflicts,
        first_cross_conflict_idx=first_cross,
    )


def format_profile(profile: TraceProfile, top: int = 10) -> str:
    """Render a profile as the CLI's ASCII report."""
    lines: List[str] = []
    lines.append(f"events            : {profile.events}")
    lines.append(f"threads           : {len(profile.threads)}")
    lines.append(
        f"transactions      : {profile.transactions} "
        f"(+{profile.unary_transactions} unary)"
    )
    ops = ", ".join(
        f"{op.name.lower()}={count}"
        for op, count in sorted(profile.op_counts.items())
    )
    lines.append(f"operations        : {ops}")
    lines.append(f"cross-thread confl: {profile.cross_thread_conflicts}")
    first = profile.first_cross_conflict_idx
    lines.append(
        "first cross confl : "
        + ("none" if first is None else f"event {first}/{profile.events}")
    )
    if profile.txn_length_histogram:
        histogram = ", ".join(
            f"[{bucket}-{bucket * 2 - 1}]×{count}"
            for bucket, count in sorted(profile.txn_length_histogram.items())
        )
        lines.append(f"txn lengths       : {histogram}")
    if profile.variables:
        lines.append(f"hot variables (top {top}):")
        for var in profile.variables[:top]:
            shared = "shared" if var.is_shared else "local"
            lines.append(
                f"  {var.name:<16} r={var.reads:<6} w={var.writes:<6} "
                f"threads={len(var.threads)} ({shared})"
            )
    if profile.locks:
        lines.append("locks:")
        for lock in profile.locks[:top]:
            lines.append(
                f"  {lock.name:<16} acq={lock.reads:<6} "
                f"threads={len(lock.threads)}"
            )
    return "\n".join(lines)
