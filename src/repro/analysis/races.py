"""Happens-before data race detection with FastTrack-style epochs.

The paper's future work (§7) suggests "improving the efficiency of the
proposed dynamic analysis for atomicity by incorporating ideas from data
race detection", citing FastTrack's classic epoch optimization [14].
This module implements that machinery in full on our trace substrate —
a sound and precise happens-before race detector whose per-access state
is an *epoch* (a single ``clock@thread`` pair) in the common case and a
full vector clock only where reads are genuinely concurrent.

Happens-before here is the standard synchronization order: program
order, release→acquire on a common lock, and fork/join edges — note it
does *not* include the variable-conflict edges of ≤CHB (those are what
race detection is checking, not what it assumes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..trace.events import Event, Op
from ..trace.trace import Trace
from ..core.vector_clock import ThreadRegistry, VectorClock


@dataclass(frozen=True)
class Epoch:
    """``c@t`` — the access time ``c`` of one thread ``t`` (FastTrack)."""

    clock: int
    thread: int

    def leq(self, vc: VectorClock) -> bool:
        """``c@t ⊑ V`` iff ``c <= V(t)``."""
        return self.clock <= vc.get(self.thread)

    def __str__(self) -> str:
        return f"{self.clock}@{self.thread}"


@dataclass(frozen=True)
class Race:
    """A detected data race on one variable.

    Attributes:
        variable: The racy memory location.
        event_idx: Index of the second (racing) access.
        thread: The thread performing the second access.
        kind: ``"write-write"``, ``"write-read"`` or ``"read-write"``.
    """

    variable: str
    event_idx: int
    thread: str
    kind: str

    def __str__(self) -> str:
        return (
            f"{self.kind} race on {self.variable!r} at event "
            f"{self.event_idx} in thread {self.thread}"
        )


class _VarRaceState:
    """Per-variable FastTrack state: write epoch + adaptive read state."""

    __slots__ = ("write_epoch", "read_epoch", "read_vc")

    def __init__(self) -> None:
        self.write_epoch: Optional[Epoch] = None
        self.read_epoch: Optional[Epoch] = None  # used while reads are ordered
        self.read_vc: Optional[VectorClock] = None  # after concurrent reads


class FastTrackDetector:
    """Streaming happens-before race detector with epoch optimization.

    Unlike the atomicity checkers, race detection does not stop at the
    first finding: all races are collected (one report per racy access).
    """

    def __init__(self) -> None:
        self.races: List[Race] = []
        self._threads = ThreadRegistry()
        self._clock: Dict[int, VectorClock] = {}
        self._locks: Dict[str, VectorClock] = {}
        self._vars: Dict[str, _VarRaceState] = {}
        self.events_processed = 0

    # -- plumbing ------------------------------------------------------------

    def _thread(self, name: str) -> int:
        t = self._threads.index_of(name)
        if t not in self._clock:
            self._clock[t] = VectorClock.unit(t)
        return t

    def _epoch(self, t: int) -> Epoch:
        return Epoch(self._clock[t].get(t), t)

    def _report(self, event: Event, kind: str) -> None:
        self.races.append(
            Race(
                variable=event.target,  # type: ignore[arg-type]
                event_idx=event.idx,
                thread=event.thread,
                kind=kind,
            )
        )

    # -- handlers ------------------------------------------------------------

    def _read(self, t: int, event: Event) -> None:
        state = self._vars.setdefault(event.target, _VarRaceState())  # type: ignore[arg-type]
        clock = self._clock[t]
        if state.write_epoch is not None and not state.write_epoch.leq(clock):
            self._report(event, "write-read")
        # FastTrack's adaptive read state: same epoch / ordered epoch
        # stays an epoch; concurrent reads inflate to a vector clock.
        epoch = self._epoch(t)
        if state.read_vc is not None:
            state.read_vc.set_component(t, epoch.clock)
        elif state.read_epoch is None or state.read_epoch.leq(clock):
            state.read_epoch = epoch
        else:
            vc = VectorClock.bottom()
            vc.set_component(state.read_epoch.thread, state.read_epoch.clock)
            vc.set_component(t, epoch.clock)
            state.read_epoch = None
            state.read_vc = vc

    def _write(self, t: int, event: Event) -> None:
        state = self._vars.setdefault(event.target, _VarRaceState())  # type: ignore[arg-type]
        clock = self._clock[t]
        if state.write_epoch is not None and not state.write_epoch.leq(clock):
            self._report(event, "write-write")
        if state.read_epoch is not None and not state.read_epoch.leq(clock):
            self._report(event, "read-write")
        elif state.read_vc is not None and not state.read_vc.leq(clock):
            self._report(event, "read-write")
        state.write_epoch = self._epoch(t)
        state.read_epoch = None
        state.read_vc = None

    # -- dispatch ------------------------------------------------------------

    def process(self, event: Event) -> None:
        t = self._thread(event.thread)
        op = event.op
        if op is Op.READ:
            self._read(t, event)
        elif op is Op.WRITE:
            self._write(t, event)
        elif op is Op.ACQUIRE:
            clock = self._locks.get(event.target)  # type: ignore[arg-type]
            if clock is not None:
                self._clock[t].join(clock)
        elif op is Op.RELEASE:
            self._locks[event.target] = self._clock[t].copy()  # type: ignore[index]
            self._clock[t].increment(t)
        elif op is Op.FORK:
            u = self._thread(event.target)  # type: ignore[arg-type]
            self._clock[u].join(self._clock[t])
            self._clock[t].increment(t)
        elif op is Op.JOIN:
            u = self._thread(event.target)  # type: ignore[arg-type]
            self._clock[t].join(self._clock[u])
        # begin/end are atomicity markers: irrelevant to races.
        self.events_processed += 1

    def run(self, events) -> List[Race]:
        for event in events:
            self.process(event)
        return self.races

    @property
    def racy_variables(self) -> set:
        return {race.variable for race in self.races}


def find_races(trace: Trace) -> List[Race]:
    """All happens-before data races in ``trace``."""
    return FastTrackDetector().run(trace)
