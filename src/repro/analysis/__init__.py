"""Event-level analyses: ≤CHB, statistics, races, locksets, causal
atomicity, violation explanations."""

from .causal import CausalAtomicityReport, check_causal_atomicity
from .chb import ChbIndex, chb_pairs, compute_chb
from .explain import Explanation, WitnessEdge, explain
from .graph_export import event_graph_dot, save_dot, transaction_graph_dot
from .minimize import is_one_minimal, minimize_violation
from .lockset import (
    LocksetAnalyzer,
    LocksetReport,
    LocksetWarning,
    VarState,
    lockset_analysis,
)
from .profile import AccessProfile, TraceProfile, format_profile, profile_trace
from .races import Epoch, FastTrackDetector, Race, find_races
from .serial_witness import (
    is_serial,
    serial_order,
    serial_witness,
    verify_equivalence,
)
from .stats import TraceStats, compute_stats
from .timeline import render_columns, render_with_verdict
from .view_serializability import (
    TooManyTransactions,
    ViewProfile,
    serializing_order,
    view_profile,
    view_serializable,
)

__all__ = [
    "minimize_violation",
    "is_one_minimal",
    "render_columns",
    "render_with_verdict",
    "transaction_graph_dot",
    "event_graph_dot",
    "save_dot",
    "profile_trace",
    "format_profile",
    "TraceProfile",
    "AccessProfile",
    "serial_witness",
    "serial_order",
    "is_serial",
    "verify_equivalence",
    "view_serializable",
    "serializing_order",
    "view_profile",
    "ViewProfile",
    "TooManyTransactions",
    "LocksetAnalyzer",
    "LocksetReport",
    "LocksetWarning",
    "VarState",
    "lockset_analysis",
    "ChbIndex",
    "compute_chb",
    "chb_pairs",
    "TraceStats",
    "compute_stats",
    "FastTrackDetector",
    "Race",
    "Epoch",
    "find_races",
    "CausalAtomicityReport",
    "check_causal_atomicity",
    "Explanation",
    "WitnessEdge",
    "explain",
]
