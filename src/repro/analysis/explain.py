"""Violation diagnostics: turn a verdict into an explanation.

AeroDrome (by design) reports only *that* a violation exists and at
which event. For debugging, developers want the witness: the cycle of
transactions and, for each ⋖Txn edge, the pair of conflicting events
inducing it. This module extracts that witness from the shortest
violating prefix using the exact oracle — quadratic, but it runs once,
on a prefix, after the linear-time checker has already localised the
problem. Exposed on the CLI as ``repro explain``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.chb import compute_chb
from ..baselines.oracle import first_violating_prefix, violation_witness
from ..trace.events import Event
from ..trace.trace import Trace
from ..trace.transactions import Transaction


@dataclass(frozen=True)
class WitnessEdge:
    """One ⋖Txn edge of the witness cycle.

    Attributes:
        src: The earlier transaction.
        dst: The later transaction.
        src_event: An event of ``src`` …
        dst_event: … ≤CHB-before this event of ``dst``.
    """

    src: Transaction
    dst: Transaction
    src_event: Event
    dst_event: Event

    def __str__(self) -> str:
        return (
            f"T#{self.src.tid}({self.src.thread}) -> "
            f"T#{self.dst.tid}({self.dst.thread}): "
            f"e{self.src_event.idx} {self.src_event} ≤CHB "
            f"e{self.dst_event.idx} {self.dst_event}"
        )


@dataclass(frozen=True)
class Explanation:
    """A witness cycle for a non-serializable trace.

    Attributes:
        prefix_length: Length of the shortest violating prefix.
        cycle: The witness transactions, in cycle order.
        edges: One justified ⋖Txn edge per consecutive cycle pair.
    """

    prefix_length: int
    cycle: List[Transaction]
    edges: List[WitnessEdge]

    def render(self) -> str:
        lines = [
            f"non-serializable: witness cycle of {len(self.cycle)} "
            f"transaction(s), complete at event {self.prefix_length - 1}",
        ]
        lines.extend(f"  {edge}" for edge in self.edges)
        return "\n".join(lines)


def _edge_witness(
    trace: Trace, chb, src: Transaction, dst: Transaction
) -> Optional[Tuple[Event, Event]]:
    """Some pair (e ∈ src, e' ∈ dst) with e ≤CHB e'.

    Prefers pairs of non-marker events (actual accesses) — begin/end
    markers are always transitively ordered with their block's body and
    make for uninformative witnesses.
    """
    fallback: Optional[Tuple[Event, Event]] = None
    src_indices = sorted(src.event_indices, key=lambda i: trace[i].is_marker)
    dst_indices = sorted(dst.event_indices, key=lambda j: trace[j].is_marker)
    for i in src_indices:
        for j in dst_indices:
            if i < j and chb.ordered(i, j):
                if not trace[i].is_marker and not trace[j].is_marker:
                    return trace[i], trace[j]
                if fallback is None:
                    fallback = (trace[i], trace[j])
    return fallback


def explain(trace: Trace) -> Optional[Explanation]:
    """Extract a witness cycle, or ``None`` if the trace is serializable."""
    prefix_length = first_violating_prefix(trace)
    if prefix_length is None:
        return None
    prefix = trace.prefix(prefix_length)
    cycle = violation_witness(prefix)
    assert cycle is not None  # the prefix is violating by construction
    chb = compute_chb(prefix)
    edges = []
    for position, src in enumerate(cycle):
        dst = cycle[(position + 1) % len(cycle)]
        pair = _edge_witness(prefix, chb, src, dst)
        assert pair is not None, "cycle edge without CHB witness"
        edges.append(
            WitnessEdge(src=src, dst=dst, src_event=pair[0], dst_event=pair[1])
        )
    return Explanation(prefix_length=prefix_length, cycle=cycle, edges=edges)
