"""Trace statistics beyond MetaInfo — used by reports and workload tuning."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..trace.events import Op
from ..trace.trace import Trace
from ..trace.transactions import extract_transactions


@dataclass(frozen=True)
class TraceStats:
    """Distributional statistics of a trace.

    Attributes:
        events_per_thread: Event counts keyed by thread name.
        txn_lengths: Lengths (in events) of non-unary transactions.
        unary_events: Number of events outside any atomic block.
        max_nesting: Deepest begin/end nesting observed.
        read_write_ratio: reads / max(writes, 1).
    """

    events_per_thread: Dict[str, int]
    txn_lengths: List[int]
    unary_events: int
    max_nesting: int
    read_write_ratio: float

    @property
    def mean_txn_length(self) -> float:
        if not self.txn_lengths:
            return 0.0
        return sum(self.txn_lengths) / len(self.txn_lengths)

    @property
    def max_txn_length(self) -> int:
        return max(self.txn_lengths, default=0)


def compute_stats(trace: Trace) -> TraceStats:
    """Single pass (plus transaction extraction) over ``trace``."""
    events_per_thread: Dict[str, int] = {}
    depth: Dict[str, int] = {}
    max_nesting = 0
    reads = writes = 0
    for event in trace:
        events_per_thread[event.thread] = events_per_thread.get(event.thread, 0) + 1
        if event.op is Op.BEGIN:
            depth[event.thread] = depth.get(event.thread, 0) + 1
            max_nesting = max(max_nesting, depth[event.thread])
        elif event.op is Op.END:
            depth[event.thread] = depth.get(event.thread, 0) - 1
        elif event.op is Op.READ:
            reads += 1
        elif event.op is Op.WRITE:
            writes += 1

    index = extract_transactions(trace)
    txn_lengths = [len(t) for t in index.transactions if not t.is_unary]
    unary_events = sum(len(t) for t in index.transactions if t.is_unary)
    return TraceStats(
        events_per_thread=events_per_thread,
        txn_lengths=txn_lengths,
        unary_events=unary_events,
        max_nesting=max_nesting,
        read_write_ratio=reads / max(writes, 1),
    )
