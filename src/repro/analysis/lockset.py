"""Eraser-style lockset analysis.

Savage et al.'s Eraser is the classic *lockset* race detector: every
shared variable ``x`` carries a candidate set ``C(x)`` of locks that
protected every access so far; an access by thread ``t`` refines
``C(x) := C(x) ∩ locks_held(t)``, and an empty candidate set on a
write-shared variable means no single lock protects ``x`` — a potential
data race.

The analysis is *unsound* in the dynamic-analysis sense used by the
AeroDrome paper (footnote 1): it reports false alarms, because it does
not understand fork/join or other non-lock synchronization. We implement
it here because

* the Atomizer baseline (:mod:`repro.baselines.atomizer`) classifies
  memory accesses as movers/non-movers based on lockset race information,
  and the AeroDrome paper's related-work section (§6) contrasts precisely
  this reduction-based family against conflict serializability;
* it makes a sharp test fixture: traces synchronized only by fork/join
  are race-free under happens-before (:mod:`repro.analysis.races`) yet
  flagged by the lockset analysis, which is the canonical false positive.

The state machine per variable follows the original paper: ``VIRGIN →
EXCLUSIVE(t) → SHARED → SHARED_MODIFIED``; candidate-set refinement only
happens in the shared states, and races are only reported in
``SHARED_MODIFIED``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from ..trace.events import Event, Op


class VarState(Enum):
    """Eraser's per-variable ownership states."""

    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


@dataclass(frozen=True)
class LocksetWarning:
    """A potential race reported by the lockset analysis.

    Attributes:
        event_idx: Trace index of the access that emptied the lockset.
        variable: The variable whose candidate set became empty.
        thread: The accessing thread.
        is_write: Whether the offending access was a write.
    """

    event_idx: int
    variable: str
    thread: str
    is_write: bool

    def __str__(self) -> str:
        kind = "write" if self.is_write else "read"
        return (
            f"lockset: no common lock protects {self.variable} "
            f"({kind} by {self.thread} at event {self.event_idx})"
        )


@dataclass
class _VarInfo:
    state: VarState = VarState.VIRGIN
    owner: Optional[str] = None
    candidates: Optional[FrozenSet[str]] = None  # None = "all locks"
    reported: bool = False


@dataclass
class LocksetReport:
    """Result of :func:`lockset_analysis`.

    Attributes:
        warnings: All distinct-variable warnings, in detection order.
        final_states: Per-variable final ownership state.
    """

    warnings: List[LocksetWarning] = field(default_factory=list)
    final_states: Dict[str, VarState] = field(default_factory=dict)

    @property
    def racy_variables(self) -> Set[str]:
        return {w.variable for w in self.warnings}


class LocksetAnalyzer:
    """Streaming Eraser analysis.

    Feed events with :meth:`process`; warnings accumulate in
    :attr:`warnings` (one per variable — Eraser reports each variable at
    most once). :meth:`is_racy` answers "has this variable ever been
    flagged", which is what Atomizer's mover classification consumes.
    """

    def __init__(self) -> None:
        self._held: Dict[str, Set[str]] = {}  # locks held per thread
        self._vars: Dict[str, _VarInfo] = {}
        self.warnings: List[LocksetWarning] = []
        self.events_processed = 0

    # -- queries ---------------------------------------------------------

    def locks_held(self, thread: str) -> FrozenSet[str]:
        """The lock set currently held by ``thread``."""
        return frozenset(self._held.get(thread, ()))

    def is_racy(self, variable: str) -> bool:
        """Whether ``variable`` has been flagged by the analysis."""
        info = self._vars.get(variable)
        return info is not None and info.reported

    def candidate_set(self, variable: str) -> Optional[FrozenSet[str]]:
        """Current candidate lockset of ``variable``.

        ``None`` means "still the universal set" (no shared access yet).
        """
        info = self._vars.get(variable)
        if info is None:
            return None
        return info.candidates

    def state_of(self, variable: str) -> VarState:
        info = self._vars.get(variable)
        return info.state if info is not None else VarState.VIRGIN

    # -- the state machine -------------------------------------------------

    def _access(self, event: Event, is_write: bool) -> Optional[LocksetWarning]:
        variable = event.target
        assert variable is not None
        thread = event.thread
        info = self._vars.setdefault(variable, _VarInfo())

        if info.state is VarState.VIRGIN:
            info.state = VarState.EXCLUSIVE
            info.owner = thread
            return None

        if info.state is VarState.EXCLUSIVE:
            if info.owner == thread:
                return None
            # First genuinely shared access: initialize the candidate
            # set from the locks held *now* and move to a shared state.
            info.candidates = self.locks_held(thread)
            info.state = (
                VarState.SHARED_MODIFIED if is_write else VarState.SHARED
            )
        else:
            assert info.candidates is not None
            info.candidates = info.candidates & self.locks_held(thread)
            if is_write:
                info.state = VarState.SHARED_MODIFIED

        if (
            info.state is VarState.SHARED_MODIFIED
            and not info.candidates
            and not info.reported
        ):
            info.reported = True
            warning = LocksetWarning(
                event_idx=event.idx,
                variable=variable,
                thread=thread,
                is_write=is_write,
            )
            self.warnings.append(warning)
            return warning
        return None

    def process(self, event: Event) -> Optional[LocksetWarning]:
        """Consume one event; return a warning iff this access is flagged."""
        op = event.op
        warning: Optional[LocksetWarning] = None
        if op is Op.ACQUIRE:
            assert event.target is not None
            self._held.setdefault(event.thread, set()).add(event.target)
        elif op is Op.RELEASE:
            assert event.target is not None
            self._held.get(event.thread, set()).discard(event.target)
        elif op is Op.READ:
            warning = self._access(event, is_write=False)
        elif op is Op.WRITE:
            warning = self._access(event, is_write=True)
        # fork/join/begin/end are invisible to Eraser — that blindness is
        # exactly what makes the analysis unsound (false positives on
        # fork/join-synchronized programs).
        self.events_processed += 1
        return warning

    def report(self) -> LocksetReport:
        """Snapshot the warnings and per-variable states."""
        return LocksetReport(
            warnings=self.warnings[:],
            final_states={v: info.state for v, info in self._vars.items()},
        )


def lockset_analysis(events: Iterable[Event]) -> LocksetReport:
    """Run the Eraser lockset analysis over a whole trace."""
    analyzer = LocksetAnalyzer()
    for event in events:
        analyzer.process(event)
    return analyzer.report()
