"""Paper-style columnar trace rendering.

The paper draws traces as one column per thread with events in trace
order (Figures 1–4). This module renders any trace that way for the
terminal, optionally annotating the event where a checker reports a
violation — the fastest way to *see* a cycle in a small trace:

    1  t1        t2
    2  ⊲
    3  w(x)
    4            ⊲
    5            r(x)
    6            w(y)
    7  r(y)   ← violation (read check)
    ...

Used by ``repro zoo NAME --render`` and the examples; plain text, no
dependencies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.violations import Violation
from ..trace.events import Op, format_op
from ..trace.trace import Trace

#: Rendered in place of begin/end, matching the paper's notation.
BEGIN_GLYPH = "⊲"
END_GLYPH = "⊳"


def _cell(event) -> str:
    if event.op is Op.BEGIN:
        return BEGIN_GLYPH if event.target is None else f"{BEGIN_GLYPH}{event.target}"
    if event.op is Op.END:
        return END_GLYPH if event.target is None else f"{END_GLYPH}{event.target}"
    return format_op(event.op, event.target)


def render_columns(
    trace: Trace,
    violation: Optional[Violation] = None,
    threads: Optional[Sequence[str]] = None,
    min_width: int = 8,
) -> str:
    """Render ``trace`` as one column per thread (Figure 1 style).

    Args:
        trace: The trace to draw.
        violation: If given, the row of ``violation.event_idx`` gets a
            ``← violation (<site> check)`` marker.
        threads: Column order (default: first-appearance order).
        min_width: Minimum column width.

    Returns:
        The rendered multi-line string (no trailing newline).
    """
    if threads is None:
        seen: List[str] = []
        for event in trace:
            if event.thread not in seen:
                seen.append(event.thread)
        threads = seen
    column_of = {name: i for i, name in enumerate(threads)}

    cells = [_cell(event) for event in trace]
    widths = []
    for i, name in enumerate(threads):
        body = max(
            (len(cells[e.idx]) for e in trace if column_of[e.thread] == i),
            default=0,
        )
        widths.append(max(min_width, len(name) + 2, body + 2))

    index_width = max(2, len(str(len(trace))))
    header = " " * (index_width + 2) + "".join(
        name.ljust(widths[i]) for i, name in enumerate(threads)
    )
    lines = [header.rstrip()]
    for event in trace:
        column = column_of[event.thread]
        row = str(event.idx + 1).rjust(index_width) + "  "
        for i in range(len(threads)):
            text = cells[event.idx] if i == column else ""
            row += text.ljust(widths[i])
        if violation is not None and event.idx == violation.event_idx:
            row = row.rstrip() + f"   ← violation ({violation.site} check)"
        lines.append(row.rstrip())
    return "\n".join(lines)


def render_with_verdict(trace: Trace, algorithm: str = "aerodrome") -> str:
    """Render a trace with its checker verdict appended.

    Convenience used by the CLI: runs ``algorithm``, draws the columns
    with the violation row marked, and adds a one-line verdict footer.
    """
    from ..api.session import check as check_trace

    result = check_trace(trace, algorithm=algorithm)
    body = render_columns(trace, violation=result.violation)
    return f"{body}\n\n{result}"
