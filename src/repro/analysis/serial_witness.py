"""Constructive serializability: build the equivalent serial execution.

A checker's "✓ serializable" verdict promises that an equivalent serial
execution *exists* (Definition 1 / Example 1's ``ρ_serial``); this
module constructs it. Topologically sorting the ⋖Txn transaction graph
gives a serial order of transactions; concatenating each transaction's
events in that order yields a serial trace that is *conflict
equivalent* to the original — every pair of conflicting events keeps
its relative order, which is the definition of equivalence the paper
uses ("observe that the relative order of conflicting events in
ρ_serial1 is the same as in the original trace ρ1").

The construction doubles as an independent soundness check on the
whole stack: for every serializable trace, :func:`serial_witness` must
succeed and :func:`verify_equivalence` must accept its output; for
every violating trace it must return ``None``. The property tests in
``tests/test_serial_witness.py`` run exactly that loop against random
traces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..baselines.oracle import transaction_graph
from ..trace.events import Event, Op
from ..trace.trace import Trace
from ..trace.transactions import extract_transactions


def serial_order(trace: Trace) -> Optional[List[int]]:
    """A topological order of all transactions, or ``None`` on a cycle.

    Kahn's algorithm with smallest-tid tie-breaking, so the result is
    deterministic and tends to follow trace order.
    """
    graph = transaction_graph(trace)
    indegree: Dict[int, int] = {tid: graph.in_degree(tid) for tid in graph.nodes()}
    ready = sorted(tid for tid, degree in indegree.items() if degree == 0)
    order: List[int] = []
    while ready:
        tid = ready.pop(0)
        order.append(tid)
        inserted = False
        for succ in sorted(graph.successors(tid)):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
                inserted = True
        if inserted:
            ready.sort()
    if len(order) != len(indegree):
        return None  # a cycle kept some transactions at indegree > 0
    return order


def serial_witness(trace: Trace) -> Optional[Trace]:
    """An equivalent serial execution of ``trace``, or ``None``.

    The witness contains exactly the original event objects (sharing
    their ``idx`` back-references into the original trace), reordered
    so that each transaction's events are consecutive.
    """
    order = serial_order(trace)
    if order is None:
        return None
    txns = extract_transactions(trace)
    events: List[Event] = []
    for tid in order:
        for idx in txns.transactions[tid].event_indices:
            events.append(trace[idx])
    witness = Trace(name=f"{trace.name}-serial")
    for event in events:
        # Re-wrap so the witness owns its indices; keep the source
        # event index recoverable through identity of (thread, op,
        # target) plus verify_equivalence's explicit mapping.
        witness.append(Event(event.thread, event.op, event.target))
    return witness


def is_serial(trace: Trace) -> bool:
    """Whether no transaction is interrupted by another thread's events.

    This is the paper's §2 definition of a serial trace; what
    :func:`serial_witness` outputs must always satisfy it.
    """
    txns = extract_transactions(trace)
    current: Optional[int] = None
    seen: set = set()
    for idx, tid in enumerate(txns.txn_of):
        if tid != current:
            if tid in seen:
                return False  # re-entered an interrupted transaction
            seen.add(tid)
            current = tid
    return True


def _conflicting(a: Event, b: Event) -> bool:
    """Direct conflict per §2 (same thread, fork/join, variable, lock)."""
    if a.thread == b.thread:
        return True
    if a.op is Op.FORK and a.target == b.thread:
        return True
    if b.op is Op.FORK and b.target == a.thread:
        return True
    if a.op is Op.JOIN and a.target == b.thread:
        return True
    if b.op is Op.JOIN and b.target == a.thread:
        return True
    if a.target is not None and a.target == b.target:
        if a.op in (Op.READ, Op.WRITE) and b.op in (Op.READ, Op.WRITE):
            return a.op is Op.WRITE or b.op is Op.WRITE
        if {a.op, b.op} <= {Op.ACQUIRE, Op.RELEASE}:
            # Any two operations on one lock are order-fixed in a trace
            # (mutual exclusion); rel->acq is the generating edge but
            # commuting acq/rel pairs would break well-formedness.
            return True
    return False


def verify_equivalence(original: Trace, candidate: Trace) -> bool:
    """Whether ``candidate`` is a conflict-equivalent permutation.

    Checks (quadratic — this is a test oracle, not a fast path):

    * same multiset of events per thread, in the same per-thread order
      (a permutation cannot reorder one thread's events);
    * every conflicting pair appears in the same relative order.
    """
    if len(original) != len(candidate):
        return False
    # Map each candidate position to the original event it came from:
    # per-thread order must be preserved, so match threads positionally.
    cursors: Dict[str, List[int]] = {}
    for event in original:
        cursors.setdefault(event.thread, []).append(event.idx)
    taken: Dict[str, int] = {}
    mapping: List[int] = []  # candidate position -> original index
    for event in candidate:
        pool = cursors.get(event.thread, [])
        position = taken.get(event.thread, 0)
        if position >= len(pool):
            return False
        source = original[pool[position]]
        if source.op is not event.op or source.target != event.target:
            return False
        mapping.append(pool[position])
        taken[event.thread] = position + 1
    if any(taken.get(t, 0) != len(p) for t, p in cursors.items()):
        return False
    # Conflicting pairs keep their order iff the mapping never inverts
    # a conflicting (i, j).
    n = len(candidate)
    for a in range(n):
        for b in range(a + 1, n):
            i, j = mapping[a], mapping[b]
            if i > j and _conflicting(original[i], original[j]):
                return False
    return True
