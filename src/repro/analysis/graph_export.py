"""Graphviz DOT export of transaction graphs and witness cycles.

The paper's figures draw small traces with inter-thread conflict arrows;
when debugging a real violation one wants the same picture for an
arbitrary trace. This module renders

* the full ⋖Txn transaction graph of a trace
  (:func:`transaction_graph_dot`) with the witness cycle — if any —
  highlighted, and
* the event-level conflict graph (:func:`event_graph_dot`) showing
  direct ≤CHB-generating edges, the machine-checked analog of the
  paper's hand-drawn arrows in Figures 1-4.

Output is plain DOT text, deliberately free of any graphviz runtime
dependency: pipe it to ``dot -Tsvg`` or paste it into any viewer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..baselines.oracle import transaction_graph, violation_witness
from ..trace.events import Op, format_op
from ..trace.trace import Trace
from ..trace.transactions import extract_transactions

#: Color applied to nodes/edges on the witness cycle.
CYCLE_COLOR = "crimson"


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def transaction_graph_dot(
    trace: Trace,
    include_unary: bool = False,
    highlight_witness: bool = True,
    name: str = "transactions",
) -> str:
    """The ⋖Txn graph of ``trace`` as a DOT digraph.

    Args:
        trace: The trace to render.
        include_unary: Also draw unary (single-event) transactions;
            off by default because they dominate realistic traces.
        highlight_witness: Color one violating cycle, when present.
        name: DOT graph name.

    Returns:
        DOT source text.
    """
    graph = transaction_graph(trace)
    txns = extract_transactions(trace)
    cycle_ids: Set[int] = set()
    if highlight_witness:
        witness = violation_witness(trace)
        if witness:
            cycle_ids = {txn.tid for txn in witness}

    def visible(tid: int) -> bool:
        return include_unary or not txns.transactions[tid].is_unary

    lines: List[str] = [f"digraph {_quote(name)} {{", "  rankdir=LR;"]
    for tid in sorted(t for t in graph.nodes() if visible(t)):
        txn = txns.transactions[tid]
        label = f"T{tid}\\n{txn.thread}"
        if txn.is_unary:
            label += "\\n(unary)"
        attrs = [f"label={_quote(label)}"]
        if tid in cycle_ids:
            attrs.append(f"color={CYCLE_COLOR}")
            attrs.append("penwidth=2")
        lines.append(f"  n{tid} [{', '.join(attrs)}];")
    for src in sorted(graph.nodes()):
        if not visible(src):
            continue
        for dst in sorted(graph.successors(src)):
            if not visible(dst):
                continue
            attrs = ""
            if src in cycle_ids and dst in cycle_ids:
                attrs = f" [color={CYCLE_COLOR}, penwidth=2]"
            lines.append(f"  n{src} -> n{dst}{attrs};")
    lines.append("}")
    return "\n".join(lines)


def _direct_conflict_edges(trace: Trace) -> List[tuple]:
    """Direct (generator) conflict edges, one per (kind, source) pair.

    For each event, the nearest earlier conflicting event per conflict
    kind — the arrows the paper draws, not the transitive closure.
    """
    edges: List[tuple] = []
    last_of_thread: Dict[str, int] = {}
    last_write: Dict[str, int] = {}
    last_reads: Dict[str, Dict[str, int]] = {}
    last_release: Dict[str, int] = {}
    pending_fork: Dict[str, int] = {}

    for event in trace:
        idx = event.idx
        prev = last_of_thread.get(event.thread)
        if prev is not None:
            edges.append((prev, idx, "po"))
        forked = pending_fork.pop(event.thread, None)
        if forked is not None:
            edges.append((forked, idx, "fork"))
        op = event.op
        if op is Op.READ:
            writer = last_write.get(event.target)
            if writer is not None:
                edges.append((writer, idx, "wr"))
            last_reads.setdefault(event.target, {})[event.thread] = idx
        elif op is Op.WRITE:
            writer = last_write.get(event.target)
            if writer is not None:
                edges.append((writer, idx, "ww"))
            for reader in last_reads.get(event.target, {}).values():
                edges.append((reader, idx, "rw"))
            last_write[event.target] = idx
            last_reads.pop(event.target, None)
        elif op is Op.ACQUIRE:
            releaser = last_release.get(event.target)
            if releaser is not None:
                edges.append((releaser, idx, "lock"))
        elif op is Op.RELEASE:
            last_release[event.target] = idx
        elif op is Op.FORK:
            pending_fork[event.target] = idx
        elif op is Op.JOIN:
            child_last = last_of_thread.get(event.target)
            if child_last is not None:
                edges.append((child_last, idx, "join"))
        last_of_thread[event.thread] = idx
    return edges


def event_graph_dot(
    trace: Trace,
    show_program_order: bool = True,
    name: str = "events",
) -> str:
    """The event-level conflict graph of ``trace`` as DOT.

    Threads become columns (DOT clusters); same-thread program-order
    edges are drawn dotted, inter-thread conflict edges solid and
    labeled with their kind (``wr``, ``ww``, ``rw``, ``lock``, ``fork``,
    ``join``) — the executable version of Figures 1-4.
    """
    lines: List[str] = [f"digraph {_quote(name)} {{", "  node [shape=box];"]
    by_thread: Dict[str, List[int]] = {}
    for event in trace:
        by_thread.setdefault(event.thread, []).append(event.idx)
    for i, (thread, indices) in enumerate(sorted(by_thread.items())):
        lines.append(f"  subgraph cluster_{i} {{")
        lines.append(f"    label={_quote(thread)};")
        for idx in indices:
            event = trace[idx]
            label = f"e{idx + 1}: {format_op(event.op, event.target)}"
            lines.append(f"    n{idx} [label={_quote(label)}];")
        lines.append("  }")
    for src, dst, kind in _direct_conflict_edges(trace):
        if kind == "po":
            if show_program_order:
                lines.append(f"  n{src} -> n{dst} [style=dotted];")
        else:
            lines.append(f"  n{src} -> n{dst} [label={_quote(kind)}];")
    lines.append("}")
    return "\n".join(lines)


def save_dot(dot: str, path) -> None:
    """Write DOT text to ``path`` (tiny convenience for the CLI)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dot)
