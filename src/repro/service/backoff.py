"""Jittered exponential backoff — the one retry-pacing policy.

Every retry loop in the client SDK (BUSY backpressure inside a
connection, reconnect-and-resume across connections, ring-refresh in
the cluster client) paces itself with the same policy: **exponential
growth, a hard cap, full jitter over the upper half**. One sleep is
drawn uniformly from ``(delay/2, delay]`` where ``delay`` doubles per
attempt up to :data:`BACKOFF_CAP` — the jitter de-synchronizes a
thundering herd of clients retrying against one busy shard, while the
lower bound of half-the-delay keeps the expected pace exponential.

The RNG is injectable (and seedable), so chaos drills and tests get
bit-for-bit reproducible retry schedules.
"""

from __future__ import annotations

import random
from typing import Optional

#: Longest single backoff sleep (seconds) — BUSY and reconnect alike.
BACKOFF_CAP = 0.5

#: Delay the first BUSY retry starts from (inside one connection).
DEFAULT_BUSY_DELAY = 0.01

#: Delay the first reconnect starts from (across connections).
DEFAULT_RECONNECT_DELAY = 0.05


class Backoff:
    """A jittered exponential backoff schedule.

    Args:
        initial: The first (pre-jitter) delay in seconds.
        cap: Hard ceiling a delay never exceeds (pre-jitter).
        factor: Growth multiplier per attempt.
        rng: RNG to draw jitter from (shared with a caller's RNG), or
        seed: a seed to build a private one — deterministic schedules
            for tests and chaos drills. ``rng`` wins if both are given.
    """

    __slots__ = ("initial", "cap", "factor", "_delay", "_rng")

    def __init__(
        self,
        initial: float = DEFAULT_RECONNECT_DELAY,
        cap: float = BACKOFF_CAP,
        factor: float = 2.0,
        rng: Optional[random.Random] = None,
        seed: Optional[int] = None,
    ) -> None:
        if initial <= 0:
            raise ValueError("initial delay must be positive")
        if cap < initial:
            raise ValueError("cap must be >= the initial delay")
        if factor < 1.0:
            raise ValueError("growth factor must be >= 1")
        self.initial = initial
        self.cap = cap
        self.factor = factor
        self._delay = initial
        self._rng = rng if rng is not None else random.Random(seed)

    @property
    def delay(self) -> float:
        """The next attempt's pre-jitter delay (for inspection)."""
        return min(self._delay, self.cap)

    def next(self) -> float:
        """Draw the next sleep and advance the schedule.

        The value is uniform over ``(d/2, d]`` for the current capped
        delay ``d`` — never zero, never above the cap.
        """
        capped = min(self._delay, self.cap)
        self._delay = min(self._delay * self.factor, self.cap)
        return capped * (0.5 + 0.5 * self._rng.random())

    def paced(self, hint_ms: Optional[int] = None) -> float:
        """Draw the next sleep, honoring a server pacing hint.

        ``hint_ms`` is the ``retry_ms`` field riding a ``BUSY`` frame —
        the server's own estimate of when retrying might succeed (an
        overloaded shard, a shed tenant). The draw is the larger of the
        ordinary :meth:`next` value and the hint jittered over
        ``(hint/2, hint]``: the schedule still advances (so pacing
        keeps growing if the server stays busy), but the server's floor
        wins when it asks for more patience than the schedule has
        reached.
        """
        delay = self.next()
        if hint_ms:
            hint = (hint_ms / 1000.0) * (0.5 + 0.5 * self._rng.random())
            if hint > delay:
                return hint
        return delay

    def reset(self) -> None:
        """Restart the schedule at the initial delay (after a success)."""
        self._delay = self.initial
