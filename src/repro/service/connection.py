"""The sans-IO per-connection protocol state machine.

:class:`WireConnection` is the one copy of ``repro-wire/1`` server
semantics — HELLO/EVENTS/FLUSH/CHECKPOINT/CLOSE/STATS dispatch, the
typed error-to-``ERROR``-frame mapping, and the ``wire.reply`` /
``server.events`` fault sites. It never touches a socket: bytes go in
through :meth:`WireConnection.receive_bytes`, encoded reply frames
come out through :attr:`WireConnection.outbox`, and shard replies are
:class:`~repro.service.router._Future`\\ s the transport chooses how to
wait on. That inversion is what lets the threaded backend (one blocked
handler thread per connection) and the ``selectors`` event-loop backend
(thousands of connections on one thread) — and the chaos drills on both
— share every byte of protocol logic.

The driving contract, for either backend::

    wire.receive_bytes(chunk)          # as bytes arrive
    futures = wire.pump()              # advance the state machine
    # futures is None  -> idle: write wire.outbox, read more bytes
    # futures is [...] -> a shard owes replies: block on them (thread
    #                     backend) or subscribe a wakeup and keep
    #                     serving other sockets (async backend), then
    #                     pump() again
    # wire.reset             -> drop the socket, sending nothing
    # wire.close_after_send  -> close once outbox is flushed

A connection is *strict request/response* (every client frame earns
exactly one reply), so at most one shard command is ever in flight per
connection; pipelined frames queue inside the decoder until the
pending reply lands.
"""

from __future__ import annotations

import logging
from typing import Any, Callable, Dict, List, Optional

from ..faults.injector import fire, mutate_frame
from ..obs.metrics import STATS_SCHEMA
from . import protocol
from .protocol import FrameType
from .router import (
    BusyError,
    Router,
    RouterError,
    ShardCrashed,
    SessionNotFound,
    SessionQuarantined,
)

log = logging.getLogger("repro.service")


class WireConnection:
    """One client connection's protocol state, free of I/O.

    Args:
        router: The shard router commands are submitted to (always via
            the non-blocking ``submit_*`` surface — a full shard inbox
            is an immediate ``BUSY`` frame on either backend).
        count: ``count(name)`` server-counter hook (busy_replies,
            read_timeouts, wire_errors).
        counters: Zero-arg callable returning the server-level counter
            dict merged into ``STATS`` replies.
        cluster: The node's
            :class:`~repro.cluster.coordinator.ClusterCoordinator`, or
            ``None`` on a standalone server. With a cluster attached,
            HELLO/EVENTS/FLUSH/CHECKPOINT/CLOSE for sessions the ring
            assigns elsewhere answer ``REDIRECT``, and the
            JOIN/RING/HANDOFF/OWNED control frames are served.
    """

    def __init__(
        self,
        router: Router,
        count: Callable[[str], None],
        counters: Callable[[], Dict[str, Any]],
        cluster: Optional[Any] = None,
    ) -> None:
        self.router = router
        self._count = count
        self._counters = counters
        self.cluster = cluster
        self.session_id: Optional[str] = None
        #: Membership epoch the client's HELLO routed by. Every later
        #: shard-bound frame on this connection is checked against it:
        #: if this node's own epoch falls behind, the node may have
        #: been partitioned away from a newer ring and must answer
        #: FENCED rather than silently double-serve the session.
        self.pinned_epoch: Optional[int] = None
        #: Inbound incremental frame decoder (the ring buffer lives here).
        self.frames = protocol.FrameDecoder()
        #: Per-connection delta-events decoder state.
        self.delta = protocol.DeltaDecoder()
        #: Outbound frame encoder (reply accounting).
        self.encoder = protocol.FrameEncoder()
        #: Encoded reply frames awaiting transport write.
        self.outbox: List[bytes] = []
        #: Close the transport once :attr:`outbox` is flushed.
        self.close_after_send = False
        #: Drop the transport NOW, without writing (injected reset).
        self.reset = False
        self._pending = None  # (futures, finish) of the in-flight command

    # -- transport-facing ---------------------------------------------------

    @property
    def closing(self) -> bool:
        return self.reset or self.close_after_send

    def receive_bytes(self, data) -> None:
        """Feed one received chunk (any bytes-like, any split)."""
        self.frames.feed(data)

    def pump(self) -> Optional[List[Any]]:
        """Advance: decode and dispatch every buffered frame.

        Returns ``None`` when idle (flush :attr:`outbox`, read more
        bytes) or the list of unresolved shard futures the in-flight
        command is waiting on (wait for them, then ``pump()`` again).
        Never raises: every failure becomes a reply frame and/or a
        close flag.
        """
        while not self.closing:
            if self._pending is not None:
                futures, finish = self._pending
                waiting = [f for f in futures if not f.done()]
                if waiting:
                    return waiting
                self._pending = None
                self._guard(finish)
                continue
            try:
                frame = self.frames.next_frame()
            except protocol.WireError as error:
                self.on_wire_error(error)
                return None
            if frame is None:
                return None
            ftype, payload = frame
            self._guard(lambda: self._dispatch(ftype, payload))
        return None

    def on_wire_error(self, error: Exception) -> None:
        """Framing broke: answer once, then drop the connection — the
        byte stream can no longer be trusted. The session and every
        other tenant on its shard are untouched."""
        self._count("wire_errors")
        log.warning("wire error %s: %s", self._where(), error)
        self._error("wire", str(error))
        self.close_after_send = True

    def on_read_timeout(self) -> None:
        """The peer went quiet past its deadline: answer and drop."""
        self._count("read_timeouts")
        log.warning(
            "connection read timed out %s; dropping it", self._where()
        )
        self._error("timeout", "read timed out; reconnect to resume")
        self.close_after_send = True

    def on_eof(self) -> None:
        """Peer EOF: clean at a frame boundary, a wire error inside one."""
        if self.frames.buffered:
            self.on_wire_error(
                protocol.FrameError(
                    "truncated frame: EOF after "
                    f"{self.frames.buffered} buffered byte(s)"
                )
            )
        else:
            self.close_after_send = True

    def fail_pending(self, message: str) -> None:
        """Give up on the in-flight command (reply deadline passed)."""
        if self._pending is None:
            return
        self._pending = None
        log.error("router error %s: %s", self._where(), message)
        self._error("session", message)

    # -- protocol internals -------------------------------------------------

    def _where(self) -> str:
        """``session=<id> shard=<n>`` attribution for log lines."""
        if self.session_id is None:
            return "session=- shard=-"
        return (
            f"session={self.session_id} "
            f"shard={self.router.shard_of(self.session_id)}"
        )

    def _send(self, ftype: int, obj: Dict[str, Any]) -> None:
        frame = self.encoder.encode_json(ftype, obj)
        action = fire("wire.reply", key=self.session_id)
        if action is not None:
            if action.op == "reset":
                # Drop the connection without answering — the client
                # sees a reset mid-request and must reconnect/resume.
                self.reset = True
                return
            frame = mutate_frame(frame, action)
        self.outbox.append(frame)

    def _error(self, code: str, message: str) -> None:
        self._send(FrameType.ERROR, {"code": code, "message": message})

    def _guard(self, step: Callable[[], None]) -> None:
        """Run one dispatch/finish step under the shared typed-error
        mapping — the single place wire semantics assign blame."""
        try:
            step()
        except protocol.WireError as error:
            self.on_wire_error(error)
        except BusyError as error:
            self._count("busy_replies")
            payload: Dict[str, Any] = {
                "retry_ms": getattr(error, "retry_ms", None) or 50
            }
            if getattr(error, "shed", False):
                # Per-tenant overload shedding, not a full shard inbox:
                # counted separately so operators can tell a hot tenant
                # from a saturated shard.
                self._count("shed")
                payload["shed"] = True
            self._send(FrameType.BUSY, payload)
        except SessionNotFound as error:
            self._error("unknown-session", str(error))
        except SessionQuarantined as error:
            log.error(
                "quarantined session reported %s code=%s: %s",
                self._where(), error.code, error,
            )
            self._error(error.code, str(error))
        except ShardCrashed as error:
            log.error("shard crash reported %s: %s", self._where(), error)
            self._error("shard-crashed", str(error))
        except RouterError as error:
            log.error("router error %s: %s", self._where(), error)
            self._error("session", str(error))
        except Exception as error:  # isolate: never kill the transport
            log.exception(
                "internal error %s: %s: %s",
                self._where(), type(error).__name__, error,
            )
            self._error("internal", f"{type(error).__name__}: {error}")

    def _redirect(self, session_id: str) -> None:
        """Answer REDIRECT: the ring assigns this session elsewhere."""
        self._count("redirects")
        self._send(FrameType.REDIRECT, self.cluster.redirect_doc(session_id))

    def _behind(self, epoch: Optional[int]) -> bool:
        """Is this node's membership view behind ``epoch``?"""
        return (
            self.cluster is not None
            and epoch is not None
            and self.cluster.epoch < epoch
        )

    def _fenced(self, session_id: Optional[str], message: str) -> None:
        """Answer FENCED: an epoch mismatch makes this write unsafe."""
        self._count("fenced")
        log.warning("fenced %s: %s", self._where(), message)
        self._send(
            FrameType.FENCED,
            {
                "code": "fenced",
                "session": session_id,
                "epoch": self.cluster.epoch if self.cluster else 0,
                "message": message,
            },
        )

    def _dispatch_cluster(self, ftype: int, payload: bytes) -> bool:
        """Serve the cluster control frames; True when ``ftype`` was one.

        JOIN/RING/OWNED are quick in-memory merges answered inline;
        HANDOFF with a live session goes through the router's
        non-blocking import (a thaw can be heavy — never stall the
        event loop on it), a replica HANDOFF is one spool write.
        """
        if ftype not in (
            FrameType.JOIN, FrameType.RING,
            FrameType.HANDOFF, FrameType.OWNED,
        ):
            return False
        if self.cluster is None:
            self._error(
                "not-clustered",
                "this server is not part of a cluster (start with "
                "--cluster or --join)",
            )
            return True
        cluster = self.cluster
        if ftype == FrameType.HANDOFF:
            meta, blob = protocol.decode_handoff(payload)
            session_id = meta.get("session")
            if not isinstance(session_id, str) or not session_id:
                raise protocol.PayloadError("HANDOFF meta lacks a session id")
            meta_epoch = meta.get("epoch")
            if isinstance(meta_epoch, int) and meta_epoch < cluster.epoch:
                # A partitioned old owner is pushing state decided under
                # a superseded ring: refuse, or a healed cluster would
                # import a stale fork of a session it already reassigned.
                self._fenced(
                    session_id,
                    f"handoff from {meta.get('origin')!r} carries stale "
                    f"epoch {meta_epoch} (ours is {cluster.epoch})",
                )
                return True
            if meta.get("live"):
                future = self.router.submit_import(session_id, blob)

                def finish() -> None:
                    info = future.result()
                    cluster.note_import(len(blob))
                    self._send(FrameType.OWNED, info)

                self._pending = ([future], finish)
            else:
                self._send(
                    FrameType.OWNED, cluster.store_replica(session_id, blob)
                )
            return True
        obj = protocol.decode_json(payload) if payload else {}
        if ftype == FrameType.JOIN:
            doc = cluster.handle_join(obj)
            self._send(
                FrameType.RING,
                {"membership": doc, "vnodes": cluster.vnodes},
            )
        elif ftype == FrameType.RING:
            doc = cluster.handle_ring(obj)
            self._send(
                FrameType.RING,
                {"membership": doc, "vnodes": cluster.vnodes},
            )
        else:  # OWNED notice (e.g. "session closed, drop the replica")
            notice_epoch = obj.get("epoch")
            if isinstance(notice_epoch, int) and notice_epoch < cluster.epoch:
                # A stale peer's drop notice must not destroy a replica
                # the current ring may still need for failover.
                self._fenced(
                    obj.get("session"),
                    f"OWNED notice from {obj.get('from')!r} carries stale "
                    f"epoch {notice_epoch} (ours is {cluster.epoch})",
                )
                return True
            self._send(FrameType.OK, cluster.handle_owned(obj))
        return True

    def _dispatch(self, ftype: int, payload: bytes) -> None:
        router = self.router
        if self._dispatch_cluster(ftype, payload):
            return
        if ftype == FrameType.HELLO:
            hello = protocol.parse_hello(protocol.decode_json(payload))
            if self.cluster is not None:
                if self._behind(hello["epoch"]):
                    # The client routed by a membership newer than ours:
                    # this node is the stale side of a partition and
                    # cannot even trust its ring to redirect correctly.
                    self._fenced(
                        hello["session"],
                        f"node epoch {self.cluster.epoch} is behind the "
                        f"client's routing epoch {hello['epoch']}",
                    )
                    return
                self.pinned_epoch = hello["epoch"]
                if hello["session"] is None:
                    # Un-pinned session: mint an id this node owns so
                    # the client never bounces on its very first HELLO.
                    hello["session"] = self.cluster.local_session_id()
                elif not self.cluster.owns(hello["session"]):
                    self._redirect(hello["session"])
                    return
            future = router.submit_open(
                hello["analyses"],
                name=hello["name"],
                packed=hello["packed"],
                session_id=hello["session"],
                resume=hello["resume"],
                lenient=hello["lenient"],
            )

            def finish() -> None:
                info = future.result()
                self.session_id = info["session"]
                info["protocol"] = protocol.PROTOCOL
                self._send(FrameType.OK, info)

            self._pending = ([future], finish)
            return
        if ftype == FrameType.STATS:
            pairs = router.submit_stats()

            def finish() -> None:
                stats = router.finish_stats(pairs)
                # The router stamps the version; keep the guarantee
                # even for router doubles that predate repro-stats/1.
                stats.setdefault("schema", STATS_SCHEMA)
                stats["server"] = self._counters()
                if self.cluster is not None:
                    stats["cluster"] = self.cluster.stats()
                self._send(FrameType.OK, {"stats": stats})

            self._pending = ([future for _shard, future in pairs], finish)
            return
        if self.session_id is None:
            self._error("no-session", "send HELLO first")
            return
        if self._behind(self.pinned_epoch):
            # Defense in depth: epochs are monotone, so after an
            # accepted HELLO this node should never test behind its
            # pin — but the pin is the wire contract (no shard-bound
            # frame may be served under an epoch older than the one
            # the client routed by), so enforce it on every frame.
            self._fenced(
                self.session_id,
                f"node epoch {self.cluster.epoch} fell behind the "
                f"connection's pinned epoch {self.pinned_epoch}",
            )
            return
        if self.cluster is not None and not self.cluster.owns(self.session_id):
            # Ownership moved mid-stream (a node joined and the session
            # migrated away): bounce the client to the new owner, which
            # resumes from the migrated checkpoint.
            self._redirect(self.session_id)
            return
        if ftype == FrameType.EVENTS:
            events, base = protocol.decode_events_ex(payload, self.delta)
            queued = router.feed(self.session_id, events, base=base)
            action = fire("server.events", key=self.session_id)
            if action is not None and action.op == "duplicate":
                # At-least-once delivery: the same decoded batch lands
                # twice. Positioned batches are deduplicated by the
                # session; unpositioned ones genuinely double (which is
                # exactly the hazard positioned frames exist to remove).
                router.feed(self.session_id, events, base=base)
            self._send(FrameType.OK, {"queued": queued})
        elif ftype == FrameType.FLUSH:
            future = router.submit_flush(self.session_id)

            def finish() -> None:
                info = future.result()
                if info["error"] is not None:
                    log.error(
                        "flush surfaced session error %s code=%s: %s",
                        self._where(), info.get("error_code"), info["error"],
                    )
                    self._error(
                        info.get("error_code") or "session", info["error"]
                    )
                elif info["findings"]:
                    self._send(FrameType.VIOLATION, info)
                else:
                    self._send(FrameType.OK, info)

            self._pending = ([future], finish)
        elif ftype == FrameType.CHECKPOINT:
            future = router.submit_checkpoint(self.session_id)
            self._pending = (
                [future],
                lambda: self._send(FrameType.OK, future.result()),
            )
        elif ftype == FrameType.CLOSE:
            future = router.submit_close(self.session_id)
            closing_id = self.session_id

            def finish() -> None:
                info = future.result()
                self.session_id = None
                if self.cluster is not None:
                    # Queue the successor's replica-drop notice so a
                    # finished session can never be resurrected by a
                    # later failover adoption.
                    self.cluster.session_closed(closing_id)
                self._send(FrameType.REPORT, info)

            self._pending = ([future], finish)
        else:
            self._error("bad-frame", f"unexpected frame type {ftype}")
