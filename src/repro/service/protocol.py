"""The ``repro-wire/1`` framed wire format — pure encode/decode.

Every message between a streaming client and the analysis service is
one **frame**::

    +----------------+--------+------------------+
    | length (u32 BE)| type u8| payload bytes    |
    +----------------+--------+------------------+

``length`` counts the type byte plus the payload, so an empty frame has
length 1. Frames are capped at :data:`MAX_FRAME` — a stream claiming
more is corrupt by definition and fails before any allocation.

Client→server types: ``HELLO`` (open or resume a session), ``EVENTS``
(one batch of events), ``CHECKPOINT``, ``FLUSH``, ``CLOSE``, ``STATS``.
Server→client: ``OK``, ``REPORT`` (the final ``repro-report/1``
document), ``VIOLATION`` (new findings), ``ERROR``, ``BUSY``
(backpressure: the session's shard queue is full, retry).

All payloads are UTF-8 JSON except ``EVENTS``, whose payload is a
1-byte encoding tag followed by the batch body:

* tag ``0`` — **text**: newline-joined ``.std`` event lines, exactly
  the :mod:`repro.trace.parser` grammar;
* tag ``1`` — **packed delta**: the incremental form of
  :class:`~repro.trace.packed.PackedTrace` columns. A
  :class:`DeltaEncoder`/:class:`DeltaDecoder` pair mirrors the four
  interner namespaces (threads, variables, locks, labels); each frame
  ships only the names interned since the previous frame, then the
  batch's dense ``(thread, op, target)`` integer triples. Long streams
  stop paying for strings almost immediately;
* tags ``2``/``3`` — **positioned** text/delta: a 12-byte header
  (``u64`` stream base position + ``u32`` CRC32 of the body) before
  the same body as tags 0/1. The base makes at-least-once delivery
  idempotent — a server that already ingested past ``base`` drops the
  overlap instead of double-feeding — and the CRC turns any payload
  corruption into a typed :class:`PayloadError` instead of silently
  different events. The SDK always sends positioned frames; tags 0/1
  stay accepted for bare-bones clients.

Everything here is pure — no sockets, no sessions — and hardened the
same way the binary trace reader is: any corrupt or truncated input
raises a typed :class:`WireError` (``FrameError`` at the framing layer,
``PayloadError`` inside a payload), never an uncontrolled exception.
``tests/test_service_protocol.py`` fuzzes exactly that contract.

The framing layer is **sans-IO**: :class:`FrameDecoder` is an
incremental decoder fed arbitrary byte chunks (it owns a compacting
ring buffer of :class:`memoryview`-sliced bytes, so partial frames cost
nothing and no per-frame ``bytes`` joins ever happen), and
:class:`FrameEncoder` is its outbound twin. Neither knows what a socket
is — the blocking shim :class:`FrameStream` (client SDK, threaded
server backend) and the ``selectors`` event loop
(:mod:`repro.service.server`'s async backend) both drive the same
codec, which is what keeps the two I/O stacks byte-for-byte
equivalent. The old blocking :func:`read_frame` survives as a
deprecation shim over the decoder.
"""

from __future__ import annotations

import io
import json
import struct
import warnings
import zlib
from enum import IntEnum
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..trace.events import Event, Op
from ..trace.packed import _NAMESPACE_OF_OP, NO_TARGET, Interner
from ..trace.parser import TraceParseError, parse_fields

#: Protocol identifier carried in every HELLO.
PROTOCOL = "repro-wire/1"

#: Hard cap on one frame's (type + payload) size.
MAX_FRAME = 16 * 1024 * 1024

_HEADER = struct.Struct(">IB")  # frame length, frame type
_U32 = struct.Struct("<I")
_TRIPLE = struct.Struct("<IBi")  # thread index, op, target index

#: Event-batch encoding tags (first payload byte of an EVENTS frame).
TEXT_EVENTS = 0
DELTA_EVENTS = 1
#: Positioned variants: body prefixed with ``u64`` base + ``u32`` CRC32.
TEXT_EVENTS_POS = 2
DELTA_EVENTS_POS = 3

_POS_HEADER = struct.Struct("<QI")  # stream base position, body CRC32


class WireError(Exception):
    """Base of every protocol-level failure (never raised raw)."""


class FrameError(WireError):
    """The framing layer is broken: truncation, oversize, unknown type."""


class PayloadError(WireError):
    """A well-framed payload failed to decode."""


class FrameType(IntEnum):
    """Frame type codes of ``repro-wire/1``."""

    # client -> server
    HELLO = 1
    EVENTS = 2
    CHECKPOINT = 3
    FLUSH = 4
    CLOSE = 5
    STATS = 6
    # cluster control (node -> node; RING also client -> node to fetch
    # the membership document for ring-aware routing)
    JOIN = 7
    RING = 8
    HANDOFF = 9
    OWNED = 10
    # server -> client
    OK = 16
    REPORT = 17
    VIOLATION = 18
    ERROR = 19
    BUSY = 20
    REDIRECT = 21
    # Epoch fence: the receiver's membership view is stale (its epoch
    # is behind the sender's), or the sender's is (a HANDOFF/OWNED
    # carrying an old epoch). The write was rejected; refresh and
    # re-route instead of double-serving.
    FENCED = 22


_KNOWN_TYPES = frozenset(int(t) for t in FrameType)


# -- framing ----------------------------------------------------------------


def _check_header(length: int, ftype: int) -> None:
    """The one copy of frame-header validation every path goes through."""
    if length < 1 or length > MAX_FRAME:
        raise FrameError(f"frame length {length} out of range [1, {MAX_FRAME}]")
    if ftype not in _KNOWN_TYPES:
        raise FrameError(f"unknown frame type {ftype}")


def encode_frame(ftype: int, payload: bytes = b"") -> bytes:
    """One wire frame: header + type + payload."""
    length = 1 + len(payload)
    if length > MAX_FRAME:
        raise FrameError(f"frame of {length} bytes exceeds MAX_FRAME")
    return _HEADER.pack(length, ftype) + payload


class RingBuffer:
    """A compacting byte ring for incremental decoding.

    Appends are amortized O(1); reads hand out ``memoryview`` slices of
    the single backing ``bytearray``, so a frame arriving in N chunks
    never costs a join. Consumed bytes are reclaimed lazily: the buffer
    compacts only when the dead prefix outweighs the live bytes (or
    passes a fixed threshold), keeping per-chunk work constant.
    """

    #: Compact whenever this many consumed bytes sit ahead of the data.
    COMPACT_AT = 64 * 1024

    __slots__ = ("_buf", "_start", "high_water")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._start = 0
        #: Most bytes ever buffered at once (service-stats gauge).
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._buf) - self._start

    def write(self, data) -> None:
        """Append one received chunk (bytes-like)."""
        start = self._start
        if start and (start >= len(self._buf) - start or start >= self.COMPACT_AT):
            del self._buf[:start]
            self._start = 0
        self._buf += data
        live = len(self._buf) - self._start
        if live > self.high_water:
            self.high_water = live

    def view(self) -> memoryview:
        """A zero-copy view of the unconsumed bytes."""
        return memoryview(self._buf)[self._start :]

    def take(self, n: int) -> bytes:
        """Consume and return the first ``n`` buffered bytes."""
        out = bytes(self._buf[self._start : self._start + n])
        self._start += n
        return out

    def skip(self, n: int) -> None:
        """Consume ``n`` bytes without materializing them."""
        self._start += n


class FrameDecoder:
    """Incremental ``repro-wire/1`` frame decoder — the sans-IO core.

    Feed it byte chunks exactly as they arrive (:meth:`feed`); pull
    complete ``(type, payload)`` frames out with :meth:`next_frame` or
    by iterating. Partial frames simply stay buffered in the ring;
    corrupt framing raises :class:`FrameError` at the earliest byte
    that proves the stream broken. No sockets, no blocking — both the
    threaded and the ``selectors`` event-loop front ends drive this
    same object, as does the fuzz suite.
    """

    __slots__ = ("_ring", "frames_decoded")

    def __init__(self) -> None:
        self._ring = RingBuffer()
        #: Complete frames decoded over this connection's lifetime.
        self.frames_decoded = 0

    @property
    def buffered(self) -> int:
        """Bytes currently sitting in the ring (partial frame)."""
        return len(self._ring)

    @property
    def high_water(self) -> int:
        """Most bytes ever buffered at once."""
        return self._ring.high_water

    def feed(self, data) -> None:
        """Buffer one received chunk (any bytes-like, any split)."""
        self._ring.write(data)

    def needed(self) -> int:
        """Bytes still missing before :meth:`next_frame` can succeed.

        Validates the buffered header as a side effect (so a blocking
        caller can read *exactly* the right amount and still fail fast
        on garbage).

        Raises:
            FrameError: If the buffered header is invalid.
        """
        have = len(self._ring)
        if have < _HEADER.size:
            return _HEADER.size - have
        length, ftype = _HEADER.unpack_from(self._ring.view())
        _check_header(length, ftype)
        return max(0, _HEADER.size + (length - 1) - have)

    def next_frame(self) -> Optional[Tuple[int, bytes]]:
        """Decode one complete frame, or ``None`` (feed more bytes).

        Raises:
            FrameError: On an oversize length or an unknown frame type.
        """
        if self.needed():
            return None
        length, ftype = _HEADER.unpack_from(self._ring.view())
        self._ring.skip(_HEADER.size)
        payload = self._ring.take(length - 1) if length > 1 else b""
        self.frames_decoded += 1
        return ftype, payload

    def __iter__(self) -> Iterator[Tuple[int, bytes]]:
        """Drain every currently-complete frame."""
        while True:
            frame = self.next_frame()
            if frame is None:
                return
            yield frame


class FrameEncoder:
    """Outbound half of the codec: frames in, counted bytes out.

    Stateless apart from its counters (the wire format needs no
    outbound state) — it exists so both server backends account their
    reply traffic identically for ``service-stats``.
    """

    __slots__ = ("frames_encoded", "bytes_encoded")

    def __init__(self) -> None:
        self.frames_encoded = 0
        self.bytes_encoded = 0

    def encode(self, ftype: int, payload: bytes = b"") -> bytes:
        frame = encode_frame(ftype, payload)
        self.frames_encoded += 1
        self.bytes_encoded += len(frame)
        return frame

    def encode_json(self, ftype: int, obj: Dict[str, Any]) -> bytes:
        return self.encode(
            ftype, json.dumps(obj, separators=(",", ":")).encode("utf-8")
        )


class FrameStream:
    """Blocking-transport shim over :class:`FrameDecoder`.

    Wraps a binary stream (a socket ``makefile`` or any object with
    ``read(n)``) and yields frames. This is the *one* blocking read
    loop in the codebase — the client SDK and the threaded server
    backend both use it, so there are no duplicated read/dispatch
    loops to drift apart.
    """

    __slots__ = ("_stream", "_decoder")

    def __init__(self, stream) -> None:
        self._stream = stream
        self._decoder = FrameDecoder()

    @property
    def decoder(self) -> FrameDecoder:
        return self._decoder

    def read_frame(self) -> Optional[Tuple[int, bytes]]:
        """Read one frame; ``None`` on a clean EOF at a frame boundary.

        Raises:
            FrameError: On EOF inside a frame, oversize, unknown type.
        """
        while True:
            need = self._decoder.needed()  # raises on a corrupt header
            if not need:
                return self._decoder.next_frame()
            data = self._stream.read(need)
            if not data:
                if self._decoder.buffered:
                    raise FrameError(
                        "truncated frame: EOF after "
                        f"{self._decoder.buffered} buffered byte(s)"
                    )
                return None  # clean EOF
            self._decoder.feed(data)


def decode_frame(
    data: bytes, offset: int = 0
) -> Optional[Tuple[int, bytes, int]]:
    """Decode one frame from ``data[offset:]`` (one-shot form).

    Returns ``(type, payload, next_offset)``, or ``None`` when the
    buffer holds only an incomplete frame (read more and retry).

    Raises:
        FrameError: On an oversize length or an unknown frame type.
    """
    if len(data) - offset < _HEADER.size:
        return None
    length, ftype = _HEADER.unpack_from(data, offset)
    _check_header(length, ftype)
    end = offset + _HEADER.size + (length - 1)
    if len(data) < end:
        return None
    return ftype, bytes(data[offset + _HEADER.size : end]), end


def read_frame(stream) -> Optional[Tuple[int, bytes]]:
    """Deprecated: read one frame from a blocking binary stream.

    A shim over :class:`FrameStream` kept for older callers; it reads
    exactly one frame's bytes, so interleaving it with other reads on
    the same stream still works. New code should hold a
    :class:`FrameStream` (blocking) or drive a :class:`FrameDecoder`
    (event loop) instead.

    Returns ``(type, payload)``, or ``None`` on a clean EOF at a frame
    boundary.

    Raises:
        FrameError: On EOF inside a frame, oversize, or unknown type.
    """
    warnings.warn(
        "repro.service.protocol.read_frame is deprecated; use "
        "FrameStream (blocking) or FrameDecoder (incremental) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    decoder = FrameDecoder()
    header = stream.read(_HEADER.size)
    if not header:
        return None
    decoder.feed(header)
    if len(header) < _HEADER.size:
        raise FrameError("truncated frame header")
    need = decoder.needed()
    if need:
        payload = stream.read(need)
        decoder.feed(payload)
        if len(payload) < need:
            raise FrameError("truncated frame payload")
    return decoder.next_frame()


# -- JSON payloads ----------------------------------------------------------


def encode_json(ftype: int, obj: Dict[str, Any]) -> bytes:
    """A frame whose payload is a JSON object."""
    return encode_frame(
        ftype, json.dumps(obj, separators=(",", ":")).encode("utf-8")
    )


def decode_json(payload: bytes) -> Dict[str, Any]:
    """Decode a JSON-object payload.

    Raises:
        PayloadError: On invalid UTF-8/JSON or a non-object document.
    """
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise PayloadError(f"bad JSON payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise PayloadError(
            f"JSON payload must be an object, got {type(obj).__name__}"
        )
    return obj


def parse_hello(obj: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a HELLO payload and normalize its analysis specs.

    Returns a dict with keys ``analyses`` (list of ``(name, options)``
    pairs), ``name``, ``packed``, ``resume``, ``lenient``, ``epoch``,
    ``session`` and ``meta``.

    Raises:
        PayloadError: On a protocol mismatch or a malformed field.
    """
    protocol = obj.get("protocol")
    if protocol != PROTOCOL:
        raise PayloadError(
            f"protocol {protocol!r} unsupported (want {PROTOCOL!r})"
        )
    raw = obj.get("analyses")
    resume = bool(obj.get("resume", False))
    if not isinstance(raw, list) or (not raw and not resume):
        raise PayloadError("HELLO must carry a non-empty analyses list")
    analyses: List[Tuple[str, Dict[str, Any]]] = []
    for entry in raw:
        if isinstance(entry, str):
            analyses.append((entry, {}))
        elif isinstance(entry, dict) and isinstance(entry.get("name"), str):
            options = entry.get("options", {})
            if not isinstance(options, dict):
                raise PayloadError("analysis options must be an object")
            analyses.append((entry["name"], options))
        else:
            raise PayloadError(f"bad analysis spec {entry!r}")
    session = obj.get("session")
    if session is not None and not isinstance(session, str):
        raise PayloadError("session id must be a string")
    if resume and session is None:
        raise PayloadError("resume requires a session id")
    name = obj.get("name", "stream")
    if not isinstance(name, str):
        raise PayloadError("trace name must be a string")
    meta = obj.get("meta", {})
    if not isinstance(meta, dict):
        raise PayloadError("meta must be an object")
    epoch = obj.get("epoch")
    if epoch is not None and (not isinstance(epoch, int) or epoch < 0):
        raise PayloadError("epoch must be a non-negative integer")
    return {
        "analyses": analyses,
        "name": name,
        "packed": bool(obj.get("packed", False)),
        "resume": resume,
        # Epoch fence: the membership epoch the client routed by. The
        # connection pins it; every shard-bound frame on the connection
        # (EVENTS, FLUSH, CHECKPOINT, CLOSE) inherits the pin, and a
        # node whose own epoch has fallen behind answers FENCED instead
        # of silently serving writes it may no longer own.
        "epoch": epoch,
        # Lenient resume: if nothing resumable exists (no live session,
        # no spool entry, no shipped replica), open fresh at position 0
        # instead of erroring — the cluster client's failover path,
        # where a session may die before its first checkpoint ships.
        "lenient": bool(obj.get("lenient", False)),
        "session": session,
        "meta": meta,
    }


# -- HANDOFF payloads -------------------------------------------------------

_HANDOFF_META = struct.Struct("<I")  # header JSON length
_HANDOFF_BLOB = struct.Struct("<IQ")  # payload crc32, payload length


def encode_handoff(meta: Dict[str, Any], blob: bytes) -> bytes:
    """A HANDOFF payload: JSON header + CRC-guarded checkpoint bytes.

    ``meta`` describes the shipment (``session``, ``position``,
    ``live``, ``epoch``, ``origin``); ``blob`` is the frozen
    :class:`~repro.service.recovery.SessionCheckpoint` exactly as the
    spool stores it — a migration literally ships the spool entry.
    """
    header = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    return (
        _HANDOFF_META.pack(len(header))
        + header
        + _HANDOFF_BLOB.pack(zlib.crc32(blob), len(blob))
        + blob
    )


def decode_handoff(payload: bytes) -> Tuple[Dict[str, Any], bytes]:
    """Decode a HANDOFF payload -> ``(meta, checkpoint_blob)``.

    Raises:
        PayloadError: On truncation, bad JSON, or a blob CRC mismatch.
    """
    if len(payload) < _HANDOFF_META.size:
        raise PayloadError("truncated handoff payload")
    (header_len,) = _HANDOFF_META.unpack_from(payload)
    pos = _HANDOFF_META.size
    if header_len > len(payload) - pos:
        raise PayloadError("truncated handoff header")
    meta = decode_json(payload[pos : pos + header_len])
    pos += header_len
    if len(payload) - pos < _HANDOFF_BLOB.size:
        raise PayloadError("truncated handoff blob header")
    crc, length = _HANDOFF_BLOB.unpack_from(payload, pos)
    pos += _HANDOFF_BLOB.size
    blob = payload[pos:]
    if len(blob) != length:
        raise PayloadError(
            f"handoff blob is {len(blob)} bytes, header claims {length}"
        )
    if zlib.crc32(blob) != crc:
        raise PayloadError("handoff blob CRC mismatch (corrupt shipment)")
    return meta, blob


# -- EVENTS payloads --------------------------------------------------------


def encode_events_text(
    events: Iterable[Event], base: Optional[int] = None
) -> bytes:
    """An EVENTS payload in text encoding (``.std`` lines).

    With ``base`` (the stream position of the batch's first event) the
    positioned tag is used: the server can drop duplicate deliveries
    and verify the body CRC.
    """
    body = "\n".join(str(event) for event in events).encode("utf-8")
    if base is None:
        return bytes([TEXT_EVENTS]) + body
    return (
        bytes([TEXT_EVENTS_POS])
        + _POS_HEADER.pack(base, zlib.crc32(body))
        + body
    )


class DeltaEncoder:
    """Client half of the packed-delta event encoding.

    Owns the four interner namespaces for one stream and remembers how
    many names of each the peer has already seen; :meth:`encode` ships
    only the new ones, then the batch's integer triples. Mirrors
    :class:`~repro.trace.packed.PackedTrace.from_trace`'s namespace
    discipline exactly, so indices mean the same thing on both ends.
    """

    def __init__(self) -> None:
        self.threads = Interner()
        self.variables = Interner()
        self.locks = Interner()
        self.labels = Interner()
        # namespace order matches trace.packed: variable, lock, thread, label
        self._by_ns = (self.variables, self.locks, self.threads, self.labels)
        self._sent = [0, 0, 0, 0]

    def encode(
        self, events: Iterable[Event], base: Optional[int] = None
    ) -> bytes:
        """One EVENTS payload (delta encoding) for this batch.

        Each namespace's name table is prefixed with its **base index**
        (how many names the peer already has), which makes frames
        retransmission-safe: a decoder that already absorbed a frame's
        names (say, before answering ``BUSY``) recognizes the resent
        base and skips the duplicates instead of shifting every later
        index. With ``base`` (the batch's stream position) the
        positioned tag adds event-level duplicate dropping and a body
        CRC on top.
        """
        triples = bytearray()
        n = 0
        thread_of = self.threads.index_of
        for event in events:
            op = event.op
            target = event.target
            t_idx = thread_of(event.thread)
            if target is None:
                target_idx = NO_TARGET
            else:
                target_idx = self._by_ns[_NAMESPACE_OF_OP[op]].index_of(target)
            triples += _TRIPLE.pack(t_idx, op, target_idx)
            n += 1
        out = bytearray()
        for ns, interner in enumerate(self._by_ns):
            table_base = self._sent[ns]
            names = interner.names_from(table_base)
            self._sent[ns] = len(interner)
            out += _U32.pack(table_base)
            out += _U32.pack(len(names))
            for name in names:
                raw = name.encode("utf-8")
                out += _U32.pack(len(raw))
                out += raw
        out += _U32.pack(n)
        out += triples
        body = bytes(out)
        if base is None:
            return bytes([DELTA_EVENTS]) + body
        return (
            bytes([DELTA_EVENTS_POS])
            + _POS_HEADER.pack(base, zlib.crc32(body))
            + body
        )


class DeltaDecoder:
    """Server half of the packed-delta event encoding.

    Accumulates the name tables frame by frame and reconstructs
    :class:`~repro.trace.events.Event` objects with global stream
    indices stamped by the caller.
    """

    def __init__(self) -> None:
        # variable, lock, thread, label — same order as the encoder.
        self._names: Tuple[List[str], ...] = ([], [], [], [])

    def decode(self, body: bytes) -> List[Event]:
        """Decode one delta body into events.

        Raises:
            PayloadError: On truncation, bad UTF-8, an op code outside
                the eight known kinds, or an index past the tables.
        """
        view = memoryview(body)
        pos = 0

        def take(n: int) -> memoryview:
            nonlocal pos
            if len(view) - pos < n:
                raise PayloadError("truncated delta body")
            chunk = view[pos : pos + n]
            pos += n
            return chunk

        for names in self._names:
            (base,) = _U32.unpack(take(4))
            (count,) = _U32.unpack(take(4))
            if count > len(body):  # cheap sanity bound before the loop
                raise PayloadError(f"absurd name count {count}")
            if base > len(names):
                raise PayloadError(
                    f"name table gap: frame base {base}, have {len(names)}"
                )
            for k in range(count):
                (size,) = _U32.unpack(take(4))
                if size > len(body):
                    raise PayloadError(f"absurd name length {size}")
                try:
                    name = bytes(take(size)).decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise PayloadError(f"bad name encoding: {exc}") from exc
                if base + k < len(names):
                    # a retransmitted frame (e.g. resent through BUSY):
                    # this name is already in the table — don't shift it.
                    if names[base + k] != name:
                        raise PayloadError(
                            f"retransmit mismatch at index {base + k}"
                        )
                else:
                    names.append(name)
        (n,) = _U32.unpack(take(4))
        if n * _TRIPLE.size != len(view) - pos:
            raise PayloadError(
                f"delta body claims {n} events, "
                f"{len(view) - pos} bytes of triples remain"
            )
        variables, locks, threads, labels = self._names
        events: List[Event] = []
        for _ in range(n):
            t_idx, op_code, target_idx = _TRIPLE.unpack(take(_TRIPLE.size))
            if op_code > 7:
                raise PayloadError(f"unknown op code {op_code}")
            op = Op(op_code)
            try:
                thread = threads[t_idx]
            except IndexError:
                raise PayloadError(f"thread index {t_idx} unknown") from None
            if target_idx == NO_TARGET:
                if op not in (Op.BEGIN, Op.END):
                    raise PayloadError(f"{op.name} event without a target")
                target = None
            else:
                table = self._names[_NAMESPACE_OF_OP[op]]
                if not 0 <= target_idx < len(table):
                    raise PayloadError(
                        f"target index {target_idx} unknown for {op.name}"
                    )
                target = table[target_idx]
            events.append(Event(thread, op, target))
        return events


def _decode_text_body(body: bytes) -> List[Event]:
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise PayloadError(f"bad text encoding: {exc}") from exc
    events: List[Event] = []
    for line_number, line in enumerate(io.StringIO(text), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            thread, op, target = parse_fields(stripped, line_number)
        except TraceParseError as exc:
            raise PayloadError(str(exc)) from exc
        events.append(Event(thread, op, target))
    return events


def decode_events_ex(
    payload: bytes, decoder: Optional[DeltaDecoder] = None
) -> Tuple[List[Event], Optional[int]]:
    """Decode an EVENTS payload of any encoding.

    Returns ``(events, base)`` — ``base`` is the stream position the
    batch claims to start at (positioned tags), or ``None`` (legacy
    tags). ``decoder`` carries the per-stream delta state; text
    payloads do not need one. Returned events carry ``idx = -1`` — the
    session stamps global stream positions.

    Raises:
        PayloadError: On an unknown encoding tag, a CRC mismatch, or
            any body defect.
    """
    if not payload:
        raise PayloadError("empty EVENTS payload")
    tag = payload[0]
    base: Optional[int] = None
    body = payload[1:]
    if tag in (TEXT_EVENTS_POS, DELTA_EVENTS_POS):
        if len(body) < _POS_HEADER.size:
            raise PayloadError("truncated positioned-events header")
        base, crc = _POS_HEADER.unpack_from(body)
        body = body[_POS_HEADER.size :]
        if zlib.crc32(body) != crc:
            raise PayloadError(
                f"events body CRC mismatch at base {base} (corrupt frame)"
            )
        tag = TEXT_EVENTS if tag == TEXT_EVENTS_POS else DELTA_EVENTS
    if tag == TEXT_EVENTS:
        return _decode_text_body(body), base
    if tag == DELTA_EVENTS:
        if decoder is None:
            raise PayloadError("delta-encoded events need a stream decoder")
        return decoder.decode(body), base
    raise PayloadError(f"unknown events encoding tag {payload[0]}")


def decode_events(
    payload: bytes, decoder: Optional[DeltaDecoder] = None
) -> List[Event]:
    """Decode an EVENTS payload, dropping any position header.

    The events-only form of :func:`decode_events_ex` (which the server
    uses to enforce positioned idempotence).

    Raises:
        PayloadError: On an unknown encoding tag or any body defect.
    """
    return decode_events_ex(payload, decoder)[0]
