"""Sharded session routing — the multi-tenant core of the service.

The sharding discipline follows the "Is Parallel Programming Hard"
survey's data-ownership pattern: **partition by session, share nothing
across shards, serialize only at the ingest frame boundary.** Every
session hashes (stable CRC32 of its id) to exactly one shard; a shard
owns its sessions' entire analysis state and is driven by exactly one
worker, so no lock ever guards checker state. The only cross-shard
structures are the bounded inbox queues — which are also the
backpressure mechanism: when a shard's inbox is full, the router raises
:class:`BusyError` and the server answers the client with a ``BUSY``
frame instead of buffering unboundedly.

Shards are **threads by default** — on the 1-CPU build container
processes cannot help, and threads keep checkpoint spools and stats in
one address space. On real hardware, ``workers="process"`` runs every
shard as its own OS process (the same worker loop, driven through
multiprocessing queues, with the start method chosen the way
:mod:`repro.api.parallel` chooses it — fork preferred so interner
tables and code are inherited copy-on-write), giving true parallel
ingest across shards.

Event batches are fire-and-forget (pipelined): ``feed`` returns as soon
as the batch is enqueued, and any processing error is parked on the
session and surfaced at the next synchronous command (flush, close).
Control commands are synchronous request/response futures.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
import uuid
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.snapshot import CheckpointError, freeze, thaw
from ..obs import tracing
from ..obs.metrics import STATS_SCHEMA, MetricsRegistry
from ..faults.injector import fire
from ..faults.plan import ShardCrash
from ..trace.events import Event
from .recovery import (
    RecoveryError,
    RecoveryManager,
    SessionCheckpoint,
    checkpoint_session,
    restore_session,
)
from .session import StreamingSession

#: Service-wide logger. Every message that concerns a tenant carries
#: ``session=<id> shard=<n>`` so partial failures keep attribution.
log = logging.getLogger("repro.service")

#: Default bound of each shard's inbox queue (batches, not events).
DEFAULT_QUEUE_SIZE = 64

#: Seconds a control command may wait to *enqueue* before BusyError.
#: Only the enqueue is retryable — once a command is in a shard's
#: inbox it WILL execute, so timing out on the reply must never be
#: reported as BUSY (a client would retry a non-idempotent command).
CONTROL_TIMEOUT = 30.0

#: Seconds to wait for an enqueued control command's reply before
#: failing hard (RouterError, not BUSY): long enough to drain a full
#: inbox of event batches ahead of a CLOSE barrier.
REPLY_TIMEOUT = 600.0


class RouterError(RuntimeError):
    """A shard command failed (the message carries the worker error)."""


class BusyError(RouterError):
    """A shard's inbox is full (or a tenant is over its inflight
    quota) — backpressure; retry after a pause.

    ``retry_ms`` is the server's pacing hint: how long the client
    should wait before retrying (rides the BUSY frame). ``shed`` marks
    a per-tenant quota rejection as opposed to a full shard inbox.
    """

    def __init__(
        self, message: str, retry_ms: Optional[int] = None, shed: bool = False
    ) -> None:
        super().__init__(message)
        self.retry_ms = retry_ms
        self.shed = shed


class SessionNotFound(RouterError):
    """The session id is not open on its shard."""


class SessionQuarantined(RouterError):
    """The session was poisoned (an analysis raised, a gap was
    detected, …) and isolated; its shard and sibling tenants are fine.
    ``code`` is the machine-readable failure class."""

    def __init__(self, message: str, code: str = "quarantined") -> None:
        super().__init__(message)
        self.code = code


class ShardCrashed(RouterError):
    """The session's shard worker died mid-flight. Queued batches were
    lost; the router restarts the shard (recovering spooled sessions at
    their checkpoints) on the next command routed to it. Clients should
    resume and re-send from the server's reported position."""


class _Future:
    """A one-shot reply slot for shard commands.

    Blocking callers :meth:`wait`; the event-loop backend instead
    :meth:`subscribe`\\ s a callback (fired from the resolving shard's
    thread — subscribers must be thread-safe, e.g. poke a wakeup pipe)
    and later reads :meth:`result` without ever blocking.
    """

    __slots__ = ("_event", "_lock", "_callback", "value", "error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._callback = None
        self.value: Any = None
        self.error: Optional[Tuple[str, str]] = None  # (kind, message)

    def _fire(self) -> None:
        self._event.set()
        with self._lock:
            callback, self._callback = self._callback, None
        if callback is not None:
            callback(self)

    def resolve(self, value: Any) -> None:
        self.value = value
        self._fire()

    def fail(self, kind: str, message: str) -> None:
        self.error = (kind, message)
        self._fire()

    def done(self) -> bool:
        return self._event.is_set()

    def subscribe(self, callback) -> None:
        """Run ``callback(self)`` once resolved (immediately if it
        already is). At most one subscriber; runs on the resolver's
        thread."""
        with self._lock:
            if not self._event.is_set():
                self._callback = callback
                return
        callback(self)

    def result(self) -> Any:
        """The reply of a completed future, raising its typed error.

        Only call after :meth:`done` is true (or from a subscriber).
        """
        if not self._event.is_set():
            raise RouterError("future is not resolved yet")
        if self.error is not None:
            kind, message = self.error
            if kind == "SessionNotFound":
                raise SessionNotFound(message)
            if kind == "SessionQuarantined":
                code, _, detail = message.partition("|")
                raise SessionQuarantined(detail or message, code=code)
            if kind == "ShardCrashed":
                raise ShardCrashed(message)
            raise RouterError(message)
        return self.value

    def join(self, timeout: float) -> None:
        """Block until resolved, without raising the reply's error.

        Raises:
            RouterError: If the shard does not answer in time. The
                command is already enqueued and will run; a BUSY here
                would make the client re-send it, so fail hard instead.
        """
        if not self._event.wait(timeout):
            raise RouterError(
                f"shard did not answer within {timeout:.0f}s"
            )

    def wait(self, timeout: float) -> Any:
        self.join(timeout)
        return self.result()


class ShardWorker:
    """The per-shard state machine: sessions, stats, checkpoints.

    Runs inside exactly one thread or process; nothing here is
    synchronized because nothing here is shared.
    """

    def __init__(
        self,
        shard_id: int,
        recovery: Optional[RecoveryManager] = None,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        self.shard_id = shard_id
        self.recovery = recovery
        self.checkpoint_every = checkpoint_every
        self.sessions: Dict[str, StreamingSession] = {}
        self._last_checkpoint: Dict[str, int] = {}
        self.started = time.monotonic()
        # Typed instruments (repro.obs.metrics). The registry is plain
        # picklable state — a process shard ships the whole worker —
        # and carries no locks because one driver owns the worker.
        self.metrics = MetricsRegistry()
        self.events_total = self.metrics.counter(
            "repro_shard_events_total", "Events ingested by this shard")
        self.findings_total = self.metrics.counter(
            "repro_shard_violations_total", "Findings raised on this shard")
        self.sessions_closed = self.metrics.counter(
            "repro_shard_sessions_closed_total", "Sessions closed cleanly")
        self.errors_total = self.metrics.counter(
            "repro_shard_errors_total", "Analysis/feed errors")
        self.sessions_quarantined = self.metrics.counter(
            "repro_shard_sessions_quarantined_total",
            "Sessions poison-isolated")
        self.events_dropped = self.metrics.counter(
            "repro_shard_events_dropped_total",
            "Events discarded after quarantine")
        self.checkpoint_failures = self.metrics.counter(
            "repro_shard_checkpoint_failures_total",
            "Checkpoint writes that failed")
        self.lenient_restarts = self.metrics.counter(
            "repro_shard_lenient_restarts_total",
            "Sessions restarted from zero under lenient recovery")
        self.checkpoint_lag = self.metrics.histogram(
            "repro_shard_checkpoint_lag",
            "Events between consecutive checkpoints")
        #: Findings per tenant session — the per-tenant violation counts
        #: surfaced on the stats doc and the prom exposition.
        self.tenant_violations: Dict[str, int] = {}

    # -- command handlers (dispatched by name) -----------------------------

    def _session(self, session_id: str) -> StreamingSession:
        try:
            return self.sessions[session_id]
        except KeyError:
            raise SessionNotFound(
                f"session {session_id!r} is not open on shard {self.shard_id}"
            ) from None

    def do_open(
        self,
        session_id: str,
        analyses: Sequence[Tuple[str, Dict[str, Any]]],
        name: str,
        packed: bool,
        resume: bool,
        lenient: bool = False,
    ) -> Dict[str, Any]:
        if session_id in self.sessions:
            if resume:  # live on this shard — nothing to restore
                session = self.sessions[session_id]
                return {
                    "session": session_id,
                    "position": session.position,
                    "resumed": True,
                }
            raise RouterError(f"session {session_id!r} already open")
        resumed = False
        restarted = False
        if resume:
            if self.recovery is None and not lenient:
                raise RouterError("cannot resume: server has no spool")
            try:
                if self.recovery is None:
                    raise RecoveryError("server has no spool")
                session = self.recovery.load(session_id)
                resumed = True
            except RecoveryError:
                # Lenient resume (the cluster failover path): nothing
                # resumable here — no live session, no spool entry, no
                # shipped replica — so open fresh at position 0 and let
                # the client rewind and re-send; positioned frames make
                # the replay idempotent. Never silent: counted, logged,
                # and flagged in the reply so clients can surface it.
                if not lenient:
                    raise
                restarted = True
                self.lenient_restarts.inc()
                log.warning(
                    "lenient resume restarted from zero session=%s "
                    "shard=%d: nothing recoverable here",
                    session_id, self.shard_id,
                )
                session = StreamingSession(
                    session_id, analyses, name=name, packed=packed
                )
        else:
            session = StreamingSession(
                session_id, analyses, name=name, packed=packed
            )
        self.sessions[session_id] = session
        self._last_checkpoint[session_id] = session.position
        if self.recovery is not None and not resumed:
            # Spool at position 0 so a crash before the first periodic
            # checkpoint still leaves the session recoverable.
            self.recovery.save(session)
        return {
            "session": session_id,
            "position": session.position,
            "resumed": resumed,
            "restarted": restarted,
        }

    def do_events(
        self,
        session_id: str,
        events: List[Event],
        base: Optional[int] = None,
    ) -> None:
        session = self._session(session_id)
        if session.quarantined:
            # Poisoned: count and drop until the client sees the error.
            session.dropped += len(events)
            self.events_dropped.inc(len(events))
            return
        action = fire("shard.batch", key=session_id)
        if action is not None and action.op == "crash":
            raise ShardCrash(
                f"[injected] shard {self.shard_id} crashed processing a "
                f"batch of session {session_id!r}"
            )
        try:
            with tracing.span(
                "shard.dispatch",
                shard=self.shard_id,
                session=session_id,
                events=len(events),
            ):
                found = session.feed(events, base=base)
            if found:
                self.findings_total.inc(found)
                self.tenant_violations[session_id] = (
                    self.tenant_violations.get(session_id, 0) + found
                )
            self.events_total.inc(len(events))
        except Exception as exc:
            # Quarantine the one tenant; the shard and its sibling
            # sessions keep running.
            session.quarantine("analysis", f"{type(exc).__name__}: {exc}")
            self.sessions_quarantined.inc()
            self.errors_total.inc()
            log.error(
                "analysis failure quarantined session=%s shard=%d "
                "position=%d: %s",
                session_id, self.shard_id, session.position, exc,
            )
            return
        interval = self.checkpoint_every
        if (
            self.recovery is not None
            and interval
            and session.position - self._last_checkpoint[session_id] >= interval
        ):
            lag = session.position - self._last_checkpoint[session_id]
            try:
                with tracing.span(
                    "shard.checkpoint",
                    shard=self.shard_id,
                    session=session_id,
                    position=session.position,
                ):
                    self.recovery.save(session)
            except (RecoveryError, CheckpointError) as exc:
                # A failed periodic checkpoint degrades durability, not
                # the live session — log it, count it, keep analyzing.
                self.checkpoint_failures.inc()
                log.warning(
                    "checkpoint failed session=%s shard=%d position=%d: %s",
                    session_id, self.shard_id, session.position, exc,
                )
            else:
                self.checkpoint_lag.observe(lag)
                self._last_checkpoint[session_id] = session.position

    def do_flush(self, session_id: str) -> Dict[str, Any]:
        session = self._session(session_id)
        return {
            "position": session.position,
            "findings": session.drain_findings(),
            "findings_total": len(session.findings),
            "error": session.error,
            "error_code": session.error_code,
            "out_of_sync": session.out_of_sync,
        }

    def do_checkpoint(self, session_id: str) -> Dict[str, Any]:
        session = self._session(session_id)
        if self.recovery is None:
            raise RouterError("server has no checkpoint spool (--spool)")
        checkpoint = self.recovery.save(session)
        self._last_checkpoint[session_id] = session.position
        return {"position": checkpoint.position, "bytes": len(checkpoint)}

    def do_close(self, session_id: str) -> Dict[str, Any]:
        session = self._session(session_id)
        if session.quarantined:
            code = session.error_code or "quarantined"
            error = session.error
            position = session.quarantined_at
            dropped = session.dropped
            self._drop(session_id)
            log.error(
                "closing quarantined session=%s shard=%d code=%s "
                "quarantined_at=%s dropped=%d: %s",
                session_id, self.shard_id, code, position, dropped, error,
            )
            raise SessionQuarantined(
                f"session quarantined at position {position} "
                f"({dropped} later events dropped): {error}",
                code=code,
            )
        if session.out_of_sync:
            # Events were lost (e.g. across a shard restart) and the
            # client never re-sent them: refuse to emit a report that
            # silently covers a shorter stream.
            raise RouterError(
                f"session {session_id!r} is out of sync at position "
                f"{session.position}; re-send from there before CLOSE"
            )
        report = session.report()
        findings = session.drain_findings()
        self._drop(session_id)
        self.sessions_closed.inc()
        return {"report": report, "findings": findings}

    def _drop(self, session_id: str) -> None:
        self.sessions.pop(session_id, None)
        self._last_checkpoint.pop(session_id, None)
        if self.recovery is not None:
            self.recovery.delete(session_id)

    # -- cluster migration commands ----------------------------------------

    def do_list(self) -> List[Dict[str, Any]]:
        """Open sessions on this shard: id, position, health."""
        return [
            {
                "session": session_id,
                "position": session.position,
                "quarantined": session.quarantined,
            }
            for session_id, session in sorted(self.sessions.items())
        ]

    def _freeze_session(self, session_id: str) -> Dict[str, Any]:
        session = self._session(session_id)
        if session.quarantined:
            raise RouterError(
                f"cannot export quarantined session {session_id!r}"
            )
        checkpoint = checkpoint_session(session)
        blob = freeze(checkpoint, what=f"handoff of {session_id}")
        return {
            "meta": {
                "session": session_id,
                "name": checkpoint.name,
                "analyses": list(checkpoint.analyses),
                "position": checkpoint.position,
            },
            "blob": blob,
        }

    def do_export(self, session_id: str) -> Dict[str, Any]:
        """Freeze a session for handoff and drop it locally.

        The returned blob is the exact frozen :class:`SessionCheckpoint`
        a spool entry stores; the receiving shard's :meth:`do_import`
        (or its spool, via ``save_payload``) adopts it verbatim. The
        local copy — live session and spool entry — is released, so
        ownership moves, never forks.
        """
        out = self._freeze_session(session_id)
        self._drop(session_id)
        return out

    def do_export_copy(self, session_id: str) -> Dict[str, Any]:
        """Freeze a session for replication; the original keeps running."""
        return self._freeze_session(session_id)

    def do_import(self, blob: bytes) -> Dict[str, Any]:
        """Adopt a handed-off session from its frozen checkpoint.

        Conflict rule: if the session is already open here, the copy
        with the **higher position** wins (an at-least-once handoff can
        deliver a stale duplicate; never move a session backwards).
        """
        checkpoint = thaw(blob, what="handoff payload")
        if not isinstance(checkpoint, SessionCheckpoint):
            raise RouterError("handoff payload is not a session checkpoint")
        session_id = checkpoint.session_id
        current = self.sessions.get(session_id)
        if current is not None and current.position >= checkpoint.position:
            return {
                "session": session_id,
                "position": current.position,
                "imported": False,
            }
        session = restore_session(checkpoint)
        self.sessions[session_id] = session
        self._last_checkpoint[session_id] = session.position
        if self.recovery is not None:
            self.recovery.save_payload(session_id, blob)
        return {
            "session": session_id,
            "position": session.position,
            "imported": True,
        }

    def do_stats(self) -> Dict[str, Any]:
        elapsed = max(time.monotonic() - self.started, 1e-9)
        checkpoint_lag = 0
        for session_id, session in self.sessions.items():
            behind = session.position - self._last_checkpoint.get(
                session_id, 0
            )
            if behind > checkpoint_lag:
                checkpoint_lag = behind
        return {
            "shard": self.shard_id,
            "sessions_open": len(self.sessions),
            "sessions_closed": self.sessions_closed.value,
            "sessions_quarantined": self.sessions_quarantined.value,
            "events": self.events_total.value,
            "events_dropped": self.events_dropped.value,
            "events_per_second": self.events_total.value / elapsed,
            "violations": self.findings_total.value,
            "errors": self.errors_total.value,
            "checkpoint_failures": self.checkpoint_failures.value,
            "lenient_restarts": self.lenient_restarts.value,
            "uptime_seconds": elapsed,
            "checkpoint_lag": checkpoint_lag,
            "checkpoint_lag_histogram": self.checkpoint_lag.to_json(),
            "tenant_violations": dict(self.tenant_violations),
        }

    def handle(self, op: str, args: tuple) -> Any:
        return getattr(self, f"do_{op}")(*args)


def _drive(worker: ShardWorker, inbox, reply) -> None:
    """The shard loop, shared by thread and process drivers.

    ``reply(token, ok, value_or_error)`` delivers synchronous results;
    fire-and-forget commands carry ``token=None`` and park failures on
    the session instead.
    """
    while True:
        token, op, args = inbox.get()
        if op == "stop":
            if token is not None:
                reply(token, True, None)
            return
        try:
            value = worker.handle(op, args)
        except ShardCrash as exc:
            # Injected worker death: answer the caller if one is
            # waiting, then let the exception escape the loop — the
            # driver thread/process dies exactly like a real crash.
            if token is not None:
                reply(token, False, ("ShardCrashed", str(exc)))
            raise
        except SessionQuarantined as exc:
            worker.errors_total.inc()
            if token is not None:
                # The code rides the message ("code|detail") so it
                # survives the picklable (kind, message) reply tuple
                # process shards ship over their outbox queue.
                reply(token, False, ("SessionQuarantined", f"{exc.code}|{exc}"))
            continue
        except Exception as exc:
            worker.errors_total.inc()
            if token is not None:
                reply(token, False, (type(exc).__name__, str(exc)))
            continue
        if token is not None:
            reply(token, True, value)


class _ThreadShard:
    """A shard driven by a daemon thread (the default)."""

    def __init__(
        self,
        shard_id: int,
        queue_size: int,
        recovery: Optional[RecoveryManager],
        checkpoint_every: Optional[int],
    ) -> None:
        self.shard_id = shard_id
        self.inbox: "queue.Queue" = queue.Queue(maxsize=queue_size)
        self._worker = ShardWorker(shard_id, recovery, checkpoint_every)
        self._dead: Optional[str] = None
        self._thread = threading.Thread(
            target=self._run,
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        self._thread.start()

    def _run(self) -> None:
        try:
            _drive(self._worker, self.inbox, self._reply)
        except BaseException as exc:  # the worker died mid-command
            self._dead = f"{type(exc).__name__}: {exc}"
            log.error(
                "shard worker died shard=%d: %s", self.shard_id, self._dead
            )
            # Queued commands will never run: fail any waiting callers
            # so nothing blocks on a reply from a dead worker.
            while True:
                try:
                    token, _op, _args = self.inbox.get_nowait()
                except queue.Empty:
                    break
                if token is not None:
                    token.fail(
                        "ShardCrashed",
                        f"shard {self.shard_id} died before the command "
                        f"ran: {self._dead}",
                    )

    @staticmethod
    def _reply(future: _Future, ok: bool, value: Any) -> None:
        if ok:
            future.resolve(value)
        else:
            future.fail(*value)

    def alive(self) -> bool:
        return self._dead is None and self._thread.is_alive()

    def _enqueue(self, op: str, args: tuple, timeout: Optional[float]) -> _Future:
        future = _Future()
        try:
            if timeout is None:
                self.inbox.put_nowait((future, op, args))
            else:
                self.inbox.put((future, op, args), timeout=timeout)
        except queue.Full:
            raise BusyError(f"shard {self.shard_id} inbox is full") from None
        return future

    def call(self, op: str, *args: Any) -> Any:
        if not self.alive():
            raise ShardCrashed(
                f"shard {self.shard_id} is down ({self._dead or 'stopped'})"
            )
        return self._enqueue(op, args, CONTROL_TIMEOUT).wait(REPLY_TIMEOUT)

    def submit(self, op: str, *args: Any) -> _Future:
        """Non-blocking :meth:`call`: enqueue now (a full inbox is an
        immediate :class:`BusyError`, no CONTROL_TIMEOUT grace — event
        loops must never sleep) and return the reply :class:`_Future`.
        """
        if not self.alive():
            raise ShardCrashed(
                f"shard {self.shard_id} is down ({self._dead or 'stopped'})"
            )
        return self._enqueue(op, args, None)

    def cast(self, op: str, *args: Any) -> None:
        if not self.alive():
            raise ShardCrashed(
                f"shard {self.shard_id} is down ({self._dead or 'stopped'})"
            )
        try:
            self.inbox.put_nowait((None, op, args))
        except queue.Full:
            raise BusyError(f"shard {self.shard_id} inbox is full") from None

    def queue_depth(self) -> int:
        return self.inbox.qsize()

    def stop(self) -> None:
        if not self.alive():
            return
        try:
            self.inbox.put((None, "stop", ()), timeout=1.0)
        except queue.Full:
            return  # daemon thread; process teardown reaps it
        self._thread.join(timeout=5.0)


def _process_main(worker: ShardWorker, inbox, outbox) -> None:
    """Entry point of a process shard (must be importable for spawn)."""
    _drive(worker, inbox, lambda token, ok, value: outbox.put((token, ok, value)))


class _ProcessShard:
    """A shard driven by its own OS process (``workers="process"``).

    Commands travel through a bounded multiprocessing inbox; replies
    come back on an outbox drained by a collector thread that resolves
    the callers' futures by token. Start-method selection mirrors
    :func:`repro.api.parallel._pick_context`: fork where the platform
    offers it, spawn otherwise (everything shipped is picklable).
    """

    def __init__(
        self,
        shard_id: int,
        queue_size: int,
        recovery: Optional[RecoveryManager],
        checkpoint_every: Optional[int],
    ) -> None:
        import multiprocessing as mp

        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else None)
        self.shard_id = shard_id
        self.inbox = ctx.Queue(maxsize=queue_size)
        self._outbox = ctx.Queue()
        worker = ShardWorker(shard_id, recovery, checkpoint_every)
        self._process = ctx.Process(
            target=_process_main,
            args=(worker, self.inbox, self._outbox),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        self._process.start()
        self._futures: Dict[int, _Future] = {}
        self._futures_lock = threading.Lock()
        self._next_token = 0
        self._collector = threading.Thread(
            target=self._collect, name=f"repro-shard-{shard_id}-rx", daemon=True
        )
        self._collector.start()

    def _collect(self) -> None:
        while True:
            item = self._outbox.get()
            if item is None:
                return
            token, ok, value = item
            with self._futures_lock:
                future = self._futures.pop(token, None)
            if future is None:
                continue
            if ok:
                future.resolve(value)
            else:
                future.fail(*value)

    def alive(self) -> bool:
        return self._process.is_alive()

    def _enqueue(self, op: str, args: tuple, timeout: Optional[float]) -> _Future:
        future = _Future()
        with self._futures_lock:
            token = self._next_token = self._next_token + 1
            self._futures[token] = future
        try:
            if timeout is None:
                self.inbox.put_nowait((token, op, args))
            else:
                self.inbox.put((token, op, args), timeout=timeout)
        except queue.Full:
            with self._futures_lock:
                self._futures.pop(token, None)
            raise BusyError(f"shard {self.shard_id} inbox is full") from None
        return future

    def call(self, op: str, *args: Any) -> Any:
        if not self.alive():
            raise ShardCrashed(f"shard {self.shard_id} process is down")
        return self._enqueue(op, args, CONTROL_TIMEOUT).wait(REPLY_TIMEOUT)

    def submit(self, op: str, *args: Any) -> _Future:
        """Non-blocking :meth:`call` (see :meth:`_ThreadShard.submit`)."""
        if not self.alive():
            raise ShardCrashed(f"shard {self.shard_id} process is down")
        return self._enqueue(op, args, None)

    def cast(self, op: str, *args: Any) -> None:
        if not self.alive():
            raise ShardCrashed(f"shard {self.shard_id} process is down")
        try:
            self.inbox.put_nowait((None, op, args))
        except queue.Full:
            raise BusyError(f"shard {self.shard_id} inbox is full") from None

    def queue_depth(self) -> int:
        try:
            return self.inbox.qsize()
        except NotImplementedError:  # macOS
            return -1

    def stop(self) -> None:
        try:
            self.call("stop")
        except RouterError:
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():
            self._process.terminate()
        self._outbox.put(None)
        self._collector.join(timeout=2.0)


@dataclass
class RouterStats:
    """One aggregated ``stats()`` snapshot."""

    shards: List[Dict[str, Any]] = field(default_factory=list)
    restarts: int = 0
    shed: int = 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "shards": self.shards,
            "sessions_open": sum(s["sessions_open"] for s in self.shards),
            "sessions_closed": sum(s["sessions_closed"] for s in self.shards),
            "sessions_quarantined": sum(
                s.get("sessions_quarantined", 0) for s in self.shards
            ),
            "events": sum(s["events"] for s in self.shards),
            "events_dropped": sum(
                s.get("events_dropped", 0) for s in self.shards
            ),
            "violations": sum(s["violations"] for s in self.shards),
            "errors": sum(s["errors"] for s in self.shards),
            "checkpoint_failures": sum(
                s.get("checkpoint_failures", 0) for s in self.shards
            ),
            "lenient_restarts": sum(
                s.get("lenient_restarts", 0) for s in self.shards
            ),
            "shard_restarts": self.restarts,
            "shed": self.shed,
            "uptime_seconds": max(
                (s.get("uptime_seconds", 0.0) for s in self.shards),
                default=0.0,
            ),
        }


class Router:
    """Hash sessions onto share-nothing shards and speak to them.

    Args:
        shards: Worker count (one shard per worker).
        workers: ``"thread"`` (default) or ``"process"``.
        queue_size: Bound of each shard's inbox (batches). Full inbox =
            :class:`BusyError` = a ``BUSY`` frame on the wire.
        recovery: Spool manager for checkpointed recovery, or ``None``.
        checkpoint_every: Auto-checkpoint a session every N ingested
            events (requires ``recovery``).
        tenant_quota: Max EVENTS batches one session may have inflight
            (enqueued but not yet processed) before the router sheds
            its traffic with a paced :class:`BusyError` — overload
            isolation so one hot tenant cannot monopolize a shared
            shard inbox. ``None`` (default) disables the quota and its
            per-batch accounting entirely.
    """

    def __init__(
        self,
        shards: int = 1,
        workers: str = "thread",
        queue_size: int = DEFAULT_QUEUE_SIZE,
        recovery: Optional[RecoveryManager] = None,
        checkpoint_every: Optional[int] = None,
        tenant_quota: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("router needs at least one shard")
        if workers not in ("thread", "process"):
            raise ValueError(f"workers must be 'thread' or 'process', not {workers!r}")
        self._shard_cls = _ThreadShard if workers == "thread" else _ProcessShard
        self.workers = workers
        self.recovery = recovery
        self._queue_size = queue_size
        self._checkpoint_every = checkpoint_every
        self._shards = [
            self._shard_cls(i, queue_size, recovery, checkpoint_every)
            for i in range(shards)
        ]
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError("tenant_quota must be >= 1 (or None to disable)")
        self.tenant_quota = tenant_quota
        #: Batches currently inflight per session (quota mode only).
        self._inflight: Dict[str, int] = {}
        self._inflight_lock = threading.Lock()
        #: Batches rejected by the per-tenant quota (the shed counter).
        self.shed_total = 0
        self._restart_lock = threading.Lock()
        #: Times a dead shard worker was replaced with a fresh one.
        self.restarts = 0
        #: Spool entries quarantined during :meth:`recover` (salvage).
        self.salvaged: List[Dict[str, str]] = []
        self._closed = False

    # -- routing -----------------------------------------------------------

    def shard_of(self, session_id: str) -> int:
        """Stable shard index for a session id (CRC32 mod shards)."""
        return zlib.crc32(session_id.encode("utf-8")) % len(self._shards)

    def _shard_at(self, idx: int):
        """The shard at ``idx``, restarting it first if its worker died.

        A crashed worker takes its queued batches with it; the
        replacement re-opens that shard's spooled sessions at their
        checkpoints, so positioned clients can resync by flushing and
        re-sending from the reported position. Without a spool the
        sessions are simply gone (clients get SessionNotFound).
        """
        shard = self._shards[idx]
        if shard.alive() or self._closed:
            return shard
        with self._restart_lock:
            shard = self._shards[idx]
            if shard.alive():
                return shard
            log.error("restarting dead shard=%d", idx)
            shard = self._shard_cls(
                idx, self._queue_size, self.recovery, self._checkpoint_every
            )
            self._shards[idx] = shard
            self.restarts += 1
            if self.tenant_quota is not None:
                # Batches queued on the dead worker are gone and their
                # futures may never fire (a killed process shard cannot
                # answer): zero this shard's tenants so they are not
                # shed forever on phantom inflight.
                with self._inflight_lock:
                    for session_id in list(self._inflight):
                        if self.shard_of(session_id) == idx:
                            del self._inflight[session_id]
            if self.recovery is not None:
                ids, salvage = self.recovery.scan()
                for path, reason in salvage:
                    quarantined = self.recovery.quarantine_path(path)
                    self.salvaged.append(
                        {"file": str(quarantined), "reason": reason}
                    )
                for session_id in ids:
                    if self.shard_of(session_id) != idx:
                        continue
                    try:
                        shard.call(
                            "open", session_id, [], "stream", False, True
                        )
                    except RouterError as exc:
                        log.error(
                            "could not re-open spooled session=%s shard=%d "
                            "after restart: %s",
                            session_id, idx, exc,
                        )
                        quarantined = self.recovery.quarantine(session_id)
                        self.salvaged.append(
                            {"file": str(quarantined), "reason": str(exc)}
                        )
            return shard

    def _shard(self, session_id: str):
        return self._shard_at(self.shard_of(session_id))

    # -- the service surface ----------------------------------------------

    def open_session(
        self,
        analyses: Sequence[Tuple[str, Dict[str, Any]]],
        name: str = "stream",
        packed: bool = False,
        session_id: Optional[str] = None,
        resume: bool = False,
        lenient: bool = False,
    ) -> Dict[str, Any]:
        """Open (or resume) a session; returns id/position/resumed."""
        session_id = session_id or uuid.uuid4().hex
        return self._shard(session_id).call(
            "open", session_id, list(analyses), name, packed, resume, lenient
        )

    def feed(
        self,
        session_id: str,
        events: List[Event],
        base: Optional[int] = None,
    ) -> int:
        """Enqueue one batch (pipelined; :class:`BusyError` = backpressure).

        ``base`` is the stream position the batch claims to start at
        (from a positioned EVENTS frame); the session drops overlap and
        flags gaps, making at-least-once delivery idempotent.

        With a ``tenant_quota`` set, a session already at its inflight
        cap is shed: :class:`BusyError` with ``shed=True`` and a
        ``retry_ms`` pacing hint that grows with the backlog.
        """
        action = fire("shard.inbox", key=session_id)
        if action is not None and action.op == "stall":
            # A stalled inbox is indistinguishable from a full one:
            # surface it as backpressure (BUSY on the wire).
            raise BusyError(
                f"[injected] shard {self.shard_of(session_id)} inbox stalled"
            )
        if self.tenant_quota is None:
            self._shard(session_id).cast("events", session_id, events, base)
            return len(events)
        with self._inflight_lock:
            inflight = self._inflight.get(session_id, 0)
            if inflight >= self.tenant_quota:
                self.shed_total += 1
                raise BusyError(
                    f"tenant {session_id!r} is over its inflight quota "
                    f"({self.tenant_quota} batches)",
                    retry_ms=min(500, 25 * (inflight + 1)),
                    shed=True,
                )
            self._inflight[session_id] = inflight + 1
        # Quota mode trades the fire-and-forget cast for a tracked
        # future: the subscriber decrements the tenant's inflight count
        # when the shard finishes (or fails) the batch. Works for both
        # worker kinds — process shards resolve futures through their
        # collector thread.
        try:
            future = self._shard(session_id).submit(
                "events", session_id, events, base
            )
        except BaseException:
            self._quota_release(session_id)
            raise
        future.subscribe(lambda _f: self._quota_release(session_id))
        return len(events)

    def _quota_release(self, session_id: str) -> None:
        with self._inflight_lock:
            count = self._inflight.get(session_id)
            if count is None:
                return  # cleared by a shard restart; nothing to release
            if count <= 1:
                self._inflight.pop(session_id, None)
            else:
                self._inflight[session_id] = count - 1

    def flush(self, session_id: str) -> Dict[str, Any]:
        """Barrier: process everything queued, return position+findings."""
        return self._shard(session_id).call("flush", session_id)

    def checkpoint(self, session_id: str) -> Dict[str, Any]:
        return self._shard(session_id).call("checkpoint", session_id)

    def close(self, session_id: str) -> Dict[str, Any]:
        """Finish the session; returns the final report + last findings."""
        return self._shard(session_id).call("close", session_id)

    # -- cluster migration surface -----------------------------------------

    def list_sessions(self) -> List[Dict[str, Any]]:
        """Every open session across all shards (id, position, health)."""
        rows: List[Dict[str, Any]] = []
        for idx in range(len(self._shards)):
            rows.extend(self._shard_at(idx).call("list"))
        return rows

    def export_session(self, session_id: str) -> Dict[str, Any]:
        """Checkpoint-and-drop a session for live migration; returns
        ``{"meta": ..., "blob": ...}`` (the HANDOFF frame contents)."""
        return self._shard(session_id).call("export", session_id)

    def export_checkpoint(self, session_id: str) -> Dict[str, Any]:
        """Checkpoint a session for replication without dropping it."""
        return self._shard(session_id).call("export_copy", session_id)

    def import_session(self, session_id: str, blob: bytes) -> Dict[str, Any]:
        """Adopt a handed-off session (higher position wins on conflict)."""
        return self._shard(session_id).call("import", blob)

    # -- non-blocking surface (the event-loop backend) ---------------------
    #
    # Same commands, but the caller gets the reply _Future instead of a
    # blocked thread: the selectors loop subscribes a wakeup callback
    # and keeps serving other connections while the shard works. Full
    # inboxes surface as an *immediate* BusyError (BUSY on the wire) —
    # an event loop has no thread to park for CONTROL_TIMEOUT.

    def submit_open(
        self,
        analyses: Sequence[Tuple[str, Dict[str, Any]]],
        name: str = "stream",
        packed: bool = False,
        session_id: Optional[str] = None,
        resume: bool = False,
        lenient: bool = False,
    ) -> _Future:
        session_id = session_id or uuid.uuid4().hex
        return self._shard(session_id).submit(
            "open", session_id, list(analyses), name, packed, resume, lenient
        )

    def submit_import(self, session_id: str, blob: bytes) -> _Future:
        """Non-blocking :meth:`import_session` (the event-loop backend
        must never park its only thread on a shard reply)."""
        return self._shard(session_id).submit("import", blob)

    def submit_flush(self, session_id: str) -> _Future:
        return self._shard(session_id).submit("flush", session_id)

    def submit_checkpoint(self, session_id: str) -> _Future:
        return self._shard(session_id).submit("checkpoint", session_id)

    def submit_close(self, session_id: str) -> _Future:
        return self._shard(session_id).submit("close", session_id)

    def submit_stats(self) -> List[Tuple[Any, _Future]]:
        """One ``(shard, future)`` pair per shard; aggregate the rows
        with :meth:`finish_stats` once every future is done."""
        pairs = []
        for idx in range(len(self._shards)):
            shard = self._shard_at(idx)
            pairs.append((shard, shard.submit("stats")))
        return pairs

    def finish_stats(
        self, pairs: List[Tuple[Any, _Future]]
    ) -> Dict[str, Any]:
        snapshot = RouterStats(restarts=self.restarts, shed=self.shed_total)
        for shard, future in pairs:
            row = future.result()
            row["queue_depth"] = shard.queue_depth()
            row["workers"] = self.workers
            snapshot.shards.append(row)
        doc = snapshot.to_json()
        doc["schema"] = STATS_SCHEMA
        return doc

    def recover(self) -> List[str]:
        """Re-open every recoverable session spooled by a previous
        incarnation.

        Best-effort per entry: a corrupt, truncated, or unthawable
        spool file is quarantined to ``*.bad`` and recorded in
        :attr:`salvaged` — one bad entry never blocks its healthy
        siblings from recovering.
        """
        if self.recovery is None:
            return []
        recovered = []
        ids, salvage = self.recovery.scan()
        for path, reason in salvage:
            quarantined = self.recovery.quarantine_path(path)
            log.error("salvaged corrupt spool entry %s: %s", path.name, reason)
            self.salvaged.append({"file": str(quarantined), "reason": reason})
        for session_id in ids:
            try:
                info = self._shard(session_id).call(
                    "open", session_id, [], "stream", False, True
                )
            except RouterError as exc:
                quarantined = self.recovery.quarantine(session_id)
                log.error(
                    "salvaged unrecoverable session=%s shard=%d: %s",
                    session_id, self.shard_of(session_id), exc,
                )
                self.salvaged.append(
                    {"file": str(quarantined), "reason": str(exc)}
                )
                continue
            recovered.append(info["session"])
        return recovered

    def stats(self) -> Dict[str, Any]:
        """One aggregated snapshot across all shards (blocking form)."""
        pairs = self.submit_stats()
        for _shard, future in pairs:
            future.wait(REPLY_TIMEOUT)
        return self.finish_stats(pairs)

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.stop()

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
