"""One live tenant of the streaming service: a :class:`StreamingSession`.

Wraps an incremental :class:`repro.api.Session` (the ``feed``/``finish``
lifecycle) with what a long-running service additionally needs:

* **identity** — a stable session id (the shard routing key);
* **position** — how many events have been ingested, which is what a
  resuming client uses to know where to restart its stream;
* **a monotonic violation log** — findings are observed after every
  batch and appended exactly once, so ``FLUSH`` frames can ship *new*
  findings while the stream is still running;
* **a checkpoint handle** — :meth:`to_bytes`/:meth:`from_bytes` freeze
  and thaw the complete analysis state (riding
  :func:`repro.core.snapshot.freeze`), which is what
  :class:`~repro.service.recovery.RecoveryManager` spools to disk.

Because ``run()`` ≡ feed-in-chunks-then-``finish()`` (property-tested
in ``tests/test_api_feed.py``), a session fed over the wire — in any
batching, through any number of checkpoint/restore cycles — finishes
with a report identical to the offline ``repro check`` on the full
trace. That equivalence is the service's correctness story.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..api.analysis import Analysis, CheckerAnalysis
from ..api.report import SessionResult, finding_dict
from ..api.session import Session
from ..core.snapshot import freeze, thaw, CheckpointError
from ..obs import tracing
from ..trace.events import Event


class StreamingSession:
    """One client's live analyses over one event stream.

    Args:
        session_id: Stable identifier (also the shard routing key).
        analyses: ``(name, options)`` pairs resolved through the
            registry, or ready analysis instances.
        name: Trace name stamped into reports.
        packed: Drive the packed dispatch sweep instead of the string
            path (the analysis path — independent of how events are
            encoded on the wire).
    """

    def __init__(
        self,
        session_id: str,
        analyses: Sequence[Any],
        name: str = "stream",
        packed: bool = False,
    ) -> None:
        from ..api.registry import create_analysis

        instances: List[Analysis] = []
        self.analysis_names: List[str] = []
        for spec in analyses:
            if isinstance(spec, Analysis):
                instances.append(spec)
                self.analysis_names.append(spec.name)
            else:
                name_, options = spec if isinstance(spec, tuple) else (spec, {})
                instances.append(create_analysis(name_, **options))
                self.analysis_names.append(name_)
        self.session_id = session_id
        self.packed = packed
        self.session = Session(None, instances, name=name)
        self.events_fed = 0
        #: Every finding observed so far, in detection order; each entry
        #: is ``{"analysis": name, "finding": {...}}``. Grows only.
        self.findings: List[Dict[str, Any]] = []
        #: Index into :attr:`findings` up to which the client has been
        #: told (advanced by :meth:`drain_findings`).
        self.delivered = 0
        self.error: Optional[str] = None
        #: Machine-readable failure class when :attr:`error` is set
        #: (``"analysis"``, ``"feed"``, …) — the quarantine code.
        self.error_code: Optional[str] = None
        #: Stream position at which the session was quarantined.
        self.quarantined_at: Optional[int] = None
        #: Events ignored after quarantine (observability counter).
        self.dropped = 0
        #: True when a positioned batch arrived *past* the current
        #: position (events were lost, e.g. across a shard restart) —
        #: the client must re-send from :attr:`position` before any
        #: report can be trusted. Cleared when the stream re-aligns.
        self.out_of_sync = False
        self.result: Optional[SessionResult] = None
        self._counts = [0] * len(instances)

    # -- streaming ---------------------------------------------------------

    @property
    def position(self) -> int:
        """Events ingested so far — the client's resume offset."""
        return self.events_fed

    @property
    def closed(self) -> bool:
        return self.result is not None

    @property
    def quarantined(self) -> bool:
        """Whether this session has been poisoned and isolated."""
        return self.error is not None

    def quarantine(self, code: str, message: str) -> None:
        """Poison-isolate this session: record a typed error, stop
        analyzing. Further batches are counted and dropped; barriers
        surface the error; CLOSE answers a typed ERROR instead of a
        report. The shard and every sibling tenant keep running."""
        if self.error is None:
            self.error = message
            self.error_code = code
            self.quarantined_at = self.events_fed

    def feed(self, events: Sequence[Event], base: Optional[int] = None) -> int:
        """Ingest one batch, stamping global stream indices.

        ``base`` is the stream position the batch claims to start at
        (positioned EVENTS frames). A batch at or before the current
        position has its overlap dropped — at-least-once delivery
        (client retransmits, duplicated frames) is idempotent. A batch
        *past* the position means events were lost; it is dropped whole
        and the session marked :attr:`out_of_sync` so no short report
        can ever masquerade as a complete one.

        Returns the number of *new* findings the batch surfaced.
        """
        if self.result is not None:
            raise RuntimeError(f"session {self.session_id} already closed")
        position = self.events_fed
        if base is not None:
            if base > position:
                self.out_of_sync = True
                return 0
            if base < position:
                overlap = position - base
                if overlap >= len(events):
                    return 0  # pure duplicate delivery
                events = events[overlap:]
            self.out_of_sync = False
        for offset, event in enumerate(events):
            event.idx = position + offset
        with tracing.span(
            "session.ingest",
            session=self.session_id,
            base=position,
            events=len(events),
        ):
            self.session.feed(events, packed=self.packed or None)
        self.events_fed = position + len(events)
        return self._observe()

    def finish(self) -> SessionResult:
        """Finish every analysis; the report of record for this stream."""
        if self.result is None:
            result = self.session.finish()
            # Streaming sessions know their true total only now.
            result.events = self.events_fed
            self.result = result
            self._observe()
        return self.result

    def report(self) -> Dict[str, Any]:
        """The final ``repro-report/1`` document (finishing if needed)."""
        return self.finish().to_json()

    # -- the violation log -------------------------------------------------

    def _observe(self) -> int:
        """Append findings that appeared since the last observation."""
        new = 0
        for i, analysis in enumerate(self.session.analyses):
            current = _current_findings(analysis)
            for finding in current[self._counts[i] :]:
                self.findings.append(
                    {"analysis": self.analysis_names[i], "finding": finding}
                )
                new += 1
            self._counts[i] = len(current)
        return new

    def drain_findings(self) -> List[Dict[str, Any]]:
        """Findings not yet shipped to the client (advances the cursor)."""
        fresh = self.findings[self.delivered :]
        self.delivered = len(self.findings)
        return fresh

    # -- checkpointing -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Freeze the complete session state (analyses included).

        Raises:
            CheckpointError: If any analysis state is not picklable.
        """
        return freeze(self, what=f"session {self.session_id}")

    @classmethod
    def from_bytes(cls, payload: bytes) -> "StreamingSession":
        """Thaw a session frozen by :meth:`to_bytes`.

        Raises:
            CheckpointError: On a corrupt payload or a wrong type.
        """
        session = thaw(payload, what="session checkpoint")
        if not isinstance(session, cls):
            raise CheckpointError(
                f"checkpoint holds a {type(session).__name__}, "
                "not a StreamingSession"
            )
        return session


def _current_findings(analysis: Analysis) -> List[Dict[str, Any]]:
    """The findings an analysis can surface *mid-stream*, normalized.

    Checker analyses expose their violation(s) as they are found;
    streaming detectors with an incremental findings list (races) do
    too. Whole-trace analyses only produce findings at ``finish()`` —
    until then they contribute nothing, which is correct: their
    report arrives with CLOSE.
    """
    if isinstance(analysis, CheckerAnalysis):
        if analysis.mode == "report_all":
            return [finding_dict(v) for v in analysis.violations]
        found = analysis.checker.violation or analysis._found
        return [finding_dict(found)] if found is not None else []
    detector = getattr(analysis, "detector", None)
    races = getattr(detector, "races", None)
    if races is not None:
        return [finding_dict(r) for r in races]
    return []
