"""``repro.service`` — the multi-tenant streaming analysis service.

The paper's deployment model is *online*: AeroDrome's constant-space
vector-clock state (Theorem 4) means a per-client checker never grows
with the stream, so the analysis is servable — many concurrent event
streams, analyzed as they arrive, for as long as they run. This package
turns the one-pass :mod:`repro.api` session engine into that service:

* :mod:`~repro.service.protocol` — the versioned ``repro-wire/1``
  framed wire format (length-prefixed frames; events travel as text
  lines or packed column deltas riding the
  :class:`~repro.trace.packed.Interner` tables);
* :mod:`~repro.service.session` — :class:`StreamingSession`, one live
  tenant: incremental analyses state, a monotonic violation log, a
  checkpoint handle;
* :mod:`~repro.service.router` — shard-per-worker routing: sessions
  hash to shards, shards share nothing, bounded inbox queues give
  backpressure (``BUSY``), per-shard metrics aggregate into
  ``stats()``;
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — the
  TCP daemon behind ``repro serve`` and the client SDK behind
  ``repro submit`` (plus :class:`~repro.service.client.RemoteChecker`,
  the adapter that lets :class:`repro.instrument.LiveMonitor` police a
  program against a remote service);
* :mod:`~repro.service.recovery` — checkpoint spooling and
  restart-from-spool, riding :mod:`repro.core.snapshot`.

See ``docs/SERVICE.md`` for the wire format spec, the session
lifecycle, and the recovery semantics.
"""

from .protocol import (
    FrameError,
    FrameType,
    PayloadError,
    PROTOCOL,
    WireError,
)
from .session import StreamingSession
from .router import (
    BusyError,
    Router,
    SessionNotFound,
    SessionQuarantined,
    ShardCrashed,
)
from .recovery import RecoveryError, RecoveryManager, SessionCheckpoint
from .server import ServiceServer
from .backoff import BACKOFF_CAP, Backoff
from .client import (
    DeadlineExceeded,
    RemoteChecker,
    ServiceClient,
    ServiceError,
    ServiceUnreachable,
    SessionFenced,
    SessionRedirect,
    submit_trace,
)

__all__ = [
    "BACKOFF_CAP",
    "PROTOCOL",
    "Backoff",
    "BusyError",
    "DeadlineExceeded",
    "FrameError",
    "FrameType",
    "PayloadError",
    "RecoveryError",
    "RecoveryManager",
    "RemoteChecker",
    "Router",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceUnreachable",
    "SessionCheckpoint",
    "SessionFenced",
    "SessionNotFound",
    "SessionQuarantined",
    "SessionRedirect",
    "ShardCrashed",
    "StreamingSession",
    "WireError",
    "submit_trace",
]
