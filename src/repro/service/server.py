"""The ``repro serve`` daemon: ``repro-wire/1`` over TCP.

A :class:`socketserver.ThreadingTCPServer` front end over one
:class:`~repro.service.router.Router`. Connections are cheap — one
handler thread parses frames and forwards to the session's shard; all
analysis state lives shard-side, so a connection dying (or a client
reconnecting to resume) never loses a session.

The protocol is strict request/response: every client frame is answered
by exactly one server frame (``OK``/``VIOLATION``/``REPORT``/
``BUSY``/``ERROR``). Error isolation is layered:

* a **wire error** (corrupt frame, bad payload, a read timeout)
  poisons only the connection: the server answers ``ERROR`` and closes
  the socket — the framing can no longer be trusted — but the session
  and every other tenant on the same shard are untouched;
* an **application error** (unknown analysis, unknown session, a
  quarantined session, a crashed shard) is answered with a typed
  ``ERROR`` and the connection stays usable;
* ``BUSY`` signals shard backpressure; clients retry after a pause.

Every connection reads under a **timeout** (a half-dead client cannot
pin a handler thread forever), every error log line carries
``session=<id> shard=<n>`` attribution, and the ``STATS`` reply merges
server-level counters (busy replies, read timeouts, wire errors) with
the router's per-shard rows.

Fault sites (see :mod:`repro.faults`): ``wire.reply`` —
``truncate``/``corrupt`` a reply frame or ``reset`` the connection
before answering; ``server.events`` — ``duplicate`` redelivers a
decoded EVENTS batch (at-least-once delivery, which positioned frames
make idempotent).
"""

from __future__ import annotations

import logging
import socketserver
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..faults.injector import fire, mutate_frame
from . import protocol
from .protocol import FrameType
from .recovery import RecoveryManager
from .router import (
    BusyError,
    Router,
    RouterError,
    ShardCrashed,
    SessionNotFound,
    SessionQuarantined,
)

log = logging.getLogger("repro.service")

#: Default per-connection read timeout (seconds). Generous — it only
#: has to beat "forever": a stalled client releases its handler thread
#: instead of pinning it until process exit.
DEFAULT_READ_TIMEOUT = 600.0


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: HELLO binds it to a session."""

    def setup(self) -> None:
        super().setup()
        self.session_id: Optional[str] = None
        self.decoder = protocol.DeltaDecoder()  # per-connection delta state
        timeout = getattr(self.server, "read_timeout", None)
        if timeout:
            self.connection.settimeout(timeout)

    def _count(self, counter: str) -> None:
        self.server.count(counter)  # type: ignore[attr-defined]

    def _where(self) -> str:
        """``session=<id> shard=<n>`` attribution for log lines."""
        if self.session_id is None:
            return "session=- shard=-"
        router: Router = self.server.router  # type: ignore[attr-defined]
        return (
            f"session={self.session_id} "
            f"shard={router.shard_of(self.session_id)}"
        )

    def _send(self, ftype: int, obj: Dict[str, Any]) -> None:
        frame = protocol.encode_json(ftype, obj)
        action = fire("wire.reply", key=self.session_id)
        if action is not None:
            if action.op == "reset":
                # Drop the connection without answering — the client
                # sees a reset mid-request and must reconnect/resume.
                self.connection.close()
                raise BrokenPipeError("[injected] server reset connection")
            frame = mutate_frame(frame, action)
        self.wfile.write(frame)
        self.wfile.flush()

    def _error(self, code: str, message: str) -> None:
        self._send(FrameType.ERROR, {"code": code, "message": message})

    def handle(self) -> None:
        router: Router = self.server.router  # type: ignore[attr-defined]
        while True:
            try:
                frame = protocol.read_frame(self.rfile)
            except TimeoutError:
                self._count("read_timeouts")
                log.warning(
                    "connection read timed out %s; dropping it", self._where()
                )
                try:
                    self._error("timeout", "read timed out; reconnect to resume")
                except OSError:
                    pass
                return
            except protocol.WireError as error:
                # Framing is broken: answer once, drop the connection.
                self._count("wire_errors")
                log.warning("wire error %s: %s", self._where(), error)
                try:
                    self._error("wire", str(error))
                except OSError:
                    pass
                return
            except OSError:
                return
            if frame is None:
                return  # clean EOF
            ftype, payload = frame
            try:
                self._dispatch(router, ftype, payload)
            except protocol.WireError as error:
                self._count("wire_errors")
                log.warning("wire error %s: %s", self._where(), error)
                try:
                    self._error("wire", str(error))
                except OSError:
                    pass
                return
            except BusyError:
                self._count("busy_replies")
                self._send(FrameType.BUSY, {"retry_ms": 50})
            except SessionNotFound as error:
                self._error("unknown-session", str(error))
            except SessionQuarantined as error:
                log.error(
                    "quarantined session reported %s code=%s: %s",
                    self._where(), error.code, error,
                )
                self._error(error.code, str(error))
            except ShardCrashed as error:
                log.error("shard crash reported %s: %s", self._where(), error)
                self._error("shard-crashed", str(error))
            except RouterError as error:
                log.error("router error %s: %s", self._where(), error)
                self._error("session", str(error))
            except BrokenPipeError:
                return
            except Exception as error:  # isolate: never kill the daemon
                log.exception(
                    "internal error %s: %s: %s",
                    self._where(), type(error).__name__, error,
                )
                try:
                    self._error(
                        "internal", f"{type(error).__name__}: {error}"
                    )
                except OSError:
                    return

    def _dispatch(self, router: Router, ftype: int, payload: bytes) -> None:
        if ftype == FrameType.HELLO:
            hello = protocol.parse_hello(protocol.decode_json(payload))
            info = router.open_session(
                hello["analyses"],
                name=hello["name"],
                packed=hello["packed"],
                session_id=hello["session"],
                resume=hello["resume"],
            )
            self.session_id = info["session"]
            info["protocol"] = protocol.PROTOCOL
            self._send(FrameType.OK, info)
            return
        if ftype == FrameType.STATS:
            stats = router.stats()
            stats["server"] = self.server.counters()  # type: ignore[attr-defined]
            self._send(FrameType.OK, {"stats": stats})
            return
        if self.session_id is None:
            self._error("no-session", "send HELLO first")
            return
        if ftype == FrameType.EVENTS:
            events, base = protocol.decode_events_ex(payload, self.decoder)
            queued = router.feed(self.session_id, events, base=base)
            action = fire("server.events", key=self.session_id)
            if action is not None and action.op == "duplicate":
                # At-least-once delivery: the same decoded batch lands
                # twice. Positioned batches are deduplicated by the
                # session; unpositioned ones genuinely double (which is
                # exactly the hazard positioned frames exist to remove).
                router.feed(self.session_id, events, base=base)
            self._send(FrameType.OK, {"queued": queued})
        elif ftype == FrameType.FLUSH:
            info = router.flush(self.session_id)
            if info["error"] is not None:
                log.error(
                    "flush surfaced session error %s code=%s: %s",
                    self._where(), info.get("error_code"), info["error"],
                )
                self._error(info.get("error_code") or "session", info["error"])
            elif info["findings"]:
                self._send(FrameType.VIOLATION, info)
            else:
                self._send(FrameType.OK, info)
        elif ftype == FrameType.CHECKPOINT:
            self._send(FrameType.OK, router.checkpoint(self.session_id))
        elif ftype == FrameType.CLOSE:
            info = router.close(self.session_id)
            self.session_id = None
            self._send(FrameType.REPORT, info)
        else:
            self._error("bad-frame", f"unexpected frame type {ftype}")


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.read_timeout: Optional[float] = None
        self._counters: Dict[str, int] = {
            "busy_replies": 0,
            "read_timeouts": 0,
            "wire_errors": 0,
        }
        self._counters_lock = threading.Lock()

    def count(self, counter: str) -> None:
        with self._counters_lock:
            self._counters[counter] = self._counters.get(counter, 0) + 1

    def counters(self) -> Dict[str, int]:
        with self._counters_lock:
            return dict(self._counters)

    def handle_error(self, request: Any, client_address: Any) -> None:
        # The default prints a traceback to stderr; keep attribution
        # and route through the service logger instead.
        log.exception("unhandled handler error from client=%s", client_address)


class ServiceServer:
    """The long-running analysis service.

    Args:
        host/port: Bind address (``port=0`` picks a free port; read the
            chosen one from :attr:`port`).
        shards: Worker shards (sessions hash across them).
        workers: ``"thread"`` (default) or ``"process"`` shards.
        spool: Checkpoint spool directory — enables recovery; on
            construction, sessions spooled by a previous incarnation
            are re-opened at their checkpointed positions (corrupt
            entries are quarantined to ``*.bad``; see :attr:`salvaged`).
        checkpoint_every: Auto-checkpoint interval in events.
        queue_size: Shard inbox bound (batches) before ``BUSY``.
        read_timeout: Per-connection socket read timeout in seconds
            (``None`` disables; default :data:`DEFAULT_READ_TIMEOUT`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 1,
        workers: str = "thread",
        spool: Union[str, Path, None] = None,
        checkpoint_every: Optional[int] = 1000,
        queue_size: int = 64,
        read_timeout: Optional[float] = DEFAULT_READ_TIMEOUT,
    ) -> None:
        recovery = RecoveryManager(spool) if spool is not None else None
        self.router = Router(
            shards=shards,
            workers=workers,
            queue_size=queue_size,
            recovery=recovery,
            checkpoint_every=checkpoint_every,
        )
        self.recovered = self.router.recover()
        #: Spool entries quarantined during recovery (dicts with
        #: ``file``/``reason``) — the salvage report.
        self.salvaged = self.router.salvaged
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.router = self.router  # type: ignore[attr-defined]
        self._tcp.read_timeout = read_timeout
        self.host, self.port = self._tcp.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        """Serve in a background thread (for tests and embedding)."""
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-service",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` loop)."""
        self._tcp.serve_forever(poll_interval=0.2)

    def stop(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.router.shutdown()

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
