"""The ``repro serve`` daemon: ``repro-wire/1`` over TCP.

A :class:`socketserver.ThreadingTCPServer` front end over one
:class:`~repro.service.router.Router`. Connections are cheap — one
handler thread parses frames and forwards to the session's shard; all
analysis state lives shard-side, so a connection dying (or a client
reconnecting to resume) never loses a session.

The protocol is strict request/response: every client frame is answered
by exactly one server frame (``OK``/``VIOLATION``/``REPORT``/
``BUSY``/``ERROR``). Error isolation is layered:

* a **wire error** (corrupt frame, bad payload) poisons only the
  connection: the server answers ``ERROR`` and closes the socket —
  the framing can no longer be trusted — but the session and every
  other tenant on the same shard are untouched;
* an **application error** (unknown analysis, unknown session, a
  feed that raised) is answered with ``ERROR`` and the connection
  stays usable;
* ``BUSY`` signals shard backpressure; clients retry after a pause.
"""

from __future__ import annotations

import socketserver
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Union

from . import protocol
from .protocol import FrameType
from .recovery import RecoveryManager
from .router import BusyError, Router, RouterError, SessionNotFound


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: HELLO binds it to a session."""

    def setup(self) -> None:
        super().setup()
        self.session_id: Optional[str] = None
        self.decoder = protocol.DeltaDecoder()  # per-connection delta state

    def _send(self, ftype: int, obj: Dict[str, Any]) -> None:
        self.wfile.write(protocol.encode_json(ftype, obj))
        self.wfile.flush()

    def _error(self, code: str, message: str) -> None:
        self._send(FrameType.ERROR, {"code": code, "message": message})

    def handle(self) -> None:
        router: Router = self.server.router  # type: ignore[attr-defined]
        while True:
            try:
                frame = protocol.read_frame(self.rfile)
            except protocol.WireError as error:
                # Framing is broken: answer once, drop the connection.
                try:
                    self._error("wire", str(error))
                except OSError:
                    pass
                return
            except OSError:
                return
            if frame is None:
                return  # clean EOF
            ftype, payload = frame
            try:
                self._dispatch(router, ftype, payload)
            except protocol.WireError as error:
                try:
                    self._error("wire", str(error))
                except OSError:
                    pass
                return
            except BusyError:
                self._send(FrameType.BUSY, {"retry_ms": 50})
            except SessionNotFound as error:
                self._error("unknown-session", str(error))
            except RouterError as error:
                self._error("session", str(error))
            except BrokenPipeError:
                return
            except Exception as error:  # isolate: never kill the daemon
                try:
                    self._error(
                        "internal", f"{type(error).__name__}: {error}"
                    )
                except OSError:
                    return

    def _dispatch(self, router: Router, ftype: int, payload: bytes) -> None:
        if ftype == FrameType.HELLO:
            hello = protocol.parse_hello(protocol.decode_json(payload))
            info = router.open_session(
                hello["analyses"],
                name=hello["name"],
                packed=hello["packed"],
                session_id=hello["session"],
                resume=hello["resume"],
            )
            self.session_id = info["session"]
            info["protocol"] = protocol.PROTOCOL
            self._send(FrameType.OK, info)
            return
        if ftype == FrameType.STATS:
            self._send(FrameType.OK, {"stats": router.stats()})
            return
        if self.session_id is None:
            self._error("no-session", "send HELLO first")
            return
        if ftype == FrameType.EVENTS:
            events = protocol.decode_events(payload, self.decoder)
            queued = router.feed(self.session_id, events)
            self._send(FrameType.OK, {"queued": queued})
        elif ftype == FrameType.FLUSH:
            info = router.flush(self.session_id)
            if info["error"] is not None:
                self._error("session", info["error"])
            elif info["findings"]:
                self._send(FrameType.VIOLATION, info)
            else:
                self._send(FrameType.OK, info)
        elif ftype == FrameType.CHECKPOINT:
            self._send(FrameType.OK, router.checkpoint(self.session_id))
        elif ftype == FrameType.CLOSE:
            info = router.close(self.session_id)
            self.session_id = None
            self._send(FrameType.REPORT, info)
        else:
            self._error("bad-frame", f"unexpected frame type {ftype}")


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ServiceServer:
    """The long-running analysis service.

    Args:
        host/port: Bind address (``port=0`` picks a free port; read the
            chosen one from :attr:`port`).
        shards: Worker shards (sessions hash across them).
        workers: ``"thread"`` (default) or ``"process"`` shards.
        spool: Checkpoint spool directory — enables recovery; on
            construction, sessions spooled by a previous incarnation
            are re-opened at their checkpointed positions.
        checkpoint_every: Auto-checkpoint interval in events.
        queue_size: Shard inbox bound (batches) before ``BUSY``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 1,
        workers: str = "thread",
        spool: Union[str, Path, None] = None,
        checkpoint_every: Optional[int] = 1000,
        queue_size: int = 64,
    ) -> None:
        recovery = RecoveryManager(spool) if spool is not None else None
        self.router = Router(
            shards=shards,
            workers=workers,
            queue_size=queue_size,
            recovery=recovery,
            checkpoint_every=checkpoint_every,
        )
        self.recovered = self.router.recover()
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.router = self.router  # type: ignore[attr-defined]
        self.host, self.port = self._tcp.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        """Serve in a background thread (for tests and embedding)."""
        self._thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-service",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` loop)."""
        self._tcp.serve_forever(poll_interval=0.2)

    def stop(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.router.shutdown()

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
