"""The ``repro serve`` daemon: ``repro-wire/1`` over TCP.

Two interchangeable front ends over one
:class:`~repro.service.router.Router`, both driving the same sans-IO
:class:`~repro.service.connection.WireConnection` state machine (so
protocol semantics, error mapping, and fault sites cannot drift):

* ``backend="thread"`` — a :class:`socketserver.ThreadingTCPServer`:
  one handler thread per connection, blocking reads under a socket
  timeout. Simple, debuggable, fine up to the low thousands of tenants.
* ``backend="async"`` — a single-threaded :mod:`selectors` event loop:
  non-blocking accept/read/write for every connection on one thread,
  per-connection write-queue backpressure (reads pause while a slow
  peer's reply queue is over the high-water mark), and a coarse
  **deadline wheel** replacing per-socket ``settimeout`` (O(1) arm per
  read, lazy reinsertion on expiry sweep). Shard replies resolve
  through future subscriptions poking a self-pipe, so the loop never
  blocks on the router. Idle connections cost one fd and a few KB —
  this is the C10k front end.

The protocol is strict request/response: every client frame is answered
by exactly one server frame (``OK``/``VIOLATION``/``REPORT``/
``BUSY``/``ERROR``). Error isolation is layered:

* a **wire error** (corrupt frame, bad payload, a read timeout)
  poisons only the connection: the server answers ``ERROR`` and closes
  the socket — the framing can no longer be trusted — but the session
  and every other tenant on the same shard are untouched;
* an **application error** (unknown analysis, unknown session, a
  quarantined session, a crashed shard) is answered with a typed
  ``ERROR`` and the connection stays usable;
* ``BUSY`` signals shard backpressure; clients retry after a pause.

The ``STATS`` reply merges server-level counters with the router's
per-shard rows; the async backend adds its event-loop gauges (open
connections, ring-buffer high water, write-queue depth/high water,
worst loop stall).

Fault sites (see :mod:`repro.faults`): ``wire.reply`` —
``truncate``/``corrupt`` a reply frame or ``reset`` the connection
before answering; ``server.events`` — ``duplicate`` redelivers a
decoded EVENTS batch (at-least-once delivery, which positioned frames
make idempotent). Both live in the shared connection core, so chaos
drills exercise either backend unchanged.
"""

from __future__ import annotations

import collections
import logging
import selectors
import socket
import socketserver
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..obs.metrics import Counter, MetricsRegistry, stats_to_prom
from .connection import WireConnection
from .recovery import RecoveryManager
from .router import REPLY_TIMEOUT, Router, RouterError

log = logging.getLogger("repro.service")

#: Wire-server counter short names -> (prom name, help). Both backends
#: carry exactly these on the stats doc's ``server`` block; the async
#: loop adds its gauges on top in :meth:`_AsyncServer.counters`.
_SERVER_COUNTERS = (
    ("busy_replies", "repro_server_busy_replies_total",
     "BUSY backpressure replies sent"),
    ("read_timeouts", "repro_server_read_timeouts_total",
     "Connections dropped on read deadline"),
    ("wire_errors", "repro_server_wire_errors_total",
     "Malformed-frame/protocol errors"),
    ("redirects", "repro_server_redirects_total",
     "REDIRECT replies (cluster ownership elsewhere)"),
    ("fenced", "repro_server_fenced_total",
     "FENCED replies (stale membership epoch)"),
    ("shed", "repro_server_shed_total",
     "BUSY replies flagged shed=true"),
)


def _server_counters() -> "tuple[MetricsRegistry, Dict[str, Counter]]":
    """A wire server's typed counter set (repro.obs.metrics)."""
    registry = MetricsRegistry()
    by_short = {
        short: registry.counter(name, help)
        for short, name, help in _SERVER_COUNTERS
    }
    return registry, by_short

#: Default per-connection read timeout (seconds). Generous — it only
#: has to beat "forever": a stalled client releases its handler thread
#: (or wheel slot) instead of pinning it until process exit.
DEFAULT_READ_TIMEOUT = 600.0

#: Bytes per transport read.
RECV_SIZE = 64 * 1024

#: Pause reading a connection once this many reply bytes are queued on
#: it (the peer is not draining us) ...
WRITE_HWM = 256 * 1024

#: ... and resume once the queue drains below this.
WRITE_LWM = 64 * 1024

BACKENDS = ("thread", "async")


class _Handler(socketserver.StreamRequestHandler):
    """One client connection on the threaded backend.

    All protocol logic lives in :class:`WireConnection`; this is just
    the blocking transport: recv under a socket timeout, sendall the
    outbox, block on shard futures.
    """

    def setup(self) -> None:
        super().setup()
        timeout = getattr(self.server, "read_timeout", None)
        if timeout:
            self.connection.settimeout(timeout)

    def handle(self) -> None:
        server = self.server
        wire = WireConnection(
            server.router,  # type: ignore[attr-defined]
            count=server.count,  # type: ignore[attr-defined]
            counters=server.counters,  # type: ignore[attr-defined]
            cluster=getattr(server, "cluster", None),
        )
        while True:
            futures = wire.pump()
            while futures is not None:
                for future in futures:
                    try:
                        future.join(REPLY_TIMEOUT)
                    except RouterError as error:
                        wire.fail_pending(str(error))
                        break
                futures = wire.pump()
            if not self._write_out(wire):
                return
            if wire.reset:
                self.connection.close()
                return
            if wire.close_after_send:
                return
            try:
                data = self.connection.recv(RECV_SIZE)
            except TimeoutError:
                wire.on_read_timeout()
                self._write_out(wire)
                return
            except OSError:
                return
            if not data:
                wire.on_eof()
                self._write_out(wire)
                return
            wire.receive_bytes(data)

    def _write_out(self, wire: WireConnection) -> bool:
        if not wire.outbox:
            return True
        try:
            for frame in wire.outbox:
                self.connection.sendall(frame)
        except OSError:
            return False
        finally:
            wire.outbox.clear()
        return True


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.read_timeout: Optional[float] = None
        self.cluster: Optional[Any] = None
        self.metrics, self._counters = _server_counters()
        self._counters_lock = threading.Lock()

    def count(self, counter: str) -> None:
        with self._counters_lock:
            metric = self._counters.get(counter)
            if metric is None:
                metric = self.metrics.counter(
                    f"repro_server_{counter}_total"
                )
                self._counters[counter] = metric
            metric.inc()

    def counters(self) -> Dict[str, Any]:
        with self._counters_lock:
            out: Dict[str, Any] = {
                short: metric.value
                for short, metric in self._counters.items()
            }
        out["backend"] = "thread"
        return out

    def handle_error(self, request: Any, client_address: Any) -> None:
        # The default prints a traceback to stderr; keep attribution
        # and route through the service logger instead.
        log.exception("unhandled handler error from client=%s", client_address)


# -- the event-loop backend --------------------------------------------------


class _DeadlineWheel:
    """Coarse-bucket read-deadline timer: O(1) arm, lazy reinsertion.

    Arming is just ``conn.deadline = now + timeout`` — the connection
    stays in whatever bucket it last landed in. When a bucket's window
    fully passes, its members are checked against their *actual*
    deadlines: truly expired ones are yielded, refreshed ones are
    re-bucketed. Deadlines therefore fire up to one resolution late,
    which is exactly the coarseness that makes 10k idle sockets cost
    nothing per read.
    """

    def __init__(self, resolution: float) -> None:
        self.resolution = resolution
        self._buckets: Dict[int, set] = {}

    def add(self, conn: "_AsyncConn") -> None:
        bucket = int(conn.deadline / self.resolution)
        self._buckets.setdefault(bucket, set()).add(conn)

    def next_timeout(self, now: float) -> Optional[float]:
        """Seconds until the earliest bucket fully passes, or None."""
        if not self._buckets:
            return None
        edge = (min(self._buckets) + 1) * self.resolution
        return max(0.0, edge - now)

    def sweep(self, now: float) -> List["_AsyncConn"]:
        """Pop every fully-passed bucket; return truly expired conns."""
        expired: List["_AsyncConn"] = []
        for bucket in sorted(self._buckets):
            if (bucket + 1) * self.resolution > now:
                break
            for conn in self._buckets.pop(bucket):
                if conn.closed:
                    continue  # lazily reaped
                if conn.deadline <= now:
                    expired.append(conn)
                else:
                    self.add(conn)  # activity moved it: reinsert
        return expired


class _AsyncConn:
    """Transport state for one socket on the event loop."""

    __slots__ = ("sock", "fd", "wire", "wbuf", "deadline", "paused",
                 "mask", "closed")

    def __init__(self, sock: socket.socket, wire: WireConnection) -> None:
        self.sock = sock
        self.fd = sock.fileno()
        self.wire = wire
        self.wbuf = bytearray()
        self.deadline = float("inf")
        self.paused = False  # reads suspended by write backpressure
        self.mask = selectors.EVENT_READ
        self.closed = False


class _AsyncServer:
    """Single-threaded ``selectors`` front end (``backend="async"``).

    One loop owns every socket. Blocking never happens: reads and
    writes are non-blocking, shard commands go through the router's
    ``submit`` surface, and reply futures wake the loop through a
    self-pipe (the shard thread appends the connection to a ready
    deque and sends one byte). Mirrors the counter interface of
    :class:`_TCPServer` and adds the event-loop gauges.
    """

    def __init__(
        self,
        address: Any,
        router: Router,
        read_timeout: Optional[float],
    ) -> None:
        self.router = router
        self.read_timeout = read_timeout
        self._listen = socket.create_server(
            address, backlog=512, reuse_port=False
        )
        self._listen.setblocking(False)
        self.server_address = self._listen.getsockname()
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listen, selectors.EVENT_READ, None)
        # Self-pipe: shard threads resolving futures poke the loop.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        self._ready: collections.deque = collections.deque()
        self._conns: Dict[int, _AsyncConn] = {}
        resolution = 0.5
        if read_timeout:
            resolution = max(0.05, min(1.0, read_timeout / 4.0))
        self._wheel = _DeadlineWheel(resolution)
        self.cluster: Optional[Any] = None
        self.metrics, self._counters = _server_counters()
        self._counters_lock = threading.Lock()
        self.connections_total = 0
        self.ring_high_water = 0  # carried over from closed connections
        self.write_queue_hwm = 0
        self.loop_lag_ms = 0.0  # worst single-iteration processing stall
        self._stopping = False
        self._stopped = threading.Event()
        self._stopped.set()  # not serving yet == already stopped
        self._serving = False
        self._closed = False

    # -- counter interface (shared with WireConnection) ---------------------

    def count(self, counter: str) -> None:
        with self._counters_lock:
            metric = self._counters.get(counter)
            if metric is None:
                metric = self.metrics.counter(
                    f"repro_server_{counter}_total"
                )
                self._counters[counter] = metric
            metric.inc()

    def counters(self) -> Dict[str, Any]:
        with self._counters_lock:
            out: Dict[str, Any] = {
                short: metric.value
                for short, metric in self._counters.items()
            }
        ring = self.ring_high_water
        write_queue = 0
        for conn in self._conns.values():
            ring = max(ring, conn.wire.frames.high_water)
            write_queue += len(conn.wbuf)
        self.write_queue_hwm = max(self.write_queue_hwm, write_queue)
        out["backend"] = "async"
        out["open_connections"] = len(self._conns)
        out["connections_total"] = self.connections_total
        out["ring_high_water"] = ring
        out["write_queue_depth"] = write_queue
        out["write_queue_hwm"] = self.write_queue_hwm
        out["loop_lag_ms"] = round(self.loop_lag_ms, 3)
        return out

    # -- the loop -----------------------------------------------------------

    def serve_forever(self, poll_interval: Optional[float] = None) -> None:
        # poll_interval is the threaded backend's knob; accepted for
        # interface parity, the wheel/self-pipe set the cadence here.
        self._serving = True
        self._stopped.clear()
        try:
            while not self._stopping:
                timeout = None
                if self.read_timeout and self._conns:
                    timeout = self._wheel.next_timeout(time.monotonic())
                events = self._selector.select(timeout)
                started = time.monotonic()
                for key, mask in events:
                    if key.data is None:
                        self._accept()
                    elif key.data == "wake":
                        self._drain_wakeups()
                    else:
                        conn = key.data
                        if mask & selectors.EVENT_WRITE and not conn.closed:
                            self._write_some(conn)
                        if mask & selectors.EVENT_READ and not conn.closed:
                            self._read_some(conn)
                while self._ready:
                    conn = self._ready.popleft()
                    if not conn.closed:
                        self._pump(conn)
                if self.read_timeout:
                    now = time.monotonic()
                    for conn in self._wheel.sweep(now):
                        self._expire(conn)
                lag = (time.monotonic() - started) * 1000.0
                if lag > self.loop_lag_ms:
                    self.loop_lag_ms = lag
        finally:
            self._serving = False
            self._close_all()
            self._stopped.set()

    def shutdown(self) -> None:
        self._stopping = True
        try:
            self._wake_w.send(b"\x01")
        except OSError:
            pass
        self._stopped.wait(5.0)

    def server_close(self) -> None:
        if not self._serving:
            self._close_all()

    def _close_all(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in list(self._conns.values()):
            self._close(conn)
        for sock in (self._listen, self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass
        self._selector.close()

    # -- socket handlers ----------------------------------------------------

    def _accept(self) -> None:
        while True:
            try:
                sock, _addr = self._listen.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError as error:  # e.g. EMFILE under fd pressure
                log.error("accept failed: %s", error)
                return
            sock.setblocking(False)
            wire = WireConnection(
                self.router, count=self.count, counters=self.counters,
                cluster=self.cluster,
            )
            conn = _AsyncConn(sock, wire)
            if self.read_timeout:
                conn.deadline = time.monotonic() + self.read_timeout
                self._wheel.add(conn)
            self._conns[conn.fd] = conn
            self.connections_total += 1
            self._selector.register(sock, conn.mask, conn)

    def _read_some(self, conn: _AsyncConn) -> None:
        try:
            data = conn.sock.recv(RECV_SIZE)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close(conn)
            return
        if not data:
            conn.wire.on_eof()
            self._pump(conn)
            if not conn.closed:
                self._close(conn)  # peer is gone; don't wait on writes
            return
        if self.read_timeout:
            conn.deadline = time.monotonic() + self.read_timeout
        conn.wire.receive_bytes(data)
        self._pump(conn)

    def _pump(self, conn: _AsyncConn) -> None:
        futures = conn.wire.pump()
        if futures:
            wake = self._waker(conn)
            for future in futures:
                future.subscribe(wake)
        self._flush(conn)

    def _waker(self, conn: _AsyncConn):
        def wake(_future: Any) -> None:
            # Runs on the resolving shard's thread (or inline on the
            # loop thread if the future is already done): hand the
            # connection back to the loop and poke the self-pipe.
            self._ready.append(conn)
            try:
                self._wake_w.send(b"\x01")
            except OSError:
                pass

        return wake

    def _drain_wakeups(self) -> None:
        while True:
            try:
                if not self._wake_r.recv(4096):
                    return
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return

    def _flush(self, conn: _AsyncConn) -> None:
        wire = conn.wire
        if wire.outbox:
            for frame in wire.outbox:
                conn.wbuf += frame
            wire.outbox.clear()
            if len(conn.wbuf) > self.write_queue_hwm:
                self.write_queue_hwm = len(conn.wbuf)
        if wire.reset:
            self._close(conn)
            return
        self._write_some(conn)

    def _write_some(self, conn: _AsyncConn) -> None:
        while conn.wbuf:
            try:
                sent = conn.sock.send(memoryview(conn.wbuf))
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close(conn)
                return
            del conn.wbuf[:sent]
        if conn.wire.close_after_send and not conn.wbuf:
            self._close(conn)
            return
        self._update_interest(conn)

    def _update_interest(self, conn: _AsyncConn) -> None:
        if conn.closed:
            return
        queued = len(conn.wbuf)
        if conn.paused:
            if queued <= WRITE_LWM:
                conn.paused = False
        elif queued >= WRITE_HWM:
            # Backpressure: the peer is not draining replies — stop
            # reading from it so its queue cannot grow unboundedly.
            conn.paused = True
        mask = 0
        if queued:
            mask |= selectors.EVENT_WRITE
        if not conn.paused:
            mask |= selectors.EVENT_READ
        if mask and mask != conn.mask:
            conn.mask = mask
            try:
                self._selector.modify(conn.sock, mask, conn)
            except (KeyError, ValueError, OSError):
                self._close(conn)

    def _expire(self, conn: _AsyncConn) -> None:
        if conn.closed:
            return
        conn.wire.on_read_timeout()
        self._flush(conn)
        if not conn.closed:
            self._close(conn)  # timeout: don't linger on a slow write

    def _close(self, conn: _AsyncConn) -> None:
        if conn.closed:
            return
        conn.closed = True
        self.ring_high_water = max(
            self.ring_high_water, conn.wire.frames.high_water
        )
        self._conns.pop(conn.fd, None)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass


class _MetricsEndpoint:
    """A tiny stdlib HTTP thread serving ``GET /metrics`` as prom text.

    Scrapes are served from a fresh ``repro-stats/1`` snapshot on every
    request — the exposition and the STATS frame cannot drift because
    :func:`repro.obs.metrics.stats_to_prom` is the only mapping.
    """

    def __init__(self, host: str, port: int, stats_fn) -> None:
        import http.server

        endpoint = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API)
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_response(404)
                    self.end_headers()
                    return
                try:
                    body = stats_to_prom(stats_fn()).encode("utf-8")
                except Exception as error:  # pragma: no cover - defensive
                    self.send_response(500)
                    self.end_headers()
                    self.wfile.write(str(error).encode("utf-8", "replace"))
                    return
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes are too chatty for the service log

        self._httpd = http.server.ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="repro-metrics",
            daemon=True,
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()


class ServiceServer:
    """The long-running analysis service.

    Args:
        host/port: Bind address (``port=0`` picks a free port; read the
            chosen one from :attr:`port`).
        shards: Worker shards (sessions hash across them).
        workers: ``"thread"`` (default) or ``"process"`` shards.
        spool: Checkpoint spool directory — enables recovery; on
            construction, sessions spooled by a previous incarnation
            are re-opened at their checkpointed positions (corrupt
            entries are quarantined to ``*.bad``; see :attr:`salvaged`).
        checkpoint_every: Auto-checkpoint interval in events.
        queue_size: Shard inbox bound (batches) before ``BUSY``.
        read_timeout: Per-connection read deadline in seconds
            (``None`` disables; default :data:`DEFAULT_READ_TIMEOUT`).
        backend: ``"thread"`` (one handler thread per connection) or
            ``"async"`` (single-threaded ``selectors`` event loop).
        cluster: Join the multi-node protocol even without peers (a
            cluster of one that others ``--join``). Implied by ``join``.
        join: Peer addresses (``host:port``) to JOIN through at start.
        node_id: Stable cluster-wide node id (defaults to the
            advertised ``host:port``).
        advertise: The address peers and clients reach this node at,
            when it differs from the bind address (NAT, 0.0.0.0 binds).
        vnodes: Virtual points this node contributes to the ring.
        gossip_interval: Seconds between cluster gossip ticks.
        suspect_after: Seconds of peer silence before declaring it dead.
        tenant_quota: Max inflight EVENTS batches per session before
            the router sheds with a paced ``BUSY`` (``None`` disables).
        metrics_port: Also serve Prometheus text on
            ``http://host:metrics_port/metrics`` (``0`` picks a free
            port — read it from :attr:`metrics_port`; ``None``
            disables the endpoint).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 1,
        workers: str = "thread",
        spool: Union[str, Path, None] = None,
        checkpoint_every: Optional[int] = 1000,
        queue_size: int = 64,
        read_timeout: Optional[float] = DEFAULT_READ_TIMEOUT,
        backend: str = "thread",
        cluster: bool = False,
        join: Sequence[str] = (),
        node_id: Optional[str] = None,
        advertise: Optional[str] = None,
        vnodes: Optional[int] = None,
        gossip_interval: Optional[float] = None,
        suspect_after: Optional[float] = None,
        tenant_quota: Optional[int] = None,
        metrics_port: Optional[int] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, not {backend!r}"
            )
        recovery = RecoveryManager(spool) if spool is not None else None
        self.router = Router(
            shards=shards,
            workers=workers,
            queue_size=queue_size,
            recovery=recovery,
            checkpoint_every=checkpoint_every,
            tenant_quota=tenant_quota,
        )
        self.recovered = self.router.recover()
        #: Spool entries quarantined during recovery (dicts with
        #: ``file``/``reason``) — the salvage report.
        self.salvaged = self.router.salvaged
        self.backend = backend
        if backend == "async":
            self._impl: Any = _AsyncServer(
                (host, port), router=self.router, read_timeout=read_timeout
            )
        else:
            self._impl = _TCPServer((host, port), _Handler)
            self._impl.router = self.router  # type: ignore[attr-defined]
            self._impl.read_timeout = read_timeout
        self.host, self.port = self._impl.server_address[:2]
        self.cluster = None
        if cluster or join:
            # Imported lazily: standalone servers never pay for (or
            # depend on) the cluster layer.
            from ..cluster.coordinator import (
                DEFAULT_GOSSIP_INTERVAL,
                ClusterCoordinator,
            )
            from ..cluster.ring import DEFAULT_VNODES

            adv_host, adv_port = self.host, self.port
            if advertise:
                raw_host, _, raw_port = advertise.rpartition(":")
                adv_host, adv_port = raw_host, int(raw_port)
            self.cluster = ClusterCoordinator(
                node_id or f"{adv_host}:{adv_port}",
                adv_host,
                adv_port,
                self.router,
                vnodes=vnodes if vnodes else DEFAULT_VNODES,
                gossip_interval=(
                    gossip_interval
                    if gossip_interval
                    else DEFAULT_GOSSIP_INTERVAL
                ),
                suspect_after=suspect_after,
                seeds=list(join),
            )
        self._impl.cluster = self.cluster
        self._thread: Optional[threading.Thread] = None
        self._metrics_endpoint: Optional[_MetricsEndpoint] = None
        self.metrics_port: Optional[int] = None
        if metrics_port is not None:
            self._metrics_endpoint = _MetricsEndpoint(
                host, metrics_port, self.stats_doc
            )
            self.metrics_port = self._metrics_endpoint.port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def stats_doc(self) -> Dict[str, Any]:
        """The full ``repro-stats/1`` document this node would answer
        on a STATS frame: per-shard rows + wire-server counters (+ the
        cluster block when clustering is on)."""
        stats = self.router.stats()
        stats["server"] = self._impl.counters()
        if self.cluster is not None:
            stats["cluster"] = self.cluster.stats()
        return stats

    def start(self) -> "ServiceServer":
        """Serve in a background thread (for tests and embedding)."""
        self._thread = threading.Thread(
            target=self._impl.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-service",
            daemon=True,
        )
        self._thread.start()
        if self._metrics_endpoint is not None:
            self._metrics_endpoint.start()
        if self.cluster is not None:
            # JOIN the peers once we are accepting their replies.
            self.cluster.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` loop)."""
        if self._metrics_endpoint is not None:
            self._metrics_endpoint.start()
        if self.cluster is not None:
            # The listener is already bound (backlog holds early peer
            # traffic), so joining before the accept loop is safe.
            self.cluster.start()
        self._impl.serve_forever(poll_interval=0.2)

    def stop(self) -> None:
        if self._metrics_endpoint is not None:
            self._metrics_endpoint.stop()
            self._metrics_endpoint = None
        if self.cluster is not None:
            self.cluster.stop()
        self._impl.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._impl.server_close()
        self.router.shutdown()

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
