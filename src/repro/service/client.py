"""Client SDK for the streaming analysis service.

:class:`ServiceClient` opens sessions over ``repro-wire/1``;
:class:`SessionHandle` streams batches, flushes, checkpoints and
collects the final report. ``BUSY`` backpressure is retried with a
small exponential backoff, transparently.

:func:`submit_trace` is the one-call form behind ``repro submit``: it
streams a whole trace (with optional resume-from-server-position for
crash recovery) and returns the final ``repro-report/1`` document.

:class:`RemoteChecker` adapts the service to the
:class:`~repro.core.checker.StreamingChecker` surface that
:class:`repro.instrument.LiveMonitor` hosts — so a live instrumented
program can ship its events to a remote analysis service instead of
paying for an in-process checker. Events are batched; violations
surface at batch boundaries (the price of remoteness: detection lags by
at most one batch).
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..core.violations import CheckResult, Violation
from ..trace.events import Event
from . import protocol
from .protocol import FrameType

#: Default events per EVENTS frame.
DEFAULT_BATCH = 512


class ServiceError(RuntimeError):
    """The server answered ERROR (the code is in :attr:`code`)."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(f"[{code}] {message}")


class ServiceClient:
    """A connection to a ``repro serve`` daemon.

    One client drives one session at a time (the wire binds a
    connection to a session at HELLO); open several clients for
    concurrent streams.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7207,
        timeout: float = 650.0, connect_timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        # The I/O timeout must outlive the router's REPLY_TIMEOUT
        # (600s): a barrier command (CLOSE behind a deep inbox) is
        # already enqueued server-side, and hanging up early would
        # orphan the final report while the server still executes it.
        self._sock.settimeout(timeout)
        self._rfile = self._sock.makefile("rb")

    def close(self) -> None:
        try:
            self._rfile.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- one round trip ----------------------------------------------------

    def roundtrip(
        self,
        frame: bytes,
        busy_retries: int = 200,
        retry_delay: float = 0.01,
    ) -> Any:
        """Send one frame, read one reply, retry through BUSY.

        Returns ``(type, payload_dict)``; raises :class:`ServiceError`
        on an ERROR reply and :class:`protocol.WireError` on a broken
        stream.
        """
        delay = retry_delay
        for _ in range(busy_retries + 1):
            self._sock.sendall(frame)
            reply = protocol.read_frame(self._rfile)
            if reply is None:
                raise protocol.FrameError("server closed the connection")
            ftype, payload = reply
            obj = protocol.decode_json(payload)
            if ftype == FrameType.BUSY:
                time.sleep(min(delay, 0.5))
                delay *= 2
                continue
            if ftype == FrameType.ERROR:
                raise ServiceError(
                    obj.get("code", "unknown"), obj.get("message", "")
                )
            return ftype, obj
        raise ServiceError("busy", "server still busy after retries")

    # -- sessions ----------------------------------------------------------

    def open_session(
        self,
        analyses: Sequence[Union[str, Dict[str, Any]]],
        name: str = "stream",
        packed: bool = False,
        encoding: str = "text",
        session_id: Optional[str] = None,
        resume: bool = False,
        meta: Optional[Dict[str, Any]] = None,
    ) -> "SessionHandle":
        """HELLO: open (or resume) a session and bind this connection.

        ``encoding`` picks how batches travel: ``"text"`` (``.std``
        lines) or ``"delta"`` (packed column deltas — cheaper for long
        streams). ``packed`` selects the *analysis* path server-side,
        independent of the wire encoding.
        """
        if encoding not in ("text", "delta"):
            raise ValueError(f"encoding must be 'text' or 'delta', not {encoding!r}")
        hello = {
            "protocol": protocol.PROTOCOL,
            "analyses": list(analyses),
            "name": name,
            "packed": packed,
            "session": session_id,
            "resume": resume,
            "meta": meta or {},
        }
        ftype, info = self.roundtrip(
            protocol.encode_json(FrameType.HELLO, hello)
        )
        return SessionHandle(self, info, encoding)

    def stats(self) -> Dict[str, Any]:
        """The router's aggregated metrics snapshot."""
        ftype, obj = self.roundtrip(protocol.encode_frame(FrameType.STATS))
        return obj["stats"]


class SessionHandle:
    """One open streaming session (returned by ``open_session``)."""

    def __init__(
        self, client: ServiceClient, info: Dict[str, Any], encoding: str
    ) -> None:
        self.client = client
        self.session_id: str = info["session"]
        #: Server-side stream position at open — a resumed session
        #: tells the client how many events to skip re-sending.
        self.position: int = info.get("position", 0)
        self.resumed: bool = bool(info.get("resumed", False))
        self.encoding = encoding
        self._encoder = (
            protocol.DeltaEncoder() if encoding == "delta" else None
        )
        #: Findings delivered by FLUSH/CLOSE frames so far.
        self.findings: List[Dict[str, Any]] = []
        self.report: Optional[Dict[str, Any]] = None

    def send(self, events: Iterable[Event]) -> int:
        """Ship one batch of events (one EVENTS frame)."""
        events = list(events)
        if not events:
            return 0
        if self._encoder is not None:
            payload = self._encoder.encode(events)
        else:
            payload = protocol.encode_events_text(events)
        self.client.roundtrip(
            protocol.encode_frame(FrameType.EVENTS, payload)
        )
        return len(events)

    def flush(self) -> Dict[str, Any]:
        """Barrier: everything sent is processed; collects new findings."""
        ftype, info = self.client.roundtrip(
            protocol.encode_frame(FrameType.FLUSH)
        )
        self.position = info.get("position", self.position)
        self.findings.extend(info.get("findings", []))
        return info

    def checkpoint(self) -> Dict[str, Any]:
        """Spool a durable checkpoint of the session server-side."""
        self.flush()  # checkpoint what was sent, not what was queued
        ftype, info = self.client.roundtrip(
            protocol.encode_frame(FrameType.CHECKPOINT)
        )
        return info

    def result(self) -> Dict[str, Any]:
        """CLOSE the session; returns the final ``repro-report/1`` doc."""
        if self.report is None:
            ftype, info = self.client.roundtrip(
                protocol.encode_frame(FrameType.CLOSE)
            )
            self.findings.extend(info.get("findings", []))
            self.report = info["report"]
        return self.report

    close = result


def submit_trace(
    host: str,
    port: int,
    events: Iterable[Event],
    analyses: Sequence[Union[str, Dict[str, Any]]],
    name: str = "stream",
    batch: int = DEFAULT_BATCH,
    encoding: str = "text",
    packed: bool = False,
    session_id: Optional[str] = None,
    resume: bool = False,
    stop_after: Optional[int] = None,
    checkpoint: bool = False,
) -> Dict[str, Any]:
    """Stream a whole trace to a service and return its report.

    With ``resume=True`` the server's checkpointed position is honored:
    the first ``position`` events of ``events`` are skipped (the server
    already has them) and only the remainder travels. ``stop_after``
    sends only the first N events and leaves the session **open**
    (taking a durable checkpoint when ``checkpoint`` is set), returning
    a position document instead of a report — the crash-drill half of
    the CI ``service-smoke`` job.
    """
    with ServiceClient(host, port) as client:
        handle = client.open_session(
            analyses,
            name=name,
            packed=packed,
            encoding=encoding,
            session_id=session_id,
            resume=resume,
        )
        skip = handle.position if resume else 0
        sent = 0
        pending: List[Event] = []
        for idx, event in enumerate(events):
            if idx < skip:
                continue
            if stop_after is not None and skip + sent >= stop_after:
                break
            pending.append(event)
            sent += 1
            if len(pending) >= batch:
                handle.send(pending)
                pending.clear()
        if pending:
            handle.send(pending)
        if stop_after is not None and skip + sent >= stop_after:
            info = handle.checkpoint() if checkpoint else handle.flush()
            return {
                "session": handle.session_id,
                "position": info.get("position", skip + sent),
                "open": True,
                "findings": handle.findings,
            }
        report = handle.result()
        report.setdefault("service", {})
        report["service"].update(
            {"session": handle.session_id, "resumed": handle.resumed}
        )
        return report


class RemoteChecker:
    """The service as a checker: LiveMonitor's remote backend.

    Looks enough like a :class:`~repro.core.checker.StreamingChecker`
    to be hosted by :class:`repro.instrument.LiveMonitor`: ``process``
    buffers events and ships a frame per ``batch`` events, ``result``
    returns a :class:`~repro.core.violations.CheckResult`. Violations
    discovered server-side surface at the next batch boundary (or at
    :meth:`finish`), reconstructed as
    :class:`~repro.core.violations.Violation` objects.

    Args:
        host/port: The service address.
        analyses: Analyses the remote session runs (first checker-kind
            finding becomes the reported violation).
        algorithm: Label used in results.
        batch: Events per frame; 1 = a frame per event (lowest lag).
    """

    def __init__(
        self,
        host: str,
        port: int,
        analyses: Sequence[Union[str, Dict[str, Any]]] = ("aerodrome",),
        algorithm: str = "remote",
        batch: int = 64,
        name: str = "live",
        encoding: str = "text",
    ) -> None:
        self.algorithm = algorithm
        self.batch = max(1, batch)
        self.violation: Optional[Violation] = None
        self.events_processed = 0
        self.violations: List[Violation] = []
        self._client = ServiceClient(host, port)
        self._handle = self._client.open_session(
            analyses, name=name, encoding=encoding
        )
        self._buffer: List[Event] = []
        self._seen_findings = 0
        self.report: Optional[Dict[str, Any]] = None

    # -- StreamingChecker surface ------------------------------------------

    def process(self, event: Event) -> Optional[Violation]:
        """Buffer one event; ship and poll at batch boundaries."""
        self._buffer.append(event)
        self.events_processed += 1
        if len(self._buffer) >= self.batch:
            return self.flush()
        return None

    def flush(self) -> Optional[Violation]:
        """Ship the buffer, collect findings; first new one is returned."""
        if self._buffer:
            self._handle.send(self._buffer)
            self._buffer.clear()
        self._handle.flush()
        return self._drain()

    def _drain(self) -> Optional[Violation]:
        first: Optional[Violation] = None
        for entry in self._handle.findings[self._seen_findings :]:
            violation = _finding_to_violation(entry)
            if violation is not None:
                self.violations.append(violation)
                if first is None:
                    first = violation
        self._seen_findings = len(self._handle.findings)
        if first is not None and self.violation is None:
            self.violation = first
        return first

    def result(self) -> CheckResult:
        return CheckResult(
            algorithm=self.algorithm,
            violation=self.violation,
            events_processed=self.events_processed,
        )

    def finish(self) -> Dict[str, Any]:
        """Close the remote session and return its final report."""
        if self.report is None:
            if self._buffer:
                self._handle.send(self._buffer)
                self._buffer.clear()
            self.report = self._handle.result()
            self._drain()
            self._client.close()
        return self.report


def _finding_to_violation(entry: Dict[str, Any]) -> Optional[Violation]:
    """Rebuild a Violation from a wire finding dict (when it is one)."""
    finding = entry.get("finding", {})
    try:
        return Violation(
            event_idx=finding["event_idx"],
            thread=finding["thread"],
            site=finding["site"],
            details=finding.get("details", ""),
        )
    except (KeyError, TypeError):
        return None  # a race/lockset finding, not a checker violation
