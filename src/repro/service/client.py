"""Client SDK for the streaming analysis service.

:class:`ServiceClient` opens sessions over ``repro-wire/1``;
:class:`SessionHandle` streams batches, flushes, checkpoints and
collects the final report. ``BUSY`` backpressure is retried with a
**bounded, jittered exponential backoff**, transparently.

Hardening knobs (all optional; defaults match the pre-hardening SDK):

* **deadline** — a wall-clock budget for the whole interaction.
  Connect waits, BUSY backoff sleeps and reconnect pauses all charge
  against it; exhausting it raises :class:`DeadlineExceeded` (a typed
  :class:`ServiceError`, code ``"deadline"``) instead of hanging.
* **unreachable** — a server that cannot be connected to raises
  :class:`ServiceUnreachable` (code ``"unreachable"``) rather than a
  raw ``OSError``, so callers (``repro submit``) can answer with a
  clean one-line failure.
* **idempotent resume** — :func:`submit_trace` survives connection
  resets, wire corruption and shard crashes: it reconnects with
  ``resume=True``, learns the server's position, and re-sends only the
  remainder. Batches travel as *positioned* EVENTS frames (stream
  offset + CRC32), so at-least-once delivery never double-counts an
  event and a gap (a shard restarted behind the stream) is detected
  and healed by re-sending from the server's position — the final
  report equals the offline run or the call raises; it never silently
  covers a shorter stream.

Fault site (see :mod:`repro.faults`): ``wire.send`` —
``truncate``/``corrupt`` a request frame or ``reset`` the connection
mid-send.

:class:`RemoteChecker` adapts the service to the
:class:`~repro.core.checker.StreamingChecker` surface that
:class:`repro.instrument.LiveMonitor` hosts — so a live instrumented
program can ship its events to a remote analysis service instead of
paying for an in-process checker. Events are batched; violations
surface at batch boundaries (the price of remoteness: detection lags by
at most one batch).
"""

from __future__ import annotations

import logging
import random
import socket
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..core.violations import CheckResult, Violation
from ..faults.injector import fire, mutate_frame
from ..trace.events import Event
from . import protocol
from .backoff import (  # noqa: F401  (BACKOFF_CAP re-exported for compat)
    BACKOFF_CAP,
    DEFAULT_BUSY_DELAY,
    DEFAULT_RECONNECT_DELAY,
    Backoff,
)
from .protocol import FrameType

log = logging.getLogger("repro.service")

#: Default events per EVENTS frame.
DEFAULT_BATCH = 512

#: Reconnect attempts :func:`submit_trace` makes before giving up.
DEFAULT_ATTEMPTS = 5


class ServiceError(RuntimeError):
    """The server answered ERROR (the code is in :attr:`code`)."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(f"[{code}] {message}")


class ServiceUnreachable(ServiceError):
    """The server could not be connected to at all."""

    def __init__(self, message: str) -> None:
        super().__init__("unreachable", message)


class DeadlineExceeded(ServiceError):
    """The caller's wall-clock budget ran out before the work finished."""

    def __init__(self, message: str) -> None:
        super().__init__("deadline", message)


class SessionRedirect(ServiceError):
    """The server does not own this session — follow the redirect.

    A clustered node answers HELLO (and any session command that
    arrives after an ownership change) with a REDIRECT frame naming the
    owning node; :class:`~repro.cluster.client.ClusterClient` catches
    this and re-routes. The target is in :attr:`host`/:attr:`port`.
    """

    def __init__(self, info: Dict[str, Any]) -> None:
        self.host: str = info.get("host", "")
        self.port: int = int(info.get("port", 0))
        self.node: str = info.get("node", "")
        self.epoch: int = int(info.get("epoch", 0))
        super().__init__(
            "redirect",
            f"session is owned by node {self.node!r} "
            f"at {self.host}:{self.port} (epoch {self.epoch})",
        )


class SessionFenced(ServiceError):
    """The node refused the write: membership epochs disagree.

    A clustered node answers FENCED when the epoch a frame rode in
    under does not match its own view — the node may be the stale side
    of a partition, or the client routed by an outdated ring. Either
    way the write was **not** applied. The node's epoch is in
    :attr:`epoch`; the fix is to refresh the ring and re-route (the
    cluster client does this automatically).
    """

    def __init__(self, info: Dict[str, Any]) -> None:
        self.epoch: int = int(info.get("epoch", 0) or 0)
        self.session: Optional[str] = info.get("session")
        super().__init__(
            "fenced",
            info.get("message", "membership epoch mismatch")
            + f" (node epoch {self.epoch})",
        )


class _Deadline:
    """A monotonic wall-clock budget shared across retries."""

    def __init__(self, seconds: Optional[float]) -> None:
        self.expires = None if seconds is None else time.monotonic() + seconds

    def remaining(self, doing: str) -> Optional[float]:
        """Seconds left (``None`` = unbounded); raises when spent."""
        if self.expires is None:
            return None
        left = self.expires - time.monotonic()
        if left <= 0:
            raise DeadlineExceeded(f"deadline expired while {doing}")
        return left

    def sleep(self, seconds: float, doing: str) -> None:
        left = self.remaining(doing)
        if left is not None and seconds >= left:
            time.sleep(max(left, 0.0))
            self.remaining(doing)  # raises: budget is now spent
            return
        time.sleep(seconds)


class ServiceClient:
    """A connection to a ``repro serve`` daemon.

    One client drives one session at a time (the wire binds a
    connection to a session at HELLO); open several clients for
    concurrent streams.

    Args:
        host/port: The service address.
        timeout: Per-reply socket I/O timeout.
        connect_timeout: TCP connect timeout.
        deadline: Optional wall-clock budget (seconds) for everything
            this client does; see :class:`DeadlineExceeded`.
        jitter_seed: Seed for the backoff jitter RNG (deterministic
            retries in tests and chaos drills).

    Raises:
        ServiceUnreachable: If the TCP connection cannot be made.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7207,
        timeout: float = 650.0, connect_timeout: float = 30.0,
        deadline: Optional[float] = None,
        jitter_seed: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.deadline = (
            deadline if isinstance(deadline, _Deadline) else _Deadline(deadline)
        )
        self._rng = random.Random(jitter_seed)
        left = self.deadline.remaining(f"connecting to {host}:{port}")
        if left is not None:
            connect_timeout = min(connect_timeout, left)
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            raise ServiceUnreachable(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc
        # The I/O timeout must outlive the router's REPLY_TIMEOUT
        # (600s): a barrier command (CLOSE behind a deep inbox) is
        # already enqueued server-side, and hanging up early would
        # orphan the final report while the server still executes it.
        self._sock.settimeout(timeout)
        self._rfile = self._sock.makefile("rb")
        # All reply reads go through the shared sans-IO codec — the
        # same incremental decoder both server backends run.
        self._frames = protocol.FrameStream(self._rfile)
        self._fault_key: Optional[str] = None  # session id once bound

    def close(self) -> None:
        try:
            self._rfile.close()
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- one round trip ----------------------------------------------------

    def _send_frame(self, frame: bytes) -> None:
        action = fire("wire.send", key=self._fault_key)
        if action is not None:
            if action.op == "reset":
                self._sock.close()
                raise ConnectionResetError(
                    "[injected] connection reset before send"
                )
            if action.op == "truncate":
                cut = mutate_frame(frame, action)
                try:
                    self._sock.sendall(cut)
                finally:
                    self._sock.close()
                raise ConnectionResetError(
                    "[injected] connection reset mid-frame "
                    f"({len(cut)}/{len(frame)} bytes sent)"
                )
            frame = mutate_frame(frame, action)  # corrupt
        self._sock.sendall(frame)

    def roundtrip(
        self,
        frame: bytes,
        busy_retries: int = 200,
        retry_delay: float = 0.01,
    ) -> Any:
        """Send one frame, read one reply, retry through BUSY.

        BUSY replies are retried with jittered exponential backoff,
        bounded by ``busy_retries`` and the client deadline. Returns
        ``(type, payload_dict)``; raises :class:`ServiceError` on an
        ERROR reply and :class:`protocol.WireError` on a broken stream.
        """
        backoff = Backoff(initial=retry_delay, rng=self._rng)
        for _ in range(busy_retries + 1):
            self.deadline.remaining("waiting for the server")
            self._send_frame(frame)
            reply = self._frames.read_frame()
            if reply is None:
                raise protocol.FrameError("server closed the connection")
            ftype, payload = reply
            obj = protocol.decode_json(payload)
            if ftype == FrameType.BUSY:
                # A shed/overloaded server rides a retry_ms pacing hint
                # on the frame; honor it (jittered) as the sleep floor.
                self.deadline.sleep(
                    backoff.paced(obj.get("retry_ms")),
                    "backing off from BUSY",
                )
                continue
            if ftype == FrameType.REDIRECT:
                raise SessionRedirect(obj)
            if ftype == FrameType.FENCED:
                raise SessionFenced(obj)
            if ftype == FrameType.ERROR:
                raise ServiceError(
                    obj.get("code", "unknown"), obj.get("message", "")
                )
            return ftype, obj
        raise ServiceError("busy", "server still busy after retries")

    # -- sessions ----------------------------------------------------------

    def open_session(
        self,
        analyses: Sequence[Union[str, Dict[str, Any]]],
        name: str = "stream",
        packed: bool = False,
        encoding: str = "text",
        session_id: Optional[str] = None,
        resume: bool = False,
        lenient: bool = False,
        meta: Optional[Dict[str, Any]] = None,
        epoch: Optional[int] = None,
    ) -> "SessionHandle":
        """HELLO: open (or resume) a session and bind this connection.

        ``encoding`` picks how batches travel: ``"text"`` (``.std``
        lines) or ``"delta"`` (packed column deltas — cheaper for long
        streams). ``packed`` selects the *analysis* path server-side,
        independent of the wire encoding. ``lenient`` softens a resume:
        if the server has nothing resumable (cluster failover lost the
        checkpoint) the session opens fresh at position 0 instead of
        erroring, and the caller re-sends from the start. ``epoch`` is
        the membership epoch the caller routed by (cluster clients): a
        node whose view is older answers FENCED
        (:class:`SessionFenced`) instead of serving writes it may no
        longer own.
        """
        if encoding not in ("text", "delta"):
            raise ValueError(f"encoding must be 'text' or 'delta', not {encoding!r}")
        hello = {
            "protocol": protocol.PROTOCOL,
            "analyses": list(analyses),
            "name": name,
            "packed": packed,
            "session": session_id,
            "resume": resume,
            "lenient": lenient,
            "meta": meta or {},
        }
        if epoch is not None:
            hello["epoch"] = epoch
        ftype, info = self.roundtrip(
            protocol.encode_json(FrameType.HELLO, hello)
        )
        self._fault_key = info.get("session")
        return SessionHandle(self, info, encoding)

    def stats(self) -> Dict[str, Any]:
        """The router's aggregated metrics snapshot."""
        ftype, obj = self.roundtrip(protocol.encode_frame(FrameType.STATS))
        return obj["stats"]


class SessionHandle:
    """One open streaming session (returned by ``open_session``)."""

    def __init__(
        self, client: ServiceClient, info: Dict[str, Any], encoding: str
    ) -> None:
        self.client = client
        self.session_id: str = info["session"]
        #: Server-side stream position at open — a resumed session
        #: tells the client how many events to skip re-sending.
        self.position: int = info.get("position", 0)
        self.resumed: bool = bool(info.get("resumed", False))
        #: A lenient resume found nothing recoverable and the session
        #: restarted from position 0 — the client must re-send the
        #: whole stream, and callers should surface it (``repro
        #: submit`` maps it to its own exit code).
        self.restarted: bool = bool(info.get("restarted", False))
        #: Client-side stream position: offset the *next* batch starts
        #: at. Stamped into positioned EVENTS frames so duplicate
        #: deliveries are dropped server-side and gaps are detected.
        self.sent: int = self.position
        self.encoding = encoding
        self._encoder = (
            protocol.DeltaEncoder() if encoding == "delta" else None
        )
        #: Findings delivered by FLUSH/CLOSE frames so far.
        self.findings: List[Dict[str, Any]] = []
        self.report: Optional[Dict[str, Any]] = None

    def send(self, events: Iterable[Event]) -> int:
        """Ship one batch of events (one positioned EVENTS frame)."""
        events = list(events)
        if not events:
            return 0
        if self._encoder is not None:
            payload = self._encoder.encode(events, base=self.sent)
        else:
            payload = protocol.encode_events_text(events, base=self.sent)
        self.client.roundtrip(
            protocol.encode_frame(FrameType.EVENTS, payload)
        )
        self.sent += len(events)
        return len(events)

    def rewind(self, position: int) -> None:
        """Restart the send stream at ``position`` (resync after the
        server reports being behind, e.g. across a shard restart)."""
        self.sent = position

    def flush(self) -> Dict[str, Any]:
        """Barrier: everything sent is processed; collects new findings."""
        ftype, info = self.client.roundtrip(
            protocol.encode_frame(FrameType.FLUSH)
        )
        self.position = info.get("position", self.position)
        self.findings.extend(info.get("findings", []))
        return info

    def checkpoint(self) -> Dict[str, Any]:
        """Spool a durable checkpoint of the session server-side."""
        self.flush()  # checkpoint what was sent, not what was queued
        ftype, info = self.client.roundtrip(
            protocol.encode_frame(FrameType.CHECKPOINT)
        )
        return info

    def result(self) -> Dict[str, Any]:
        """CLOSE the session; returns the final ``repro-report/1`` doc."""
        if self.report is None:
            ftype, info = self.client.roundtrip(
                protocol.encode_frame(FrameType.CLOSE)
            )
            self.findings.extend(info.get("findings", []))
            self.report = info["report"]
        return self.report

    close = result


#: ServiceError codes worth a reconnect: the connection (or a shard)
#: died, but the session survives server-side and resume will heal it.
_RETRYABLE_CODES = frozenset({"wire", "shard-crashed", "timeout"})


def _retryable(exc: Exception) -> bool:
    if isinstance(exc, (ConnectionError, protocol.WireError)):
        return True
    if isinstance(exc, ServiceError):
        return exc.code in _RETRYABLE_CODES
    return isinstance(exc, OSError)


def submit_trace(
    host: str,
    port: int,
    events: Iterable[Event],
    analyses: Sequence[Union[str, Dict[str, Any]]],
    name: str = "stream",
    batch: int = DEFAULT_BATCH,
    encoding: str = "text",
    packed: bool = False,
    session_id: Optional[str] = None,
    resume: bool = False,
    stop_after: Optional[int] = None,
    checkpoint: bool = False,
    deadline: Optional[float] = None,
    attempts: int = DEFAULT_ATTEMPTS,
    jitter_seed: Optional[int] = None,
    lenient: bool = False,
    epoch: Optional[int] = None,
) -> Dict[str, Any]:
    """Stream a whole trace to a service and return its report.

    With ``resume=True`` the server's checkpointed position is honored:
    the first ``position`` events of ``events`` are skipped (the server
    already has them) and only the remainder travels. ``stop_after``
    sends only the first N events and leaves the session **open**
    (taking a durable checkpoint when ``checkpoint`` is set), returning
    a position document instead of a report — the crash-drill half of
    the CI ``service-smoke`` job.

    The call is **self-healing**: a reset connection, a corrupted
    frame, a server read timeout or a crashed shard triggers up to
    ``attempts`` reconnects with jittered backoff, resuming the same
    session and re-sending from the server's reported position
    (positioned frames make the redelivery idempotent). ``deadline``
    bounds the whole call in wall-clock seconds
    (:class:`DeadlineExceeded`); an unreachable server raises
    :class:`ServiceUnreachable` immediately — there is nothing to
    resume.
    """
    all_events = list(events)
    budget = _Deadline(deadline)
    backoff = Backoff(initial=DEFAULT_RECONNECT_DELAY, seed=jitter_seed)
    failures = 0
    # Sticky across retries: a restart-from-zero on any attempt must
    # survive into the final report even if a later reconnect resumes
    # the (freshly restarted) session normally.
    notes: Dict[str, bool] = {"restarted": False}
    while True:
        try:
            return _submit_once(
                host, port, all_events, analyses,
                name=name, batch=batch, encoding=encoding, packed=packed,
                session_id=session_id, resume=resume, lenient=lenient,
                stop_after=stop_after, checkpoint=checkpoint,
                budget=budget, jitter_seed=jitter_seed, epoch=epoch,
                notes=notes,
            )
        except (ServiceUnreachable, DeadlineExceeded):
            raise
        except Exception as exc:
            if not _retryable(exc):
                raise
            failures += 1
            if session_id is None or failures >= attempts:
                # Without a session id there is nothing to resume
                # idempotently — a blind retry could double-feed.
                raise
            budget.sleep(
                backoff.next(),
                f"reconnecting to {host}:{port} after: {exc}",
            )
            resume = True  # the session lives server-side; pick it up


def _submit_once(
    host: str,
    port: int,
    all_events: List[Event],
    analyses: Sequence[Union[str, Dict[str, Any]]],
    name: str,
    batch: int,
    encoding: str,
    packed: bool,
    session_id: Optional[str],
    resume: bool,
    stop_after: Optional[int],
    checkpoint: bool,
    budget: _Deadline,
    jitter_seed: Optional[int],
    lenient: bool = False,
    epoch: Optional[int] = None,
    notes: Optional[Dict[str, bool]] = None,
) -> Dict[str, Any]:
    with ServiceClient(
        host, port, deadline=budget, jitter_seed=jitter_seed
    ) as client:
        handle = client.open_session(
            analyses,
            name=name,
            packed=packed,
            encoding=encoding,
            session_id=session_id,
            resume=resume,
            lenient=lenient,
            epoch=epoch,
        )
        if handle.restarted:
            if notes is not None:
                notes["restarted"] = True
            log.warning(
                "lenient resume restarted from zero session=%s at "
                "%s:%d — nothing was recoverable; re-sending the "
                "whole stream",
                handle.session_id, host, port,
            )

        def send_range(start: int, stop: int) -> None:
            handle.rewind(start)
            for lo in range(start, stop, batch):
                handle.send(all_events[lo : min(lo + batch, stop)])

        start = handle.position if resume else 0
        stop = len(all_events) if stop_after is None else min(
            stop_after, len(all_events)
        )
        if start < stop:
            send_range(start, stop)
        if stop_after is not None and handle.sent >= stop_after:
            info = handle.checkpoint() if checkpoint else handle.flush()
            return {
                "session": handle.session_id,
                "position": info.get("position", handle.sent),
                "open": True,
                "findings": handle.findings,
            }
        # A shard may have restarted from a checkpoint behind what was
        # queued: flush exposes the server's true position; re-send the
        # gap until the stream is whole, then close.
        info = handle.flush()
        rounds = 0
        while info.get("position", stop) < stop:
            rounds += 1
            if rounds > DEFAULT_ATTEMPTS:
                raise ServiceError(
                    "resync",
                    f"server stuck at position {info.get('position')} "
                    f"of {stop} after {rounds - 1} re-sends",
                )
            budget.remaining("re-syncing the stream")
            send_range(info["position"], stop)
            info = handle.flush()
        report = handle.result()
        report.setdefault("service", {})
        report["service"].update(
            {
                "session": handle.session_id,
                "resumed": handle.resumed,
                "restarted_from_zero": bool(
                    (notes or {}).get("restarted") or handle.restarted
                ),
            }
        )
        return report


class RemoteChecker:
    """The service as a checker: LiveMonitor's remote backend.

    Looks enough like a :class:`~repro.core.checker.StreamingChecker`
    to be hosted by :class:`repro.instrument.LiveMonitor`: ``process``
    buffers events and ships a frame per ``batch`` events, ``result``
    returns a :class:`~repro.core.violations.CheckResult`. Violations
    discovered server-side surface at the next batch boundary (or at
    :meth:`finish`), reconstructed as
    :class:`~repro.core.violations.Violation` objects.

    Args:
        host/port: The service address.
        analyses: Analyses the remote session runs (first checker-kind
            finding becomes the reported violation).
        algorithm: Label used in results.
        batch: Events per frame; 1 = a frame per event (lowest lag).
    """

    def __init__(
        self,
        host: str,
        port: int,
        analyses: Sequence[Union[str, Dict[str, Any]]] = ("aerodrome",),
        algorithm: str = "remote",
        batch: int = 64,
        name: str = "live",
        encoding: str = "text",
    ) -> None:
        self.algorithm = algorithm
        self.batch = max(1, batch)
        self.violation: Optional[Violation] = None
        self.events_processed = 0
        self.violations: List[Violation] = []
        self._client = ServiceClient(host, port)
        self._handle = self._client.open_session(
            analyses, name=name, encoding=encoding
        )
        self._buffer: List[Event] = []
        self._seen_findings = 0
        self.report: Optional[Dict[str, Any]] = None

    # -- StreamingChecker surface ------------------------------------------

    def process(self, event: Event) -> Optional[Violation]:
        """Buffer one event; ship and poll at batch boundaries."""
        self._buffer.append(event)
        self.events_processed += 1
        if len(self._buffer) >= self.batch:
            return self.flush()
        return None

    def flush(self) -> Optional[Violation]:
        """Ship the buffer, collect findings; first new one is returned."""
        if self._buffer:
            self._handle.send(self._buffer)
            self._buffer.clear()
        self._handle.flush()
        return self._drain()

    def _drain(self) -> Optional[Violation]:
        first: Optional[Violation] = None
        for entry in self._handle.findings[self._seen_findings :]:
            violation = _finding_to_violation(entry)
            if violation is not None:
                self.violations.append(violation)
                if first is None:
                    first = violation
        self._seen_findings = len(self._handle.findings)
        if first is not None and self.violation is None:
            self.violation = first
        return first

    def result(self) -> CheckResult:
        return CheckResult(
            algorithm=self.algorithm,
            violation=self.violation,
            events_processed=self.events_processed,
        )

    def finish(self) -> Dict[str, Any]:
        """Close the remote session and return its final report."""
        if self.report is None:
            if self._buffer:
                self._handle.send(self._buffer)
                self._buffer.clear()
            self.report = self._handle.result()
            self._drain()
            self._client.close()
        return self.report


def _finding_to_violation(entry: Dict[str, Any]) -> Optional[Violation]:
    """Rebuild a Violation from a wire finding dict (when it is one)."""
    finding = entry.get("finding", {})
    try:
        return Violation(
            event_idx=finding["event_idx"],
            thread=finding["thread"],
            site=finding["site"],
            details=finding.get("details", ""),
        )
    except (KeyError, TypeError):
        return None  # a race/lockset finding, not a checker violation
