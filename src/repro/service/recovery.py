"""Checkpointed recovery: the service's durability layer.

Rides :mod:`repro.core.snapshot` — the same freeze/thaw core and the
same guarantee (Theorem 4 keeps checker state constant-size, so
checkpoints stay small no matter how long a stream runs) — but at the
*session* level: one :class:`SessionCheckpoint` freezes every analysis
a tenant is running, plus the stream position.

The :class:`RecoveryManager` spools checkpoints to a directory, one
file per session, written atomically (temp file + ``os.replace``) so a
``kill -9`` can never leave a half-written checkpoint where a good one
used to be. Every entry additionally carries a CRC32 of its frozen
payload, so damage the rename discipline cannot prevent — bit rot, a
truncating filesystem, a torn write by a non-atomic writer — is
*detected*, not deserialized: any defect raises the typed
:class:`RecoveryError`, and restart-time recovery **salvages** around
it (the bad entry is quarantined to ``*.bad`` and reported; every
healthy sibling still recovers). A corrupt spool can degrade one
session, never crash the server.

On restart the server reloads every recoverable spooled session and
re-opens it at its checkpointed position; a resuming client learns that
position from the HELLO response and re-sends only the remainder of its
stream. Because feed-in-any-chunking ≡ ``run()`` (the
``tests/test_api_feed.py`` property) and checkpoint/restore is
state-transparent, the recovered session's final report is identical to
an uninterrupted one — the service extension of the
``tests/test_snapshot.py`` equivalence property, asserted end-to-end by
CI's ``service-smoke`` and ``chaos-smoke`` jobs.

Fault site (see :mod:`repro.faults`): ``spool.write`` — ``torn``
(a partial payload reaches the final path), ``corrupt`` (one payload
byte flipped after the write), ``enospc`` (the write fails with
``ENOSPC``). ``tests/test_spool_fuzz.py`` additionally fuzzes the
on-disk bytes directly.
"""

from __future__ import annotations

import errno
import os
import re
import struct
import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..core.snapshot import CheckpointError, freeze, thaw
from ..faults.injector import fire
from .session import StreamingSession

#: Format tag stored in every spooled session checkpoint.
SESSION_CHECKPOINT_VERSION = 1

#: Spool file suffix.
SUFFIX = ".ckpt"

#: Suffix a quarantined (corrupt, unrecoverable) entry is renamed to.
BAD_SUFFIX = ".bad"

#: Spool file magic (v2: payload CRC32). The file layout is
#: ``magic | u32 id-length | id utf-8 | u32 payload-crc32 |
#: u64 payload-length | frozen SessionCheckpoint`` — the header lets
#: :meth:`RecoveryManager.session_ids` enumerate the spool without
#: unpickling any (possibly large) session payloads, and the CRC +
#: length let :meth:`RecoveryManager.load` reject truncation and bit
#: flips before anything is deserialized.
SPOOL_MAGIC = b"RSPOOL2\n"

_HEADER_LEN = struct.Struct("<I")
_PAYLOAD_META = struct.Struct("<IQ")  # crc32, length

_SAFE_ID = re.compile(r"[^A-Za-z0-9_.-]")


class RecoveryError(CheckpointError):
    """A spool entry could not be written, read, or trusted.

    Subtypes :class:`~repro.core.snapshot.CheckpointError` so existing
    best-effort recovery paths (skip and continue) keep working; new
    code should catch this type for spool-specific failures.
    """


@dataclass(frozen=True)
class SessionCheckpoint:
    """A frozen, self-describing streaming-session state.

    Attributes:
        session_id: The session this checkpoint belongs to.
        name: Trace name (for listings; the payload carries it too).
        analyses: Analysis names, for listings.
        position: Events ingested when the checkpoint was taken — the
            offset a resuming client restarts its stream from.
        payload: The frozen :class:`StreamingSession` (opaque).
        version: :data:`SESSION_CHECKPOINT_VERSION`.
    """

    session_id: str
    name: str
    analyses: List[str]
    position: int
    payload: bytes
    version: int = SESSION_CHECKPOINT_VERSION

    def __len__(self) -> int:
        """Payload size in bytes (the checkpoint-size metric)."""
        return len(self.payload)


def checkpoint_session(session: StreamingSession) -> SessionCheckpoint:
    """Freeze a live session into a :class:`SessionCheckpoint`.

    The session keeps running; the checkpoint is independent state.
    """
    return SessionCheckpoint(
        session_id=session.session_id,
        name=session.session.name,
        analyses=list(session.analysis_names),
        position=session.position,
        payload=session.to_bytes(),
    )


def restore_session(checkpoint: SessionCheckpoint) -> StreamingSession:
    """Thaw a session from a checkpoint (the inverse of
    :func:`checkpoint_session`).

    Raises:
        CheckpointError: On version mismatch or a corrupt payload.
    """
    if checkpoint.version != SESSION_CHECKPOINT_VERSION:
        raise CheckpointError(
            f"session checkpoint version {checkpoint.version} != "
            f"supported {SESSION_CHECKPOINT_VERSION}"
        )
    return StreamingSession.from_bytes(checkpoint.payload)


class RecoveryManager:
    """A checkpoint spool directory: save, load, enumerate, salvage.

    One file per session, named after a sanitized session id. All
    writes are atomic replaces; a crash mid-save leaves the previous
    checkpoint intact. All reads verify the header CRC32 before
    deserializing; anything untrustworthy raises :class:`RecoveryError`
    and can be quarantined out of the restart path.
    """

    def __init__(self, spool: Union[str, Path]) -> None:
        self.spool = Path(spool)
        self.spool.mkdir(parents=True, exist_ok=True)

    def path_for(self, session_id: str) -> Path:
        return self.spool / (_SAFE_ID.sub("_", session_id) + SUFFIX)

    def save(self, session: StreamingSession) -> SessionCheckpoint:
        """Checkpoint ``session`` and spool it atomically.

        Raises:
            RecoveryError: If the entry cannot be written (``ENOSPC``,
                permissions, …) — the previous good entry, if any, is
                untouched.
            CheckpointError: If the session state is not picklable.
        """
        checkpoint = checkpoint_session(session)
        blob = freeze(checkpoint, what=f"spool entry {session.session_id}")
        crc, length = zlib.crc32(blob), len(blob)
        action = fire("spool.write", key=session.session_id)
        if action is not None and action.op == "enospc":
            raise RecoveryError(
                f"cannot spool session {session.session_id!r}: "
                f"[injected] {os.strerror(errno.ENOSPC)}"
            )
        if action is not None and action.op == "torn":
            # A torn write: the header (intended CRC + length) lands,
            # but only a prefix of the payload reaches disk — simulates
            # a non-atomic writer / lying disk. load()'s length check
            # makes the damage detectable instead of deserializable.
            blob = blob[: max(1, len(blob) // 2)]
        raw_id = session.session_id.encode("utf-8")
        target = self.path_for(session.session_id)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.spool), prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(SPOOL_MAGIC)
                handle.write(_HEADER_LEN.pack(len(raw_id)))
                handle.write(raw_id)
                handle.write(_PAYLOAD_META.pack(crc, length))
                handle.write(blob)
            os.replace(tmp, target)
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise RecoveryError(
                f"cannot spool session {session.session_id!r}: {exc}"
            ) from exc
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if action is not None and action.op == "corrupt":
            _flip_byte(target, action)
        return checkpoint

    @staticmethod
    def _read_header(handle) -> Tuple[str, int, int]:
        """``(session_id, payload_crc, payload_length)`` from the header.

        Raises:
            RecoveryError: On bad magic or a truncated/corrupt header.
        """
        magic = handle.read(len(SPOOL_MAGIC))
        if magic != SPOOL_MAGIC:
            raise RecoveryError("not a spool file (bad magic)")
        length_raw = handle.read(_HEADER_LEN.size)
        if len(length_raw) < _HEADER_LEN.size:
            raise RecoveryError("truncated spool header")
        (length,) = _HEADER_LEN.unpack(length_raw)
        raw_id = handle.read(length)
        if len(raw_id) < length:
            raise RecoveryError("truncated spool header")
        meta_raw = handle.read(_PAYLOAD_META.size)
        if len(meta_raw) < _PAYLOAD_META.size:
            raise RecoveryError("truncated spool header")
        crc, payload_length = _PAYLOAD_META.unpack(meta_raw)
        try:
            return raw_id.decode("utf-8"), crc, payload_length
        except UnicodeDecodeError as exc:
            raise RecoveryError(f"corrupt spool header: {exc}") from exc

    def load_checkpoint(self, session_id: str) -> SessionCheckpoint:
        """The spooled checkpoint for ``session_id``.

        Raises:
            RecoveryError: If missing, truncated, or failing its CRC.
            CheckpointError: If the verified payload will not thaw.
        """
        path = self.path_for(session_id)
        try:
            with open(path, "rb") as handle:
                _, crc, payload_length = self._read_header(handle)
                blob = handle.read()
        except OSError as exc:
            raise RecoveryError(
                f"no spooled checkpoint for session {session_id!r}: {exc}"
            ) from exc
        if len(blob) != payload_length:
            raise RecoveryError(
                f"spool entry {path.name}: payload is {len(blob)} bytes, "
                f"header claims {payload_length} (truncated or torn write)"
            )
        if zlib.crc32(blob) != crc:
            raise RecoveryError(
                f"spool entry {path.name}: payload CRC mismatch (corrupt)"
            )
        checkpoint = thaw(blob, what=f"spool entry {session_id}")
        if not isinstance(checkpoint, SessionCheckpoint):
            raise RecoveryError(
                f"{path} does not contain a SessionCheckpoint"
            )
        return checkpoint

    def load(self, session_id: str) -> StreamingSession:
        """Restore the live session spooled under ``session_id``."""
        return restore_session(self.load_checkpoint(session_id))

    # -- raw payload transfer (cluster handoff) -----------------------------

    def save_payload(self, session_id: str, blob: bytes) -> None:
        """Spool an already-frozen checkpoint blob under ``session_id``.

        The cluster handoff path ships the *exact* frozen
        :class:`SessionCheckpoint` bytes a spool entry stores (see
        :meth:`load_payload`); writing them back through this method
        produces a spool entry indistinguishable from a local
        :meth:`save` — same atomic replace, same header CRC — so the
        receiving node's ordinary recovery path can adopt it.

        Raises:
            RecoveryError: If the entry cannot be written.
        """
        crc, length = zlib.crc32(blob), len(blob)
        raw_id = session_id.encode("utf-8")
        target = self.path_for(session_id)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.spool), prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(SPOOL_MAGIC)
                handle.write(_HEADER_LEN.pack(len(raw_id)))
                handle.write(raw_id)
                handle.write(_PAYLOAD_META.pack(crc, length))
                handle.write(blob)
            os.replace(tmp, target)
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise RecoveryError(
                f"cannot spool session {session_id!r}: {exc}"
            ) from exc
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load_payload(self, session_id: str) -> bytes:
        """The verified frozen-checkpoint bytes spooled for
        ``session_id`` — the blob a cluster ``HANDOFF`` frame carries.

        Raises:
            RecoveryError: If missing, truncated, or failing its CRC.
        """
        path = self.path_for(session_id)
        try:
            with open(path, "rb") as handle:
                _, crc, payload_length = self._read_header(handle)
                blob = handle.read()
        except OSError as exc:
            raise RecoveryError(
                f"no spooled checkpoint for session {session_id!r}: {exc}"
            ) from exc
        if len(blob) != payload_length:
            raise RecoveryError(
                f"spool entry {path.name}: payload is {len(blob)} bytes, "
                f"header claims {payload_length} (truncated or torn write)"
            )
        if zlib.crc32(blob) != crc:
            raise RecoveryError(
                f"spool entry {path.name}: payload CRC mismatch (corrupt)"
            )
        return blob

    def scan(self) -> Tuple[List[str], List[Tuple[Path, str]]]:
        """``(session_ids, salvage)`` — a header-only spool sweep.

        ``salvage`` lists entries whose *header* is already untrusted
        (payload damage only surfaces at :meth:`load` time). No payload
        is unpickled; duplicates (two files claiming one session id)
        keep the first and salvage the rest.
        """
        ids: List[str] = []
        salvage: List[Tuple[Path, str]] = []
        seen: Dict[str, Path] = {}
        for path in sorted(self.spool.glob(f"*{SUFFIX}")):
            try:
                with open(path, "rb") as handle:
                    session_id, _, _ = self._read_header(handle)
            except (RecoveryError, OSError) as exc:
                salvage.append((path, str(exc)))
                continue
            if session_id in seen:
                salvage.append(
                    (path, f"duplicate spool entry for {session_id!r} "
                           f"(keeping {seen[session_id].name})")
                )
                continue
            seen[session_id] = path
            ids.append(session_id)
        return ids, salvage

    def session_ids(self) -> List[str]:
        """Spooled session ids, header-only (no payload is unpickled).

        Corrupt or duplicate entries are silently skipped here; use
        :meth:`scan` when the salvage report matters.
        """
        return self.scan()[0]

    def load_all(self) -> Dict[str, StreamingSession]:
        """Restore every recoverable spooled session (corrupt files
        are skipped, not fatal — recovery is best-effort per session)."""
        sessions: Dict[str, StreamingSession] = {}
        for session_id in self.session_ids():
            try:
                sessions[session_id] = self.load(session_id)
            except CheckpointError:
                continue
        return sessions

    def quarantine(self, session_id: str) -> Path:
        """Move a corrupt entry aside as ``*.bad`` so restarts stop
        tripping over it; returns the quarantine path."""
        return self.quarantine_path(self.path_for(session_id))

    def quarantine_path(self, path: Path) -> Path:
        target = path.with_suffix(BAD_SUFFIX)
        serial = 2
        while target.exists():
            target = path.with_suffix(f"{BAD_SUFFIX}{serial}")
            serial += 1
        try:
            os.replace(path, target)
        except OSError:
            pass  # already gone — quarantine is best-effort
        return target

    def delete(self, session_id: str) -> None:
        """Drop the spool entry (a closed session needs no recovery)."""
        try:
            self.path_for(session_id).unlink()
        except OSError:
            pass


def _flip_byte(path: Path, action) -> None:
    """Flip one payload byte of a finished spool file (the ``corrupt``
    fault op) — deterministic via the action's seeded RNG."""
    try:
        data = bytearray(path.read_bytes())
    except OSError:
        return
    start = len(SPOOL_MAGIC) + _HEADER_LEN.size
    if len(data) <= start + 1:
        return
    pos = action.rng.randrange(start, len(data))
    data[pos] ^= 1 << action.rng.randrange(8)
    path.write_bytes(bytes(data))
