"""Checkpointed recovery: the service's durability layer.

Rides :mod:`repro.core.snapshot` — the same freeze/thaw core and the
same guarantee (Theorem 4 keeps checker state constant-size, so
checkpoints stay small no matter how long a stream runs) — but at the
*session* level: one :class:`SessionCheckpoint` freezes every analysis
a tenant is running, plus the stream position.

The :class:`RecoveryManager` spools checkpoints to a directory, one
file per session, written atomically (temp file + ``os.replace``) so a
``kill -9`` can never leave a half-written checkpoint where a good one
used to be. On restart the server reloads every spooled session and
re-opens it at its checkpointed position; a resuming client learns that
position from the HELLO response and re-sends only the remainder of its
stream. Because feed-in-any-chunking ≡ ``run()`` (the
``tests/test_api_feed.py`` property) and checkpoint/restore is
state-transparent, the recovered session's final report is identical to
an uninterrupted one — the service extension of the
``tests/test_snapshot.py`` equivalence property, asserted end-to-end by
CI's ``service-smoke`` job.
"""

from __future__ import annotations

import os
import re
import struct
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Union

from ..core.snapshot import CheckpointError, freeze, thaw
from .session import StreamingSession

#: Format tag stored in every spooled session checkpoint.
SESSION_CHECKPOINT_VERSION = 1

#: Spool file suffix.
SUFFIX = ".ckpt"

#: Spool file magic. The file layout is
#: ``magic | u32 id-length | id utf-8 | frozen SessionCheckpoint`` —
#: the header lets :meth:`RecoveryManager.session_ids` enumerate the
#: spool without unpickling any (possibly large) session payloads.
SPOOL_MAGIC = b"RSPOOL1\n"

_HEADER_LEN = struct.Struct("<I")

_SAFE_ID = re.compile(r"[^A-Za-z0-9_.-]")


@dataclass(frozen=True)
class SessionCheckpoint:
    """A frozen, self-describing streaming-session state.

    Attributes:
        session_id: The session this checkpoint belongs to.
        name: Trace name (for listings; the payload carries it too).
        analyses: Analysis names, for listings.
        position: Events ingested when the checkpoint was taken — the
            offset a resuming client restarts its stream from.
        payload: The frozen :class:`StreamingSession` (opaque).
        version: :data:`SESSION_CHECKPOINT_VERSION`.
    """

    session_id: str
    name: str
    analyses: List[str]
    position: int
    payload: bytes
    version: int = SESSION_CHECKPOINT_VERSION

    def __len__(self) -> int:
        """Payload size in bytes (the checkpoint-size metric)."""
        return len(self.payload)


def checkpoint_session(session: StreamingSession) -> SessionCheckpoint:
    """Freeze a live session into a :class:`SessionCheckpoint`.

    The session keeps running; the checkpoint is independent state.
    """
    return SessionCheckpoint(
        session_id=session.session_id,
        name=session.session.name,
        analyses=list(session.analysis_names),
        position=session.position,
        payload=session.to_bytes(),
    )


def restore_session(checkpoint: SessionCheckpoint) -> StreamingSession:
    """Thaw a session from a checkpoint (the inverse of
    :func:`checkpoint_session`).

    Raises:
        CheckpointError: On version mismatch or a corrupt payload.
    """
    if checkpoint.version != SESSION_CHECKPOINT_VERSION:
        raise CheckpointError(
            f"session checkpoint version {checkpoint.version} != "
            f"supported {SESSION_CHECKPOINT_VERSION}"
        )
    return StreamingSession.from_bytes(checkpoint.payload)


class RecoveryManager:
    """A checkpoint spool directory: save, load, enumerate, delete.

    One file per session, named after a sanitized session id. All
    writes are atomic replaces; a crash mid-save leaves the previous
    checkpoint intact.
    """

    def __init__(self, spool: Union[str, Path]) -> None:
        self.spool = Path(spool)
        self.spool.mkdir(parents=True, exist_ok=True)

    def path_for(self, session_id: str) -> Path:
        return self.spool / (_SAFE_ID.sub("_", session_id) + SUFFIX)

    def save(self, session: StreamingSession) -> SessionCheckpoint:
        """Checkpoint ``session`` and spool it atomically."""
        checkpoint = checkpoint_session(session)
        blob = freeze(checkpoint, what=f"spool entry {session.session_id}")
        raw_id = session.session_id.encode("utf-8")
        target = self.path_for(session.session_id)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.spool), prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(SPOOL_MAGIC)
                handle.write(_HEADER_LEN.pack(len(raw_id)))
                handle.write(raw_id)
                handle.write(blob)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return checkpoint

    @staticmethod
    def _read_header(handle) -> str:
        """The spooled session id, from the header alone."""
        magic = handle.read(len(SPOOL_MAGIC))
        if magic != SPOOL_MAGIC:
            raise CheckpointError("not a spool file (bad magic)")
        length_raw = handle.read(_HEADER_LEN.size)
        if len(length_raw) < _HEADER_LEN.size:
            raise CheckpointError("truncated spool header")
        (length,) = _HEADER_LEN.unpack(length_raw)
        raw_id = handle.read(length)
        if len(raw_id) < length:
            raise CheckpointError("truncated spool header")
        try:
            return raw_id.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CheckpointError(f"corrupt spool header: {exc}") from exc

    def load_checkpoint(self, session_id: str) -> SessionCheckpoint:
        """The spooled checkpoint for ``session_id``.

        Raises:
            CheckpointError: If missing or corrupt.
        """
        path = self.path_for(session_id)
        try:
            with open(path, "rb") as handle:
                self._read_header(handle)
                blob = handle.read()
        except OSError as exc:
            raise CheckpointError(
                f"no spooled checkpoint for session {session_id!r}: {exc}"
            ) from exc
        checkpoint = thaw(blob, what=f"spool entry {session_id}")
        if not isinstance(checkpoint, SessionCheckpoint):
            raise CheckpointError(
                f"{path} does not contain a SessionCheckpoint"
            )
        return checkpoint

    def load(self, session_id: str) -> StreamingSession:
        """Restore the live session spooled under ``session_id``."""
        return restore_session(self.load_checkpoint(session_id))

    def session_ids(self) -> List[str]:
        """Spooled session ids, header-only (no payload is unpickled)."""
        ids = []
        for path in sorted(self.spool.glob(f"*{SUFFIX}")):
            try:
                with open(path, "rb") as handle:
                    ids.append(self._read_header(handle))
            except (CheckpointError, OSError):
                continue  # a corrupt entry must not block recovery
        return ids

    def load_all(self) -> Dict[str, StreamingSession]:
        """Restore every recoverable spooled session (corrupt files
        are skipped, not fatal — recovery is best-effort per session)."""
        sessions: Dict[str, StreamingSession] = {}
        for session_id in self.session_ids():
            try:
                sessions[session_id] = self.load(session_id)
            except CheckpointError:
                continue
        return sessions

    def delete(self, session_id: str) -> None:
        """Drop the spool entry (a closed session needs no recovery)."""
        try:
            self.path_for(session_id).unlink()
        except OSError:
            pass
