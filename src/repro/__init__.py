"""repro — AeroDrome: linear-time atomicity checking with vector clocks.

A complete reproduction of *Atomicity Checking in Linear Time using
Vector Clocks* (Mathur & Viswanathan, ASPLOS 2020): the AeroDrome
algorithm (basic and optimized), the Velodrome and DoubleChecker
baselines, an exact conflict-serializability oracle, a concurrent-program
simulator that stands in for RoadRunner trace logging, and a benchmark
harness regenerating the paper's Tables 1 and 2.

Quickstart::

    from repro import check_trace, parse_trace

    trace = parse_trace('''
        t1|begin
        t1|w(x)
        t2|begin
        t2|r(x)
        t2|w(y)
        t2|end
        t1|r(y)
        t1|end
    ''')
    result = check_trace(trace)          # optimized AeroDrome
    print(result.serializable)            # False
    print(result.violation)               # where and why

Or co-run any number of registered analyses on **one** pass over the
trace through the session API (the front door; see ``docs/API.md``)::

    from repro import run

    result = run(trace, ["aerodrome", "races", "lockset", "profile"])
    print(result.ok)                      # every analysis clean?
    print(result.to_json())               # versioned repro-report/1
"""

from .api import (
    Analysis,
    Report,
    Session,
    SessionResult,
    available_analyses,
    create_analysis,
    register_analysis,
    run,
)
from .analysis.causal import CausalAtomicityReport, check_causal_atomicity
from .analysis.explain import Explanation, explain
from .analysis.graph_export import event_graph_dot, transaction_graph_dot
from .analysis.lockset import LocksetAnalyzer, lockset_analysis
from .analysis.minimize import is_one_minimal, minimize_violation
from .analysis.profile import TraceProfile, format_profile, profile_trace
from .analysis.races import FastTrackDetector, Race, find_races
from .analysis.serial_witness import is_serial, serial_witness, verify_equivalence
from .analysis.timeline import render_columns, render_with_verdict
from .analysis.view_serializability import serializing_order, view_serializable
from .baselines.atomizer import AtomizerChecker, atomizer_warnings
from .baselines.doublechecker import DoubleCheckerChecker
from .baselines.lock_models import FarzanMadhusudanChecker, LockModel
from .baselines.oracle import conflict_serializable, violation_witness
from .baselines.velodrome import VelodromeChecker
from .core.aerodrome import AeroDromeChecker
from .core.aerodrome_opt import OptimizedAeroDromeChecker
from .core.checker import (
    StreamingChecker,
    available_algorithms,
    check_trace,
    make_checker,
)
from .core.multi import find_all_violations, violation_stream
from .core.sharded import ShardedAeroDromeChecker
from .core.snapshot import (
    Checkpoint,
    load_checkpoint,
    restore,
    save_checkpoint,
    snapshot,
)
from .core.vector_clock import ThreadRegistry, VectorClock
from .core.violations import AtomicityViolationError, CheckResult, Violation
from .instrument.monitor import LiveMonitor, monitored_run
from .instrument.recorder import SharedVar, TracedLock, TraceRecorder
from .spec.atomicity_spec import AtomicitySpec, load_spec, save_spec
from .spec.inference import InferredSpec, infer_spec
from .trace.events import (
    Event,
    Op,
    acquire,
    begin,
    end,
    fork,
    join,
    read,
    release,
    write,
)
from .trace.filters import apply_spec, strip_markers
from .trace.metainfo import MetaInfo, collect_metainfo, metainfo
from .trace.packed import Interner, PackedTrace, pack
from .trace.parser import iter_events, load_trace, parse_trace
from .trace.trace import Trace, trace_of
from .trace.transactions import count_transactions, extract_transactions
from .trace.wellformed import WellFormednessError, is_well_formed, validate
from .trace.writer import dump_trace, save_trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # the session API (the front door; see docs/API.md)
    "Session",
    "SessionResult",
    "Report",
    "Analysis",
    "run",
    "available_analyses",
    "create_analysis",
    "register_analysis",
    # checking (deprecated facades delegate to repro.api)
    "check_trace",
    "make_checker",
    "available_algorithms",
    "StreamingChecker",
    "AeroDromeChecker",
    "OptimizedAeroDromeChecker",
    "VelodromeChecker",
    "DoubleCheckerChecker",
    "conflict_serializable",
    "violation_witness",
    # results
    "Violation",
    "CheckResult",
    "AtomicityViolationError",
    # clocks
    "VectorClock",
    "ThreadRegistry",
    # traces
    "Event",
    "Op",
    "Trace",
    "PackedTrace",
    "pack",
    "Interner",
    "trace_of",
    "read",
    "write",
    "acquire",
    "release",
    "fork",
    "join",
    "begin",
    "end",
    "parse_trace",
    "load_trace",
    "iter_events",
    "dump_trace",
    "save_trace",
    "validate",
    "is_well_formed",
    "WellFormednessError",
    "metainfo",
    "collect_metainfo",
    "MetaInfo",
    "extract_transactions",
    "count_transactions",
    # specs
    "AtomicitySpec",
    "load_spec",
    "save_spec",
    "apply_spec",
    "strip_markers",
    "infer_spec",
    "InferredSpec",
    # extensions
    "find_races",
    "FastTrackDetector",
    "Race",
    "lockset_analysis",
    "LocksetAnalyzer",
    "AtomizerChecker",
    "atomizer_warnings",
    "FarzanMadhusudanChecker",
    "LockModel",
    "view_serializable",
    "serializing_order",
    "serial_witness",
    "is_serial",
    "verify_equivalence",
    "violation_stream",
    "find_all_violations",
    "ShardedAeroDromeChecker",
    "snapshot",
    "restore",
    "save_checkpoint",
    "load_checkpoint",
    "Checkpoint",
    "profile_trace",
    "format_profile",
    "TraceProfile",
    "transaction_graph_dot",
    "event_graph_dot",
    "render_columns",
    "render_with_verdict",
    "minimize_violation",
    "is_one_minimal",
    "check_causal_atomicity",
    "CausalAtomicityReport",
    "explain",
    "Explanation",
    "TraceRecorder",
    "SharedVar",
    "TracedLock",
    "LiveMonitor",
    "monitored_run",
]
