"""Checkpoint / restore for streaming checkers.

The paper's target workloads are traces with *billions* of events
(Table 1), analyzed online as the program runs. For deployments of that
shape an analysis must be able to survive monitor restarts: persist the
vector-clock state, resume from where it left off. Because AeroDrome's
state is a constant number of vector clocks and scalars (Theorem 4's
space bound — not the trace itself), checkpoints are small and cheap,
which is itself a selling point over the graph-based baselines whose
live state (the transaction graph) can grow with the trace.

The implementation is deliberately algorithm-agnostic: any
:class:`~repro.core.checker.StreamingChecker` whose state is picklable
can be checkpointed, restored in the same process, or round-tripped
through a file. Equivalence — *checkpoint/restore anywhere in the
stream never changes the verdict* — is property-tested in
``tests/test_snapshot.py`` for every registered algorithm.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from .checker import StreamingChecker

#: Format tag stored in every checkpoint, bumped on layout changes.
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class Checkpoint:
    """A frozen, self-describing checker state.

    Attributes:
        algorithm: Registry name of the checkpointed checker.
        events_processed: Stream position at checkpoint time.
        payload: Pickled checker (opaque).
        version: Format version (:data:`CHECKPOINT_VERSION`).
    """

    algorithm: str
    events_processed: int
    payload: bytes
    version: int = CHECKPOINT_VERSION

    def __len__(self) -> int:
        """Payload size in bytes — the state-size metric used by the
        ``examples/checkpoint_streaming.py`` walkthrough."""
        return len(self.payload)


class CheckpointError(RuntimeError):
    """A checkpoint could not be taken or restored."""


def freeze(state: object, what: str = "state") -> bytes:
    """Pickle any checkpointable state, wrapping failures uniformly.

    The serialization core shared by checker checkpoints here and the
    streaming-service session checkpoints
    (:mod:`repro.service.recovery`). ``what`` names the object in the
    :class:`CheckpointError` message.

    Raises:
        CheckpointError: If the state is not picklable.
    """
    try:
        return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # pickle raises a zoo of types
        raise CheckpointError(f"cannot checkpoint {what}: {exc}") from exc


def thaw(payload: bytes, what: str = "state") -> object:
    """Inverse of :func:`freeze`; corrupt payloads raise uniformly.

    Raises:
        CheckpointError: On any unpickling failure.
    """
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(f"corrupt {what} payload: {exc}") from exc


def snapshot(checker: StreamingChecker) -> Checkpoint:
    """Freeze ``checker``'s full analysis state into a :class:`Checkpoint`.

    The checker itself is untouched and can keep processing events.

    Raises:
        CheckpointError: If the checker state is not picklable.
    """
    payload = freeze(checker, what=checker.algorithm)
    return Checkpoint(
        algorithm=checker.algorithm,
        events_processed=checker.events_processed,
        payload=payload,
    )


def restore(checkpoint: Checkpoint) -> StreamingChecker:
    """Rebuild a checker from a :class:`Checkpoint`.

    The returned checker is independent of the original: both can
    process further events without affecting each other.

    Raises:
        CheckpointError: On version mismatch or a corrupt payload.
    """
    if checkpoint.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {checkpoint.version} != "
            f"supported {CHECKPOINT_VERSION}"
        )
    checker = thaw(checkpoint.payload, what="checkpoint")
    if not isinstance(checker, StreamingChecker):
        raise CheckpointError(
            f"checkpoint payload is a {type(checker).__name__}, "
            "not a StreamingChecker"
        )
    return checker


def save_checkpoint(
    checker: StreamingChecker, path: Union[str, Path]
) -> Checkpoint:
    """Snapshot ``checker`` and write the checkpoint to ``path``."""
    checkpoint = snapshot(checker)
    with open(path, "wb") as handle:
        pickle.dump(checkpoint, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return checkpoint


def load_checkpoint(path: Union[str, Path]) -> StreamingChecker:
    """Load a checkpoint file written by :func:`save_checkpoint`."""
    with open(path, "rb") as handle:
        checkpoint = pickle.load(handle)
    if not isinstance(checkpoint, Checkpoint):
        raise CheckpointError(f"{path} does not contain a Checkpoint")
    return restore(checkpoint)
