"""The paper's contribution: AeroDrome vector-clock atomicity checking."""

from .aerodrome import AeroDromeChecker
from .aerodrome_opt import OptimizedAeroDromeChecker
from .checker import (
    StreamingChecker,
    available_algorithms,
    check_trace,
    make_checker,
)
from .multi import find_all_violations, violation_stream
from .sharded import ShardedAeroDromeChecker, SyncStats
from .snapshot import (
    Checkpoint,
    CheckpointError,
    load_checkpoint,
    restore,
    save_checkpoint,
    snapshot,
)
from .vector_clock import ThreadRegistry, VectorClock
from .violations import AtomicityViolationError, CheckResult, Violation

__all__ = [
    "AeroDromeChecker",
    "OptimizedAeroDromeChecker",
    "ShardedAeroDromeChecker",
    "SyncStats",
    "StreamingChecker",
    "check_trace",
    "make_checker",
    "available_algorithms",
    "violation_stream",
    "find_all_violations",
    "snapshot",
    "restore",
    "save_checkpoint",
    "load_checkpoint",
    "Checkpoint",
    "CheckpointError",
    "VectorClock",
    "ThreadRegistry",
    "Violation",
    "CheckResult",
    "AtomicityViolationError",
]
