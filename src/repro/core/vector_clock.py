"""Vector times and vector clocks (paper, Section 4 preliminaries).

A *vector time* is a vector of non-negative integers indexed by threads.
For vector times ``V1``, ``V2``:

* ``V1 ⊑ V2``  iff  ``V1(t) <= V2(t)`` for every thread ``t``
  (:meth:`VectorClock.leq`);
* ``V1 ⊔ V2 = λt. max(V1(t), V2(t))`` (:meth:`VectorClock.join`);
* ``V[c/t]`` is ``V`` with component ``t`` replaced by ``c``
  (:meth:`VectorClock.with_component`);
* ``⊥`` is the all-zero time (:meth:`VectorClock.bottom`).

Threads are represented by dense integer indices; analyzers intern thread
names through :class:`ThreadRegistry`. Clocks are conceptually
infinite-dimensional with missing components equal to zero, so clocks of
different lengths compare correctly and grow on demand as new threads
appear mid-trace.

Storage is a packed ``array('q')`` rather than a list: clocks are the
dominant live state of the analyses (Theorem 4 bounds their *count*, not
their width) and 8-byte machine words keep that state dense. Each clock
also carries a :attr:`~VectorClock.version` stamp, drawn from a global
monotone counter and refreshed on every state *change*. Two reads of the
same version therefore witness the identical vector value, which is what
the checkers' epoch fast paths rely on to skip provably no-op joins and
copies (see ``docs/PERF.md``).
"""

from __future__ import annotations

from array import array
from itertools import count
from typing import Dict, Iterable, List, Sequence

#: Global version stamps. Monotone and never reused, so equality of two
#: stamps taken at different times implies the clock value is unchanged
#: (and a replaced clock object can never masquerade as the old one).
_next_version = count(1).__next__

#: A single zero component, used to materialize runs of zeros in C.
_ZERO = array("q", (0,))


class VectorClock:
    """A mutable vector time.

    The in-place operations (:meth:`join`, :meth:`join_into_and_check`,
    :meth:`set_component`, :meth:`increment`, :meth:`assign`) are the
    workhorses of the analysis loops; the functional variants
    (:meth:`joined`, :meth:`with_component`) are for tests and expository
    code. Only the functional/public constructor validates its input —
    the hot constructors (:meth:`bottom`, :meth:`unit`, :meth:`copy`)
    produce non-negative vectors by construction and skip the scan.
    """

    __slots__ = ("_times", "version")

    def __init__(self, times: Iterable[int] = ()) -> None:
        self._times = array("q", times)
        if any(t < 0 for t in self._times):
            raise ValueError("vector times are non-negative")
        self.version = _next_version()

    # -- constructors --------------------------------------------------------

    @classmethod
    def bottom(cls, size: int = 0) -> "VectorClock":
        """The minimum time ⊥ (all zeros)."""
        clock = cls.__new__(cls)
        clock._times = _ZERO * size
        clock.version = _next_version()
        return clock

    @classmethod
    def unit(cls, thread: int, value: int = 1, size: int = 0) -> "VectorClock":
        """⊥[value/thread] — the initial clock C_t = ⊥[1/t]."""
        clock = cls.bottom()
        clock._grow(max(size, thread + 1))
        clock._times[thread] = value
        return clock

    def copy(self) -> "VectorClock":
        clock = VectorClock.__new__(VectorClock)
        clock._times = self._times[:]
        clock.version = _next_version()
        return clock

    # -- component access ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._times)

    def get(self, thread: int) -> int:
        """Component ``V(thread)`` (0 if beyond the stored length)."""
        if thread < len(self._times):
            return self._times[thread]
        return 0

    def _grow(self, size: int) -> None:
        missing = size - len(self._times)
        if missing > 0:
            # Appending zeros does not change the (conceptually
            # infinite) vector value, so the version is untouched.
            self._times.extend(_ZERO * missing)

    def set_component(self, thread: int, value: int) -> None:
        """In-place ``V(thread) := value``."""
        if value < 0:
            raise ValueError("vector times are non-negative")
        self._grow(thread + 1)
        self._times[thread] = value
        self.version = _next_version()

    def increment(self, thread: int, amount: int = 1) -> None:
        """In-place ``V(thread) := V(thread) + amount``."""
        self._grow(thread + 1)
        self._times[thread] += amount
        self.version = _next_version()

    def assign(self, other: "VectorClock") -> None:
        """In-place copy: ``V := other``."""
        self._times[:] = other._times
        self.version = _next_version()

    # -- lattice operations ----------------------------------------------------

    def leq(self, other: "VectorClock") -> bool:
        """The partial order ``self ⊑ other``."""
        mine = self._times
        theirs = other._times
        if len(mine) <= len(theirs):
            for a, b in zip(mine, theirs):
                if a > b:
                    return False
            return True
        n = len(theirs)
        for i, a in enumerate(mine):
            if a > (theirs[i] if i < n else 0):
                return False
        return True

    def leq_local(self, other: "VectorClock", thread: int) -> bool:
        """The O(1) local-component comparison ``V(thread) <= other(thread)``.

        For the event timestamps the optimized algorithms maintain, this
        single component decides the ⋖E-path checks (Appendix C.1); it is
        *not* the pointwise order for arbitrary vectors.
        """
        mine = self._times
        theirs = other._times
        a = mine[thread] if thread < len(mine) else 0
        b = theirs[thread] if thread < len(theirs) else 0
        return a <= b

    def join(self, other: "VectorClock") -> None:
        """In-place join: ``V := V ⊔ other``."""
        theirs = other._times
        self._grow(len(theirs))
        mine = self._times
        changed = False
        for i, b in enumerate(theirs):
            if b > mine[i]:
                mine[i] = b
                changed = True
        if changed:
            self.version = _next_version()

    def join_into_and_check(
        self, other: "VectorClock", check: "VectorClock" = None
    ) -> bool:
        """Fused ``V ⊔= other`` and ``check ⊑ other`` in one traversal.

        This is the shape of the paper's ``checkAndGet``: the violation
        check and the clock update read the same operand, so fusing them
        halves the vector passes on the basic checker's hot path. With
        ``check=None`` it degenerates to :meth:`join` and returns True.
        """
        theirs = other._times
        n = len(theirs)
        self._grow(n)
        mine = self._times
        changed = False
        if check is None:
            for i, b in enumerate(theirs):
                if b > mine[i]:
                    mine[i] = b
                    changed = True
            ok = True
        else:
            cts = check._times
            m = len(cts)
            ok = True
            for i, b in enumerate(theirs):
                if b > mine[i]:
                    mine[i] = b
                    changed = True
                if i < m and cts[i] > b:
                    ok = False
            if ok and m > n:
                for i in range(n, m):
                    if cts[i] > 0:
                        ok = False
                        break
        if changed:
            self.version = _next_version()
        return ok

    def joined(self, other: "VectorClock") -> "VectorClock":
        """Functional join: ``V ⊔ other`` as a new clock."""
        result = self.copy()
        result.join(other)
        return result

    def with_component(self, thread: int, value: int) -> "VectorClock":
        """Functional ``V[value/thread]`` as a new clock."""
        result = self.copy()
        result.set_component(thread, value)
        return result

    def zeroed(self, thread: int) -> "VectorClock":
        """``V[0/thread]`` — used by the check-read clock hR_x (App. C.1)."""
        return self.with_component(thread, 0)

    def is_bottom(self) -> bool:
        return not any(self._times)

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        mine, theirs = self._times, other._times
        if len(mine) < len(theirs):
            mine, theirs = theirs, mine
        return mine[: len(theirs)] == theirs and not any(mine[len(theirs):])

    def __hash__(self) -> int:
        times = self._times[:]
        while times and times[-1] == 0:
            times.pop()
        return hash(tuple(times))

    def __repr__(self) -> str:
        inner = ",".join(str(t) for t in self._times)
        return f"⟨{inner}⟩"

    def as_tuple(self) -> tuple:
        return tuple(self._times)

    # -- pickling ----------------------------------------------------------
    #
    # array('q') pickles fine, but spelling the state out keeps
    # checkpoints (repro.core.snapshot) independent of slot layout.

    def __getstate__(self) -> tuple:
        return (self._times.tolist(), self.version)

    def __setstate__(self, state: tuple) -> None:
        times, version = state
        self._times = array("q", times)
        self.version = version


class ThreadRegistry:
    """Interns thread names to dense indices for vector-clock components."""

    __slots__ = ("_index", "_names")

    def __init__(self, names: Sequence[str] = ()) -> None:
        self._index: Dict[str, int] = {}
        self._names: List[str] = []
        for name in names:
            self.index_of(name)

    def index_of(self, name: str) -> int:
        """The index for ``name``, interning it on first sight."""
        idx = self._index.get(name)
        if idx is None:
            idx = len(self._names)
            self._index[name] = idx
            self._names.append(name)
        return idx

    def name_of(self, index: int) -> str:
        return self._names[index]

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def names(self) -> List[str]:
        return self._names[:]
