"""Vector times and vector clocks (paper, Section 4 preliminaries).

A *vector time* is a vector of non-negative integers indexed by threads.
For vector times ``V1``, ``V2``:

* ``V1 ⊑ V2``  iff  ``V1(t) <= V2(t)`` for every thread ``t``
  (:meth:`VectorClock.leq`);
* ``V1 ⊔ V2 = λt. max(V1(t), V2(t))`` (:meth:`VectorClock.join`);
* ``V[c/t]`` is ``V`` with component ``t`` replaced by ``c``
  (:meth:`VectorClock.with_component`);
* ``⊥`` is the all-zero time (:meth:`VectorClock.bottom`).

Threads are represented by dense integer indices; analyzers intern thread
names through :class:`ThreadRegistry`. Clocks are conceptually
infinite-dimensional with missing components equal to zero, so clocks of
different lengths compare correctly and grow on demand as new threads
appear mid-trace.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


class VectorClock:
    """A mutable vector time.

    The in-place operations (:meth:`join`, :meth:`set_component`,
    :meth:`increment`, :meth:`assign`) are the workhorses of the analysis
    loops; the functional variants (:meth:`joined`, :meth:`with_component`)
    are for tests and expository code.
    """

    __slots__ = ("_times",)

    def __init__(self, times: Iterable[int] = ()) -> None:
        self._times: List[int] = list(times)
        if any(t < 0 for t in self._times):
            raise ValueError("vector times are non-negative")

    # -- constructors --------------------------------------------------------

    @classmethod
    def bottom(cls, size: int = 0) -> "VectorClock":
        """The minimum time ⊥ (all zeros)."""
        return cls([0] * size)

    @classmethod
    def unit(cls, thread: int, value: int = 1, size: int = 0) -> "VectorClock":
        """⊥[value/thread] — the initial clock C_t = ⊥[1/t]."""
        clock = cls.bottom(max(size, thread + 1))
        clock._times[thread] = value
        return clock

    def copy(self) -> "VectorClock":
        clock = VectorClock.__new__(VectorClock)
        clock._times = self._times[:]
        return clock

    # -- component access ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._times)

    def get(self, thread: int) -> int:
        """Component ``V(thread)`` (0 if beyond the stored length)."""
        if thread < len(self._times):
            return self._times[thread]
        return 0

    def _grow(self, size: int) -> None:
        if size > len(self._times):
            self._times.extend([0] * (size - len(self._times)))

    def set_component(self, thread: int, value: int) -> None:
        """In-place ``V(thread) := value``."""
        if value < 0:
            raise ValueError("vector times are non-negative")
        self._grow(thread + 1)
        self._times[thread] = value

    def increment(self, thread: int, amount: int = 1) -> None:
        """In-place ``V(thread) := V(thread) + amount``."""
        self._grow(thread + 1)
        self._times[thread] += amount

    def assign(self, other: "VectorClock") -> None:
        """In-place copy: ``V := other``."""
        self._times[:] = other._times

    # -- lattice operations ----------------------------------------------------

    def leq(self, other: "VectorClock") -> bool:
        """The partial order ``self ⊑ other``."""
        mine = self._times
        theirs = other._times
        if len(mine) <= len(theirs):
            for a, b in zip(mine, theirs):
                if a > b:
                    return False
            return True
        for i, a in enumerate(mine):
            b = theirs[i] if i < len(theirs) else 0
            if a > b:
                return False
        return True

    def join(self, other: "VectorClock") -> None:
        """In-place join: ``V := V ⊔ other``."""
        theirs = other._times
        self._grow(len(theirs))
        mine = self._times
        for i, b in enumerate(theirs):
            if b > mine[i]:
                mine[i] = b

    def joined(self, other: "VectorClock") -> "VectorClock":
        """Functional join: ``V ⊔ other`` as a new clock."""
        result = self.copy()
        result.join(other)
        return result

    def with_component(self, thread: int, value: int) -> "VectorClock":
        """Functional ``V[value/thread]`` as a new clock."""
        result = self.copy()
        result.set_component(thread, value)
        return result

    def zeroed(self, thread: int) -> "VectorClock":
        """``V[0/thread]`` — used by the check-read clock hR_x (App. C.1)."""
        return self.with_component(thread, 0)

    def is_bottom(self) -> bool:
        return not any(self._times)

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        mine, theirs = self._times, other._times
        if len(mine) < len(theirs):
            mine, theirs = theirs, mine
        return mine[: len(theirs)] == theirs and not any(mine[len(theirs):])

    def __hash__(self) -> int:
        times = self._times[:]
        while times and times[-1] == 0:
            times.pop()
        return hash(tuple(times))

    def __repr__(self) -> str:
        inner = ",".join(str(t) for t in self._times)
        return f"⟨{inner}⟩"

    def as_tuple(self) -> tuple:
        return tuple(self._times)


class ThreadRegistry:
    """Interns thread names to dense indices for vector-clock components."""

    __slots__ = ("_index", "_names")

    def __init__(self, names: Sequence[str] = ()) -> None:
        self._index: Dict[str, int] = {}
        self._names: List[str] = []
        for name in names:
            self.index_of(name)

    def index_of(self, name: str) -> int:
        """The index for ``name``, interning it on first sight."""
        idx = self._index.get(name)
        if idx is None:
            idx = len(self._names)
            self._index[name] = idx
            self._names.append(name)
        return idx

    def name_of(self, index: int) -> str:
        return self._names[index]

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def names(self) -> List[str]:
        return self._names[:]
