"""Sharded AeroDrome — simulating the paper's distributed-analysis claim.

Section 6 argues that, unlike the centralized automata-theoretic monitor
of Farzan–Madhusudan, "AeroDrome allows for a distributed implementation
— one can attach the analysis metadata (vector clocks and other scalar
variables) to the various objects (like threads, locks and memory
locations) being tracked. The analysis can then be performed with only
little synchronization between these metadata."

This module makes that claim measurable. The analysis state is split
across *shards*:

* one **thread shard** per thread, owning ``C_t``, ``C⊲_t`` and the
  nesting depth;
* **object shards** (a configurable number), each owning the ``W_x`` /
  ``R_x`` / ``hR_x`` clocks of the variables and the ``L_ℓ`` clocks of
  the locks hashed to it.

Every handler of Algorithm 1 (with the Appendix C.1 read-clock
reduction) is expressed as shard *accesses*; an access is **local**
when the event's own thread shard suffices and **remote** when it
touches an object shard or another thread's shard. The checker counts
both, giving the synchronization profile a real distributed
implementation would pay. The verdict is — by construction, and
property-tested in ``tests/test_sharded.py`` — identical to AeroDrome's.

This is a *simulation* of the distribution (events are still consumed
in trace order by one Python interpreter); what it quantifies is the
communication structure: most events touch exactly one object shard
(reads/writes/acquires), and only end events fan out — and then only to
shards whose clocks are after the closing transaction's begin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..trace.events import Event, Op
from .checker import StreamingChecker
from .vector_clock import ThreadRegistry, VectorClock
from .violations import Violation


@dataclass
class SyncStats:
    """Shard-access accounting for one analyzed trace.

    Attributes:
        local_accesses: Handler steps served by the event's own
            thread shard.
        remote_accesses: Steps that had to consult another shard
            (an object shard or a different thread's shard).
        end_broadcasts: Shards contacted by end-event propagation —
            the only fan-out in the algorithm.
        per_shard: Remote accesses per object shard id (load balance).
    """

    local_accesses: int = 0
    remote_accesses: int = 0
    end_broadcasts: int = 0
    per_shard: Dict[int, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.local_accesses + self.remote_accesses

    def remote_fraction(self) -> float:
        """Share of accesses that crossed a shard boundary."""
        if not self.total:
            return 0.0
        return self.remote_accesses / self.total


class _ThreadShard:
    """Owns one thread's clocks (C_t, C⊲_t) and nesting depth."""

    __slots__ = ("index", "clock", "begin_clock", "depth")

    def __init__(self, index: int) -> None:
        self.index = index
        self.clock = VectorClock.unit(index)
        self.begin_clock = VectorClock.bottom()
        self.depth = 0


class _ObjectShard:
    """Owns the per-variable and per-lock clocks hashed to it."""

    __slots__ = (
        "shard_id",
        "write_clock",
        "last_w_thr",
        "read_clock",
        "check_read_clock",
        "lock_clock",
        "last_rel_thr",
    )

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.write_clock: Dict[str, VectorClock] = {}
        self.last_w_thr: Dict[str, int] = {}
        self.read_clock: Dict[str, VectorClock] = {}  # R_x = ⊔_u R_{u,x}
        self.check_read_clock: Dict[str, VectorClock] = {}  # hR_x
        self.lock_clock: Dict[str, VectorClock] = {}
        self.last_rel_thr: Dict[str, int] = {}


class ShardedAeroDromeChecker(StreamingChecker):
    """Algorithm 1 with state partitioned across shards.

    Args:
        n_object_shards: Number of shards the variable/lock metadata is
            hashed over (>= 1).
    """

    algorithm = "aerodrome-sharded"

    def __init__(self, n_object_shards: int = 4) -> None:
        super().__init__()
        if n_object_shards < 1:
            raise ValueError("need at least one object shard")
        self.n_object_shards = n_object_shards
        self.stats = SyncStats()
        self._threads = ThreadRegistry()
        self._thread_shards: Dict[int, _ThreadShard] = {}
        self._object_shards = [
            _ObjectShard(i) for i in range(n_object_shards)
        ]

    def reset(self) -> None:
        self.__init__(n_object_shards=self.n_object_shards)

    # -- shard routing -----------------------------------------------------

    def _thread_shard(self, name: str) -> _ThreadShard:
        t = self._threads.index_of(name)
        shard = self._thread_shards.get(t)
        if shard is None:
            shard = _ThreadShard(t)
            self._thread_shards[t] = shard
        return shard

    def shard_of(self, target: str) -> _ObjectShard:
        """The object shard owning ``target`` (stable hash routing)."""
        # hash() is salted per process for str; a stable digest keeps
        # shard assignment reproducible across runs.
        digest = sum(target.encode("utf-8"))
        return self._object_shards[digest % self.n_object_shards]

    def _local(self) -> None:
        self.stats.local_accesses += 1

    def _remote(self, shard: _ObjectShard) -> None:
        self.stats.remote_accesses += 1
        per = self.stats.per_shard
        per[shard.shard_id] = per.get(shard.shard_id, 0) + 1

    # -- checkAndGet --------------------------------------------------------

    def _check_and_get(
        self,
        check_clk: VectorClock,
        join_clk: VectorClock,
        me: _ThreadShard,
        event: Event,
        site: str,
    ) -> Optional[Violation]:
        # The ⊑ check is the O(1) local-component comparison of Appendix
        # C.1 — required for exactness of the hR_x check, and what a
        # distributed implementation would actually ship between shards
        # (a single integer, not the whole vector).
        if (
            me.depth > 0
            and me.begin_clock.get(me.index) <= check_clk.get(me.index)
        ):
            return Violation(
                event_idx=event.idx,
                thread=self._threads.name_of(me.index),
                site=site,
                details="sharded checkAndGet: C⊲_t ⊑ clk with active txn",
            )
        me.clock.join(join_clk)
        return None

    # -- handlers ------------------------------------------------------------

    def _read(self, me: _ThreadShard, event: Event) -> Optional[Violation]:
        variable = event.target
        assert variable is not None
        shard = self.shard_of(variable)
        self._remote(shard)
        if shard.last_w_thr.get(variable) != me.index:
            write_clock = shard.write_clock.get(variable)
            if write_clock is not None:
                violation = self._check_and_get(
                    write_clock, write_clock, me, event, "read"
                )
                if violation is not None:
                    return violation
        read_clock = shard.read_clock.get(variable)
        if read_clock is None:
            shard.read_clock[variable] = me.clock.copy()
        else:
            read_clock.join(me.clock)
        check_read = shard.check_read_clock.get(variable)
        contribution = me.clock.zeroed(me.index)
        if check_read is None:
            shard.check_read_clock[variable] = contribution
        else:
            check_read.join(contribution)
        return None

    def _write(self, me: _ThreadShard, event: Event) -> Optional[Violation]:
        variable = event.target
        assert variable is not None
        shard = self.shard_of(variable)
        self._remote(shard)
        if shard.last_w_thr.get(variable) != me.index:
            write_clock = shard.write_clock.get(variable)
            if write_clock is not None:
                violation = self._check_and_get(
                    write_clock, write_clock, me, event, "write-write"
                )
                if violation is not None:
                    return violation
        check_read = shard.check_read_clock.get(variable)
        if check_read is not None:
            read_clock = shard.read_clock[variable]
            violation = self._check_and_get(
                check_read, read_clock, me, event, "write-read"
            )
            if violation is not None:
                return violation
        shard.write_clock[variable] = me.clock.copy()
        shard.last_w_thr[variable] = me.index
        # Reads before this write are summarized by W_x from now on
        # (W_x ⊒ every R_{u,x} after the joins above, so dropping the
        # read clocks loses no future check).
        shard.read_clock.pop(variable, None)
        shard.check_read_clock.pop(variable, None)
        return None

    def _acquire(self, me: _ThreadShard, event: Event) -> Optional[Violation]:
        lock = event.target
        assert lock is not None
        shard = self.shard_of(lock)
        self._remote(shard)
        if shard.last_rel_thr.get(lock) != me.index:
            lock_clock = shard.lock_clock.get(lock)
            if lock_clock is not None:
                return self._check_and_get(
                    lock_clock, lock_clock, me, event, "acquire"
                )
        return None

    def _release(self, me: _ThreadShard, event: Event) -> None:
        lock = event.target
        assert lock is not None
        shard = self.shard_of(lock)
        self._remote(shard)
        shard.lock_clock[lock] = me.clock.copy()
        shard.last_rel_thr[lock] = me.index

    def _fork(self, me: _ThreadShard, event: Event) -> None:
        child = self._thread_shard(event.target)  # type: ignore[arg-type]
        self.stats.remote_accesses += 1  # another thread's shard
        child.clock.join(me.clock)

    def _join(self, me: _ThreadShard, event: Event) -> Optional[Violation]:
        child = self._thread_shard(event.target)  # type: ignore[arg-type]
        self.stats.remote_accesses += 1
        return self._check_and_get(child.clock, child.clock, me, event, "join")

    def _begin(self, me: _ThreadShard) -> None:
        me.depth += 1
        if me.depth == 1:
            me.clock.increment(me.index)
            me.begin_clock = me.clock.copy()

    def _end(self, me: _ThreadShard, event: Event) -> Optional[Violation]:
        if me.depth == 0:
            raise ValueError(
                f"end without matching begin at event {event.idx}; "
                "validate the trace with repro.trace.wellformed first"
            )
        me.depth -= 1
        if me.depth > 0:
            return None
        begin_local = me.begin_clock.get(me.index)
        # Fan-out 1: other thread shards that saw this transaction.
        for u, other in self._thread_shards.items():
            if other is me:
                continue
            self.stats.remote_accesses += 1
            self.stats.end_broadcasts += 1
            if begin_local <= other.clock.get(me.index):
                violation = self._check_and_get(
                    me.clock, me.clock, other, event, "end"
                )
                if violation is not None:
                    return violation
        # Fan-out 2: object shards, each updating only clocks after the
        # begin (Algorithm 2 lines 24-30). One broadcast per shard, not
        # per object.
        zeroed = me.clock.zeroed(me.index)
        for shard in self._object_shards:
            self._remote(shard)
            self.stats.end_broadcasts += 1
            for clock in shard.lock_clock.values():
                if begin_local <= clock.get(me.index):
                    clock.join(me.clock)
            for clock in shard.write_clock.values():
                if begin_local <= clock.get(me.index):
                    clock.join(me.clock)
            for variable, clock in shard.read_clock.items():
                if begin_local <= clock.get(me.index):
                    clock.join(me.clock)
                    shard.check_read_clock[variable].join(zeroed)
        return None

    # -- dispatch ------------------------------------------------------------

    def process(self, event: Event) -> Optional[Violation]:
        """Consume one event (see :class:`StreamingChecker`)."""
        if self.violation is not None:
            raise RuntimeError("checker already found a violation; reset() first")
        me = self._thread_shard(event.thread)
        self._local()
        op = event.op
        violation: Optional[Violation] = None
        if op is Op.READ:
            violation = self._read(me, event)
        elif op is Op.WRITE:
            violation = self._write(me, event)
        elif op is Op.ACQUIRE:
            violation = self._acquire(me, event)
        elif op is Op.RELEASE:
            self._release(me, event)
        elif op is Op.BEGIN:
            self._begin(me)
        elif op is Op.END:
            violation = self._end(me, event)
        elif op is Op.FORK:
            self._fork(me, event)
        elif op is Op.JOIN:
            violation = self._join(me, event)
        else:  # pragma: no cover - exhaustive over Op
            raise AssertionError(f"unhandled op {op}")
        self.events_processed += 1
        if violation is not None:
            self.violation = violation
        return violation
