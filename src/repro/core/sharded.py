"""Sharded AeroDrome — simulating the paper's distributed-analysis claim.

Section 6 argues that, unlike the centralized automata-theoretic monitor
of Farzan–Madhusudan, "AeroDrome allows for a distributed implementation
— one can attach the analysis metadata (vector clocks and other scalar
variables) to the various objects (like threads, locks and memory
locations) being tracked. The analysis can then be performed with only
little synchronization between these metadata."

This module makes that claim measurable. The analysis state is split
across *shards*:

* one **thread shard** per thread, owning ``C_t``, ``C⊲_t`` and the
  nesting depth;
* **object shards** (a configurable number), each owning the ``W_x`` /
  ``R_x`` / ``hR_x`` clocks of the variables and the ``L_ℓ`` clocks of
  the locks hashed to it.

Every handler of Algorithm 1 (with the Appendix C.1 read-clock
reduction) is expressed as shard *accesses*; an access is **local**
when the event's own thread shard suffices and **remote** when it
touches an object shard or another thread's shard. The checker counts
both, giving the synchronization profile a real distributed
implementation would pay. The verdict is — by construction, and
property-tested in ``tests/test_sharded.py`` — identical to AeroDrome's.

This is a *simulation* of the distribution (events are still consumed
in trace order by one Python interpreter); what it quantifies is the
communication structure: most events touch exactly one object shard
(reads/writes/acquires), and only end events fan out — and then only to
shards whose clocks are after the closing transaction's begin.

Internally variables and locks are interned to dense indices with their
shard assignment cached at intern time, events are consumed through the
same per-op dispatch-table fast path as the other checkers
(``run_packed``), and the clock joins/snapshots carry the version-epoch
memos described in ``docs/PERF.md``. None of this changes the access
accounting: a memo-skipped join still contacts the owning shard, and is
counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..trace.events import Event, Op
from ..trace.packed import Interner, PackedTrace
from .checker import StreamingChecker, make_packed_step
from .vector_clock import ThreadRegistry, VectorClock
from .violations import Violation


@dataclass
class SyncStats:
    """Shard-access accounting for one analyzed trace.

    Attributes:
        local_accesses: Handler steps served by the event's own
            thread shard.
        remote_accesses: Steps that had to consult another shard
            (an object shard or a different thread's shard).
        end_broadcasts: Shards contacted by end-event propagation —
            the only fan-out in the algorithm.
        per_shard: Remote accesses per object shard id (load balance).
    """

    local_accesses: int = 0
    remote_accesses: int = 0
    end_broadcasts: int = 0
    per_shard: Dict[int, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.local_accesses + self.remote_accesses

    def remote_fraction(self) -> float:
        """Share of accesses that crossed a shard boundary."""
        if not self.total:
            return 0.0
        return self.remote_accesses / self.total


class _ThreadShard:
    """Owns one thread's clocks (C_t, C⊲_t) and nesting depth."""

    __slots__ = ("index", "clock", "begin_clock", "depth")

    def __init__(self, index: int) -> None:
        self.index = index
        self.clock = VectorClock.unit(index)
        self.begin_clock = VectorClock.bottom()
        self.depth = 0


class _ObjectShard:
    """Owns the per-variable and per-lock clocks hashed to it.

    Variables and locks are identified by their dense namespace indices;
    the ``*_pub`` / ``*_joined`` / ``read_flush`` maps are the epoch
    memos that let an unchanged clock skip its redundant join or
    snapshot (the shard contact is still counted by the caller).
    """

    __slots__ = (
        "shard_id",
        "write_clock",
        "last_w_thr",
        "read_clock",
        "check_read_clock",
        "lock_clock",
        "last_rel_thr",
        "write_pub",
        "write_joined",
        "read_flush",
        "lock_pub",
        "lock_joined",
    )

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.write_clock: Dict[int, VectorClock] = {}
        self.last_w_thr: Dict[int, int] = {}
        self.read_clock: Dict[int, VectorClock] = {}  # R_x = ⊔_u R_{u,x}
        self.check_read_clock: Dict[int, VectorClock] = {}  # hR_x
        self.lock_clock: Dict[int, VectorClock] = {}
        self.last_rel_thr: Dict[int, int] = {}
        self.write_pub: Dict[int, tuple] = {}  # x -> (t, C_t ver, W_x ver)
        self.write_joined: Dict[int, tuple] = {}  # x -> (t, W_x ver)
        self.read_flush: Dict[int, tuple] = {}  # x -> (t, C_t ver)
        self.lock_pub: Dict[int, tuple] = {}  # l -> (t, C_t ver, L_ℓ ver)
        self.lock_joined: Dict[int, tuple] = {}  # l -> (t, L_ℓ ver)


class ShardedAeroDromeChecker(StreamingChecker):
    """Algorithm 1 with state partitioned across shards.

    Args:
        n_object_shards: Number of shards the variable/lock metadata is
            hashed over (>= 1).
    """

    algorithm = "aerodrome-sharded"

    def __init__(self, n_object_shards: int = 4) -> None:
        super().__init__()
        if n_object_shards < 1:
            raise ValueError("need at least one object shard")
        self.n_object_shards = n_object_shards
        self.stats = SyncStats()
        self._threads = ThreadRegistry()
        self._thread_shards: List[_ThreadShard] = []
        self._object_shards = [
            _ObjectShard(i) for i in range(n_object_shards)
        ]
        self._var_names = Interner()
        self._var_shard: List[_ObjectShard] = []
        self._lock_names = Interner()
        self._lock_shard: List[_ObjectShard] = []

    def reset(self) -> None:
        self.__init__(n_object_shards=self.n_object_shards)

    # -- shard routing -----------------------------------------------------

    def _thread_shard(self, name: str) -> _ThreadShard:
        t = self._threads.index_of(name)
        if t == len(self._thread_shards):
            self._thread_shards.append(_ThreadShard(t))
        return self._thread_shards[t]

    def shard_of(self, target: str) -> _ObjectShard:
        """The object shard owning ``target`` (stable hash routing)."""
        # hash() is salted per process for str; a stable digest keeps
        # shard assignment reproducible across runs.
        digest = sum(target.encode("utf-8"))
        return self._object_shards[digest % self.n_object_shards]

    def _var(self, name: str) -> int:
        """Intern a variable, caching its shard assignment."""
        x = self._var_names.index_of(name)
        if x == len(self._var_shard):
            self._var_shard.append(self.shard_of(name))
        return x

    def _lock(self, name: str) -> int:
        l = self._lock_names.index_of(name)
        if l == len(self._lock_shard):
            self._lock_shard.append(self.shard_of(name))
        return l

    def _local(self) -> None:
        self.stats.local_accesses += 1

    def _remote(self, shard: _ObjectShard) -> None:
        self.stats.remote_accesses += 1
        per = self.stats.per_shard
        per[shard.shard_id] = per.get(shard.shard_id, 0) + 1

    # -- checkAndGet --------------------------------------------------------

    def _make_violation(
        self, me: _ThreadShard, idx: int, site: str
    ) -> Violation:
        return Violation(
            event_idx=idx,
            thread=self._threads.name_of(me.index),
            site=site,
            details="sharded checkAndGet: C⊲_t ⊑ clk with active txn",
        )

    def _check(self, me: _ThreadShard, check_clk: VectorClock) -> bool:
        # The ⊑ check is the O(1) local-component comparison of Appendix
        # C.1 — required for exactness of the hR_x check, and what a
        # distributed implementation would actually ship between shards
        # (a single integer, not the whole vector).
        return (
            me.depth > 0
            and me.begin_clock.get(me.index) <= check_clk.get(me.index)
        )

    # -- handlers ------------------------------------------------------------

    def _read_x(self, me: _ThreadShard, x: int, idx: int) -> Optional[Violation]:
        shard = self._var_shard[x]
        self._remote(shard)
        if shard.last_w_thr.get(x) != me.index:
            write_clock = shard.write_clock.get(x)
            if write_clock is not None:
                if self._check(me, write_clock):
                    me.clock.join(write_clock)
                    return self._make_violation(me, idx, "read")
                memo = shard.write_joined.get(x)
                ver = write_clock.version
                if memo is None or memo[0] != me.index or memo[1] != ver:
                    me.clock.join(write_clock)
                    shard.write_joined[x] = (me.index, ver)
        clock = me.clock
        read_clock = shard.read_clock.get(x)
        if read_clock is None:
            shard.read_clock[x] = clock.copy()
            shard.check_read_clock[x] = clock.zeroed(me.index)
            shard.read_flush[x] = (me.index, clock.version)
        else:
            memo = shard.read_flush.get(x)
            cver = clock.version
            if memo is None or memo[0] != me.index or memo[1] != cver:
                read_clock.join(clock)
                times = clock._times
                i = me.index
                saved = times[i]
                times[i] = 0
                shard.check_read_clock[x].join(clock)
                times[i] = saved
                shard.read_flush[x] = (me.index, cver)
        return None

    def _write_x(self, me: _ThreadShard, x: int, idx: int) -> Optional[Violation]:
        shard = self._var_shard[x]
        self._remote(shard)
        if shard.last_w_thr.get(x) != me.index:
            write_clock = shard.write_clock.get(x)
            if write_clock is not None:
                violation = None
                if self._check(me, write_clock):
                    violation = self._make_violation(me, idx, "write-write")
                memo = shard.write_joined.get(x)
                ver = write_clock.version
                if memo is None or memo[0] != me.index or memo[1] != ver:
                    me.clock.join(write_clock)
                    shard.write_joined[x] = (me.index, ver)
                if violation is not None:
                    return violation
        check_read = shard.check_read_clock.get(x)
        if check_read is not None:
            read_clock = shard.read_clock[x]
            violation = None
            if self._check(me, check_read):
                violation = self._make_violation(me, idx, "write-read")
            me.clock.join(read_clock)
            if violation is not None:
                return violation
        clock = me.clock
        old = shard.write_clock.get(x)
        memo = shard.write_pub.get(x)
        if (
            memo is None
            or old is None
            or memo != (me.index, clock.version, old.version)
        ):
            snap = clock.copy()
            shard.write_clock[x] = snap
            shard.write_pub[x] = (me.index, clock.version, snap.version)
        shard.last_w_thr[x] = me.index
        # Reads before this write are summarized by W_x from now on
        # (W_x ⊒ every R_{u,x} after the joins above, so dropping the
        # read clocks loses no future check).
        shard.read_clock.pop(x, None)
        shard.check_read_clock.pop(x, None)
        shard.read_flush.pop(x, None)
        return None

    def _acquire_x(self, me: _ThreadShard, l: int, idx: int) -> Optional[Violation]:
        shard = self._lock_shard[l]
        self._remote(shard)
        if shard.last_rel_thr.get(l) != me.index:
            lock_clock = shard.lock_clock.get(l)
            if lock_clock is not None:
                violation = None
                if self._check(me, lock_clock):
                    violation = self._make_violation(me, idx, "acquire")
                memo = shard.lock_joined.get(l)
                ver = lock_clock.version
                if memo is None or memo[0] != me.index or memo[1] != ver:
                    me.clock.join(lock_clock)
                    shard.lock_joined[l] = (me.index, ver)
                return violation
        return None

    def _release_x(self, me: _ThreadShard, l: int, idx: int) -> None:
        shard = self._lock_shard[l]
        self._remote(shard)
        clock = me.clock
        old = shard.lock_clock.get(l)
        memo = shard.lock_pub.get(l)
        if (
            memo is None
            or old is None
            or memo != (me.index, clock.version, old.version)
        ):
            snap = clock.copy()
            shard.lock_clock[l] = snap
            shard.lock_pub[l] = (me.index, clock.version, snap.version)
        shard.last_rel_thr[l] = me.index
        return None

    def _fork_x(self, me: _ThreadShard, child: _ThreadShard, idx: int) -> None:
        self.stats.remote_accesses += 1  # another thread's shard
        child.clock.join(me.clock)
        return None

    def _join_x(self, me: _ThreadShard, child: _ThreadShard, idx: int) -> Optional[Violation]:
        self.stats.remote_accesses += 1
        violation = None
        if self._check(me, child.clock):
            violation = self._make_violation(me, idx, "join")
        me.clock.join(child.clock)
        return violation

    def _begin_x(self, me: _ThreadShard, idx: int) -> None:
        me.depth += 1
        if me.depth == 1:
            me.clock.increment(me.index)
            me.begin_clock = me.clock.copy()
        return None

    def _end_x(self, me: _ThreadShard, idx: int) -> Optional[Violation]:
        if me.depth == 0:
            raise ValueError(
                f"end without matching begin at event {idx}; "
                "validate the trace with repro.trace.wellformed first"
            )
        me.depth -= 1
        if me.depth > 0:
            return None
        begin_local = me.begin_clock.get(me.index)
        my_clock = me.clock
        mi = me.index
        stats = self.stats
        # Fan-out 1: other thread shards that saw this transaction.
        for other in self._thread_shards:
            if other is me:
                continue
            stats.remote_accesses += 1
            stats.end_broadcasts += 1
            if begin_local <= other.clock.get(mi):
                violation = None
                if self._check(other, my_clock):
                    violation = self._make_violation(other, idx, "end")
                other.clock.join(my_clock)
                if violation is not None:
                    return violation
        # Fan-out 2: object shards, each updating only clocks after the
        # begin (Algorithm 2 lines 24-30). One broadcast per shard, not
        # per object.
        zeroed = my_clock.zeroed(mi)
        for shard in self._object_shards:
            self._remote(shard)
            stats.end_broadcasts += 1
            for clock in shard.lock_clock.values():
                if begin_local <= clock.get(mi):
                    clock.join(my_clock)
            for clock in shard.write_clock.values():
                if begin_local <= clock.get(mi):
                    clock.join(my_clock)
            for x, clock in shard.read_clock.items():
                if begin_local <= clock.get(mi):
                    clock.join(my_clock)
                    shard.check_read_clock[x].join(zeroed)
        return None

    # -- dispatch ------------------------------------------------------------

    def process(self, event: Event) -> Optional[Violation]:
        """Consume one string event (the adapter over the packed core)."""
        if self.violation is not None:
            raise RuntimeError("checker already found a violation; reset() first")
        me = self._thread_shard(event.thread)
        self._local()
        op = event.op
        violation: Optional[Violation] = None
        if op is Op.READ:
            violation = self._read_x(me, self._var(event.target), event.idx)
        elif op is Op.WRITE:
            violation = self._write_x(me, self._var(event.target), event.idx)
        elif op is Op.ACQUIRE:
            violation = self._acquire_x(me, self._lock(event.target), event.idx)
        elif op is Op.RELEASE:
            violation = self._release_x(me, self._lock(event.target), event.idx)
        elif op is Op.BEGIN:
            violation = self._begin_x(me, event.idx)
        elif op is Op.END:
            violation = self._end_x(me, event.idx)
        elif op is Op.FORK:
            violation = self._fork_x(me, self._thread_shard(event.target), event.idx)
        elif op is Op.JOIN:
            violation = self._join_x(me, self._thread_shard(event.target), event.idx)
        else:  # pragma: no cover - exhaustive over Op
            raise AssertionError(f"unhandled op {op}")
        self.events_processed += 1
        if violation is not None:
            self.violation = violation
        return violation

    def packed_step(self, packed: PackedTrace):
        """Per-op dispatch table over packed records (see base class).

        Namespaces bind lazily — eagerly creating thread shards for
        threads the stream has not reached yet would let the end-event
        fan-out broadcast to them and inflate :attr:`stats` relative to
        the string path, whose accounting this checker promises to
        match exactly.
        """
        dispatch = make_packed_step(
            packed, self._thread_shard, self._var, self._lock,
            self._read_x, self._write_x, self._acquire_x, self._release_x,
            self._fork_x, self._join_x, self._begin_x, self._end_x,
        )
        local = self._local

        def step(op: int, t: int, target: int, idx: int) -> Optional[Violation]:
            local()
            return dispatch(op, t, target, idx)

        return step
