"""Optimized AeroDrome — Algorithms 2 and 3 (Appendix C of the paper).

Three optimizations over the basic Algorithm 1:

1. **Read-clock reduction** (Appendix C.1 / Algorithm 2). Instead of one
   clock ``R_{t,x}`` per (thread, variable) pair, keep two per variable:
   ``R_x = ⊔_u R_{u,x}`` for clock updates and ``hR_x = ⊔_u R_{u,x}[0/u]``
   for violation checks. The check ``∃u≠t. C⊲_t ⊑ R_{u,x}`` becomes
   ``C⊲_t ⊑ hR_x`` *under the local-component invariant*: for event
   timestamps, ``C_{e1} ⊑ C_{e2}`` iff ``C_{e1}(thr(e1)) ≤ C_{e2}(thr(e1))``.
   This implementation therefore performs every ⊑ check as an O(1)
   local-component comparison (which is also what makes the hR_x check
   exact rather than an over-approximation).

2. **Lazy clock updates** (Appendix C.2 / Algorithm 3). A read inside an
   active transaction only records its thread in ``Stale^r_x``; the actual
   ``R_x``/``hR_x`` joins are deferred to the next write of ``x`` or to the
   reader's transaction end, using the reader thread's *current* clock.
   This is sound because any event of a still-active transaction is
   interchangeable for transaction-cycle purposes. Similarly a write only
   marks ``Stale^w_x = ⊤``; readers check against the writer thread's
   current clock until the writer's transaction ends. Accesses *outside*
   any transaction (unary transactions) are flushed eagerly — the lazy
   substitution is only valid within a still-active transaction
   (Algorithm 3 is stated under Section 4.1's assumption that every event
   belongs to a transaction).

3. **Update sets + garbage collection** (Appendix C.2 / Algorithm 3).
   Each thread tracks the variables whose read/write clocks must be
   refreshed when its transaction ends (``UpdateSet^{r,w}_t``), avoiding
   the O(V) scan of Algorithm 1's end handler. A transaction with no
   incoming ⋖Txn edge (``hasIncomingEdge``) can never be part of a cycle,
   so its end event skips all propagation — the vector-clock analog of
   Velodrome's garbage collection.

On top of the paper's optimizations, this module carries the
reproduction's constant-factor machinery (measured in ``BENCH_PR1.json``,
explained in ``docs/PERF.md``):

* **Packed integer clocks** (:mod:`repro.core.intclock`). Every clock is
  one big int, 64 bits per thread lane: joins are branch-free SWAR,
  snapshots (``W_x := C_t``, ``L_ℓ := C_t``, ``C⊲_t := C_t``) are free
  aliasing rebinds, and the incoming-edge test collapses to two int ops.
* **Packed-event dispatch.** :meth:`OptimizedAeroDromeChecker.run_packed`
  consumes a :class:`~repro.trace.packed.PackedTrace` through a per-op
  dispatch loop over dense integer records; the string-event
  :meth:`~OptimizedAeroDromeChecker.process` API survives as a thin
  adapter that interns names and calls the same handlers.
* **Epoch join memos.** Per variable/lock, the exact clock value each
  thread last joined is remembered; a source that has not changed since
  (value equality on immutable ints) is skipped in O(1) — the
  way-memoization idea applied to clock traffic. The ⊑ checks are O(1)
  single-lane compares regardless; only a genuinely new ordering pays a
  full SWAR join.
* **Active-transaction list + lock update sets.** The Algorithm 3
  dependent-registration scan visits only threads with an *open*
  transaction, and end-event lock propagation walks the locks registered
  against the closing transaction (with an O(1) recheck for exactness)
  instead of every lock in the trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..trace.events import Event, Op
from ..trace.packed import PackedTrace
from .checker import StreamingChecker, make_packed_step
from .intclock import (
    LANE_BITS,
    LANE_MASK,
    get as lane_get,
    grow_guard,
    to_vector_clock,
)
from .vector_clock import VectorClock
from .violations import Violation

_SHIFT = LANE_BITS - 1  # guard-bit offset within a lane


class _ThreadState:
    """Per-thread analysis state (C_t, C⊲_t, nesting, update sets).

    ``vc``/``begin_vc`` are packed int clocks; ``begin_local`` caches
    C⊲_t(t), the only component of C⊲_t the O(1) checks ever read.
    """

    __slots__ = (
        "index",
        "name",
        "shift",
        "vc",
        "begin_vc",
        "begin_local",
        "depth",
        "txn_serial",
        "unit",
        "lane_clear",
        "update_reads",
        "update_writes",
        "update_locks",
        "observers",
        "rel_locks",
        "parent_txn",
    )

    def __init__(self, index: int, name: str) -> None:
        self.index = index
        self.name = name
        self.shift = LANE_BITS * index
        #: The lane's unit (the begin increment) and a mask clearing it.
        self.unit = 1 << self.shift
        self.lane_clear = ~(LANE_MASK << self.shift)
        self.vc = self.unit  # C_t = ⊥[1/t]
        self.begin_vc = 0  # C⊲_t = ⊥
        self.begin_local = 0
        self.depth = 0
        #: Serial number of the current/most recent outermost transaction;
        #: used to test whether the forking parent's transaction is alive.
        self.txn_serial = 0
        self.update_reads: Set["_VarState"] = set()
        self.update_writes: Set["_VarState"] = set()
        self.update_locks: Set["_LockState"] = set()
        #: Threads whose clocks may have observed this transaction — a
        #: superset of {u : C_u(t) >= C⊲_t(t)}, maintained at every clock
        #: consumption while this transaction is open and filtered by an
        #: O(1) recheck at the end event. Replaces the all-threads scan
        #: of the end handler. A dict keyed by thread index rather than a
        #: set: insertion order is a pure function of the event stream,
        #: so the packed and string paths report identical violation
        #: attributions (object-hash set order would not).
        self.observers: Dict[int, "_ThreadState"] = {}
        #: Exactly the locks whose lastRelThr is this thread — keeps the
        #: GC end handler's ownership NIL-ing O(own locks), not O(locks).
        self.rel_locks: Set["_LockState"] = set()
        #: (parent thread state, parent txn serial) recorded at fork time,
        #: None when the parent was not inside a transaction.
        self.parent_txn: Optional[Tuple["_ThreadState", int]] = None

    @property
    def active(self) -> bool:
        return self.depth > 0

    def has_active_txn_with_serial(self, serial: int) -> bool:
        return self.depth > 0 and self.txn_serial == serial

    # Cold-path views for tests and expository code.
    @property
    def clock(self) -> VectorClock:
        return to_vector_clock(self.vc)

    @property
    def begin_clock(self) -> VectorClock:
        return to_vector_clock(self.begin_vc)


class _VarState:
    """Per-variable analysis state (W_x, R_x, hR_x, staleness, epochs)."""

    __slots__ = (
        "name",
        "w_vc",
        "last_w_thr",
        "r_vc",
        "hr_vc",
        "stale_readers",
        "stale_write",
        "write_joins",
        "read_joins",
        "read_flush",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.w_vc = 0  # W_x
        self.last_w_thr: Optional[_ThreadState] = None  # lastWThr_x
        self.r_vc = 0  # R_x
        self.hr_vc = 0  # hR_x
        self.stale_readers: Set[_ThreadState] = set()  # Stale^r_x
        self.stale_write = False  # Stale^w_x
        # Epoch memos: thread index -> exact source clock value last
        # joined into that thread (ints are immutable, so value equality
        # certifies the join would be a no-op; see docs/PERF.md).
        self.write_joins: Dict[int, int] = {}
        self.read_joins: Dict[int, int] = {}
        #: thread index -> thread clock value at its last eager (unary)
        #: read flush into R_x/hR_x.
        self.read_flush: Dict[int, int] = {}

    # Cold-path views for tests and expository code.
    @property
    def write_clock(self) -> VectorClock:
        return to_vector_clock(self.w_vc)

    @property
    def read_clock(self) -> VectorClock:
        return to_vector_clock(self.r_vc)

    @property
    def check_read_clock(self) -> VectorClock:
        return to_vector_clock(self.hr_vc)


class _LockState:
    """Per-lock analysis state (L_ℓ, lastRelThr_ℓ, epochs)."""

    __slots__ = ("name", "vc", "last_rel_thr", "joins")

    def __init__(self, name: str) -> None:
        self.name = name
        self.vc = 0  # L_ℓ
        self.last_rel_thr: Optional[_ThreadState] = None
        self.joins: Dict[int, int] = {}

    @property
    def clock(self) -> VectorClock:
        return to_vector_clock(self.vc)


class OptimizedAeroDromeChecker(StreamingChecker):
    """AeroDrome with all Appendix C optimizations (the default checker)."""

    algorithm = "aerodrome"

    def __init__(self) -> None:
        super().__init__()
        self._threads: Dict[str, _ThreadState] = {}
        self._thread_list: List[_ThreadState] = []
        self._vars: Dict[str, _VarState] = {}
        self._locks: Dict[str, _LockState] = {}
        self._lock_list: List[_LockState] = []
        #: Threads with an open outermost transaction, in begin order —
        #: the only candidates dependent registration must visit.
        self._active: List[_ThreadState] = []
        #: SWAR guard mask covering one lane per interned thread.
        self._H = 0

    # -- state helpers -------------------------------------------------------

    def _thread(self, name: str) -> _ThreadState:
        state = self._threads.get(name)
        if state is None:
            state = _ThreadState(len(self._thread_list), name)
            self._threads[name] = state
            self._thread_list.append(state)
            self._H = grow_guard(self._H, len(self._thread_list))
        return state

    def _var(self, name: str) -> _VarState:
        state = self._vars.get(name)
        if state is None:
            state = _VarState(name)
            self._vars[name] = state
        return state

    def _lock(self, name: str) -> _LockState:
        state = self._locks.get(name)
        if state is None:
            state = _LockState(name)
            self._locks[name] = state
            self._lock_list.append(state)
        return state

    def _make_violation(self, ts: _ThreadState, check_vc: int, idx: int, site: str) -> Violation:
        return Violation(
            event_idx=idx,
            thread=ts.name,
            site=site,
            details=(
                f"C⊲_{ts.name} ⊑ {to_vector_clock(check_vc)!r} "
                "with an active transaction"
            ),
        )

    # -- lazy-clock plumbing ---------------------------------------------------

    def _flush_stale_readers(self, xs: _VarState) -> None:
        """Fold pending lazy reads into R_x and hR_x (Alg. 3 lines 43-46).

        The common flush is a thread folding its *own* lazy reads of a
        variable only it touches, where the incoming clock dominates the
        stored one outright — detected by one guarded subtraction and
        resolved by aliasing the immutable source, which in turn lets
        the identity fast paths downstream (``a != src``) fire.
        """
        h = self._H
        r = xs.r_vc
        hr = xs.hr_vc
        for reader in xs.stale_readers:
            b = reader.vc
            if r != b:
                if ((b | h) - r) & h == h:  # incoming ⊒ stored: alias
                    r = b
                else:
                    d = ((r | h) - b) & h
                    if d != h:
                        g = d >> _SHIFT
                        m = (d - g) | d
                        r = b ^ ((r ^ b) & m)
            # hR_x excludes each reader's own component so that a
            # thread's own reads never satisfy its write-time check.
            b &= reader.lane_clear
            if hr != b:
                if ((b | h) - hr) & h == h:
                    hr = b
                else:
                    d = ((hr | h) - b) & h
                    if d != h:
                        g = d >> _SHIFT
                        m = (d - g) | d
                        hr = b ^ ((hr ^ b) & m)
        xs.r_vc = r
        xs.hr_vc = hr
        xs.stale_readers.clear()

    def _register_observer(self, ts: _ThreadState) -> None:
        """Mark ``ts`` as a candidate observer of every active
        transaction its (just joined) clock covers. Runs at the consume
        sites that have no dependent-registration loop of their own
        (acquire, thread join, fork, end propagation)."""
        c = ts.vc
        for u in self._active:
            if u is not ts and u.begin_local <= (c >> u.shift) & LANE_MASK:
                u.observers[ts.index] = ts

    def _register_lock_dependents(self, vc: int, ls: _LockState) -> None:
        """Record ``ls`` with every active transaction the clock just
        published into L_ℓ covers: their end events must refresh L_ℓ.
        The exact seed condition is rechecked in O(1) at end time, so
        this set only needs to be a superset of the locks the scan of
        Algorithm 1 lines 41-42 would visit — and it is, because L_ℓ(u)
        can only reach C⊲_u(u) through a publish that happens while u's
        transaction is open, which is exactly when this runs."""
        for u in self._active:
            if u.begin_local <= (vc >> u.shift) & LANE_MASK:
                u.update_locks.add(ls)

    # -- event handlers ------------------------------------------------------
    #
    # Handlers take resolved state objects plus the event index; both the
    # string adapter (process) and the packed dispatch loop call them.
    # Following the paper's checkAndGet, the clock join is performed even
    # when the check reports a violation — report-and-continue
    # (repro.core.multi) relies on the post-violation state.

    def _read_x(self, ts: _ThreadState, xs: _VarState, idx: int) -> Optional[Violation]:
        writer = xs.last_w_thr
        violation = None
        if writer is not None and writer is not ts:
            # The last write sits in the writer's still-active
            # transaction when stale: its thread clock stands in for W_x.
            src = writer.vc if xs.stale_write else xs.w_vc
            if ts.depth > 0 and ts.begin_local <= (src >> ts.shift) & LANE_MASK:
                violation = self._make_violation(ts, src, idx, "read")
            memo = xs.write_joins
            ti = ts.index
            if memo.get(ti) != src:
                memo[ti] = src
                a = ts.vc
                if a != src:
                    h = self._H
                    d = ((a | h) - src) & h
                    if d != h:
                        g = d >> _SHIFT
                        m = (d - g) | d
                        ts.vc = src ^ ((a ^ src) & m)
            if violation is not None:
                return violation
        if ts.depth > 0:
            xs.stale_readers.add(ts)
        else:
            # Unary read: flush eagerly — the lazy substitution of the
            # thread clock for the event clock is only valid while the
            # access's transaction is still the thread's active one.
            c = ts.vc
            memo = xs.read_flush
            ti = ts.index
            if memo.get(ti) != c:
                memo[ti] = c
                h = self._H
                a = xs.r_vc
                if a != c:
                    if ((c | h) - a) & h == h:  # fresh clock ⊒ R_x: alias
                        xs.r_vc = c
                    else:
                        d = ((a | h) - c) & h
                        if d != h:
                            g = d >> _SHIFT
                            m = (d - g) | d
                            xs.r_vc = c ^ ((a ^ c) & m)
                b = c & ts.lane_clear
                a = xs.hr_vc
                if a != b:
                    if ((b | h) - a) & h == h:
                        xs.hr_vc = b
                    else:
                        d = ((a | h) - b) & h
                        if d != h:
                            g = d >> _SHIFT
                            m = (d - g) | d
                            xs.hr_vc = b ^ ((a ^ b) & m)
        # Dependent registration (Alg. 3 lines 34-36), inlined: only
        # active transactions qualify, and the coverage condition doubles
        # as observer bookkeeping for the end scan.
        c = ts.vc
        for u in self._active:
            if u is ts:  # a thread always covers its own open begin
                u.update_reads.add(xs)
            elif u.begin_local <= (c >> u.shift) & LANE_MASK:
                u.update_reads.add(xs)
                u.observers[ts.index] = ts
        return None

    def _write_x(self, ts: _ThreadState, xs: _VarState, idx: int) -> Optional[Violation]:
        writer = xs.last_w_thr
        ti = ts.index
        if writer is not None and writer is not ts:
            src = writer.vc if xs.stale_write else xs.w_vc
            violation = None
            if ts.depth > 0 and ts.begin_local <= (src >> ts.shift) & LANE_MASK:
                violation = self._make_violation(ts, src, idx, "write-write")
            memo = xs.write_joins
            if memo.get(ti) != src:
                memo[ti] = src
                a = ts.vc
                if a != src:
                    h = self._H
                    d = ((a | h) - src) & h
                    if d != h:
                        g = d >> _SHIFT
                        m = (d - g) | d
                        ts.vc = src ^ ((a ^ src) & m)
            if violation is not None:
                return violation
        if xs.stale_readers:
            self._flush_stale_readers(xs)
        violation = None
        if ts.depth > 0 and ts.begin_local <= (xs.hr_vc >> ts.shift) & LANE_MASK:
            violation = self._make_violation(ts, xs.hr_vc, idx, "write-read")
        src = xs.r_vc
        memo = xs.read_joins
        if memo.get(ti) != src:
            memo[ti] = src
            a = ts.vc
            if a != src:
                h = self._H
                if ((src | h) - a) & h == h:  # R_x ⊒ C_t (post-flush): alias
                    ts.vc = src
                else:
                    d = ((a | h) - src) & h
                    if d != h:
                        g = d >> _SHIFT
                        m = (d - g) | d
                        ts.vc = src ^ ((a ^ src) & m)
        if violation is not None:
            return violation
        if ts.depth > 0:
            xs.stale_write = True
        else:
            # Unary write: publish the timestamp eagerly — an aliasing
            # rebind; int clocks are immutable, so no copy, no epoch.
            xs.w_vc = ts.vc
            xs.stale_write = False
        xs.last_w_thr = ts
        # Dependent registration (Alg. 3 lines 50-52), inlined as above.
        c = ts.vc
        for u in self._active:
            if u is ts:  # a thread always covers its own open begin
                u.update_writes.add(xs)
            elif u.begin_local <= (c >> u.shift) & LANE_MASK:
                u.update_writes.add(xs)
                u.observers[ts.index] = ts
        return None

    def _acquire_x(self, ts: _ThreadState, ls: _LockState, idx: int) -> Optional[Violation]:
        # Note: after garbage collection lastRelThr_ℓ is NIL but L_ℓ still
        # holds the (eagerly maintained) last-release timestamp, and the
        # check must run — NIL ≠ t in the paper's line 18.
        if ls.last_rel_thr is not ts:
            src = ls.vc
            violation = None
            if ts.depth > 0 and ts.begin_local <= (src >> ts.shift) & LANE_MASK:
                violation = self._make_violation(ts, src, idx, "acquire")
            memo = ls.joins
            ti = ts.index
            if memo.get(ti) != src:
                memo[ti] = src
                a = ts.vc
                if a != src:
                    h = self._H
                    d = ((a | h) - src) & h
                    if d != h:
                        g = d >> _SHIFT
                        m = (d - g) | d
                        ts.vc = src ^ ((a ^ src) & m)
            self._register_observer(ts)
            return violation
        return None

    def _release_x(self, ts: _ThreadState, ls: _LockState, idx: int) -> None:
        vc = ts.vc
        ls.vc = vc  # aliasing snapshot: L_ℓ := C_t
        prev = ls.last_rel_thr
        if prev is not ts:
            if prev is not None:
                prev.rel_locks.discard(ls)
            ls.last_rel_thr = ts
            ts.rel_locks.add(ls)
        self._register_lock_dependents(vc, ls)
        return None

    def _fork_x(self, ts: _ThreadState, child: _ThreadState, idx: int) -> None:
        a = child.vc
        b = ts.vc
        if a != b:
            h = self._H
            d = ((a | h) - b) & h
            if d != h:
                g = d >> _SHIFT
                m = (d - g) | d
                child.vc = b ^ ((a ^ b) & m)
        self._register_observer(child)
        if ts.depth > 0:
            child.parent_txn = (ts, ts.txn_serial)
        return None

    def _join_x(self, ts: _ThreadState, child: _ThreadState, idx: int) -> Optional[Violation]:
        src = child.vc
        violation = None
        if ts.depth > 0 and ts.begin_local <= (src >> ts.shift) & LANE_MASK:
            violation = self._make_violation(ts, src, idx, "join")
        a = ts.vc
        if a != src:
            h = self._H
            d = ((a | h) - src) & h
            if d != h:
                g = d >> _SHIFT
                m = (d - g) | d
                ts.vc = src ^ ((a ^ src) & m)
        self._register_observer(ts)
        return violation

    def _begin_x(self, ts: _ThreadState, idx: int) -> None:
        depth = ts.depth
        ts.depth = depth + 1
        if depth > 0:
            return None  # nested begin
        ts.txn_serial += 1
        c = ts.vc + ts.unit
        ts.vc = c
        ts.begin_vc = c  # aliasing snapshot: C⊲_t := C_t
        ts.begin_local = (c >> ts.shift) & LANE_MASK
        self._active.append(ts)
        return None

    def _has_incoming_edge(self, ts: _ThreadState) -> bool:
        """Whether the ending transaction may participate in a future cycle.

        The paper's Algorithm 3 tests whether the forking parent's
        transaction is still alive or some non-local clock component grew
        since the begin event (``C⊲_t[0/t] ≠ C_t[0/t]``). That test alone
        is *insufficient*: clock components count transactions, so
        re-observing a long-lived, still-open transaction (whose begin
        was already visible before this transaction started) grows
        nothing, yet creates a real incoming ⋖Txn edge — garbage
        collecting here loses genuine violations (see
        ``tests/test_gc_soundness.py`` for the counterexample, and
        EXPERIMENTS.md §Deviations). We therefore additionally keep the
        transaction whenever its final clock covers the begin of any
        still-active transaction of another thread: any cycle detected
        later must route through a transaction that was active
        throughout this window, and its begin timestamp would already be
        ⊑ ``C_t`` here.
        """
        if ts.parent_txn is not None:
            parent, serial = ts.parent_txn
            if parent.has_active_txn_with_serial(serial):
                return True
        now = ts.vc
        # C⊲_t and C_t can only differ outside t's own lane (the local
        # component moves at begins alone), so one xor+mask decides the
        # "some component grew" test for all threads at once.
        if (ts.begin_vc ^ now) & ts.lane_clear:
            return True
        for u in self._active:
            if u is not ts and u.begin_local <= (now >> u.shift) & LANE_MASK:
                return True
        return False

    def _end_x(self, ts: _ThreadState, idx: int) -> Optional[Violation]:
        depth = ts.depth
        if depth == 0:
            raise ValueError(
                f"end without matching begin at event {idx}; "
                "validate the trace with repro.trace.wellformed first"
            )
        if depth > 1:
            ts.depth = depth - 1
            return None  # nested end

        # _has_incoming_edge, inlined: the xor test is two int ops and
        # decides the common propagate case without a method call.
        if (
            (ts.begin_vc ^ ts.vc) & ts.lane_clear
            or self._has_incoming_edge(ts)
        ):
            violation = self._end_propagate(ts, idx)
            if violation is not None:
                return violation
        else:
            self._end_garbage_collect(ts)
        ts.depth = 0
        ts.observers = {}
        self._active.remove(ts)
        # The fork-edge from the parent is consumed by the first
        # transaction; subsequent transactions of this thread are related
        # to the parent only through the clocks.
        ts.parent_txn = None
        return None

    def _end_propagate(self, ts: _ThreadState, idx: int) -> Optional[Violation]:
        """Normal end handling (Alg. 3 lines 58-73)."""
        clock = ts.vc
        shift = ts.shift
        begin_local = ts.begin_local
        h = self._H
        # Only threads that consumed a clock covering this transaction
        # can satisfy the seed scan's condition; observers is a superset
        # of those, and the O(1) lane recheck filters it exactly.
        for u in list(ts.observers.values()):
            if u is not ts and begin_local <= (u.vc >> shift) & LANE_MASK:
                violation = None
                if u.depth > 0 and u.begin_local <= (clock >> u.shift) & LANE_MASK:
                    violation = self._make_violation(u, clock, idx, "end")
                a = u.vc
                if a != clock:
                    d = ((a | h) - clock) & h
                    if d != h:
                        g = d >> _SHIFT
                        m = (d - g) | d
                        u.vc = clock ^ ((a ^ clock) & m)
                    self._register_observer(u)
                if violation is not None:
                    return violation
        if ts.update_locks:
            for ls in ts.update_locks:
                # O(1) recheck of the seed condition: a later release may
                # have replaced L_ℓ with a clock from before this begin.
                a = ls.vc
                if begin_local <= (a >> shift) & LANE_MASK and a != clock:
                    if ((clock | h) - a) & h == h:  # clock ⊒ L_ℓ: alias
                        ls.vc = clock
                    else:
                        d = ((a | h) - clock) & h
                        if d != h:
                            g = d >> _SHIFT
                            m = (d - g) | d
                            ls.vc = clock ^ ((a ^ clock) & m)
                    self._register_lock_dependents(ls.vc, ls)
            ts.update_locks = set()
        for xs in ts.update_writes:
            if not xs.stale_write or xs.last_w_thr is ts:
                a = xs.w_vc
                if a != clock:
                    if ((clock | h) - a) & h == h:  # clock ⊒ W_x: alias
                        xs.w_vc = clock
                    else:
                        d = ((a | h) - clock) & h
                        if d != h:
                            g = d >> _SHIFT
                            m = (d - g) | d
                            xs.w_vc = clock ^ ((a ^ clock) & m)
            if xs.last_w_thr is ts:
                xs.stale_write = False
        ts.update_writes = set()
        contrib = clock & ts.lane_clear
        for xs in ts.update_reads:
            a = xs.r_vc
            if a != clock:
                if ((clock | h) - a) & h == h:  # clock ⊒ R_x: alias
                    xs.r_vc = clock
                else:
                    d = ((a | h) - clock) & h
                    if d != h:
                        g = d >> _SHIFT
                        m = (d - g) | d
                        xs.r_vc = clock ^ ((a ^ clock) & m)
            a = xs.hr_vc
            if a != contrib:
                if ((contrib | h) - a) & h == h:
                    xs.hr_vc = contrib
                else:
                    d = ((a | h) - contrib) & h
                    if d != h:
                        g = d >> _SHIFT
                        m = (d - g) | d
                        xs.hr_vc = contrib ^ ((a ^ contrib) & m)
            xs.stale_readers.discard(ts)
        ts.update_reads = set()
        return None

    def _end_garbage_collect(self, ts: _ThreadState) -> None:
        """GC end handling (Alg. 3 lines 75-86): the transaction has no
        incoming edge, so it can never be on a cycle — drop its pending
        lazy updates instead of propagating them."""
        for xs in ts.update_reads:
            xs.stale_readers.discard(ts)
        ts.update_reads = set()
        for xs in ts.update_writes:
            if xs.last_w_thr is ts:
                xs.stale_write = False
                xs.last_w_thr = None
        ts.update_writes = set()
        # Lock ownership must be cleared on *every* lock this thread last
        # released, not just the registered ones: a unary release is not
        # in the update set, yet NIL-ing it here is what forces the
        # acquire-side check after GC (the paper's NIL ≠ t). rel_locks
        # tracks exactly those locks.
        for ls in ts.rel_locks:
            ls.last_rel_thr = None
        ts.rel_locks.clear()
        ts.update_locks = set()

    def state_summary(self) -> Dict[str, int]:
        """Clock counts after the Algorithm 2 reduction: three clocks
        per variable (W/R/hR) regardless of thread count."""
        return {
            "events_processed": self.events_processed,
            "thread_clocks": 2 * len(self._thread_list),
            "lock_clocks": len(self._locks),
            "write_clocks": len(self._vars),
            "read_clocks": 2 * len(self._vars),  # R_x and hR_x
            "total_clocks": 2 * len(self._thread_list)
            + len(self._locks)
            + 3 * len(self._vars),
        }

    # -- dispatch ------------------------------------------------------------

    def process(self, event: Event) -> Optional[Violation]:
        """Consume one string event (see :class:`StreamingChecker`).

        This is the compatibility adapter over the packed core: it
        interns the event's names and calls the same per-op handlers the
        packed dispatch loop uses.
        """
        if self.violation is not None:
            raise RuntimeError("checker already found a violation; reset() first")
        ts = self._thread(event.thread)
        op = event.op
        violation: Optional[Violation]
        if op is Op.READ:
            violation = self._read_x(ts, self._var(event.target), event.idx)
        elif op is Op.WRITE:
            violation = self._write_x(ts, self._var(event.target), event.idx)
        elif op is Op.ACQUIRE:
            violation = self._acquire_x(ts, self._lock(event.target), event.idx)
        elif op is Op.RELEASE:
            violation = self._release_x(ts, self._lock(event.target), event.idx)
        elif op is Op.BEGIN:
            violation = self._begin_x(ts, event.idx)
        elif op is Op.END:
            violation = self._end_x(ts, event.idx)
        elif op is Op.FORK:
            violation = self._fork_x(ts, self._thread(event.target), event.idx)
        elif op is Op.JOIN:
            violation = self._join_x(ts, self._thread(event.target), event.idx)
        else:  # pragma: no cover - exhaustive over Op
            raise AssertionError(f"unhandled op {op}")
        self.events_processed += 1
        if violation is not None:
            self.violation = violation
        return violation

    def packed_step(self, packed: PackedTrace):
        """Per-op dispatch table over packed records (see base class)."""
        return make_packed_step(
            packed, self._thread, self._var, self._lock,
            self._read_x, self._write_x, self._acquire_x, self._release_x,
            self._fork_x, self._join_x, self._begin_x, self._end_x,
        )

    def run_packed(self, packed: PackedTrace, start: int = 0):
        """The packed fast loop: dense records in, one branch per event.

        Same contract as the base implementation; the four hot ops
        (read/write/begin/end) are dispatched first, and bookkeeping
        (events_processed, the violation verdict) is batched around the
        loop instead of per event.
        """
        if self.violation is not None:
            raise RuntimeError("checker already found a violation; reset() first")
        # Threads are bound eagerly (their lane layout fixes the SWAR
        # guard mask before the loop); variables and locks are bound
        # lazily so a run that stops early — a violation a few hundred
        # events in — never pays for the namespaces it did not reach.
        tmap = [self._thread(name) for name in packed.thread_names]
        var_names = packed.variable_names
        lock_names = packed.lock_names
        vmap: List[Optional[_VarState]] = [None] * len(var_names)
        lmap: List[Optional[_LockState]] = [None] * len(lock_names)
        var_intern = self._var
        lock_intern = self._lock
        threads, ops, targets = packed.arrays()
        n = len(ops)
        if start:
            threads = threads[start:]
            ops = ops[start:]
            targets = targets[start:]
        read = self._read_x
        write = self._write_x
        acquire = self._acquire_x
        release = self._release_x
        fork = self._fork_x
        join = self._join_x
        begin = self._begin_x
        end = self._end_x
        active_append = self._active.append
        violation: Optional[Violation] = None
        processed = n - start
        for i, op, t, target in zip(range(start, n), ops, threads, targets):
            ts = tmap[t]
            if op == 0:
                xs = vmap[target]
                if xs is None:
                    xs = vmap[target] = var_intern(var_names[target])
                violation = read(ts, xs, i)
            elif op == 1:
                xs = vmap[target]
                if xs is None:
                    xs = vmap[target] = var_intern(var_names[target])
                violation = write(ts, xs, i)
            elif op == 6:
                # begin, inlined (the second-most frequent op after the
                # accesses in transaction-dense workloads)
                depth = ts.depth
                ts.depth = depth + 1
                if depth == 0:
                    ts.txn_serial += 1
                    c = ts.vc + ts.unit
                    ts.vc = c
                    ts.begin_vc = c
                    ts.begin_local = (c >> ts.shift) & LANE_MASK
                    active_append(ts)
                continue
            elif op == 7:
                violation = end(ts, i)
            elif op == 2:
                ls = lmap[target]
                if ls is None:
                    ls = lmap[target] = lock_intern(lock_names[target])
                violation = acquire(ts, ls, i)
            elif op == 3:
                ls = lmap[target]
                if ls is None:
                    ls = lmap[target] = lock_intern(lock_names[target])
                release(ts, ls, i)
                continue
            elif op == 4:
                fork(ts, tmap[target], i)
                continue
            else:
                violation = join(ts, tmap[target], i)
            if violation is not None:
                processed = i - start + 1
                break
        self.events_processed += processed
        if violation is not None:
            self.violation = violation
        return self.result()
