"""Report-and-continue: streaming *all* violations instead of the first.

The paper's algorithms (and our faithful implementations) exit at the
first violation — that is what the complexity claims are stated over.
Deployed monitors usually want more: keep watching and report each
offending access, the way FastTrack keeps reporting races after the
first. This module provides that mode as a thin generator over the
shared session machinery: the actual report-and-continue bookkeeping
(verdict clearing, dedupe muting, packed per-op dispatch) lives in one
place — :class:`repro.api.analysis.CheckerAnalysis` with
``mode="report_all"`` — and is exactly what a
:class:`repro.api.Session` co-runs with other analyses.

Semantics and caveats, stated precisely:

* The **first** yielded violation is exactly the violation the wrapped
  checker reports — same event, same site.
* Subsequent reports are *best-effort diagnostics*: after a violation
  the checker's state is the state the paper's algorithm would have
  exited with, and we simply clear the verdict flag and keep feeding
  events. Later checks that fire indicate further events entangled in
  (possibly the same) transaction cycles; they are real ⋖E-path hits in
  that state, but the one-to-one correspondence with distinct witness
  cycles is not preserved. Velodrome's original paper handles this the
  same way (it "aborts" the offending transaction and moves on).
* De-duplication: by default at most one report per (thread, site)
  pair per open transaction generation is *not* enforced; pass
  ``dedupe=True`` to suppress repeats of the same (thread, site) until
  that thread's next transaction boundary.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from ..trace.events import Event
from ..trace.packed import PackedTrace
from .violations import Violation


def violation_stream(
    events: Iterable[Event],
    algorithm: str = "aerodrome",
    dedupe: bool = False,
) -> Iterator[Violation]:
    """Yield every violation a checker reports over ``events``.

    Args:
        events: The trace (or any event iterable). A
            :class:`~repro.trace.packed.PackedTrace` is consumed through
            the checker's packed dispatch table without reconstructing
            events.
        algorithm: Registry name of the underlying checker.
        dedupe: Suppress repeated (thread, site) reports until the
            reporting thread crosses its next begin/end boundary.

    Yields:
        :class:`Violation` objects in stream order, as they are found
        (the stream is lazy; abandon it to stop early).
    """
    from ..api.analysis import CheckerAnalysis, TraceMeta

    analysis = CheckerAnalysis(algorithm, mode="report_all", dedupe=dedupe)
    try:
        total: Optional[int] = len(events)  # type: ignore[arg-type]
    except TypeError:
        total = None
    packed = isinstance(events, PackedTrace)
    analysis.begin(
        TraceMeta(
            name=getattr(events, "name", "trace"),
            events=total,
            packed=packed,
            source=events if total is not None else None,
        )
    )
    mark = 0
    if packed:
        step = analysis.bind_packed(events)
        threads, ops, targets = events.arrays()
        for i in range(len(ops)):
            step(ops[i], threads[i], targets[i], i)
            if len(analysis.violations) > mark:
                yield from analysis.violations[mark:]
                mark = len(analysis.violations)
    else:
        step = analysis.step
        for event in events:
            step(event)
            if len(analysis.violations) > mark:
                yield from analysis.violations[mark:]
                mark = len(analysis.violations)


def find_all_violations(
    events: Iterable[Event],
    algorithm: str = "aerodrome",
    limit: Optional[int] = None,
    dedupe: bool = False,
) -> List[Violation]:
    """Collect violations from :func:`violation_stream` (up to ``limit``)."""
    violations: List[Violation] = []
    for violation in violation_stream(events, algorithm=algorithm, dedupe=dedupe):
        violations.append(violation)
        if limit is not None and len(violations) >= limit:
            break
    return violations
