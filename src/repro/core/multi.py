"""Report-and-continue: streaming *all* violations instead of the first.

The paper's algorithms (and our faithful implementations) exit at the
first violation — that is what the complexity claims are stated over.
Deployed monitors usually want more: keep watching and report each
offending access, the way FastTrack keeps reporting races after the
first. This module provides that mode as a wrapper, leaving the
faithful checkers untouched.

Semantics and caveats, stated precisely:

* The **first** yielded violation is exactly the violation the wrapped
  checker reports — same event, same site.
* Subsequent reports are *best-effort diagnostics*: after a violation
  the checker's state is the state the paper's algorithm would have
  exited with, and we simply clear the verdict flag and keep feeding
  events. Later checks that fire indicate further events entangled in
  (possibly the same) transaction cycles; they are real ⋖E-path hits in
  that state, but the one-to-one correspondence with distinct witness
  cycles is not preserved. Velodrome's original paper handles this the
  same way (it "aborts" the offending transaction and moves on).
* De-duplication: by default at most one report per (thread, site)
  pair per open transaction generation is *not* enforced; pass
  ``dedupe=True`` to suppress repeats of the same (thread, site) until
  that thread's next transaction boundary.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set, Tuple

from ..trace.events import Event, Op
from ..trace.packed import PackedTrace
from .checker import make_checker
from .violations import Violation


def violation_stream(
    events: Iterable[Event],
    algorithm: str = "aerodrome",
    dedupe: bool = False,
) -> Iterator[Violation]:
    """Yield every violation a checker reports over ``events``.

    Args:
        events: The trace (or any event iterable). A
            :class:`~repro.trace.packed.PackedTrace` is consumed through
            the checker's packed dispatch table without reconstructing
            events.
        algorithm: Registry name of the underlying checker.
        dedupe: Suppress repeated (thread, site) reports until the
            reporting thread crosses its next begin/end boundary.

    Yields:
        :class:`Violation` objects in stream order.
    """
    if isinstance(events, PackedTrace):
        yield from _packed_violation_stream(events, algorithm, dedupe)
        return
    checker = make_checker(algorithm)
    muted: Set[Tuple[str, str]] = set()
    for event in events:
        if dedupe and event.op in (Op.BEGIN, Op.END):
            muted = {key for key in muted if key[0] != event.thread}
        violation = checker.process(event)
        if violation is not None:
            checker.violation = None  # report-and-continue
            key = (violation.thread, violation.site)
            if dedupe:
                if key in muted:
                    continue
                muted.add(key)
            yield violation


def _packed_violation_stream(
    packed: PackedTrace, algorithm: str, dedupe: bool
) -> Iterator[Violation]:
    """Report-and-continue over packed records.

    Same semantics as the string loop; the fast checkers' packed steps
    leave :attr:`violation` untouched, so clearing it is a no-op there
    and matches the string path for fallback checkers.
    """
    checker = make_checker(algorithm)
    step = checker.packed_step(packed)
    threads, ops, targets = packed.arrays()
    thread_names = packed.thread_names
    muted: Set[Tuple[str, str]] = set()
    begin_code, end_code = int(Op.BEGIN), int(Op.END)
    for i in range(len(ops)):
        op = ops[i]
        if dedupe and (op == begin_code or op == end_code):
            name = thread_names[threads[i]]
            muted = {key for key in muted if key[0] != name}
        violation = step(op, threads[i], targets[i], i)
        if violation is not None:
            checker.violation = None  # report-and-continue
            key = (violation.thread, violation.site)
            if dedupe:
                if key in muted:
                    continue
                muted.add(key)
            yield violation


def find_all_violations(
    events: Iterable[Event],
    algorithm: str = "aerodrome",
    limit: Optional[int] = None,
    dedupe: bool = False,
) -> List[Violation]:
    """Collect violations from :func:`violation_stream` (up to ``limit``)."""
    violations: List[Violation] = []
    for violation in violation_stream(events, algorithm=algorithm, dedupe=dedupe):
        violations.append(violation)
        if limit is not None and len(violations) >= limit:
            break
    return violations
