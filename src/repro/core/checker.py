"""Streaming checker interface and the ``check_trace`` facade."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterable, Optional

from ..trace.events import Event
from ..trace.packed import PackedTrace
from .violations import AtomicityViolationError, CheckResult, Violation


class StreamingChecker(ABC):
    """Base class for single-pass conflict-serializability checkers.

    Subclasses implement :meth:`process`; callers either stream events in
    (online setting) or use :meth:`run` over a whole trace. All checkers
    stop at the first violation, as the paper's algorithms do.

    Attributes:
        violation: The first violation found, or ``None`` so far.
        events_processed: Number of events consumed.
    """

    #: Registry name of the algorithm (also used in reports).
    algorithm: str = "abstract"

    def __init__(self) -> None:
        self.violation: Optional[Violation] = None
        self.events_processed: int = 0

    @abstractmethod
    def process(self, event: Event) -> Optional[Violation]:
        """Consume one event; return a violation iff this event closes one."""

    def run(self, events: Iterable[Event]) -> CheckResult:
        """Consume events until exhaustion or the first violation.

        Packed traces are routed to :meth:`run_packed`, the dense
        integer fast path; anything else is consumed event by event.
        """
        if isinstance(events, PackedTrace):
            return self.run_packed(events)
        for event in events:
            if self.process(event) is not None:
                break
        return self.result()

    def packed_step(self, packed: PackedTrace) -> Callable[[int, int, int, int], Optional[Violation]]:
        """A per-event step function over ``packed``'s integer records.

        The returned callable ``step(op, thread, target, idx)`` consumes
        one packed event and returns its violation, if any. Checkers
        with a packed fast path override this with a per-op dispatch
        table over dense state; those fast steps do **not** maintain
        :attr:`violation` / :attr:`events_processed` — the driving loop
        (:meth:`run_packed`, or report-and-continue in
        :mod:`repro.core.multi`) owns that bookkeeping. This generic
        fallback reconstructs events and delegates to :meth:`process`,
        which keeps its usual bookkeeping.
        """
        event_at = packed.event_at
        process = self.process

        def step(op: int, t: int, target: int, idx: int) -> Optional[Violation]:
            return process(event_at(idx))

        return step

    def run_packed(self, packed: PackedTrace, start: int = 0) -> CheckResult:
        """Consume a :class:`~repro.trace.packed.PackedTrace` from
        ``start`` until exhaustion or the first violation."""
        if self.violation is not None:
            raise RuntimeError("checker already found a violation; reset() first")
        step = self.packed_step(packed)
        threads, ops, targets = packed.arrays()
        n = len(ops)
        counted_before = self.events_processed
        i = start
        violation: Optional[Violation] = None
        while i < n:
            violation = step(ops[i], threads[i], targets[i], i)
            i += 1
            if violation is not None:
                break
        if self.events_processed == counted_before:
            # Fast steps leave the counter to us; the generic fallback
            # (via process) already counted each event.
            self.events_processed += i - start
        if violation is not None:
            self.violation = violation
        return self.result()

    def result(self) -> CheckResult:
        """The verdict so far as a :class:`CheckResult`."""
        return CheckResult(
            algorithm=self.algorithm,
            violation=self.violation,
            events_processed=self.events_processed,
        )

    def reset(self) -> None:
        """Restore the initial state (forget all clocks and the verdict)."""
        self.__init__()  # type: ignore[misc]

    def state_summary(self) -> Dict[str, int]:
        """Live analysis-state size, in algorithm-specific units.

        Checkers override this to expose what Theorem 4 bounds — clock
        counts for the vector-clock algorithms, node/edge counts for
        the graph-based ones. The base implementation reports only the
        stream position. Used by :mod:`repro.bench.memory` to measure
        state growth along a trace.
        """
        return {"events_processed": self.events_processed}


def lazy_binder(names, intern) -> Callable[[int], object]:
    """A packed-namespace resolver: index -> interned checker state.

    Resolution is lazy and cached, so a run that stops early (or a
    report-and-continue stream over a violating prefix) never interns
    names — or, for the sharded checker, creates thread shards that
    would skew its access accounting — for events it did not reach.

    ``names`` may grow after binding: an incremental session
    (:meth:`repro.api.session.Session.feed`) keeps appending to the
    shared interner tables mid-stream, so the cache is resized on
    demand rather than fixed at bind time.
    """
    cache: list = [None] * len(names)

    def of(index: int):
        try:
            state = cache[index]
        except IndexError:
            cache.extend([None] * (len(names) - len(cache)))
            state = cache[index]
        if state is None:
            state = cache[index] = intern(names[index])
        return state

    return of


def make_packed_step(
    packed: PackedTrace,
    thread_intern,
    var_intern,
    lock_intern,
    read, write, acquire, release, fork, join, begin, end,
):
    """Build the per-op dispatch table every packed checker shares.

    The eight handlers receive ``(thread_state, target_state, idx)``
    with states resolved through the checker's own interners — whatever
    those interners return (dense ints for the basic checker, state
    objects elsewhere). Checkers pass their bound per-op methods; only
    the deliberately inlined hot loops (e.g. the optimized checker's
    ``run_packed``) bypass this.
    """
    thread_of = lazy_binder(packed.thread_names, thread_intern)
    var_of = lazy_binder(packed.variable_names, var_intern)
    lock_of = lazy_binder(packed.lock_names, lock_intern)
    handlers = (
        lambda t, v, i: read(thread_of(t), var_of(v), i),       # Op.READ
        lambda t, v, i: write(thread_of(t), var_of(v), i),      # Op.WRITE
        lambda t, l, i: acquire(thread_of(t), lock_of(l), i),   # Op.ACQUIRE
        lambda t, l, i: release(thread_of(t), lock_of(l), i),   # Op.RELEASE
        lambda t, u, i: fork(thread_of(t), thread_of(u), i),    # Op.FORK
        lambda t, u, i: join(thread_of(t), thread_of(u), i),    # Op.JOIN
        lambda t, _l, i: begin(thread_of(t), i),                # Op.BEGIN
        lambda t, _l, i: end(thread_of(t), i),                  # Op.END
    )

    def step(op: int, t: int, target: int, idx: int) -> Optional[Violation]:
        return handlers[op](t, target, idx)

    return step


# ---------------------------------------------------------------------------
# Deprecated facade.
#
# The registry and the check facade moved to :mod:`repro.api` (PR 3's
# unified analysis-session front door). The names below keep every old
# caller working by delegating there, with a DeprecationWarning.
# ---------------------------------------------------------------------------


def _registry() -> Dict[str, Callable[[], StreamingChecker]]:
    # Kept (without a warning) because a few tests and downstreams poke
    # at it; the authoritative table now lives in repro.api.registry.
    from ..api.registry import _checker_factories

    return _checker_factories()


def _deprecated(old: str, new: str) -> None:
    import warnings

    warnings.warn(
        f"repro.core.checker.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def available_algorithms() -> list:
    """Names accepted by :func:`check_trace` and the CLI.

    .. deprecated:: 1.1
        Use :func:`repro.api.checker_names` (checkers only) or
        :func:`repro.api.available_analyses` (everything).
    """
    _deprecated("available_algorithms", "repro.api.checker_names")
    from ..api.registry import checker_names

    return checker_names()


def make_checker(algorithm: str = "aerodrome") -> StreamingChecker:
    """Instantiate a fresh checker by algorithm name.

    .. deprecated:: 1.1
        Use :func:`repro.api.make_checker`.
    """
    _deprecated("make_checker", "repro.api.make_checker")
    from ..api.registry import make_checker as api_make_checker

    return api_make_checker(algorithm)


def check_trace(
    events: Iterable[Event],
    algorithm: str = "aerodrome",
    raise_on_violation: bool = False,
) -> CheckResult:
    """Check a trace (or any event stream) for atomicity violations.

    .. deprecated:: 1.1
        Use :func:`repro.api.check` (same signature and return), or a
        :class:`repro.api.Session` to co-run several analyses on one
        ingest. This facade delegates to ``repro.api.check``.

    Args:
        events: A :class:`~repro.trace.trace.Trace` or any iterable of
            events.
        algorithm: One of :func:`available_algorithms` (default: the
            optimized AeroDrome).
        raise_on_violation: If ``True``, raise
            :class:`AtomicityViolationError` instead of returning a
            violating result.

    Returns:
        The :class:`CheckResult` verdict.
    """
    _deprecated("check_trace", "repro.api.check")
    from ..api.session import check

    return check(
        events, algorithm=algorithm, raise_on_violation=raise_on_violation
    )
