"""Streaming checker interface and the ``check_trace`` facade."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterable, Optional

from ..trace.events import Event
from .violations import AtomicityViolationError, CheckResult, Violation


class StreamingChecker(ABC):
    """Base class for single-pass conflict-serializability checkers.

    Subclasses implement :meth:`process`; callers either stream events in
    (online setting) or use :meth:`run` over a whole trace. All checkers
    stop at the first violation, as the paper's algorithms do.

    Attributes:
        violation: The first violation found, or ``None`` so far.
        events_processed: Number of events consumed.
    """

    #: Registry name of the algorithm (also used in reports).
    algorithm: str = "abstract"

    def __init__(self) -> None:
        self.violation: Optional[Violation] = None
        self.events_processed: int = 0

    @abstractmethod
    def process(self, event: Event) -> Optional[Violation]:
        """Consume one event; return a violation iff this event closes one."""

    def run(self, events: Iterable[Event]) -> CheckResult:
        """Consume events until exhaustion or the first violation."""
        for event in events:
            if self.process(event) is not None:
                break
        return self.result()

    def result(self) -> CheckResult:
        """The verdict so far as a :class:`CheckResult`."""
        return CheckResult(
            algorithm=self.algorithm,
            violation=self.violation,
            events_processed=self.events_processed,
        )

    def reset(self) -> None:
        """Restore the initial state (forget all clocks and the verdict)."""
        self.__init__()  # type: ignore[misc]

    def state_summary(self) -> Dict[str, int]:
        """Live analysis-state size, in algorithm-specific units.

        Checkers override this to expose what Theorem 4 bounds — clock
        counts for the vector-clock algorithms, node/edge counts for
        the graph-based ones. The base implementation reports only the
        stream position. Used by :mod:`repro.bench.memory` to measure
        state growth along a trace.
        """
        return {"events_processed": self.events_processed}


def _registry() -> Dict[str, Callable[[], StreamingChecker]]:
    # Imported lazily: the algorithm modules import this module for the
    # base class.
    from ..baselines.doublechecker import DoubleCheckerChecker
    from ..baselines.velodrome import VelodromeChecker
    from .aerodrome import AeroDromeChecker
    from .aerodrome_opt import OptimizedAeroDromeChecker

    from ..baselines.atomizer import AtomizerChecker
    from .sharded import ShardedAeroDromeChecker

    return {
        "aerodrome": OptimizedAeroDromeChecker,
        "aerodrome-basic": AeroDromeChecker,
        "aerodrome-sharded": ShardedAeroDromeChecker,
        "velodrome": lambda: VelodromeChecker(garbage_collect=True),
        "velodrome-nogc": lambda: VelodromeChecker(garbage_collect=False),
        "velodrome-pk": lambda: VelodromeChecker(incremental_topology=True),
        "doublechecker": DoubleCheckerChecker,
        "atomizer": AtomizerChecker,
    }


def available_algorithms() -> list:
    """Names accepted by :func:`check_trace` and the CLI."""
    return sorted(_registry())


def make_checker(algorithm: str = "aerodrome") -> StreamingChecker:
    """Instantiate a fresh checker by algorithm name."""
    registry = _registry()
    try:
        factory = registry[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(registry)}"
        ) from None
    return factory()


def check_trace(
    events: Iterable[Event],
    algorithm: str = "aerodrome",
    raise_on_violation: bool = False,
) -> CheckResult:
    """Check a trace (or any event stream) for atomicity violations.

    This is the library's front door::

        from repro import check_trace, parse_trace
        result = check_trace(parse_trace(text))
        if not result.serializable:
            print(result.violation)

    Args:
        events: A :class:`~repro.trace.trace.Trace` or any iterable of
            events.
        algorithm: One of :func:`available_algorithms` (default: the
            optimized AeroDrome).
        raise_on_violation: If ``True``, raise
            :class:`AtomicityViolationError` instead of returning a
            violating result.

    Returns:
        The :class:`CheckResult` verdict.
    """
    checker = make_checker(algorithm)
    result = checker.run(events)
    if raise_on_violation and result.violation is not None:
        raise AtomicityViolationError(result.violation)
    return result
