"""Packed integer vector clocks — the checkers' epoch fast-path carrier.

The analyses in :mod:`repro.core.aerodrome_opt` and
:mod:`repro.core.sharded` only ever need four clock operations on their
hot path: join, O(1) local-component compare, snapshot, and
local-component increment. This module packs a whole vector time into a
single arbitrary-precision Python ``int`` — one 64-bit *lane* per thread
component — so those operations become a handful of C-speed big-integer
instructions instead of per-component interpreter loops:

* **snapshot is free**: ints are immutable, so ``W_x := C_t`` is an
  aliasing rebind, not a copy. This deletes the per-event ``copy()``
  traffic (release, write publish, begin) wholesale and is what makes
  value-equality epoch memos exact: an unchanged source *is* the same
  object/value.
* **join is branch-free SWAR**: per-lane ``max`` via the carry-save
  compare trick below, ~10 int ops regardless of how the interpreter
  would have looped.
* **component access** is a shift+mask, and the ⊑ checks the optimized
  algorithms need are single-lane compares on these.
* **growth is automatic**: a clock with fewer lanes than another is
  zero-extended by integer arithmetic itself, so threads appearing
  mid-trace need no resizing pass.

Lanes hold non-negative values strictly below 2**63; the top bit of each
lane is the SWAR *guard* bit and must stay clear in stored clocks. Clock
components count transactions per thread, so a trace would need more
than 2**63 events per thread to overflow a lane — unreachable by many
orders of magnitude for anything this reproduction (or the paper's
2.8B-event traces) analyzes.

The guard mask ``H`` must span at least as many lanes as any operand has
threads; oversizing it is correct but pads every intermediate, so the
checkers grow their mask exactly with their thread registry
(:func:`grow_guard`).

The general-purpose, mutable :class:`~repro.core.vector_clock.VectorClock`
remains the canonical representation (the basic checker's auditable
line-by-line Algorithm 1 uses it exclusively); :func:`to_vector_clock`
bridges packed clocks back for views, reprs and tests.
"""

from __future__ import annotations

from typing import Iterable, List

from .vector_clock import VectorClock

#: Bits per lane (one lane per thread component).
LANE_BITS = 64
#: Mask of one full lane.
LANE_MASK = (1 << LANE_BITS) - 1
#: Largest storable component (guard bit must stay clear).
LANE_MAX = (1 << (LANE_BITS - 1)) - 1
#: The guard bit of lane 0.
GUARD = 1 << (LANE_BITS - 1)


def make_guard(lanes: int) -> int:
    """The SWAR guard mask ``H`` for ``lanes`` lanes."""
    h = 0
    bit = GUARD
    for _ in range(lanes):
        h |= bit
        bit <<= LANE_BITS
    return h


def grow_guard(h: int, lanes: int) -> int:
    """Extend an existing guard mask to cover ``lanes`` lanes."""
    have = h.bit_length() // LANE_BITS
    bit = GUARD << (LANE_BITS * have)
    for _ in range(lanes - have):
        h |= bit
        bit <<= LANE_BITS
    return h


def join(a: int, b: int, h: int) -> int:
    """Per-lane ``max(a, b)`` (the lattice join ``a ⊔ b``).

    SWAR compare-select: ``d`` keeps lane ``i``'s guard bit set iff
    ``a_i >= b_i`` (the guarded subtraction cannot borrow across lanes
    because stored lanes never use their guard bit); ``m`` widens each
    surviving guard into a full-lane mask; the final expression picks
    ``a``'s lane where the mask is set and ``b``'s elsewhere. The hot
    handlers inline this formula — the function form is for cold paths
    and tests.
    """
    if a == b:
        return a
    d = ((a | h) - b) & h
    g = d >> (LANE_BITS - 1)
    m = (d - g) | d
    return b ^ ((a ^ b) & m)


def leq(a: int, b: int, h: int) -> bool:
    """The pointwise partial order ``a ⊑ b``."""
    return ((b | h) - a) & h == h


def get(v: int, lane: int) -> int:
    """Component ``v(lane)``."""
    return (v >> (LANE_BITS * lane)) & LANE_MASK


def unit(lane: int, value: int = 1) -> int:
    """``⊥[value/lane]``."""
    return value << (LANE_BITS * lane)


def clear_lane(v: int, lane: int) -> int:
    """``v[0/lane]`` — the hR_x contribution with the own lane blanked."""
    return v & ~(LANE_MASK << (LANE_BITS * lane))


def pack(components: Iterable[int]) -> int:
    """Pack a component list (index = lane) into an int clock."""
    v = 0
    shift = 0
    for component in components:
        if not 0 <= component <= LANE_MAX:
            raise ValueError(f"component {component} out of lane range")
        v |= component << shift
        shift += LANE_BITS
    return v


def unpack(v: int) -> List[int]:
    """The component list of ``v`` (empty for ⊥)."""
    components = []
    while v:
        components.append(v & LANE_MASK)
        v >>= LANE_BITS
    return components


def to_vector_clock(v: int) -> VectorClock:
    """A :class:`VectorClock` view of ``v`` (for reprs, tests, tools)."""
    return VectorClock(unpack(v))


def from_vector_clock(clock: VectorClock) -> int:
    """Pack a :class:`VectorClock` into an int clock."""
    return pack(clock.as_tuple())
