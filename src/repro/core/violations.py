"""Violation reports shared by all checkers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Violation:
    """A detected violation of conflict serializability.

    Attributes:
        event_idx: Index in the trace of the event at which the violation
            was detected (checkers stop at the first violation, so this is
            the length of the shortest violating prefix minus one).
        thread: The thread whose active transaction closes the cycle.
        site: Which check fired — one of ``"acquire"``, ``"read"``,
            ``"write-write"``, ``"write-read"``, ``"join"``, ``"end"``,
            ``"cycle"`` (graph-based checkers).
        details: Free-form human-readable explanation.
    """

    event_idx: int
    thread: str
    site: str
    details: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.details})" if self.details else ""
        return (
            f"conflict serializability violation at event {self.event_idx} "
            f"in thread {self.thread} [{self.site} check]{suffix}"
        )


class AtomicityViolationError(RuntimeError):
    """Raised by ``check_trace(..., raise_on_violation=True)``."""

    def __init__(self, violation: Violation) -> None:
        self.violation = violation
        super().__init__(str(violation))


@dataclass(frozen=True)
class CheckResult:
    """Outcome of running a checker over a trace.

    Attributes:
        algorithm: Name of the algorithm that produced the result.
        violation: The first violation found, or ``None``.
        events_processed: Number of events consumed (checkers stop at the
            first violation, matching the paper's algorithms which exit
            as soon as a violation is declared).
    """

    algorithm: str
    violation: Optional[Violation]
    events_processed: int

    @property
    def serializable(self) -> bool:
        """True iff no violation was found (Column 7 ✓ in the tables)."""
        return self.violation is None

    def __str__(self) -> str:
        verdict = "✓ serializable" if self.serializable else f"✗ {self.violation}"
        return f"[{self.algorithm}] {verdict} after {self.events_processed} events"
