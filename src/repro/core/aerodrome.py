"""AeroDrome — Algorithm 1 of the paper, the basic vector-clock checker.

A single-pass, linear-time algorithm detecting violations of conflict
serializability. The state consists of vector clocks:

* ``C_t`` — timestamp of the last event of thread ``t`` (init ``⊥[1/t]``);
* ``C⊲_t`` — timestamp of the last begin event of ``t`` (init ``⊥``);
* ``L_ℓ`` — timestamp of the last release of lock ``ℓ``, with the scalar
  ``lastRelThr_ℓ`` remembering the releasing thread;
* ``W_x`` — timestamp of the last write to ``x``, with ``lastWThr_x``;
* ``R_{t,x}`` — timestamp of the last read of ``x`` by thread ``t``.

The timestamps implicitly capture the ⋖E relation (Definition 2): the
procedure ``checkAndGet(clk, t)`` declares a violation when ``C⊲_t ⊑ clk``
and ``t`` has an active transaction — i.e. when, per Theorem 2, some event
⋖E-after the begin of ``t``'s active transaction is ⋖E-before the current
event of ``t``, closing a cycle of transactions.

Nested transactions are flattened (only the outermost begin/end pair is
processed, Section 4.1.4) and unary transactions — events outside any
block — never trigger the violation check.

This module follows the paper's pseudocode line by line, trading speed for
auditability: every ⊑ check walks the full vector (no local-component
shortcut), and the end handler scans all clocks rather than keeping
update sets. Entities are interned to dense indices once (threads,
variables, locks each get their own namespace), ``checkAndGet`` uses the
fused single-pass
:meth:`~repro.core.vector_clock.VectorClock.join_into_and_check`, and
the eager ``V := C_t`` snapshots are version-memoized so an unchanged
clock is never re-copied — constant-factor engineering that leaves the
per-event logic exactly the paper's.
:mod:`repro.core.aerodrome_opt` implements the optimized variant
(Appendix C) used by the benchmark harness.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..trace.events import Event, Op
from ..trace.packed import Interner, PackedTrace
from .checker import StreamingChecker, make_packed_step
from .vector_clock import ThreadRegistry, VectorClock
from .violations import Violation


class AeroDromeChecker(StreamingChecker):
    """Streaming implementation of Algorithm 1.

    Feed events with :meth:`process` (or :meth:`run` over an iterable);
    the first violation is recorded in :attr:`violation` and processing
    stops.
    """

    algorithm = "aerodrome-basic"

    def __init__(self) -> None:
        super().__init__()
        self._threads = ThreadRegistry()
        self._var_names = Interner()
        self._lock_names = Interner()
        # Per-thread state, indexed by thread index.
        self._clock: List[VectorClock] = []  # C_t
        self._begin_clock: List[VectorClock] = []  # C⊲_t
        self._depth: List[int] = []  # transaction nesting depth
        # Per-lock state, indexed by lock index.
        self._lock_clock: List[Optional[VectorClock]] = []  # L_ℓ
        self._last_rel_thr: List[int] = []  # lastRelThr_ℓ (-1 = none)
        self._lock_pub: List[Optional[tuple]] = []  # release epoch memo
        # Per-variable state, indexed by variable index.
        self._write_clock: List[Optional[VectorClock]] = []  # W_x
        self._last_w_thr: List[int] = []  # lastWThr_x (-1 = none)
        self._write_pub: List[Optional[tuple]] = []  # write epoch memo
        self._read_clock: List[Optional[Dict[int, VectorClock]]] = []  # R_{t,x}
        self._read_pub: List[Optional[Dict[int, tuple]]] = []  # read epoch memos

    # -- state helpers -------------------------------------------------------

    def _thread(self, name: str) -> int:
        """Intern a thread name, initializing its clocks on first sight."""
        t = self._threads.index_of(name)
        if t == len(self._clock):
            self._clock.append(VectorClock.unit(t))
            self._begin_clock.append(VectorClock.bottom())
            self._depth.append(0)
        return t

    def _var(self, name: str) -> int:
        """Intern a variable name, initializing its state on first sight."""
        x = self._var_names.index_of(name)
        if x == len(self._write_clock):
            self._write_clock.append(None)
            self._last_w_thr.append(-1)
            self._write_pub.append(None)
            self._read_clock.append(None)
            self._read_pub.append(None)
        return x

    def _lock(self, name: str) -> int:
        """Intern a lock name, initializing its state on first sight."""
        l = self._lock_names.index_of(name)
        if l == len(self._lock_clock):
            self._lock_clock.append(None)
            self._last_rel_thr.append(-1)
            self._lock_pub.append(None)
        return l

    def _has_active_transaction(self, t: int) -> bool:
        return self._depth[t] > 0

    def thread_clock(self, name: str) -> VectorClock:
        """Read-only view of C_t (⊥ for threads not yet observed) —
        exposed for tests and expository code."""
        if name not in self._threads:
            return VectorClock.bottom()
        return self._clock[self._threads.index_of(name)].copy()

    def begin_clock(self, name: str) -> VectorClock:
        """Read-only view of C⊲_t (⊥ for threads not yet observed)."""
        if name not in self._threads:
            return VectorClock.bottom()
        return self._begin_clock[self._threads.index_of(name)].copy()

    def write_clock(self, variable: str) -> VectorClock:
        """Read-only view of W_x (⊥ if x has not been written)."""
        x = self._var_names.lookup(variable)
        clock = self._write_clock[x] if x is not None else None
        return clock.copy() if clock is not None else VectorClock.bottom()

    def lock_clock(self, lock: str) -> VectorClock:
        """Read-only view of L_ℓ (⊥ if ℓ has not been released)."""
        l = self._lock_names.lookup(lock)
        clock = self._lock_clock[l] if l is not None else None
        return clock.copy() if clock is not None else VectorClock.bottom()

    def read_clock(self, thread: str, variable: str) -> VectorClock:
        """Read-only view of R_{t,x} (⊥ if t has not read x)."""
        x = self._var_names.lookup(variable)
        if x is not None and thread in self._threads:
            per_thread = self._read_clock[x]
            if per_thread is not None:
                clock = per_thread.get(self._threads.index_of(thread))
                if clock is not None:
                    return clock.copy()
        return VectorClock.bottom()

    # -- checkAndGet (paper lines 9-12) -----------------------------------

    def _check_and_get(
        self, clk: VectorClock, t: int, idx: int, site: str
    ) -> Optional[Violation]:
        """``checkAndGet(clk, t)``: check C⊲_t ⊑ clk, then C_t ⊔= clk.

        The check and the join traverse the same operand, fused into one
        pass; the check's verdict only matters inside a transaction.
        """
        if self._depth[t] > 0:
            if self._clock[t].join_into_and_check(clk, self._begin_clock[t]):
                name = self._threads.name_of(t)
                return Violation(
                    event_idx=idx,
                    thread=name,
                    site=site,
                    details=(
                        f"C⊲_{name} ⊑ {clk!r} with an active transaction"
                    ),
                )
        else:
            self._clock[t].join(clk)
        return None

    # -- event handlers ------------------------------------------------------

    def _acquire(self, t: int, l: int, idx: int) -> Optional[Violation]:
        if self._last_rel_thr[l] != t:
            clock = self._lock_clock[l]
            if clock is not None:
                return self._check_and_get(clock, t, idx, "acquire")
        return None

    def _release(self, t: int, l: int, idx: int) -> None:
        clock = self._clock[t]
        old = self._lock_clock[l]
        memo = self._lock_pub[l]
        # Epoch memo: skip the snapshot when L_ℓ is already an untouched
        # copy of this exact clock state.
        if memo is None or old is None or memo != (t, clock.version, old.version):
            snap = clock.copy()
            self._lock_clock[l] = snap
            self._lock_pub[l] = (t, clock.version, snap.version)
        self._last_rel_thr[l] = t
        return None

    def _fork(self, t: int, u: int, idx: int) -> None:
        self._clock[u].join(self._clock[t])
        return None

    def _join(self, t: int, u: int, idx: int) -> Optional[Violation]:
        return self._check_and_get(self._clock[u], t, idx, "join")

    def _read(self, t: int, x: int, idx: int) -> Optional[Violation]:
        if self._last_w_thr[x] != t:
            clock = self._write_clock[x]
            if clock is not None:
                violation = self._check_and_get(clock, t, idx, "read")
                if violation is not None:
                    return violation
        per_thread = self._read_clock[x]
        if per_thread is None:
            per_thread = {}
            self._read_clock[x] = per_thread
        memos = self._read_pub[x]
        if memos is None:
            memos = {}
            self._read_pub[x] = memos
        clock = self._clock[t]
        old = per_thread.get(t)
        memo = memos.get(t)
        if memo is None or old is None or memo != (clock.version, old.version):
            snap = clock.copy()
            per_thread[t] = snap
            memos[t] = (clock.version, snap.version)
        return None

    def _write(self, t: int, x: int, idx: int) -> Optional[Violation]:
        if self._last_w_thr[x] != t:
            clock = self._write_clock[x]
            if clock is not None:
                violation = self._check_and_get(clock, t, idx, "write-write")
                if violation is not None:
                    return violation
        per_thread = self._read_clock[x]
        if per_thread:
            for u, read_clock in per_thread.items():
                if u != t:
                    violation = self._check_and_get(read_clock, t, idx, "write-read")
                    if violation is not None:
                        return violation
        clock = self._clock[t]
        old = self._write_clock[x]
        memo = self._write_pub[x]
        if memo is None or old is None or memo != (t, clock.version, old.version):
            snap = clock.copy()
            self._write_clock[x] = snap
            self._write_pub[x] = (t, clock.version, snap.version)
        self._last_w_thr[x] = t
        return None

    def _begin(self, t: int, idx: int) -> None:
        depth = self._depth[t]
        self._depth[t] = depth + 1
        if depth > 0:
            return None  # nested begin: only the outermost pair counts
        clock = self._clock[t]
        clock.increment(t)
        self._begin_clock[t] = clock.copy()
        return None

    def _end(self, t: int, idx: int) -> Optional[Violation]:
        depth = self._depth[t]
        if depth == 0:
            raise ValueError(
                f"end without matching begin at event {idx}; "
                "validate the trace with repro.trace.wellformed first"
            )
        self._depth[t] = depth - 1
        if depth > 1:
            return None  # nested end
        begin_clock = self._begin_clock[t]
        my_clock = self._clock[t]
        # Propagate the completed transaction's time into every thread
        # that already observed an event of this transaction (lines 38-40):
        # the checkAndGet there may discover a cycle closed by u's active
        # transaction.
        for u, u_clock in enumerate(self._clock):
            if u != t and begin_clock.leq(u_clock):
                violation = self._check_and_get(my_clock, u, idx, "end")
                if violation is not None:
                    return violation
        # ... and into every lock/write/read clock that is after the begin
        # (lines 41-46), so future readers of those clocks inherit the
        # ⋖E-edge through this now-completed transaction.
        for clock in self._lock_clock:
            if clock is not None and begin_clock.leq(clock):
                clock.join(my_clock)
        for clock in self._write_clock:
            if clock is not None and begin_clock.leq(clock):
                clock.join(my_clock)
        for per_thread in self._read_clock:
            if per_thread is not None:
                for u, clock in per_thread.items():
                    if begin_clock.leq(clock):
                        clock.join(my_clock)
        # The depth is already 0: t no longer has an active transaction.
        return None

    def state_summary(self) -> Dict[str, int]:
        """Clock counts — the Theorem 4 space bound, observable.

        ``read_clocks`` is the O(|Thr|·V) term that Algorithm 2
        eliminates; compare with the optimized checker's summary.
        """
        lock_clocks = sum(1 for clock in self._lock_clock if clock is not None)
        write_clocks = sum(1 for clock in self._write_clock if clock is not None)
        read_clocks = sum(
            len(per) for per in self._read_clock if per is not None
        )
        return {
            "events_processed": self.events_processed,
            "thread_clocks": 2 * len(self._clock),  # C_t and C⊲_t
            "lock_clocks": lock_clocks,
            "write_clocks": write_clocks,
            "read_clocks": read_clocks,
            "total_clocks": (
                2 * len(self._clock)
                + lock_clocks
                + write_clocks
                + read_clocks
            ),
        }

    # -- dispatch ------------------------------------------------------------

    def process(self, event: Event) -> Optional[Violation]:
        """Process one event; return the violation if this event closes one.

        After a violation has been found the checker is *stopped*:
        further calls raise :class:`RuntimeError` (the paper's algorithm
        exits at the first violation). This is the string adapter over
        the interned per-op handlers the packed path dispatches to.
        """
        if self.violation is not None:
            raise RuntimeError("checker already found a violation; reset() first")
        t = self._thread(event.thread)
        op = event.op
        violation: Optional[Violation]
        if op is Op.READ:
            violation = self._read(t, self._var(event.target), event.idx)
        elif op is Op.WRITE:
            violation = self._write(t, self._var(event.target), event.idx)
        elif op is Op.ACQUIRE:
            violation = self._acquire(t, self._lock(event.target), event.idx)
        elif op is Op.RELEASE:
            violation = self._release(t, self._lock(event.target), event.idx)
        elif op is Op.BEGIN:
            violation = self._begin(t, event.idx)
        elif op is Op.END:
            violation = self._end(t, event.idx)
        elif op is Op.FORK:
            violation = self._fork(t, self._thread(event.target), event.idx)
        elif op is Op.JOIN:
            violation = self._join(t, self._thread(event.target), event.idx)
        else:  # pragma: no cover - exhaustive over Op
            raise AssertionError(f"unhandled op {op}")
        self.events_processed += 1
        if violation is not None:
            self.violation = violation
        return violation

    def packed_step(self, packed: PackedTrace):
        """Per-op dispatch table over packed records (see base class)."""
        return make_packed_step(
            packed, self._thread, self._var, self._lock,
            self._read, self._write, self._acquire, self._release,
            self._fork, self._join, self._begin, self._end,
        )
